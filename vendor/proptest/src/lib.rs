//! Offline shim for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro with an inline `#![proptest_config(..)]`
//! attribute, range strategies (`0u16..4`), [`collection::vec`], and the
//! `prop_assert!`/`prop_assert_eq!` assertions. Cases are generated from
//! a fixed seed so runs are deterministic; there is no shrinking — a
//! failing case panics with the assertion message and the case index.

#![forbid(unsafe_code)]

/// Strategy trait and implementations for primitive ranges.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::SampleUniform;

    /// A generator of values for one `proptest!` argument.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T: SampleUniform + Copy> Strategy for core::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.sample_range(self.start..self.end)
        }
    }
}

/// Collection strategies (shim of `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number of elements a [`vec()`] strategy may produce.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Create a strategy for `Vec`s with `size` elements drawn from
    /// `element` (shim of `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi - self.size.lo == 1 {
                self.size.lo
            } else {
                rng.sample_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test execution plumbing (shim of `proptest::test_runner`).
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleUniform, SeedableRng};

    /// Per-block configuration (shim of `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    impl Config {
        /// A config running `cases` generated cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// The deterministic generator driving case generation.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// A generator with a fixed seed derived from the test name, so
        /// every run of a test sees the same case sequence.
        pub fn deterministic(test_name: &str) -> Self {
            let seed = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
            });
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }

        /// Draw uniformly from a half-open range.
        pub fn sample_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
            self.inner.random_range(range)
        }
    }
}

/// Everything a property test file needs (shim of `proptest::prelude`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Define property tests over generated inputs (shim of `proptest!`).
///
/// Supports the block form with an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! {
            config = <$crate::test_runner::Config as ::core::default::Default>::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                    )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 1usize..10, y in 0u16..4) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u16..8, 3), w in prop::collection::vec(0u16..8, 1..5)) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!((1..5).contains(&w.len()));
            prop_assert!(v.iter().chain(w.iter()).all(|&c| c < 8));
        }
    }
}
