//! Offline shim for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of criterion's API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion`, benchmark groups,
//! `Bencher::{iter, iter_batched}`, `BatchSize`) on top of a plain
//! wall-clock measurement loop. It reports mean ns/iter to stdout; it
//! does not do statistical analysis or HTML reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Benchmark configuration and entry point (shim of `criterion::Criterion`).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set how long to run a benchmark before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Set the target total duration of the timed phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for CLI compatibility; this shim takes no arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self }
    }

    /// Printed once all groups have run (shim of criterion's summary).
    pub fn final_summary(&self) {}
}

/// A named collection of benchmarks sharing one `Criterion` config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run a single named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.criterion, name, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// How batched inputs are sized (shim of `criterion::BatchSize`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; batch many per sample.
    SmallInput,
    /// Large per-iteration inputs; batch few per sample.
    LargeInput,
    /// Regenerate the input for every single iteration.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    total_nanos: u128,
    total_iters: u64,
}

impl Bencher {
    /// Time `routine` over repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also calibrates iterations per sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() / u128::from(warm_iters);
        let budget = self.measurement_time.as_nanos() / self.sample_size as u128;
        let iters_per_sample = (budget / per_iter.max(1)).clamp(1, u128::from(u32::MAX)) as u64;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.total_nanos += start.elapsed().as_nanos();
            self.total_iters += iters_per_sample;
        }
    }

    /// Time `routine` over inputs freshly produced by `setup`; the setup
    /// cost is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_input = setup();
        let warm_start = Instant::now();
        std::hint::black_box(routine(warm_input));
        let per_iter = warm_start.elapsed().as_nanos().max(1);
        let budget = self.measurement_time.as_nanos() / self.sample_size as u128;
        let iters_per_sample = (budget / per_iter).clamp(1, 1 << 16) as u64;

        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.total_nanos += start.elapsed().as_nanos();
            self.total_iters += iters_per_sample;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Criterion, name: &str, f: &mut F) {
    let mut bencher = Bencher {
        sample_size: config.sample_size,
        warm_up_time: config.warm_up_time,
        measurement_time: config.measurement_time,
        total_nanos: 0,
        total_iters: 0,
    };
    f(&mut bencher);
    if bencher.total_iters == 0 {
        println!("  {name}: no iterations recorded");
    } else {
        let mean = bencher.total_nanos as f64 / bencher.total_iters as f64;
        println!(
            "  {name}: {mean:.1} ns/iter ({} iters)",
            bencher.total_iters
        );
    }
}

/// Declare a group of benchmark functions (shim of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the benchmark `main` that runs each group (shim of
/// `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_iterations() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("g");
        g.bench_function("sum", |b| {
            b.iter_batched(
                || vec![1u32, 2, 3],
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
