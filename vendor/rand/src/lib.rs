//! Offline shim for the `rand` crate (0.9-style API).
//!
//! The build environment has no registry access, so this vendored crate
//! provides the exact surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::random`], and
//! [`Rng::random_range`] over half-open ranges. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic for a given seed,
//! which is all the tests and examples rely on (they never assume the
//! upstream rand stream).

#![forbid(unsafe_code)]

use core::ops::Range;

/// Random number generators (shim of `rand::rngs`).
pub mod rngs {
    /// A seeded, deterministic generator (xoshiro256++ core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A generator seedable from a `u64` (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        rngs::StdRng { s }
    }
}

/// Types producible "from the standard distribution" (shim of
/// `rand::distr::StandardUniform` sampling through `Rng::random`).
pub trait SampleStandard {
    /// Draw one value from the generator.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly sampleable over a half-open range (shim of
/// `rand::distr::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// Draw one value uniformly from `range` (which must be non-empty).
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo sampling: bias is negligible for the small spans
                // used here and irrelevant for test determinism.
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let unit = <$t as SampleStandard>::sample_standard(rng);
                range.start + unit * (range.end - range.start)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// The user-facing generator trait (shim of `rand::Rng`).
pub trait Rng {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a value from the standard distribution of `T`.
    fn random<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw a value uniformly from the half-open `range`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.random_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.random_range(1..17);
            assert!((1..17).contains(&n));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
