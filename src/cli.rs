//! Shared command-line plumbing for the workspace binaries.
//!
//! `localut-sim`, `bench-runner`, `loadgen`, and `serve-daemon` all parse
//! flags through this one module, which pins the conventions that used to
//! drift between hand-rolled loops:
//!
//! * `--help`/`-h` prints the usage line and **exits 0** everywhere;
//! * usage errors print to stderr and **exit 2** (reserving 1 for "ran
//!   but failed": a perf-gate regression, a failed request);
//! * common flags spell the same way and validate the same way —
//!   `--threads` is a positive integer, `--seed` a `u64`, `--out` a file
//!   path;
//! * unknown flags echo the usage line.
//!
//! The parsing style stays the flat `while let Some(flag)` loop the
//! binaries always used; this module supplies the loop's plumbing
//! ([`Flags`]) and the process-exit policy ([`CliError`], [`exit`]), not
//! a framework.

use std::fmt::Display;
use std::process::ExitCode;
use std::str::FromStr;

/// Why argument parsing stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help`/`-h`: carries the usage line; [`exit`] prints it to
    /// stdout and succeeds.
    Help(&'static str),
    /// A real usage problem; [`exit`] prints it to stderr and exits 2.
    Usage(String),
}

/// Terminates argument handling the uniform way: help → usage on stdout,
/// exit 0; error → message on stderr, exit 2.
#[must_use]
pub fn exit(error: &CliError) -> ExitCode {
    match error {
        CliError::Help(usage) => {
            println!("{usage}");
            ExitCode::SUCCESS
        }
        CliError::Usage(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}

/// The flag stream a binary's `parse_args` walks.
#[derive(Debug)]
pub struct Flags {
    it: std::vec::IntoIter<String>,
    usage: &'static str,
}

impl Flags {
    /// Wraps the process arguments (skipping the binary name).
    #[must_use]
    pub fn from_env(usage: &'static str) -> Flags {
        Flags::from_args(std::env::args().skip(1).collect(), usage)
    }

    /// Wraps an explicit argument vector (tests).
    #[must_use]
    pub fn from_args(args: Vec<String>, usage: &'static str) -> Flags {
        Flags {
            it: args.into_iter(),
            usage,
        }
    }

    /// The next flag, with `--help`/`-h` intercepted uniformly.
    ///
    /// # Errors
    ///
    /// [`CliError::Help`] on a help flag.
    pub fn next_flag(&mut self) -> Result<Option<String>, CliError> {
        match self.it.next() {
            Some(flag) if flag == "--help" || flag == "-h" => Err(CliError::Help(self.usage)),
            other => Ok(other),
        }
    }

    /// The value following `flag`.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] when the stream ends instead.
    pub fn value(&mut self, flag: &str) -> Result<String, CliError> {
        self.it
            .next()
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
    }

    /// The value following `flag`, parsed via [`FromStr`]; the type's own
    /// error message is surfaced.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] on a missing or unparseable value.
    pub fn parsed<T>(&mut self, flag: &str) -> Result<T, CliError>
    where
        T: FromStr,
        T::Err: Display,
    {
        let value = self.value(flag)?;
        value
            .parse()
            .map_err(|e| CliError::Usage(format!("bad {flag} '{value}': {e}")))
    }

    /// The value following `flag` as a positive integer (≥ 1) — the
    /// shared contract of `--threads` and every other count flag.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] unless the value parses and is at least 1.
    pub fn positive(&mut self, flag: &str) -> Result<usize, CliError> {
        match self.value(flag)?.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(CliError::Usage(format!(
                "{flag} must be a positive integer"
            ))),
        }
    }

    /// The uniform unknown-flag error, echoing the usage line.
    #[must_use]
    pub fn unknown(&self, flag: &str) -> CliError {
        CliError::Usage(format!("unknown flag '{flag}'\n{}", self.usage))
    }

    /// A usage error that still echoes the usage line (for cross-flag
    /// validation after the loop, e.g. "exactly one of --shape/--model").
    #[must_use]
    pub fn usage_error(&self, message: &str) -> CliError {
        CliError::Usage(format!("{message}\n{}", self.usage))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Flags {
        Flags::from_args(args.iter().map(|s| (*s).to_string()).collect(), "USAGE")
    }

    #[test]
    fn help_is_intercepted_wherever_it_appears() {
        let mut f = flags(&["--help"]);
        assert_eq!(f.next_flag(), Err(CliError::Help("USAGE")));

        let mut f = flags(&["--threads", "2", "-h"]);
        assert_eq!(f.next_flag(), Ok(Some("--threads".to_owned())));
        assert_eq!(f.positive("--threads").unwrap(), 2);
        assert_eq!(f.next_flag(), Err(CliError::Help("USAGE")));
    }

    #[test]
    fn positive_rejects_zero_garbage_and_missing() {
        assert!(flags(&["0"]).positive("--threads").is_err());
        assert!(flags(&["two"]).positive("--threads").is_err());
        assert!(flags(&[]).positive("--threads").is_err());
        assert_eq!(flags(&["4"]).positive("--threads").unwrap(), 4);
    }

    #[test]
    fn parsed_surfaces_the_inner_error() {
        let err = flags(&["W9A99"]).parsed::<quant::BitConfig>("--config");
        match err {
            Err(CliError::Usage(msg)) => {
                assert!(msg.contains("--config"), "names the flag: {msg}");
                assert!(msg.contains("W9A99"), "names the value: {msg}");
            }
            other => panic!("expected Usage, got {other:?}"),
        }
        let seed: u64 = flags(&["42"]).parsed("--seed").unwrap();
        assert_eq!(seed, 42);
    }

    #[test]
    fn unknown_flag_echoes_usage() {
        let f = flags(&[]);
        match f.unknown("--bogus") {
            CliError::Usage(msg) => {
                assert!(msg.contains("--bogus") && msg.contains("USAGE"));
            }
            CliError::Help(_) => panic!("unknown flag is not help"),
        }
    }
}
