//! # localut-repro — reproduction of LoCaLUT (HPCA 2026)
//!
//! Facade crate tying the workspace together for the examples and
//! integration tests. See `README.md` for the architecture overview,
//! `DESIGN.md` for the system inventory, and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use dnn;
pub use localut;
pub use pim_sim;
pub use pq;
pub use quant;
pub use runtime;
pub use xpu;
