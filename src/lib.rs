//! # localut-repro — reproduction of LoCaLUT (HPCA 2026)
//!
//! Facade crate tying the workspace together for the examples and
//! integration tests. The recommended entry point is [`engine`] — the
//! unified serving API (`Engine` / `Session`, typed requests, LUT
//! caching); the per-layer crates below it stay available for
//! lower-level work. See `README.md` for the architecture overview,
//! `DESIGN.md` for the system inventory, and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub mod cli;

pub use dnn;
pub use engine;
pub use localut;
pub use netserve;
pub use pim_sim;
pub use pq;
pub use quant;
pub use runtime;
pub use xpu;

pub use engine::serve::Server;
pub use engine::{Engine, EngineBuilder, EngineError, Session};
pub use netserve::{NetClient, NetConfig, NetServer};
