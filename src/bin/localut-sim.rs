//! `localut-sim` — command-line front end to the simulator.
//!
//! Plan and time a quantized GEMM on the simulated 2048-DPU UPMEM server:
//!
//! ```sh
//! localut-sim --shape 3072x768x128 --config W1A3
//! localut-sim --shape 768x768x128 --config W4A4 --method op --k 4
//! localut-sim --shape 768x768x128 --config W1A3 --threads 8
//! localut-sim --model bert --config W1A3 --batch 32
//! localut-sim --model bert --config W1A3 --threads 4 --requests 8
//! ```
//!
//! Prints the §IV-D plan (placement, p*, k), the per-DPU kernel breakdown
//! (Fig. 16b categories), the system-level time, and the speedup over
//! Naive PIM. With `--threads N > 1`, `--shape` additionally executes the
//! GEMM *functionally* on the bank-parallel runtime and verifies the
//! result is bit-identical to the serial path; `--model` serves
//! `--requests` independent inference requests on the runtime's worker
//! pool.

use dnn::{InferenceSim, ModelConfig, Workload};
use localut::plan::Planner;
use localut::tiling::{DistributedGemm, TileGrid};
use localut::{GemmConfig, GemmDims, Method};
use pim_sim::EnergyModel;
use quant::{BitConfig, QMatrix};
use runtime::ParallelExecutor;
use std::process::ExitCode;

struct Args {
    shape: Option<GemmDims>,
    model: Option<String>,
    config: BitConfig,
    method: Method,
    k_slices: u32,
    batch: usize,
    threads: usize,
    requests: usize,
}

const USAGE: &str = "usage: localut-sim (--shape MxKxN | --model bert|opt|vit) \
[--config WxAy] [--method naive|ltc|op|oplc|oplcrc|localut] [--k N] [--batch N] \
[--threads N] [--requests N]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        shape: None,
        model: None,
        config: "W1A3".parse().expect("valid default"),
        method: Method::LoCaLut,
        k_slices: 2,
        batch: 32,
        threads: 1,
        requests: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--shape" => {
                let v = value()?;
                let parts: Vec<usize> = v
                    .split(['x', 'X'])
                    .map(|s| s.parse().map_err(|_| format!("bad shape '{v}'")))
                    .collect::<Result<_, _>>()?;
                if parts.len() != 3 || parts.contains(&0) {
                    return Err(format!("bad shape '{v}', expected MxKxN"));
                }
                args.shape = Some(GemmDims {
                    m: parts[0],
                    k: parts[1],
                    n: parts[2],
                });
            }
            "--model" => args.model = Some(value()?.to_lowercase()),
            "--config" => args.config = value()?.parse().map_err(|e| format!("{e}"))?,
            "--method" => {
                args.method = match value()?.to_lowercase().as_str() {
                    "naive" => Method::NaivePim,
                    "ltc" => Method::Ltc,
                    "op" => Method::Op,
                    "oplc" => Method::OpLc,
                    "oplcrc" => Method::OpLcRc,
                    "localut" => Method::LoCaLut,
                    other => return Err(format!("unknown method '{other}'")),
                }
            }
            "--k" => args.k_slices = value()?.parse().map_err(|_| "bad --k".to_owned())?,
            "--batch" => args.batch = value()?.parse().map_err(|_| "bad --batch".to_owned())?,
            "--threads" => {
                args.threads = value()?.parse().map_err(|_| "bad --threads".to_owned())?;
                if args.threads == 0 {
                    return Err("--threads must be at least 1".to_owned());
                }
            }
            "--requests" => {
                args.requests = value()?.parse().map_err(|_| "bad --requests".to_owned())?;
                if args.requests == 0 {
                    return Err("--requests must be at least 1".to_owned());
                }
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if args.shape.is_none() && args.model.is_none() {
        return Err(USAGE.to_owned());
    }
    Ok(args)
}

fn run_gemm(args: &Args, dims: GemmDims) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = args.config;
    let (wf, af) = (cfg.weight_format(), cfg.activation_format());
    let mut dist = DistributedGemm::upmem_server();
    dist.gemm.k_slices = args.k_slices;

    println!(
        "GEMM {dims} at {cfg}, method {}, k = {}",
        args.method, args.k_slices
    );
    let grid = TileGrid::choose(dims, dist.system.config().n_dpus());
    let tile = grid.tile_dims(dims);
    println!(
        "  tiling: {} x {} DPUs ({} used), per-DPU tile {tile}",
        grid.grid_m,
        grid.grid_n,
        grid.dpus_used()
    );
    if args.method == Method::LoCaLut {
        let plan = Planner::new(dist.gemm.dpu.clone()).plan(tile, wf, af, Some(args.k_slices))?;
        println!(
            "  plan: {} at p = {}, k = {} (model-predicted {:.4e} s/DPU)",
            plan.placement, plan.p, plan.k_slices, plan.predicted_seconds
        );
    }
    let profile = dist.cost(args.method, dims, wf, af)?;
    let naive = dist.cost(Method::NaivePim, dims, wf, af)?;
    println!("\n  per-DPU kernel breakdown:");
    print!("{}", textwrap(&profile.pim.to_string()));
    println!(
        "\n  system total: {:.4e} s (host {:.4e} s + PIM {:.4e} s)",
        profile.total_seconds(),
        profile.host.total_seconds(),
        profile.pim.total_seconds()
    );
    println!(
        "  speedup over Naive PIM: {:.2}x",
        naive.total_seconds() / profile.total_seconds()
    );
    let energy = EnergyModel::upmem();
    println!(
        "  energy: {:.2} J",
        energy
            .system_energy(dist.system.config(), &profile)
            .total_j()
    );
    if args.threads > 1 {
        run_gemm_parallel(args, dims)?;
    }
    Ok(())
}

fn run_gemm_parallel(args: &Args, dims: GemmDims) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = args.config;
    let w = QMatrix::pseudo_random(dims.m, dims.k, cfg.weight_format(), 1);
    let a = QMatrix::pseudo_random(dims.k, dims.n, cfg.activation_format(), 2);
    let mut gemm = GemmConfig::upmem();
    gemm.k_slices = args.k_slices;

    println!("\n  functional execution on the bank-parallel runtime:");
    let t0 = std::time::Instant::now();
    let serial = gemm.run(args.method, &w, &a)?;
    let serial_wall = t0.elapsed();
    let pool = ParallelExecutor::with_config(args.threads, gemm);
    let t1 = std::time::Instant::now();
    let parallel = pool.execute(args.method, &w, &a)?;
    let parallel_wall = t1.elapsed();
    assert_eq!(
        parallel.values, serial.values,
        "parallel output diverged from the serial path"
    );
    println!(
        "    serial:   {:>8.1} ms wall",
        serial_wall.as_secs_f64() * 1e3
    );
    println!(
        "    parallel: {:>8.1} ms wall ({} workers, {} banks) — bit-identical ✓",
        parallel_wall.as_secs_f64() * 1e3,
        pool.threads(),
        parallel.per_bank.len()
    );
    println!(
        "    simulated bank work {:.4e} s, critical path {:.4e} s",
        parallel.total_bank_seconds(),
        parallel.critical_path_seconds()
    );
    Ok(())
}

fn run_model(args: &Args, name: &str) -> Result<(), Box<dyn std::error::Error>> {
    let model = match name {
        "bert" => ModelConfig::bert_base(),
        "opt" => ModelConfig::opt_125m(),
        "vit" => ModelConfig::vit_base(),
        other => return Err(format!("unknown model '{other}' (bert|opt|vit)").into()),
    };
    let mut sim = InferenceSim::upmem_server();
    sim.dist.gemm.k_slices = args.k_slices;
    let wl = if model.has_decode() {
        Workload::with_decode(model.clone(), args.batch, 8)
    } else {
        Workload::prefill(model.clone(), args.batch)
    };
    println!(
        "{} at {}, batch {}, method {}",
        model.name, args.config, args.batch, args.method
    );
    let init = sim.init_cost(args.method, args.config)?;
    let report = sim.run(args.method, args.config, &wl)?;
    let naive = sim.run(Method::NaivePim, args.config, &wl)?;
    println!("  one-time init: {:.4e} s", init.total_seconds());
    println!(
        "  inference: {:.4} s (prefill {:.4} s, decode {:.4} s)",
        report.total_seconds(),
        report.prefill_seconds,
        report.decode_seconds
    );
    println!("  phases:");
    for (phase, seconds) in report.phases() {
        if seconds > 0.0 {
            println!(
                "    {:<18} {:>10.4e} s ({:>5.1}%)",
                phase.label(),
                seconds,
                100.0 * seconds / report.total_seconds()
            );
        }
    }
    println!(
        "  speedup over Naive PIM: {:.2}x",
        naive.total_seconds() / report.total_seconds()
    );
    if args.requests > 1 || args.threads > 1 {
        if args.requests == 1 {
            println!("  note: --threads without --requests serves a single request; use --requests N for a real batch");
        }
        let requests = vec![wl; args.requests];
        let pool = ParallelExecutor::new(args.threads);
        let t0 = std::time::Instant::now();
        let batch = sim.run_batch(&pool, args.method, args.config, &requests)?;
        let wall = t0.elapsed();
        println!(
            "  batched serving: {} requests on {} workers in {:.1} ms wall",
            batch.requests(),
            pool.threads(),
            wall.as_secs_f64() * 1e3
        );
        println!(
            "    simulated session time {:.4} s ({:.4} s/request)",
            batch.total_seconds(),
            batch.total_seconds() / batch.requests() as f64
        );
    }
    Ok(())
}

fn textwrap(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let result = if let Some(model) = &args.model {
        run_model(&args, &model.clone())
    } else {
        run_gemm(&args, args.shape.expect("validated"))
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
