//! `localut-sim` — command-line front end to the serving engine.
//!
//! Plan and time a quantized GEMM on the simulated 2048-DPU UPMEM server:
//!
//! ```sh
//! localut-sim --shape 3072x768x128 --config W1A3
//! localut-sim --shape 768x768x128 --config W4A4 --method op --k 4
//! localut-sim --shape 768x768x128 --config W1A3 --threads 8
//! localut-sim --model bert --config W1A3 --batch 32
//! localut-sim --model bert --config W1A3 --threads 4 --requests 8
//! ```
//!
//! Every path routes through one [`engine::Engine`]: the §IV-D plan
//! (placement, p*, k), the per-DPU kernel breakdown (Fig. 16b
//! categories), the system-level time, and the speedup over Naive PIM.
//! With `--threads N > 1`, `--shape` additionally executes the GEMM
//! *functionally* on the bank-parallel runtime — twice, to show the LUT
//! cache — and verifies the result is bit-identical to the serial path;
//! `--model` serves `--requests` independent inference requests on the
//! engine's worker pool.

use dnn::{ModelConfig, Workload};
use engine::{Engine, GemmRequest, InferenceRequest};
use localut::tiling::TileGrid;
use localut::{GemmConfig, GemmDims, Method};
use localut_repro::cli::{self, CliError, Flags};
use quant::{BitConfig, QMatrix};
use std::process::ExitCode;

struct Args {
    shape: Option<GemmDims>,
    model: Option<String>,
    config: BitConfig,
    method: Method,
    k_slices: u32,
    batch: usize,
    threads: usize,
    requests: usize,
}

const USAGE: &str = "usage: localut-sim (--shape MxKxN | --model bert|opt|vit) \
[--config WxAy] [--method naive|ltc|op|oplc|oplcrc|localut] [--k N] [--batch N] \
[--threads N] [--requests N]";

fn parse_args() -> Result<Args, CliError> {
    let mut args = Args {
        shape: None,
        model: None,
        config: "W1A3".parse().expect("valid default"),
        method: Method::LoCaLut,
        k_slices: 2,
        batch: 32,
        threads: 1,
        requests: 1,
    };
    let mut flags = Flags::from_env(USAGE);
    while let Some(flag) = flags.next_flag()? {
        match flag.as_str() {
            "--shape" => {
                let v = flags.value("--shape")?;
                let parts: Vec<usize> = v
                    .split(['x', 'X'])
                    .map(|s| s.parse().ok())
                    .collect::<Option<_>>()
                    .ok_or_else(|| CliError::Usage(format!("bad --shape '{v}'")))?;
                if parts.len() != 3 || parts.contains(&0) {
                    return Err(CliError::Usage(format!(
                        "bad --shape '{v}', expected MxKxN"
                    )));
                }
                args.shape = Some(GemmDims {
                    m: parts[0],
                    k: parts[1],
                    n: parts[2],
                });
            }
            "--model" => args.model = Some(flags.value("--model")?.to_lowercase()),
            "--config" => args.config = flags.parsed("--config")?,
            "--method" => {
                let v = flags.value("--method")?.to_lowercase();
                args.method = v
                    .parse()
                    .map_err(|e: String| CliError::Usage(format!("bad --method: {e}")))?;
            }
            "--k" => args.k_slices = flags.parsed("--k")?,
            "--batch" => args.batch = flags.parsed("--batch")?,
            "--threads" => args.threads = flags.positive("--threads")?,
            "--requests" => args.requests = flags.positive("--requests")?,
            other => return Err(flags.unknown(other)),
        }
    }
    if args.shape.is_none() && args.model.is_none() {
        return Err(flags.usage_error("one of --shape or --model is required"));
    }
    Ok(args)
}

/// One engine per invocation, configured from the CLI flags.
fn build_engine(args: &Args) -> Engine {
    Engine::builder()
        .threads(args.threads)
        .k_slices(args.k_slices)
        .method(args.method)
        .bits(args.config)
        .build()
}

fn run_gemm(args: &Args, dims: GemmDims) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = args.config;
    let eng = build_engine(args);

    println!(
        "GEMM {dims} at {cfg}, method {}, k = {}",
        args.method, args.k_slices
    );
    let grid = TileGrid::choose(dims, eng.sim().dist.system.config().n_dpus());
    let tile = grid.tile_dims(dims);
    println!(
        "  tiling: {} x {} DPUs ({} used), per-DPU tile {tile}",
        grid.grid_m,
        grid.grid_n,
        grid.dpus_used()
    );
    if args.method == Method::LoCaLut {
        let plan = eng.plan(tile, cfg)?;
        println!(
            "  plan: {} at p = {}, k = {} (model-predicted {:.4e} s/DPU)",
            plan.placement, plan.p, plan.k_slices, plan.predicted_seconds
        );
    }
    let profile = eng.system_cost(args.method, dims, cfg)?;
    let naive = eng.system_cost(Method::NaivePim, dims, cfg)?;
    println!("\n  per-DPU kernel breakdown:");
    print!("{}", textwrap(&profile.pim.to_string()));
    println!(
        "\n  system total: {:.4e} s (host {:.4e} s + PIM {:.4e} s)",
        profile.total_seconds(),
        profile.host.total_seconds(),
        profile.pim.total_seconds()
    );
    println!(
        "  speedup over Naive PIM: {:.2}x",
        naive.total_seconds() / profile.total_seconds()
    );
    println!(
        "  energy: {:.2} J",
        eng.energy_model()
            .system_energy(eng.sim().dist.system.config(), &profile)
            .total_j()
    );
    if args.threads > 1 {
        run_gemm_parallel(args, &eng, dims)?;
    }
    Ok(())
}

fn run_gemm_parallel(
    args: &Args,
    eng: &Engine,
    dims: GemmDims,
) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = args.config;
    let w = QMatrix::pseudo_random(dims.m, dims.k, cfg.weight_format(), 1);
    let a = QMatrix::pseudo_random(dims.k, dims.n, cfg.activation_format(), 2);
    let mut gemm = GemmConfig::upmem();
    gemm.k_slices = args.k_slices;

    println!("\n  functional execution on the serving engine:");
    let t0 = std::time::Instant::now();
    let serial = gemm.run(args.method, &w, &a)?;
    let serial_wall = t0.elapsed();
    let request = GemmRequest::new(w, a).with_banks(16);
    let t1 = std::time::Instant::now();
    let parallel = eng.submit(&request)?;
    let parallel_wall = t1.elapsed();
    assert_eq!(
        parallel.values, serial.values,
        "engine output diverged from the serial path"
    );
    // Same request again: the expensive canonical/reorder images are now
    // cached, so only the kernel itself runs.
    let t2 = std::time::Instant::now();
    let repeat = eng.submit(&request)?;
    let repeat_wall = t2.elapsed();
    assert_eq!(repeat.values, parallel.values, "cache changed the output");
    println!(
        "    serial:          {:>8.1} ms wall",
        serial_wall.as_secs_f64() * 1e3
    );
    println!(
        "    engine:          {:>8.1} ms wall ({} workers, {} banks) — bit-identical ✓",
        parallel_wall.as_secs_f64() * 1e3,
        eng.threads(),
        parallel.per_bank.len()
    );
    println!(
        "    engine (cached): {:>8.1} ms wall ({} LUT-cache hit{}) — bit-identical ✓",
        repeat_wall.as_secs_f64() * 1e3,
        eng.lut_cache_stats().hits,
        if eng.lut_cache_stats().hits == 1 {
            ""
        } else {
            "s"
        }
    );
    println!(
        "    simulated bank work {:.4e} s, fingerprint {:016x}",
        parallel.stats.total_seconds(),
        parallel.checksum
    );
    Ok(())
}

fn run_model(args: &Args, name: &str) -> Result<(), Box<dyn std::error::Error>> {
    let model = match name {
        "bert" => ModelConfig::bert_base(),
        "opt" => ModelConfig::opt_125m(),
        "vit" => ModelConfig::vit_base(),
        other => return Err(format!("unknown model '{other}' (bert|opt|vit)").into()),
    };
    let eng = build_engine(args);
    let wl = if model.has_decode() {
        Workload::with_decode(model.clone(), args.batch, 8)
    } else {
        Workload::prefill(model.clone(), args.batch)
    };
    println!(
        "{} at {}, batch {}, method {}",
        model.name, args.config, args.batch, args.method
    );
    let init = eng.init_cost(args.method, args.config)?;
    let response = eng.infer(&InferenceRequest::single(wl.clone()))?;
    let report = &response.reports[0];
    let naive = eng.infer(&InferenceRequest::single(wl.clone()).with_method(Method::NaivePim))?;
    println!("  one-time init: {:.4e} s", init.total_seconds());
    println!(
        "  inference: {:.4} s (prefill {:.4} s, decode {:.4} s)",
        report.total_seconds(),
        report.prefill_seconds,
        report.decode_seconds
    );
    println!("  phases:");
    for (phase, seconds) in report.phases() {
        if seconds > 0.0 {
            println!(
                "    {:<18} {:>10.4e} s ({:>5.1}%)",
                phase.label(),
                seconds,
                100.0 * seconds / report.total_seconds()
            );
        }
    }
    println!(
        "  speedup over Naive PIM: {:.2}x",
        naive.total_seconds() / report.total_seconds()
    );
    if args.requests > 1 || args.threads > 1 {
        if args.requests == 1 {
            println!("  note: --threads without --requests serves a single request; use --requests N for a real batch");
        }
        let request = InferenceRequest::serving(vec![wl; args.requests]);
        let t0 = std::time::Instant::now();
        let batch = eng.infer(&request)?;
        let wall = t0.elapsed();
        println!(
            "  batched serving: {} requests on {} workers in {:.1} ms wall",
            batch.requests(),
            eng.threads(),
            wall.as_secs_f64() * 1e3
        );
        println!(
            "    simulated session time {:.4} s ({:.4} s/request, {:.2} J modeled)",
            batch.total_seconds(),
            batch.total_seconds() / batch.requests() as f64,
            batch.energy_pj as f64 * 1e-12
        );
    }
    Ok(())
}

fn textwrap(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return cli::exit(&e),
    };
    let result = if let Some(model) = &args.model {
        run_model(&args, &model.clone())
    } else {
        run_gemm(&args, args.shape.expect("validated"))
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
