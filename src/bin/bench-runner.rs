//! `bench-runner` — the deterministic perf harness front end.
//!
//! Runs the `bench` crate's scenario registry on the bank-parallel
//! runtime, prints a per-scenario metric table (simulated time, energy,
//! DPU instructions, host wall-clock), and emits/compares schema-versioned
//! `BENCH_*.json` reports:
//!
//! ```sh
//! bench-runner --list
//! bench-runner --profile smoke --out BENCH_baseline.json
//! bench-runner --profile smoke --baseline BENCH_baseline.json
//! bench-runner --profile full --filter fig09 --threads 8
//! ```
//!
//! The regression gate compares **simulated femtoseconds** (exact,
//! machine-independent) against the baseline with a relative tolerance
//! (default 10%), and the functional `values_checksum` exactly; host
//! wall-clock is printed for humans but never gated and — unless
//! `--keep-wall` is passed — never written, so `--out` output is
//! byte-reproducible. Exit codes: 0 pass, 1 regression (or missing
//! scenario / checksum drift), 2 usage or I/O error.

use bench::regress::{compare, passes_gate, restrict_to_selected};
use bench::report::BenchReport;
use bench::scenario::{registry, run_scenarios, select, RunProfile, ScenarioCtx};
use bench::Table;
use localut_repro::cli::{self, CliError, Flags};
use std::process::ExitCode;

struct Args {
    profile: RunProfile,
    filter: Option<String>,
    threads: usize,
    out: Option<String>,
    baseline: Option<String>,
    tolerance: f64,
    tag: Option<String>,
    keep_wall: bool,
    list: bool,
}

const USAGE: &str = "usage: bench-runner [--profile smoke|full] [--filter SUBSTR] \
[--threads N] [--out FILE] [--baseline FILE] [--tolerance FRACTION] [--tag NAME] \
[--keep-wall] [--list]";

fn parse_args() -> Result<Args, CliError> {
    let mut args = Args {
        profile: RunProfile::Smoke,
        filter: None,
        threads: 4,
        out: None,
        baseline: None,
        tolerance: 0.10,
        tag: None,
        keep_wall: false,
        list: false,
    };
    let mut flags = Flags::from_env(USAGE);
    while let Some(flag) = flags.next_flag()? {
        match flag.as_str() {
            "--profile" => args.profile = flags.parsed("--profile")?,
            "--filter" => args.filter = Some(flags.value("--filter")?),
            "--threads" => args.threads = flags.positive("--threads")?,
            "--out" => args.out = Some(flags.value("--out")?),
            "--baseline" => args.baseline = Some(flags.value("--baseline")?),
            "--tolerance" => {
                args.tolerance = flags.parsed("--tolerance")?;
                if !(args.tolerance >= 0.0 && args.tolerance.is_finite()) {
                    return Err(flags.usage_error("--tolerance must be a non-negative fraction"));
                }
            }
            "--tag" => args.tag = Some(flags.value("--tag")?),
            "--keep-wall" => args.keep_wall = true,
            "--list" => args.list = true,
            other => return Err(flags.unknown(other)),
        }
    }
    Ok(args)
}

fn list_scenarios(args: &Args) {
    let mut table = Table::new(&["scenario", "smoke", "description"]);
    for s in select(RunProfile::Full, args.filter.as_deref()) {
        table.row(vec![
            s.name.to_owned(),
            if s.smoke { "yes" } else { "no" }.to_owned(),
            s.title.to_owned(),
        ]);
    }
    table.print();
}

fn run(args: &Args) -> Result<ExitCode, String> {
    let scenarios = select(args.profile, args.filter.as_deref());
    if scenarios.is_empty() {
        return Err(format!(
            "no scenario matches profile '{}' and filter {:?}",
            args.profile.name(),
            args.filter
        ));
    }
    let ctx = ScenarioCtx {
        threads: args.threads,
    };
    println!(
        "bench-runner: {} scenario(s), profile {}, {} worker thread(s)",
        scenarios.len(),
        args.profile.name(),
        ctx.threads
    );
    let measured = run_scenarios(&scenarios, &ctx);
    let tag = args
        .tag
        .clone()
        .unwrap_or_else(|| args.profile.name().to_owned());
    let report = BenchReport::new(&tag, args.profile.name(), ctx.threads, &measured);

    let mut table = Table::new(&[
        "scenario",
        "sim (ms)",
        "energy (J)",
        "instructions",
        "wall (ms)",
    ]);
    for (row, m) in report.scenarios.iter().zip(&measured) {
        table.row(vec![
            row.name.clone(),
            format!("{:.4}", row.sim_millis()),
            format!("{:.3e}", row.energy_pj as f64 / 1e12),
            row.instructions.to_string(),
            format!("{:.1}", m.wall_nanos as f64 / 1e6),
        ]);
    }
    table.print();

    if let Some(path) = &args.out {
        std::fs::write(path, report.to_json(args.keep_wall))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "\nwrote {path} ({})",
            if args.keep_wall {
                "with wall-clock fields — not byte-reproducible"
            } else {
                "deterministic: byte-identical on re-run"
            }
        );
    }

    let Some(baseline_path) = &args.baseline else {
        return Ok(ExitCode::SUCCESS);
    };
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
    let baseline = BenchReport::from_json(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    // Baseline scenarios this invocation deliberately did not select
    // (profile/filter subset) are not "missing" — drop them from the
    // comparison. A scenario deleted from the registry still fails.
    let selected: Vec<&str> = scenarios.iter().map(|s| s.name).collect();
    let registered: Vec<&str> = registry().iter().map(|s| s.name).collect();
    let restricted = restrict_to_selected(&baseline, &selected, &registered);
    if restricted.scenarios.len() < baseline.scenarios.len() {
        println!(
            "\nnote: {} baseline scenario(s) outside this run's profile/filter were skipped",
            baseline.scenarios.len() - restricted.scenarios.len()
        );
    }
    let comparisons = compare(&restricted, &report, args.tolerance);

    println!(
        "\nregression check vs {baseline_path} (tolerance ±{:.0}% simulated time):",
        args.tolerance * 100.0
    );
    let mut table = Table::new(&[
        "scenario",
        "baseline (ms)",
        "current (ms)",
        "ratio",
        "verdict",
    ]);
    for c in &comparisons {
        table.row(vec![
            c.name.clone(),
            format!("{:.4}", c.baseline_femtos as f64 / 1e12),
            format!("{:.4}", c.current_femtos as f64 / 1e12),
            if c.ratio.is_finite() {
                format!("{:.3}", c.ratio)
            } else {
                "inf".to_owned()
            },
            c.verdict.to_string(),
        ]);
    }
    table.print();

    if passes_gate(&comparisons) {
        println!("\nperf gate: PASS");
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "\nperf gate: FAIL — see EXPERIMENTS.md \"Recording a baseline\" if this \
             change is intentional"
        );
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return cli::exit(&e),
    };
    if args.list {
        list_scenarios(&args);
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
