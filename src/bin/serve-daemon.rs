//! `serve-daemon` — the TCP serving daemon over the LoCaLUT engine.
//!
//! Binds [`netserve::NetServer`] on a loopback (or any) address, serves
//! wire-framed GEMM/inference requests from remote `loadgen --remote`
//! processes (or any [`netserve::NetClient`]), and blocks until a client
//! sends the `Drain` verb — then it stops accepting, flushes every
//! in-flight ticket, writes its deterministic summary, and exits 0.
//!
//! ```sh
//! serve-daemon --addr 127.0.0.1:0 --port-file PORT.txt \
//!     --log REQUESTS.jsonl --out SERVE.json &
//! loadgen --remote "$(cat PORT.txt)" --clients 4 --requests 8 --drain
//! ```
//!
//! The `--log` file holds one canonical compact-JSON line per *executed*
//! request; replaying it through `engine::serve::replay_serial` rebuilds
//! the `--out` summary bit for bit (CI pins this). Backpressure knobs:
//! `--queue-cap` bounds the submission queue (excess requests get typed
//! retry-after rejections), `--quota` caps admissions per connection,
//! `--max-conns` caps concurrent connections. `--ranks R
//! [--banks-per-rank B]` serves on the ranked machine: requests without a
//! per-request bank override shard across the two-level topology.
//!
//! Exit codes: 0 clean drain, 2 usage or I/O error.

use engine::serve::ServeConfig;
use engine::Engine;
use localut_repro::cli::{self, CliError, Flags};
use netserve::json::Json;
use netserve::server::{NetConfig, NetServer};
use netserve::wire;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    addr: String,
    threads: usize,
    engine_threads: usize,
    max_batch: usize,
    ranks: Option<u32>,
    banks_per_rank: Option<u32>,
    queue_cap: Option<usize>,
    quota: Option<u64>,
    max_conns: usize,
    log: Option<String>,
    out: Option<String>,
    port_file: Option<String>,
    cache_dir: Option<String>,
    cache_budget: Option<u64>,
}

const USAGE: &str = "usage: serve-daemon [--addr HOST:PORT] [--threads N] \
[--engine-threads N] [--max-batch N] [--ranks N [--banks-per-rank N]] \
[--queue-cap N] [--quota N] [--max-conns N] \
[--cache-dir DIR] [--cache-budget BYTES] \
[--log FILE] [--out FILE] [--port-file FILE]";

fn parse_args() -> Result<Args, CliError> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_owned(),
        threads: 4,
        engine_threads: 2,
        max_batch: 8,
        ranks: None,
        banks_per_rank: None,
        queue_cap: None,
        quota: None,
        max_conns: 64,
        log: None,
        out: None,
        port_file: None,
        cache_dir: None,
        cache_budget: None,
    };
    let mut flags = Flags::from_env(USAGE);
    while let Some(flag) = flags.next_flag()? {
        match flag.as_str() {
            "--addr" => args.addr = flags.value("--addr")?,
            "--threads" => args.threads = flags.positive("--threads")?,
            "--engine-threads" => args.engine_threads = flags.positive("--engine-threads")?,
            "--max-batch" => args.max_batch = flags.positive("--max-batch")?,
            "--ranks" => {
                args.ranks = Some(flags.positive("--ranks")?.try_into().unwrap_or(u32::MAX));
            }
            "--banks-per-rank" => {
                args.banks_per_rank = Some(
                    flags
                        .positive("--banks-per-rank")?
                        .try_into()
                        .unwrap_or(u32::MAX),
                );
            }
            "--queue-cap" => args.queue_cap = Some(flags.positive("--queue-cap")?),
            "--quota" => args.quota = Some(flags.parsed("--quota")?),
            "--max-conns" => args.max_conns = flags.positive("--max-conns")?,
            "--log" => args.log = Some(flags.value("--log")?),
            "--out" => args.out = Some(flags.value("--out")?),
            "--port-file" => args.port_file = Some(flags.value("--port-file")?),
            "--cache-dir" => args.cache_dir = Some(flags.value("--cache-dir")?),
            "--cache-budget" => args.cache_budget = Some(flags.positive("--cache-budget")? as u64),
            other => return Err(flags.unknown(other)),
        }
    }
    if args.banks_per_rank.is_some() && args.ranks.is_none() {
        return Err(flags.usage_error("--banks-per-rank requires --ranks N"));
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), String> {
    let mut serve_config = ServeConfig::builder()
        .workers(args.threads)
        .max_batch(args.max_batch);
    if let Some(cap) = args.queue_cap {
        serve_config = serve_config.queue_cap(cap);
    }
    if let Some(quota) = args.quota {
        serve_config = serve_config.quota(quota);
    }
    let serve_config = serve_config.build().map_err(|e| e.to_string())?;

    let net_config = NetConfig {
        max_connections: args.max_conns,
        log_path: args.log.clone().map(Into::into),
        ..NetConfig::default()
    };
    // Requests that arrive without a bank override shard by the daemon's
    // topology — a loadgen driving ranked traffic must be started with
    // the same `--ranks`/`--banks-per-rank` pair.
    let mut builder = Engine::builder().threads(args.engine_threads);
    if let Some(ranks) = args.ranks {
        builder = builder.ranks(ranks, args.banks_per_rank.unwrap_or(64));
    }
    if let Some(budget) = args.cache_budget {
        builder = builder.cache_budget(budget);
    }
    if let Some(dir) = &args.cache_dir {
        builder = builder.cache_dir(dir);
    }
    let engine = Arc::new(builder.build());
    if let Some(error) = engine.cache_restore_error() {
        // A bad cache directory degrades to a cold start, never a refusal
        // to serve — but the operator asked for warmth, so say why not.
        eprintln!("warning: cache restore failed, starting cold: {error}");
    } else if engine.lut_cache_stats().entries > 0 {
        println!(
            "serve-daemon: warm start — restored {} LUT image(s) from {}",
            engine.lut_cache_stats().entries,
            args.cache_dir.as_deref().unwrap_or("?"),
        );
    }
    let server = NetServer::bind(
        engine.clone(),
        &serve_config,
        &net_config,
        args.addr.as_str(),
    )
    .map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    if let Some(path) = &args.port_file {
        std::fs::write(path, addr.to_string()).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    println!(
        "serve-daemon: listening on {addr} ({} worker(s), max batch {}, queue cap {}, quota {}, max {} conn(s))",
        args.threads,
        args.max_batch,
        args.queue_cap.map_or("unbounded".to_owned(), |c| c.to_string()),
        args.quota.map_or("none".to_owned(), |q| q.to_string()),
        args.max_conns,
    );

    // Blocks until a client sends Drain; then every in-flight ticket is
    // flushed and the final deterministic report comes back.
    let report = server.wait();
    let summary = &report.serve.summary;
    println!(
        "serve-daemon: drained — {} request(s) served ({} gemm + {} infer, {} failed), \
         {} connection(s), {} quota-rejected, {} over-capacity, {} protocol error(s)",
        summary.requests,
        summary.gemm_requests,
        summary.infer_requests,
        summary.failed_requests,
        report.connections,
        report.rejected_quota,
        report.rejected_capacity,
        report.protocol_errors,
    );
    let lut = report.serve.lut_cache;
    let memo = report.serve.plan_memo;
    println!(
        "serve-daemon: lut cache {} hit(s), {} miss(es), {} eviction(s), {} failed build(s), \
         {} restored; {} resident entr{} ({} B); plan memo {} hit(s), {} miss(es)",
        lut.hits,
        lut.misses,
        lut.evictions,
        lut.failed_builds,
        lut.restored,
        lut.entries,
        if lut.entries == 1 { "y" } else { "ies" },
        lut.resident_bytes,
        memo.hits,
        memo.misses,
    );

    // Save-on-drain: the next daemon pointed at this directory starts
    // warm and answers its first requests without the ~734 ms cold LUT
    // builds. Persisting is part of the requested drain contract, so a
    // failure here is an error, not a warning.
    if args.cache_dir.is_some() {
        let count = engine.persist_cache().map_err(|e| e.to_string())?;
        println!(
            "serve-daemon: persisted {count} LUT image(s) to {}",
            args.cache_dir.as_deref().unwrap_or("?")
        );
    }

    if let Some(path) = &args.out {
        let doc = Json::object(vec![
            ("schema", Json::Str("serve-daemon-v1".to_owned())),
            ("summary", wire::summary_json(summary)),
        ]);
        std::fs::write(path, doc.to_pretty()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("serve-daemon: wrote {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => return cli::exit(&e),
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
