//! `serve-daemon` — the TCP serving daemon over the LoCaLUT engine.
//!
//! Binds [`netserve::NetServer`] on a loopback (or any) address, serves
//! wire-framed GEMM/inference requests from remote `loadgen --remote`
//! processes (or any [`netserve::NetClient`]), and blocks until a client
//! sends the `Drain` verb — then it stops accepting, flushes every
//! in-flight ticket, writes its deterministic summary, and exits 0.
//!
//! ```sh
//! serve-daemon --addr 127.0.0.1:0 --port-file PORT.txt \
//!     --log REQUESTS.jsonl --out SERVE.json &
//! loadgen --remote "$(cat PORT.txt)" --clients 4 --requests 8 --drain
//! ```
//!
//! The `--log` file holds one canonical compact-JSON line per *executed*
//! request; replaying it through `engine::serve::replay_serial` rebuilds
//! the `--out` summary bit for bit (CI pins this). Backpressure knobs:
//! `--queue-cap` bounds the submission queue (excess requests get typed
//! retry-after rejections), `--quota` caps admissions per connection,
//! `--max-conns` caps concurrent connections. `--ranks R
//! [--banks-per-rank B]` serves on the ranked machine: requests without a
//! per-request bank override shard across the two-level topology.
//!
//! Exit codes: 0 clean drain, 2 usage or I/O error.

use engine::serve::ServeConfig;
use engine::Engine;
use localut_repro::cli::{self, CliError, Flags};
use netserve::json::Json;
use netserve::server::{NetConfig, NetServer};
use netserve::wire;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    addr: String,
    threads: usize,
    engine_threads: usize,
    max_batch: usize,
    ranks: Option<u32>,
    banks_per_rank: Option<u32>,
    queue_cap: Option<usize>,
    quota: Option<u64>,
    max_conns: usize,
    log: Option<String>,
    out: Option<String>,
    port_file: Option<String>,
}

const USAGE: &str = "usage: serve-daemon [--addr HOST:PORT] [--threads N] \
[--engine-threads N] [--max-batch N] [--ranks N [--banks-per-rank N]] \
[--queue-cap N] [--quota N] [--max-conns N] \
[--log FILE] [--out FILE] [--port-file FILE]";

fn parse_args() -> Result<Args, CliError> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_owned(),
        threads: 4,
        engine_threads: 2,
        max_batch: 8,
        ranks: None,
        banks_per_rank: None,
        queue_cap: None,
        quota: None,
        max_conns: 64,
        log: None,
        out: None,
        port_file: None,
    };
    let mut flags = Flags::from_env(USAGE);
    while let Some(flag) = flags.next_flag()? {
        match flag.as_str() {
            "--addr" => args.addr = flags.value("--addr")?,
            "--threads" => args.threads = flags.positive("--threads")?,
            "--engine-threads" => args.engine_threads = flags.positive("--engine-threads")?,
            "--max-batch" => args.max_batch = flags.positive("--max-batch")?,
            "--ranks" => {
                args.ranks = Some(flags.positive("--ranks")?.try_into().unwrap_or(u32::MAX));
            }
            "--banks-per-rank" => {
                args.banks_per_rank = Some(
                    flags
                        .positive("--banks-per-rank")?
                        .try_into()
                        .unwrap_or(u32::MAX),
                );
            }
            "--queue-cap" => args.queue_cap = Some(flags.positive("--queue-cap")?),
            "--quota" => args.quota = Some(flags.parsed("--quota")?),
            "--max-conns" => args.max_conns = flags.positive("--max-conns")?,
            "--log" => args.log = Some(flags.value("--log")?),
            "--out" => args.out = Some(flags.value("--out")?),
            "--port-file" => args.port_file = Some(flags.value("--port-file")?),
            other => return Err(flags.unknown(other)),
        }
    }
    if args.banks_per_rank.is_some() && args.ranks.is_none() {
        return Err(flags.usage_error("--banks-per-rank requires --ranks N"));
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), String> {
    let mut serve_config = ServeConfig::builder()
        .workers(args.threads)
        .max_batch(args.max_batch);
    if let Some(cap) = args.queue_cap {
        serve_config = serve_config.queue_cap(cap);
    }
    if let Some(quota) = args.quota {
        serve_config = serve_config.quota(quota);
    }
    let serve_config = serve_config.build().map_err(|e| e.to_string())?;

    let net_config = NetConfig {
        max_connections: args.max_conns,
        log_path: args.log.clone().map(Into::into),
        ..NetConfig::default()
    };
    // Requests that arrive without a bank override shard by the daemon's
    // topology — a loadgen driving ranked traffic must be started with
    // the same `--ranks`/`--banks-per-rank` pair.
    let builder = Engine::builder().threads(args.engine_threads);
    let engine = Arc::new(match args.ranks {
        Some(ranks) => builder
            .ranks(ranks, args.banks_per_rank.unwrap_or(64))
            .build(),
        None => builder.build(),
    });
    let server = NetServer::bind(engine, &serve_config, &net_config, args.addr.as_str())
        .map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    if let Some(path) = &args.port_file {
        std::fs::write(path, addr.to_string()).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    println!(
        "serve-daemon: listening on {addr} ({} worker(s), max batch {}, queue cap {}, quota {}, max {} conn(s))",
        args.threads,
        args.max_batch,
        args.queue_cap.map_or("unbounded".to_owned(), |c| c.to_string()),
        args.quota.map_or("none".to_owned(), |q| q.to_string()),
        args.max_conns,
    );

    // Blocks until a client sends Drain; then every in-flight ticket is
    // flushed and the final deterministic report comes back.
    let report = server.wait();
    let summary = &report.serve.summary;
    println!(
        "serve-daemon: drained — {} request(s) served ({} gemm + {} infer, {} failed), \
         {} connection(s), {} quota-rejected, {} over-capacity, {} protocol error(s)",
        summary.requests,
        summary.gemm_requests,
        summary.infer_requests,
        summary.failed_requests,
        report.connections,
        report.rejected_quota,
        report.rejected_capacity,
        report.protocol_errors,
    );

    if let Some(path) = &args.out {
        let doc = Json::object(vec![
            ("schema", Json::Str("serve-daemon-v1".to_owned())),
            ("summary", wire::summary_json(summary)),
        ]);
        std::fs::write(path, doc.to_pretty()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("serve-daemon: wrote {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => return cli::exit(&e),
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
