//! `loadgen` — deterministic traffic generator and serving-load driver.
//!
//! Generates a seeded request mix ([`engine::traffic`]) and drives it from
//! many client threads — either **in-process** through the concurrent
//! serving scheduler ([`engine::serve::Server`]) or, with `--remote ADDR`,
//! **over TCP** against a `serve-daemon` process via [`netserve::NetClient`].
//! Both paths print/write a summary whose deterministic core — request
//! counts, values checksum, merged simulated femtoseconds, latency
//! percentiles, energy — is **byte-identical for any `--threads`,
//! `--clients`-scheduling, `--max-batch`, `--mode`, or transport** over the
//! same `(--clients, --requests, --mix, --seed)` workload. CI's smoke job
//! asserts exactly that by diffing an in-process run's JSON against a
//! remote run's.
//!
//! ```sh
//! loadgen --clients 4 --requests 8 --mix mixed --seed 42 --threads 4
//! loadgen --mix decode --decode-tokens 8 --threads 4 --verify-serial
//! loadgen --mix chat --mode open --max-batch 16 --out LOADGEN.json
//! loadgen --remote 127.0.0.1:4810 --out LOADGEN_remote.json --drain
//! loadgen --remote 127.0.0.1:4810 --client-offset 2 --client-count 2
//! ```
//!
//! The session-bearing mixes (`--mix decode`, `--mix chat`) generate
//! decoder sessions served with continuous batching: each session is one
//! prefill step plus up to `--decode-tokens` decode steps (lengths draw
//! uniformly from `1..=decode_tokens`), and the summary grows TTFT and
//! per-decode-step latency percentiles. The legacy mixes ignore
//! `--decode-tokens` entirely — their seeded logs are byte-identical at
//! any value.
//!
//! `--ranks R [--banks-per-rank B]` serves the workload on the ranked
//! machine (the paper's server is `--ranks 32 --banks-per-rank 64`): the
//! seeded logs' small per-request bank overrides are stripped so the
//! topology governs every GEMM's shard plan, and the topology joins the
//! workload identity in the JSON. A `serve-daemon` driven remotely must be
//! started with the same topology flags for summaries to compare.
//!
//! In remote mode each client thread opens its own connection; typed
//! `QueueFull` rejections are retried with the server-suggested delay, so
//! a queue-capped daemon slows the run down instead of failing it.
//! `--client-offset`/`--client-count` split one workload's client ids
//! across processes (the summary then covers only the slice this process
//! drove — the daemon's own `--out`/`--log` stay the whole-workload
//! authority). `--drain` asks the daemon to shut down after this process's
//! traffic completes.
//!
//! Exit codes: 0 success, 1 any request failed, 2 usage or I/O error.

use bench::json::Json;
use engine::serve::{drive_client, replay_serial, ArrivalMode, ServeConfig, ServeRecorder, Server};
use engine::traffic::{client_log, Mix, TrafficConfig, TrafficRequest};
use engine::{Engine, EngineError, Rejection, ServeReport, ServeSummary};
use localut_repro::cli::{self, CliError, Flags};
use netserve::wire::{self, WireRequest, WireResponse};
use netserve::NetClient;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    traffic: TrafficConfig,
    threads: usize,
    engine_threads: usize,
    max_batch: usize,
    mode: ArrivalMode,
    ranks: Option<u32>,
    banks_per_rank: Option<u32>,
    out: Option<String>,
    keep_host: bool,
    verify_serial: bool,
    remote: Option<String>,
    client_offset: usize,
    client_count: Option<usize>,
    drain: bool,
    cache_dir: Option<String>,
    cache_budget: Option<u64>,
}

impl Args {
    /// The client ids this process drives: `offset..offset + count`.
    fn client_range(&self) -> std::ops::Range<usize> {
        let count = self
            .client_count
            .unwrap_or(self.traffic.clients - self.client_offset);
        self.client_offset..self.client_offset + count
    }

    /// Whether this process drives the whole declared workload (the
    /// precondition for byte-comparing its summary against anything).
    fn drives_full_workload(&self) -> bool {
        self.client_range() == (0..self.traffic.clients)
    }

    /// One client's request log under this workload. With `--ranks` the
    /// seeded per-request bank overrides are stripped so the engine's
    /// ranked topology governs every GEMM's shard plan — part of the
    /// workload identity, so it is recorded in the deterministic JSON.
    fn client_requests(&self, client: usize) -> Vec<TrafficRequest> {
        let mut log = client_log(&self.traffic, client);
        if self.ranks.is_some() {
            for request in &mut log {
                if let TrafficRequest::Gemm(gemm) = request {
                    gemm.banks = None;
                }
            }
        }
        log
    }

    /// The full workload log in canonical order (the serial-replay
    /// reference), with the same topology rewrite as the driven logs.
    fn full_requests(&self) -> Vec<TrafficRequest> {
        (0..self.traffic.clients)
            .flat_map(|client| self.client_requests(client))
            .collect()
    }

    /// An engine for this workload: flat by default, the ranked machine
    /// under `--ranks`, with the cache lifecycle knobs applied. Neither
    /// knob moves a simulated number — a warm restore or an eviction
    /// changes host wall and counters only.
    fn build_engine(&self, threads: usize) -> Engine {
        let mut builder = Engine::builder().threads(threads);
        if let Some(ranks) = self.ranks {
            builder = builder.ranks(ranks, self.banks_per_rank.unwrap_or(64));
        }
        if let Some(budget) = self.cache_budget {
            builder = builder.cache_budget(budget);
        }
        if let Some(dir) = &self.cache_dir {
            builder = builder.cache_dir(dir);
        }
        builder.build()
    }
}

const USAGE: &str = "usage: loadgen [--clients N] [--requests N] \
[--mix gemm|infer|mixed|decode|chat] [--decode-tokens N] \
[--seed S] [--threads N] [--engine-threads N] [--max-batch N] [--mode open|closed] \
[--ranks N [--banks-per-rank N]] [--cache-dir DIR] [--cache-budget BYTES] \
[--out FILE] [--keep-host] [--verify-serial] \
[--remote HOST:PORT [--client-offset N] [--client-count N] [--drain]]";

fn parse_args() -> Result<Args, CliError> {
    let mut args = Args {
        traffic: TrafficConfig {
            clients: 4,
            requests_per_client: 8,
            mix: Mix::Mixed,
            seed: 42,
            decode_tokens: 4,
        },
        threads: 4,
        engine_threads: 2,
        max_batch: 8,
        mode: ArrivalMode::Closed,
        ranks: None,
        banks_per_rank: None,
        out: None,
        keep_host: false,
        verify_serial: false,
        remote: None,
        client_offset: 0,
        client_count: None,
        drain: false,
        cache_dir: None,
        cache_budget: None,
    };
    let mut flags = Flags::from_env(USAGE);
    while let Some(flag) = flags.next_flag()? {
        match flag.as_str() {
            "--clients" => args.traffic.clients = flags.positive("--clients")?,
            "--requests" => args.traffic.requests_per_client = flags.positive("--requests")?,
            "--mix" => args.traffic.mix = flags.parsed("--mix")?,
            "--decode-tokens" => {
                args.traffic.decode_tokens = flags
                    .positive("--decode-tokens")?
                    .try_into()
                    .unwrap_or(u32::MAX);
            }
            "--seed" => args.traffic.seed = flags.parsed("--seed")?,
            "--threads" => args.threads = flags.positive("--threads")?,
            "--engine-threads" => args.engine_threads = flags.positive("--engine-threads")?,
            "--max-batch" => args.max_batch = flags.positive("--max-batch")?,
            "--mode" => args.mode = flags.parsed("--mode")?,
            "--ranks" => {
                args.ranks = Some(flags.positive("--ranks")?.try_into().unwrap_or(u32::MAX));
            }
            "--banks-per-rank" => {
                args.banks_per_rank = Some(
                    flags
                        .positive("--banks-per-rank")?
                        .try_into()
                        .unwrap_or(u32::MAX),
                );
            }
            "--out" => args.out = Some(flags.value("--out")?),
            "--keep-host" => args.keep_host = true,
            "--verify-serial" => args.verify_serial = true,
            "--remote" => args.remote = Some(flags.value("--remote")?),
            "--client-offset" => args.client_offset = flags.parsed("--client-offset")?,
            "--client-count" => args.client_count = Some(flags.parsed("--client-count")?),
            "--drain" => args.drain = true,
            "--cache-dir" => args.cache_dir = Some(flags.value("--cache-dir")?),
            "--cache-budget" => args.cache_budget = Some(flags.positive("--cache-budget")? as u64),
            other => return Err(flags.unknown(other)),
        }
    }
    if args.banks_per_rank.is_some() && args.ranks.is_none() {
        return Err(flags.usage_error("--banks-per-rank requires --ranks N"));
    }
    if args.remote.is_none()
        && (args.client_offset != 0 || args.client_count.is_some() || args.drain)
    {
        return Err(
            flags.usage_error("--client-offset/--client-count/--drain require --remote HOST:PORT")
        );
    }
    if args.client_offset >= args.traffic.clients && args.client_count != Some(0) {
        return Err(flags.usage_error("--client-offset must be below --clients"));
    }
    if args.client_range().end > args.traffic.clients {
        return Err(flags.usage_error("--client-offset + --client-count exceeds --clients"));
    }
    if args.client_count == Some(0) && !args.drain {
        return Err(flags.usage_error("--client-count 0 only makes sense with --drain"));
    }
    if args.remote.is_some() && (args.cache_dir.is_some() || args.cache_budget.is_some()) {
        return Err(flags.usage_error(
            "--cache-dir/--cache-budget configure the in-process engine; set them on serve-daemon for remote runs",
        ));
    }
    if args.remote.is_some() && args.keep_host {
        return Err(flags.usage_error(
            "--keep-host reports in-process scheduler observables; drop it with --remote",
        ));
    }
    if args.verify_serial && args.remote.is_some() && !args.drives_full_workload() {
        return Err(flags.usage_error(
            "--verify-serial needs the full workload: drop --client-offset/--client-count",
        ));
    }
    Ok(args)
}

/// The deterministic JSON body: workload identity + summary. Host knobs
/// (threads, arrival mode, batching, transport) are deliberately excluded —
/// they must not change a single byte here.
fn summary_json(args: &Args, summary: &ServeSummary) -> Vec<(&'static str, Json)> {
    let snap = summary.stats.snapshot();
    let mut workload = vec![
        ("clients", Json::UInt(args.traffic.clients as u128)),
        (
            "requests_per_client",
            Json::UInt(args.traffic.requests_per_client as u128),
        ),
        ("mix", Json::Str(args.traffic.mix.name().to_owned())),
        ("seed", Json::UInt(u128::from(args.traffic.seed))),
    ];
    // Only the session-bearing mixes consume the decode budget, so only
    // they record it as part of the workload identity; legacy-mix JSON
    // stays byte-for-byte what it was before sessions existed.
    if matches!(args.traffic.mix, Mix::Decode | Mix::Chat) {
        workload.push((
            "decode_tokens",
            Json::UInt(u128::from(args.traffic.decode_tokens)),
        ));
    }
    // The ranked topology rewrites the workload (bank overrides are
    // stripped), so it is part of the deterministic identity; flat runs
    // keep the pre-scale-out block byte-for-byte.
    if let Some(ranks) = args.ranks {
        workload.push(("ranks", Json::UInt(u128::from(ranks))));
        workload.push((
            "banks_per_rank",
            Json::UInt(u128::from(args.banks_per_rank.unwrap_or(64))),
        ));
    }
    vec![
        ("schema", Json::Str("loadgen-v1".to_owned())),
        ("workload", Json::object(workload)),
        (
            "summary",
            Json::object(vec![
                ("requests", Json::UInt(u128::from(summary.requests))),
                (
                    "gemm_requests",
                    Json::UInt(u128::from(summary.gemm_requests)),
                ),
                (
                    "infer_requests",
                    Json::UInt(u128::from(summary.infer_requests)),
                ),
                (
                    "session_requests",
                    Json::UInt(u128::from(summary.session_requests)),
                ),
                ("decode_steps", Json::UInt(u128::from(summary.decode_steps))),
                (
                    "failed_requests",
                    Json::UInt(u128::from(summary.failed_requests)),
                ),
                ("sim_femtos", Json::UInt(snap.total_femtos)),
                ("bank_profiles", Json::UInt(u128::from(snap.banks))),
                ("instructions", Json::UInt(snap.instructions)),
                ("energy_pj", Json::UInt(summary.energy_pj)),
                ("values_checksum", Json::UInt(u128::from(summary.checksum))),
                (
                    "latency_femtos",
                    Json::object(vec![
                        ("p50", Json::UInt(summary.latency.p50)),
                        ("p95", Json::UInt(summary.latency.p95)),
                        ("p99", Json::UInt(summary.latency.p99)),
                        ("max", Json::UInt(summary.latency.max)),
                        ("total", Json::UInt(summary.latency.total)),
                    ]),
                ),
                ("ttft_femtos", digest_json(&summary.ttft)),
                ("decode_step_femtos", digest_json(&summary.decode)),
            ]),
        ),
    ]
}

/// One latency digest as a JSON object (integer femtoseconds; all zeros
/// when the run produced no samples of that kind).
fn digest_json(digest: &engine::LatencyDigest) -> Json {
    Json::object(vec![
        ("p50", Json::UInt(digest.p50)),
        ("p95", Json::UInt(digest.p95)),
        ("p99", Json::UInt(digest.p99)),
        ("max", Json::UInt(digest.max)),
        ("total", Json::UInt(digest.total)),
    ])
}

/// Host-dependent observables, attached only under `--keep-host` (they
/// vary with scheduling, so including them forfeits byte-reproducibility).
fn host_json(args: &Args, report: &ServeReport, wall_nanos: u128) -> Json {
    Json::object(vec![
        ("threads", Json::UInt(args.threads as u128)),
        ("engine_threads", Json::UInt(args.engine_threads as u128)),
        ("max_batch", Json::UInt(args.max_batch as u128)),
        (
            "mode",
            Json::Str(
                match args.mode {
                    ArrivalMode::Open => "open",
                    ArrivalMode::Closed => "closed",
                }
                .to_owned(),
            ),
        ),
        ("wall_nanos", Json::UInt(wall_nanos)),
        ("dispatches", Json::UInt(u128::from(report.dispatches))),
        (
            "coalesced_requests",
            Json::UInt(u128::from(report.coalesced_requests)),
        ),
        (
            "largest_batch",
            Json::UInt(u128::from(report.largest_batch)),
        ),
        (
            "lut_cache",
            Json::object(vec![
                ("hits", Json::UInt(u128::from(report.lut_cache.hits))),
                ("misses", Json::UInt(u128::from(report.lut_cache.misses))),
                (
                    "evictions",
                    Json::UInt(u128::from(report.lut_cache.evictions)),
                ),
                (
                    "resident_bytes",
                    Json::UInt(u128::from(report.lut_cache.resident_bytes)),
                ),
                (
                    "failed_builds",
                    Json::UInt(u128::from(report.lut_cache.failed_builds)),
                ),
                (
                    "restored",
                    Json::UInt(u128::from(report.lut_cache.restored)),
                ),
                ("entries", Json::UInt(report.lut_cache.entries as u128)),
            ]),
        ),
        (
            "plan_memo",
            Json::object(vec![
                ("hits", Json::UInt(u128::from(report.plan_memo.hits))),
                ("misses", Json::UInt(u128::from(report.plan_memo.misses))),
                ("entries", Json::UInt(report.plan_memo.entries as u128)),
            ]),
        ),
    ])
}

/// The cache lifecycle lines both paths print below the table: local runs
/// from the engine's own counters, remote drains from the wire snapshot.
/// Deliberately outside the table's `extras` so nothing here ever drifts
/// toward the deterministic JSON.
fn print_cache_lines(lut: &engine::CacheStats, memo: &engine::MemoStats) {
    println!(
        "lut cache: {} hit(s), {} miss(es), {} eviction(s), {} failed build(s), {} restored; {} resident entr{} ({} B)",
        lut.hits,
        lut.misses,
        lut.evictions,
        lut.failed_builds,
        lut.restored,
        lut.entries,
        if lut.entries == 1 { "y" } else { "ies" },
        lut.resident_bytes
    );
    println!(
        "plan memo: {} hit(s), {} miss(es), {} entries",
        memo.hits, memo.misses, memo.entries
    );
}

/// The shared result table; `extras` appends host-only rows the JSON
/// deliberately omits.
fn print_summary_table(summary: &ServeSummary, wall_nanos: u128, extras: &[(String, String)]) {
    let mut table = bench::Table::new(&["metric", "value"]);
    let snap = summary.stats.snapshot();
    table.row(vec![
        "requests (gemm + infer + session)".into(),
        format!(
            "{} ({} + {} + {})",
            summary.requests,
            summary.gemm_requests,
            summary.infer_requests,
            summary.session_requests
        ),
    ]);
    table.row(vec!["failed".into(), summary.failed_requests.to_string()]);
    table.row(vec![
        "simulated work (ms)".into(),
        format!("{:.4}", snap.total_femtos as f64 / 1e12),
    ]);
    table.row(vec![
        "latency p50/p95/p99 (us, simulated)".into(),
        format!(
            "{:.2} / {:.2} / {:.2}",
            summary.latency.p50 as f64 / 1e9,
            summary.latency.p95 as f64 / 1e9,
            summary.latency.p99 as f64 / 1e9
        ),
    ]);
    table.row(vec![
        "throughput (req/simulated s)".into(),
        format!("{:.1}", summary.throughput_rps()),
    ]);
    if summary.session_requests > 0 {
        table.row(vec![
            "TTFT p50/p95/p99 (us, simulated)".into(),
            format!(
                "{:.2} / {:.2} / {:.2}",
                summary.ttft.p50 as f64 / 1e9,
                summary.ttft.p95 as f64 / 1e9,
                summary.ttft.p99 as f64 / 1e9
            ),
        ]);
        table.row(vec![
            format!(
                "decode step p50/p95/p99 (us, {} steps)",
                summary.decode_steps
            ),
            format!(
                "{:.2} / {:.2} / {:.2}",
                summary.decode.p50 as f64 / 1e9,
                summary.decode.p95 as f64 / 1e9,
                summary.decode.p99 as f64 / 1e9
            ),
        ]);
    }
    table.row(vec![
        "energy (J)".into(),
        format!("{:.3e}", summary.energy_pj as f64 / 1e12),
    ]);
    table.row(vec![
        "values checksum".into(),
        format!("{:016x}", summary.checksum),
    ]);
    table.row(vec![
        "host wall (ms) [not in JSON]".into(),
        format!("{:.1}", wall_nanos as f64 / 1e6),
    ]);
    for (metric, value) in extras {
        table.row(vec![metric.clone(), value.clone()]);
    }
    table.print();
}

fn write_out(args: &Args, summary: &ServeSummary, host: Option<Json>) -> Result<(), String> {
    let Some(path) = &args.out else {
        return Ok(());
    };
    let mut pairs = summary_json(args, summary);
    let reproducible = host.is_none() && args.drives_full_workload();
    if let Some(host) = host {
        pairs.push(("host", host));
    }
    let text = Json::object(pairs).to_pretty();
    std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!(
        "wrote {path} ({})",
        if reproducible {
            "deterministic: byte-identical at any thread count or transport"
        } else {
            "covers only this process's slice / host fields — not byte-reproducible"
        }
    );
    Ok(())
}

fn verify_serial_replay(args: &Args, summary: &ServeSummary) -> Result<(), String> {
    // Replays the identical log one request at a time on a fresh engine
    // (same topology as the serving engine) and cross-checks the
    // concurrent summary bit for bit.
    let reference = args.build_engine(1);
    let serial = replay_serial(&reference, &args.full_requests());
    if serial == *summary {
        println!("serial replay: MATCH (summary is interleaving-invariant)");
        Ok(())
    } else {
        Err(format!(
            "serial replay diverged from the concurrent run\nserial:     {serial:?}\nconcurrent: {summary:?}"
        ))
    }
}

fn exit_by_failures(summary: &ServeSummary) -> ExitCode {
    if summary.failed_requests == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run(args: &Args) -> Result<ExitCode, String> {
    let engine = Arc::new(args.build_engine(args.engine_threads));
    if let Some(error) = engine.cache_restore_error() {
        // A bad cache directory degrades to a cold start, never a refusal
        // to serve — but the operator asked for warmth, so say why not.
        eprintln!("warning: cache restore failed, starting cold: {error}");
    } else if engine.lut_cache_stats().entries > 0 {
        println!(
            "warm start: restored {} LUT image(s) from {}",
            engine.lut_cache_stats().entries,
            args.cache_dir.as_deref().unwrap_or("?"),
        );
    }
    let server = Server::start(
        engine.clone(),
        &ServeConfig::builder()
            .workers(args.threads)
            .max_batch(args.max_batch)
            .build()
            .map_err(|e| e.to_string())?,
    );
    println!(
        "loadgen: {} client(s) x {} request(s), mix {}, seed {}, {} worker(s), {:?} arrivals",
        args.traffic.clients,
        args.traffic.requests_per_client,
        args.traffic.mix.name(),
        args.traffic.seed,
        args.threads,
        args.mode,
    );

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..args.traffic.clients {
            let server = &server;
            let log = args.client_requests(client);
            let mode = args.mode;
            scope.spawn(move || drive_client(server, log, mode));
        }
    });
    let wall_nanos = t0.elapsed().as_nanos();
    let report = server.join();
    let summary = &report.summary;

    print_summary_table(
        summary,
        wall_nanos,
        &[(
            "dispatches / coalesced [not in JSON]".into(),
            format!("{} / {}", report.dispatches, report.coalesced_requests),
        )],
    );
    print_cache_lines(&report.lut_cache, &report.plan_memo);

    if args.cache_dir.is_some() {
        let count = engine.persist_cache().map_err(|e| e.to_string())?;
        println!(
            "persisted {count} LUT image(s) to {}",
            args.cache_dir.as_deref().unwrap_or("?")
        );
    }
    if args.verify_serial {
        verify_serial_replay(args, summary)?;
    }
    let host = args.keep_host.then(|| host_json(args, &report, wall_nanos));
    write_out(args, summary, host)?;
    Ok(exit_by_failures(summary))
}

/// One remote request, retried through typed `QueueFull` backpressure with
/// the server-suggested delay. Any other rejection is a hard error: the
/// generator runs without quotas, so `QuotaExhausted`/`Draining` mean the
/// operator pointed it at a daemon configured for something else.
fn call_through_backpressure(
    client: &mut NetClient,
    request: &WireRequest,
) -> Result<WireResponse, String> {
    loop {
        match client.call(request).map_err(|e| e.to_string())? {
            WireResponse::Rejected(Rejection::QueueFull { retry_after_ms, .. }) => {
                std::thread::sleep(Duration::from_millis(retry_after_ms));
            }
            WireResponse::Rejected(rejection) => {
                return Err(EngineError::Rejected(rejection).to_string());
            }
            response => return Ok(response),
        }
    }
}

/// Drives one client's log over its own connection; returns the responses
/// (order irrelevant — the summary fold is order-invariant).
fn drive_remote_client(
    addr: &str,
    log: &[TrafficRequest],
    mode: ArrivalMode,
) -> Result<Vec<WireResponse>, String> {
    let mut client = NetClient::connect(addr).map_err(|e| e.to_string())?;
    let requests: Vec<WireRequest> = log
        .iter()
        .map(|r| match r {
            TrafficRequest::Gemm(g) => WireRequest::Gemm(g.clone()),
            TrafficRequest::Infer(i) => WireRequest::Infer(i.clone()),
            TrafficRequest::Session(s) => WireRequest::Session(s.clone()),
        })
        .collect();
    let mut responses = Vec::with_capacity(requests.len());
    match mode {
        // Closed loop: one request in flight per client.
        ArrivalMode::Closed => {
            for request in &requests {
                responses.push(call_through_backpressure(&mut client, request)?);
            }
        }
        // Open loop: pipeline every frame, then collect in order; anything
        // the bounded queue rejected is re-driven closed-loop.
        ArrivalMode::Open => {
            for request in &requests {
                client.send(request).map_err(|e| e.to_string())?;
            }
            let mut retries = Vec::new();
            for (index, _) in requests.iter().enumerate() {
                match client.recv().map_err(|e| e.to_string())? {
                    WireResponse::Rejected(Rejection::QueueFull { .. }) => retries.push(index),
                    WireResponse::Rejected(rejection) => {
                        return Err(EngineError::Rejected(rejection).to_string());
                    }
                    response => responses.push(response),
                }
            }
            for index in retries {
                responses.push(call_through_backpressure(&mut client, &requests[index])?);
            }
        }
    }
    Ok(responses)
}

fn run_remote(args: &Args, addr: &str) -> Result<ExitCode, String> {
    let range = args.client_range();
    println!(
        "loadgen: remote {addr}, client(s) {}..{} of {} x {} request(s), mix {}, seed {}, {:?} arrivals",
        range.start,
        range.end,
        args.traffic.clients,
        args.traffic.requests_per_client,
        args.traffic.mix.name(),
        args.traffic.seed,
        args.mode,
    );

    let t0 = Instant::now();
    let results: Vec<Result<Vec<WireResponse>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = range
            .clone()
            .map(|client| {
                let log = args.client_requests(client);
                let mode = args.mode;
                scope.spawn(move || drive_remote_client(addr, &log, mode))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("remote client thread panicked"))
            .collect()
    });
    let wall_nanos = t0.elapsed().as_nanos();

    // Rebuild the summary client-side from the wire responses — the same
    // fold the server runs, so a full run's summary (and JSON) is
    // byte-identical to the in-process path's.
    let mut recorder = ServeRecorder::new();
    for result in results {
        for response in result? {
            wire::record_response(&mut recorder, &response);
        }
    }
    let summary = recorder.summary();

    if !range.is_empty() {
        print_summary_table(&summary, wall_nanos, &[]);
    }
    if args.verify_serial {
        verify_serial_replay(args, &summary)?;
    }
    write_out(args, &summary, None)?;

    if args.drain {
        let mut client = NetClient::connect(addr).map_err(|e| e.to_string())?;
        let (server_summary, server_cache) = client.drain().map_err(|e| e.to_string())?;
        println!(
            "drained {addr}: server served {} request(s) total",
            server_summary.requests
        );
        if let Some(cache) = server_cache {
            print_cache_lines(&cache.lut, &cache.memo);
        }
    }
    Ok(exit_by_failures(&summary))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => return cli::exit(&e),
    };
    let outcome = match &args.remote {
        Some(addr) => run_remote(&args, addr),
        None => run(&args),
    };
    match outcome {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
