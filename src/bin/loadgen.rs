//! `loadgen` — deterministic traffic generator and serving-load driver.
//!
//! Generates a seeded request mix ([`engine::traffic`]), drives it from
//! many client threads through the concurrent serving scheduler
//! ([`engine::serve::Server`]), and prints/writes a summary whose
//! deterministic core — request counts, values checksum, merged simulated
//! femtoseconds, latency percentiles, energy — is **byte-identical for
//! any `--threads`, `--clients`-scheduling, `--max-batch`, or `--mode`**
//! over the same `(--clients, --requests, --mix, --seed)` workload. CI's
//! smoke job asserts exactly that by diffing two runs' JSON.
//!
//! ```sh
//! loadgen --clients 4 --requests 8 --mix mixed --seed 42 --threads 4
//! loadgen --mode open --max-batch 16 --out LOADGEN.json
//! loadgen --keep-host --out LOADGEN_debug.json   # + wall clock & batching
//! ```
//!
//! Exit codes: 0 success, 1 any request failed, 2 usage or I/O error.

use bench::json::Json;
use engine::serve::{drive_client, replay_serial, ArrivalMode, ServeConfig, Server};
use engine::traffic::{client_log, full_log, Mix, TrafficConfig};
use engine::{Engine, ServeReport, ServeSummary};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    traffic: TrafficConfig,
    threads: usize,
    engine_threads: usize,
    max_batch: usize,
    mode: ArrivalMode,
    out: Option<String>,
    keep_host: bool,
    verify_serial: bool,
}

const USAGE: &str = "usage: loadgen [--clients N] [--requests N] [--mix gemm|infer|mixed] \
[--seed S] [--threads N] [--engine-threads N] [--max-batch N] [--mode open|closed] \
[--out FILE] [--keep-host] [--verify-serial]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        traffic: TrafficConfig {
            clients: 4,
            requests_per_client: 8,
            mix: Mix::Mixed,
            seed: 42,
        },
        threads: 4,
        engine_threads: 2,
        max_batch: 8,
        mode: ArrivalMode::Closed,
        out: None,
        keep_host: false,
        verify_serial: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        let positive = |v: String, what: &str| -> Result<usize, String> {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!("{what} must be a positive integer")),
            }
        };
        match flag.as_str() {
            "--clients" => args.traffic.clients = positive(value()?, "--clients")?,
            "--requests" => args.traffic.requests_per_client = positive(value()?, "--requests")?,
            "--mix" => args.traffic.mix = value()?.parse()?,
            "--seed" => args.traffic.seed = value()?.parse().map_err(|_| "bad --seed")?,
            "--threads" => args.threads = positive(value()?, "--threads")?,
            "--engine-threads" => args.engine_threads = positive(value()?, "--engine-threads")?,
            "--max-batch" => args.max_batch = positive(value()?, "--max-batch")?,
            "--mode" => args.mode = value()?.parse()?,
            "--out" => args.out = Some(value()?),
            "--keep-host" => args.keep_host = true,
            "--verify-serial" => args.verify_serial = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    Ok(args)
}

/// The deterministic JSON body: workload identity + summary. Host knobs
/// (threads, arrival mode, batching) are deliberately excluded — they must
/// not change a single byte here.
fn summary_json(args: &Args, summary: &ServeSummary) -> Vec<(&'static str, Json)> {
    let snap = summary.stats.snapshot();
    vec![
        ("schema", Json::Str("loadgen-v1".to_owned())),
        (
            "workload",
            Json::object(vec![
                ("clients", Json::UInt(args.traffic.clients as u128)),
                (
                    "requests_per_client",
                    Json::UInt(args.traffic.requests_per_client as u128),
                ),
                ("mix", Json::Str(args.traffic.mix.name().to_owned())),
                ("seed", Json::UInt(u128::from(args.traffic.seed))),
            ]),
        ),
        (
            "summary",
            Json::object(vec![
                ("requests", Json::UInt(u128::from(summary.requests))),
                (
                    "gemm_requests",
                    Json::UInt(u128::from(summary.gemm_requests)),
                ),
                (
                    "infer_requests",
                    Json::UInt(u128::from(summary.infer_requests)),
                ),
                (
                    "failed_requests",
                    Json::UInt(u128::from(summary.failed_requests)),
                ),
                ("sim_femtos", Json::UInt(snap.total_femtos)),
                ("bank_profiles", Json::UInt(u128::from(snap.banks))),
                ("instructions", Json::UInt(snap.instructions)),
                ("energy_pj", Json::UInt(summary.energy_pj)),
                ("values_checksum", Json::UInt(u128::from(summary.checksum))),
                (
                    "latency_femtos",
                    Json::object(vec![
                        ("p50", Json::UInt(summary.latency.p50)),
                        ("p95", Json::UInt(summary.latency.p95)),
                        ("p99", Json::UInt(summary.latency.p99)),
                        ("max", Json::UInt(summary.latency.max)),
                        ("total", Json::UInt(summary.latency.total)),
                    ]),
                ),
            ]),
        ),
    ]
}

/// Host-dependent observables, attached only under `--keep-host` (they
/// vary with scheduling, so including them forfeits byte-reproducibility).
fn host_json(args: &Args, report: &ServeReport, wall_nanos: u128) -> Json {
    Json::object(vec![
        ("threads", Json::UInt(args.threads as u128)),
        ("engine_threads", Json::UInt(args.engine_threads as u128)),
        ("max_batch", Json::UInt(args.max_batch as u128)),
        (
            "mode",
            Json::Str(
                match args.mode {
                    ArrivalMode::Open => "open",
                    ArrivalMode::Closed => "closed",
                }
                .to_owned(),
            ),
        ),
        ("wall_nanos", Json::UInt(wall_nanos)),
        ("dispatches", Json::UInt(u128::from(report.dispatches))),
        (
            "coalesced_requests",
            Json::UInt(u128::from(report.coalesced_requests)),
        ),
        (
            "largest_batch",
            Json::UInt(u128::from(report.largest_batch)),
        ),
    ])
}

fn run(args: &Args) -> Result<ExitCode, String> {
    let engine = Arc::new(Engine::builder().threads(args.engine_threads).build());
    let server = Server::start(
        engine.clone(),
        &ServeConfig {
            workers: args.threads,
            max_batch: args.max_batch,
        },
    );
    println!(
        "loadgen: {} client(s) x {} request(s), mix {}, seed {}, {} worker(s), {:?} arrivals",
        args.traffic.clients,
        args.traffic.requests_per_client,
        args.traffic.mix.name(),
        args.traffic.seed,
        args.threads,
        args.mode,
    );

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..args.traffic.clients {
            let server = &server;
            let log = client_log(&args.traffic, client);
            let mode = args.mode;
            scope.spawn(move || drive_client(server, log, mode));
        }
    });
    let wall_nanos = t0.elapsed().as_nanos();
    let report = server.join();
    let summary = &report.summary;

    let mut table = bench::Table::new(&["metric", "value"]);
    let snap = summary.stats.snapshot();
    table.row(vec![
        "requests (gemm + infer)".into(),
        format!(
            "{} ({} + {})",
            summary.requests, summary.gemm_requests, summary.infer_requests
        ),
    ]);
    table.row(vec!["failed".into(), summary.failed_requests.to_string()]);
    table.row(vec![
        "simulated work (ms)".into(),
        format!("{:.4}", snap.total_femtos as f64 / 1e12),
    ]);
    table.row(vec![
        "latency p50/p95/p99 (us, simulated)".into(),
        format!(
            "{:.2} / {:.2} / {:.2}",
            summary.latency.p50 as f64 / 1e9,
            summary.latency.p95 as f64 / 1e9,
            summary.latency.p99 as f64 / 1e9
        ),
    ]);
    table.row(vec![
        "throughput (req/simulated s)".into(),
        format!("{:.1}", summary.throughput_rps()),
    ]);
    table.row(vec![
        "energy (J)".into(),
        format!("{:.3e}", summary.energy_pj as f64 / 1e12),
    ]);
    table.row(vec![
        "values checksum".into(),
        format!("{:016x}", summary.checksum),
    ]);
    table.row(vec![
        "host wall (ms) [not in JSON]".into(),
        format!("{:.1}", wall_nanos as f64 / 1e6),
    ]);
    table.row(vec![
        "dispatches / coalesced [not in JSON]".into(),
        format!("{} / {}", report.dispatches, report.coalesced_requests),
    ]);
    table.print();
    println!(
        "lut cache: {} hit(s), {} miss(es)",
        engine.lut_cache_stats().hits,
        engine.lut_cache_stats().misses
    );

    if args.verify_serial {
        // Replays the identical log one request at a time on a fresh
        // engine and cross-checks the concurrent summary bit for bit.
        let reference = Engine::builder().threads(1).build();
        let serial = replay_serial(&reference, &full_log(&args.traffic));
        if serial == *summary {
            println!("serial replay: MATCH (summary is interleaving-invariant)");
        } else {
            return Err(format!(
                "serial replay diverged from the concurrent run\nserial:     {serial:?}\nconcurrent: {summary:?}"
            ));
        }
    }

    if let Some(path) = &args.out {
        let mut pairs = summary_json(args, summary);
        if args.keep_host {
            pairs.push(("host", host_json(args, &report, wall_nanos)));
        }
        let text = Json::object(pairs).to_pretty();
        std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "wrote {path} ({})",
            if args.keep_host {
                "with host fields — not byte-reproducible"
            } else {
                "deterministic: byte-identical at any thread count"
            }
        );
    }

    Ok(if summary.failed_requests == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
