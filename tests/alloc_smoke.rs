//! Allocation smoke test for the blocked kernel hot paths.
//!
//! The pre-blocking inner loops re-allocated three short vectors per
//! activation group — `⌈K/p⌉ · N` heap round-trips per GEMM, dominating
//! small-tile decode shards. The blocked loops hoist all scratch
//! ([`localut::codes::GroupScratch`], the packed code tables, the panel's
//! pair table) to per-call allocations, so the *number* of allocations a
//! kernel invocation performs is a small constant independent of how many
//! groups the operands decompose into. This test pins that with a counting
//! global allocator: scaling the group count ~24× must not change the
//! allocation count beyond a small constant slack.
//!
//! Kept as its own integration-test binary so no concurrent test thread
//! pollutes the counter.

use localut::codes::ActivationPanel;
use localut::kernels::{SharedLuts, StreamingKernel};
use pim_sim::DpuConfig;
use quant::{NumericFormat, QMatrix};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts allocation calls (reallocs route
/// through the default `GlobalAlloc::realloc`, which calls `alloc` and is
/// therefore counted too).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn kernel_allocations_do_not_scale_with_group_count() {
    let wf = NumericFormat::Bipolar;
    let af = NumericFormat::Int(3);
    let p = 4;
    let kernel = StreamingKernel::new(DpuConfig::upmem(), wf, af, p, 2).expect("fits budgets");
    let luts = SharedLuts::build(wf, af, p).expect("small LUT builds");

    // Small: ⌈8/4⌉ · 4 = 8 groups. Large: ⌈24/4⌉ · 32 = 192 groups (24×).
    let small = (
        QMatrix::pseudo_random(6, 8, wf, 11),
        QMatrix::pseudo_random(8, 4, af, 12),
    );
    let large = (
        QMatrix::pseudo_random(48, 24, wf, 13),
        QMatrix::pseudo_random(24, 32, af, 14),
    );

    // Warm once so lazily initialized state (thread locals, table caches)
    // doesn't bill its setup to the first measured run.
    kernel
        .run_with_luts(&small.0, &small.1, &luts)
        .expect("small GEMM runs");

    let count_small = allocs_during(|| {
        kernel
            .run_with_luts(&small.0, &small.1, &luts)
            .expect("small GEMM runs");
    });
    let count_large = allocs_during(|| {
        kernel
            .run_with_luts(&large.0, &large.1, &luts)
            .expect("large GEMM runs");
    });

    // Per-group churn would add ≥ one allocation per extra group (184 here);
    // the blocked path holds a flat, shape-independent budget.
    assert!(
        count_large <= count_small + 4,
        "allocation count scaled with group count: {count_small} small vs {count_large} large"
    );
    // And the budget itself stays small in absolute terms: operand packing,
    // the panel, the output buffer, scratch, and the profile ledger.
    assert!(
        count_small <= 32,
        "blocked kernel made {count_small} allocations on a tiny GEMM"
    );

    // The shard path — panel resolved once, consumed by `run_with_panel` —
    // must hold the same flat budget per bank invocation.
    let pad = 0u16;
    let panel = ActivationPanel::resolve(&large.1, p as usize, pad, luts.canonical())
        .expect("panel resolves");
    let count_panel_run = allocs_during(|| {
        kernel
            .run_with_panel(&large.0, &large.1, &luts, &panel)
            .expect("panel GEMM runs");
    });
    assert!(
        count_panel_run <= count_large,
        "run_with_panel ({count_panel_run} allocations) must not exceed the \
         self-resolving path ({count_large})"
    );
}
