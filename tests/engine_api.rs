//! Integration suite for the unified `engine` session API.
//!
//! Pins the three guarantees the serving layer makes on top of the
//! layers below it:
//!
//! 1. **Cache transparency** — a request served from the LUT cache is
//!    bitwise identical to the same request served cold.
//! 2. **Legacy parity** — engine responses are bit-exact against the
//!    hand-wired `GemmConfig::run` / `ParallelExecutor` /
//!    `InferenceSim` paths every consumer used before the engine.
//! 3. **Worker-count invariance** — a 1-thread engine and an N-thread
//!    engine return identical responses for every request kind.

use localut_repro::dnn::{InferenceSim, ModelConfig, Workload};
use localut_repro::engine::{
    BatchGemmRequest, CacheOutcome, Engine, EngineError, GemmRequest, InferenceRequest, PlanPin,
};
use localut_repro::localut::kernels::{RcKernel, StreamingKernel};
use localut_repro::localut::plan::Placement;
use localut_repro::localut::{GemmConfig, GemmDims, Method};
use localut_repro::pim_sim::EnergyModel;
use localut_repro::quant::{BitConfig, NumericFormat, QMatrix};
use localut_repro::runtime::{values_checksum, ParallelExecutor, ShardPlan};
use localut_repro::Session;

fn operands(m: usize, k: usize, n: usize, seed: u64) -> (QMatrix, QMatrix) {
    (
        QMatrix::pseudo_random(m, k, NumericFormat::Int(2), seed),
        QMatrix::pseudo_random(k, n, NumericFormat::Int(3), seed.wrapping_add(1)),
    )
}

/// Acceptance pin: a repeated request served from the LUT cache returns
/// bit-identical values **and** statistics to the uncached run.
#[test]
fn cache_hit_is_bitwise_identical_to_cache_miss() {
    let engine = Engine::builder().threads(4).banks(8).build();
    let (w, a) = operands(24, 36, 10, 40);
    let request = GemmRequest::new(w, a);
    let cold = engine.submit(&request).unwrap();
    assert_eq!(cold.lut_cache, Some(CacheOutcome::Miss));
    for _ in 0..2 {
        let warm = engine.submit(&request).unwrap();
        assert_eq!(warm.lut_cache, Some(CacheOutcome::Hit));
        assert_eq!(warm.values, cold.values);
        assert_eq!(warm.stats, cold.stats);
        assert_eq!(warm.profile, cold.profile);
        assert_eq!(warm.per_bank, cold.per_bank);
        assert_eq!(warm.energy_pj, cold.energy_pj);
        assert_eq!(warm.checksum, cold.checksum);
    }
    let stats = engine.lut_cache_stats();
    assert_eq!((stats.misses, stats.hits, stats.entries), (1, 2, 1));
}

/// Engine responses are bit-exact against the legacy hand-wired path:
/// `GemmConfig::run` for values, `ParallelExecutor::execute_plan` for the
/// sharded profile/stats/checksum, for every method.
#[test]
fn engine_matches_legacy_hand_wired_path_for_all_methods() {
    let engine = Engine::builder().threads(3).banks(4).build();
    let (w, a) = operands(12, 18, 8, 7);
    let dims = GemmDims::of(&w, &a).unwrap();
    let cfg = GemmConfig::upmem();
    let plan = ShardPlan::for_banks(dims, 4);
    let pool = ParallelExecutor::with_config(3, cfg.clone());
    for method in Method::ALL {
        let serial = cfg.run(method, &w, &a).unwrap();
        let legacy = pool.execute_plan(&plan, method, &w, &a).unwrap();
        let response = engine
            .submit(&GemmRequest::new(w.clone(), a.clone()).with_method(method))
            .unwrap();
        assert_eq!(response.values, serial.values, "{method} vs serial");
        assert_eq!(response.values, legacy.values, "{method} values");
        assert_eq!(response.stats, legacy.stats, "{method} stats");
        assert_eq!(response.profile, legacy.profile, "{method} profile");
        assert_eq!(response.per_bank, legacy.per_bank, "{method} per-bank");
        assert_eq!(response.checksum, legacy.checksum(), "{method} checksum");
        assert_eq!(
            response.energy_pj,
            localut_repro::engine::picojoules(legacy.energy(&EnergyModel::upmem()).total_j()),
            "{method} energy"
        );
        assert_eq!(response.checksum, values_checksum(&response.values));
        assert_eq!(response.method, method);
    }
}

/// 1-thread and N-thread engines agree bitwise on every request kind.
#[test]
fn thread_count_does_not_change_any_response() {
    let (w, a) = operands(16, 24, 9, 21);
    let gemm_request = GemmRequest::new(w.clone(), a.clone());
    let batch_request = BatchGemmRequest::new(vec![
        GemmRequest::new(w.clone(), a.clone()),
        GemmRequest::new(w, a).with_method(Method::OpLcRc),
    ]);
    let infer_request = InferenceRequest::serving(vec![
        Workload::prefill(ModelConfig::bert_base(), 4),
        Workload::with_decode(ModelConfig::opt_125m(), 2, 2),
    ])
    .with_bits("W4A4".parse().unwrap());

    let baseline = Engine::builder().threads(1).banks(6).build();
    let base_gemm = baseline.submit(&gemm_request).unwrap();
    let base_batch = baseline.submit_batch(&batch_request).unwrap();
    let base_infer = baseline.infer(&infer_request).unwrap();
    for threads in [2usize, 4, 7] {
        let engine = Engine::builder().threads(threads).banks(6).build();
        assert_eq!(
            engine.submit(&gemm_request).unwrap(),
            base_gemm,
            "submit @{threads}"
        );
        assert_eq!(
            engine.submit_batch(&batch_request).unwrap(),
            base_batch,
            "submit_batch @{threads}"
        );
        assert_eq!(
            engine.infer(&infer_request).unwrap(),
            base_infer,
            "infer @{threads}"
        );
    }
}

/// A batch is bitwise identical to submitting its requests one by one
/// (modulo the recorded cache outcome of the warm-up order).
#[test]
fn batch_matches_individual_submissions() {
    let requests: Vec<GemmRequest> = (0..5)
        .map(|seed| {
            let (w, a) = operands(10, 15, 6, 60 + seed);
            GemmRequest::new(w, a)
        })
        .collect();
    let engine = Engine::builder().threads(4).banks(3).build();
    let batch = engine
        .submit_batch(&BatchGemmRequest::new(requests.clone()))
        .unwrap();
    assert_eq!(batch.requests(), 5);

    let solo_engine = Engine::builder().threads(4).banks(3).build();
    let mut stats = localut_repro::pim_sim::Stats::default();
    let mut energy = 0u128;
    for (request, from_batch) in requests.iter().zip(&batch.responses) {
        let solo = solo_engine.submit(request).unwrap();
        assert_eq!(solo.values, from_batch.values);
        assert_eq!(solo.stats, from_batch.stats);
        assert_eq!(solo.checksum, from_batch.checksum);
        assert_eq!(solo.energy_pj, from_batch.energy_pj);
        stats.merge(&solo.stats);
        energy += solo.energy_pj;
    }
    assert_eq!(batch.stats, stats);
    assert_eq!(batch.energy_pj, energy);
    // All five requests share one format/plan: one miss, four hits.
    let cache = engine.lut_cache_stats();
    assert_eq!((cache.misses, cache.hits), (1, 4));
    // The batch fingerprint folds the per-response checksums.
    assert_ne!(batch.checksum(), 0);
}

/// Pinned placement requests execute the exact kernels the Fig. 3
/// placement arms hand-constructed before the engine existed.
#[test]
fn pinned_requests_match_direct_kernel_construction() {
    let wf = NumericFormat::Bipolar;
    let af = NumericFormat::Int(3);
    let w = QMatrix::pseudo_random(20, 30, wf, 3);
    let a = QMatrix::pseudo_random(30, 6, af, 4);
    let engine = Engine::builder().threads(2).banks(1).build();
    let dpu = engine.gemm_config().dpu.clone();

    let buffer = engine
        .submit(&GemmRequest::new(w.clone(), a.clone()).with_pin(PlanPin {
            placement: Placement::BufferResident,
            p: 5,
        }))
        .unwrap();
    let direct = RcKernel::with_p(dpu.clone(), wf, af, 5)
        .unwrap()
        .run(&w, &a)
        .unwrap();
    assert_eq!(buffer.values, direct.values);
    assert_eq!(buffer.profile, direct.profile);
    assert_eq!(buffer.method, Method::OpLcRc);

    let streaming = engine
        .submit(&GemmRequest::new(w.clone(), a.clone()).with_pin(PlanPin {
            placement: Placement::Streaming,
            p: 5,
        }))
        .unwrap();
    let direct = StreamingKernel::new(dpu, wf, af, 5, engine.gemm_config().k_slices)
        .unwrap()
        .run(&w, &a)
        .unwrap();
    assert_eq!(streaming.values, direct.values);
    assert_eq!(streaming.profile, direct.profile);
    assert_eq!(streaming.method, Method::LoCaLut);

    // The cost twin of the pinned request agrees with its execution.
    let dims = GemmDims::of(&w, &a).unwrap();
    let cost = engine
        .pinned_kernel_cost(
            PlanPin {
                placement: Placement::BufferResident,
                p: 5,
            },
            BitConfig { bw: 1, ba: 3 },
            dims,
        )
        .unwrap();
    assert_eq!(cost, buffer.profile);
}

/// `Engine::infer` is the typed face of `InferenceSim::run_batch`.
#[test]
fn infer_matches_legacy_inference_sim() {
    let cfg: BitConfig = "W4A4".parse().unwrap();
    let workloads = vec![
        Workload::prefill(ModelConfig::bert_base(), 8),
        Workload::prefill(ModelConfig::vit_base(), 4),
    ];
    let engine = Engine::builder().threads(2).build();
    let response = engine
        .infer(
            &InferenceRequest::serving(workloads.clone())
                .with_method(Method::LoCaLut)
                .with_bits(cfg),
        )
        .unwrap();
    let sim = InferenceSim::upmem_server();
    let legacy = sim
        .run_batch(&ParallelExecutor::new(2), Method::LoCaLut, cfg, &workloads)
        .unwrap();
    assert_eq!(response.reports, legacy.reports);
    assert_eq!(response.merged, legacy.merged);
    assert_eq!(response.stats, legacy.stats);
    assert_eq!(response.requests(), 2);
    assert!((response.total_seconds() - legacy.total_seconds()).abs() < 1e-15);
}

/// The single error surface: every layer's error arrives as the matching
/// `EngineError` variant with a walkable source chain.
#[test]
fn engine_error_wraps_every_layer() {
    use std::error::Error;

    let engine = Engine::upmem();
    // 16-bit formats: no LUT fits → a planning (Gemm) error.
    let w = QMatrix::pseudo_random(4, 4, NumericFormat::Int(16), 1);
    let a = QMatrix::pseudo_random(4, 2, NumericFormat::Int(16), 2);
    let err = engine.submit(&GemmRequest::new(w, a)).unwrap_err();
    assert!(matches!(err, EngineError::Gemm(_)));
    assert!(err.source().is_some() || !err.to_string().is_empty());

    // Mismatched shapes: also a Gemm error, displayed losslessly.
    let (w, _) = operands(4, 6, 2, 1);
    let (_, a) = operands(4, 9, 2, 2);
    let err = engine.submit(&GemmRequest::new(w, a)).unwrap_err();
    let rendered = err.to_string();
    assert!(rendered.contains("dimension mismatch"), "got '{rendered}'");

    // Infeasible inference config propagates through `infer`.
    let err = engine
        .infer(
            &InferenceRequest::single(Workload::prefill(ModelConfig::bert_base(), 4))
                .with_bits(BitConfig { bw: 16, ba: 16 }),
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::Gemm(_)));
}

/// Sessions aggregate exactly what their responses report, across mixed
/// request kinds.
#[test]
fn session_aggregates_mixed_request_kinds() {
    let engine = Engine::builder().threads(2).banks(2).build();
    let mut session: Session<'_> = engine.session();
    let (w, a) = operands(8, 12, 5, 90);
    let gemm = session.submit(&GemmRequest::new(w, a)).unwrap();
    let infer = session
        .infer(
            &InferenceRequest::single(Workload::prefill(ModelConfig::bert_base(), 4))
                .with_bits("W4A4".parse().unwrap()),
        )
        .unwrap();
    assert_eq!(session.requests(), 2);
    assert_eq!(session.energy_pj(), gemm.energy_pj + infer.energy_pj);
    let mut expect = gemm.stats.clone();
    expect.merge(&infer.stats);
    assert_eq!(session.stats(), &expect);
    assert!(session.engine().lut_cache_stats().lookups() >= 1);
}
