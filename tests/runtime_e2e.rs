//! End-to-end tests for the bank-parallel execution runtime, through the
//! facade: quantize → plan → shard → execute on N workers → merge, asserting
//! bit-exactness against the serial path, profile/stats invariance under
//! the worker count, and determinism from a fixed seed.

use localut_repro::localut::{GemmConfig, GemmDims, Method};
use localut_repro::pim_sim::Stats;
use localut_repro::quant::{NumericFormat, QMatrix, Quantizer};
use localut_repro::runtime::{ParallelExecutor, ShardPlan};
use localut_repro::{dnn, localut};

/// Deterministic pseudo-random operands from a seed.
fn qmatrix(rows: usize, cols: usize, format: NumericFormat, seed: u64) -> QMatrix {
    QMatrix::pseudo_random(rows, cols, format, seed)
}

/// The tentpole acceptance path: a quantized GEMM through the full §V-A
/// planner, sharded across ≥4 workers, must be bit-identical to the serial
/// path in values and — for the same shard plan — in merged cost profile.
#[test]
fn four_workers_match_serial_bit_for_bit() {
    let wq = Quantizer::symmetric(NumericFormat::Bipolar);
    let aq = Quantizer::symmetric(NumericFormat::Int(3));
    let wdata: Vec<f32> = (0..48 * 60)
        .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
        .collect();
    let adata: Vec<f32> = (0..60 * 12)
        .map(|i| ((i * 7 + 3) % 15) as f32 - 7.0)
        .collect();
    let w = wq.quantize_matrix(&wdata, 48, 60).unwrap();
    let a = aq.quantize_matrix(&adata, 60, 12).unwrap();

    let cfg = GemmConfig::upmem();
    let serial = cfg.run(Method::LoCaLut, &w, &a).unwrap();

    let dims = GemmDims::of(&w, &a).unwrap();
    let plan = ShardPlan::for_banks(dims, 8);
    let reference = ParallelExecutor::with_config(1, cfg.clone())
        .execute_plan(&plan, Method::LoCaLut, &w, &a)
        .unwrap();
    let parallel = ParallelExecutor::with_config(4, cfg.clone())
        .execute_plan(&plan, Method::LoCaLut, &w, &a)
        .unwrap();

    assert_eq!(parallel.values, serial.values, "values diverged");
    assert_eq!(
        parallel.profile, reference.profile,
        "merged profile diverged"
    );
    assert_eq!(parallel.stats, reference.stats, "merged stats diverged");
    assert_eq!(parallel.per_bank, reference.per_bank);
    assert!(parallel.per_bank.len() >= 4, "want a real multi-bank plan");
    assert!(parallel.critical_path_seconds() < serial.profile.total_seconds());
}

/// Determinism: the same seed and shard plan produce identical outputs and
/// merged profiles for every worker count, and repeated runs are stable.
#[test]
fn same_seed_any_thread_count_is_identical() {
    let w = qmatrix(24, 36, NumericFormat::Int(2), 99);
    let a = qmatrix(36, 10, NumericFormat::Int(3), 100);
    let dims = GemmDims::of(&w, &a).unwrap();
    let plan = ShardPlan::for_banks(dims, 12);
    let cfg = GemmConfig::upmem();

    let baseline = ParallelExecutor::with_config(1, cfg.clone())
        .execute_plan(&plan, Method::LoCaLut, &w, &a)
        .unwrap();
    for threads in [2usize, 3, 4, 6, 8, 16] {
        let pool = ParallelExecutor::with_config(threads, cfg.clone());
        let first = pool.execute_plan(&plan, Method::LoCaLut, &w, &a).unwrap();
        let second = pool.execute_plan(&plan, Method::LoCaLut, &w, &a).unwrap();
        assert_eq!(first, baseline, "threads = {threads} diverged from serial");
        assert_eq!(first, second, "threads = {threads} not reproducible");
    }
}

/// The kernel-level `par_run` entry point stays bit-identical to
/// `GemmConfig::run` in both values and profile, across methods.
#[test]
fn par_run_facade_matches_serial() {
    let w = qmatrix(10, 18, NumericFormat::Int(2), 5);
    let a = qmatrix(18, 7, NumericFormat::Int(3), 6);
    let cfg = GemmConfig::upmem();
    for method in Method::ALL {
        let serial = cfg.run(method, &w, &a).unwrap();
        let par = localut::kernels::par_run(&cfg, method, &w, &a, 4).unwrap();
        assert_eq!(par.values, serial.values, "{method}");
        assert_eq!(par.profile, serial.profile, "{method}");
    }
}

/// Per-bank profiles must merge (via associative `Stats`) to the same
/// aggregate for any bank count's own plan, when the plan itself is held
/// fixed — and the critical path shrinks as banks are added.
#[test]
fn more_banks_shrink_the_critical_path() {
    let w = qmatrix(32, 24, NumericFormat::Int(2), 1);
    let a = qmatrix(24, 16, NumericFormat::Int(3), 2);
    let dims = GemmDims::of(&w, &a).unwrap();
    let pool = ParallelExecutor::new(4);
    let mut last_cp = f64::INFINITY;
    for banks in [1u32, 4, 16] {
        let plan = ShardPlan::for_banks(dims, banks);
        let out = pool.execute_plan(&plan, Method::OpLcRc, &w, &a).unwrap();
        let cp = out.critical_path_seconds();
        assert!(cp <= last_cp, "critical path grew at {banks} banks");
        last_cp = cp;
        // Stats equal the shard-order fold of per-bank profiles.
        let mut expect = Stats::default();
        for bank in &out.per_bank {
            expect.merge(&Stats::from_profile(&bank.profile));
        }
        assert_eq!(out.stats, expect);
    }
}

/// Batched multi-request inference through the facade: reports are
/// identical for every worker count and match the serial per-request runs.
#[test]
fn batched_inference_is_worker_count_invariant() {
    let sim = dnn::InferenceSim::upmem_server();
    let cfg: localut_repro::quant::BitConfig = "W2A2".parse().unwrap();
    let requests = vec![
        dnn::Workload::prefill(dnn::ModelConfig::bert_base(), 4),
        dnn::Workload::prefill(dnn::ModelConfig::vit_base(), 2),
        dnn::Workload::with_decode(dnn::ModelConfig::opt_125m(), 2, 2),
        dnn::Workload::prefill(dnn::ModelConfig::bert_base(), 8),
    ];
    let serial: Vec<_> = requests
        .iter()
        .map(|wl| sim.run(Method::LoCaLut, cfg, wl).unwrap())
        .collect();
    let baseline = sim
        .run_batch(&ParallelExecutor::new(1), Method::LoCaLut, cfg, &requests)
        .unwrap();
    assert_eq!(baseline.reports, serial);
    for threads in [2usize, 3, 8] {
        let batch = sim
            .run_batch(
                &ParallelExecutor::new(threads),
                Method::LoCaLut,
                cfg,
                &requests,
            )
            .unwrap();
        assert_eq!(batch, baseline, "threads = {threads}");
    }
}
