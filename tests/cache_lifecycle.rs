//! Cache-lifecycle integration tests: warm-from-disk restarts are
//! bitwise-identical to cold starts, byte-budget LRU eviction is
//! deterministic and never changes a simulated number, corrupt stores
//! degrade to typed-error cold starts, and the planner memo serves plans
//! bitwise equal to recomputation — all through the public engine API.

use engine::cachelife::store;
use engine::serve::replay_serial;
use engine::traffic::{full_log, Mix, TrafficConfig};
use engine::{CacheOutcome, CacheStats, Engine, GemmRequest, GemmResponse, StoreError};
use proptest::prelude::*;
use quant::{NumericFormat, QMatrix};
use std::path::PathBuf;

/// A fresh per-test scratch directory (process-unique, removed best-effort
/// by the next run with the same name).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cache-lifecycle-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The churn alphabet: distinct (wf, af) pairs key distinct LUT images.
const PAIRS: [(NumericFormat, NumericFormat); 3] = [
    (NumericFormat::Bipolar, NumericFormat::Int(3)),
    (NumericFormat::Bipolar, NumericFormat::Int(2)),
    (NumericFormat::Int(2), NumericFormat::Int(2)),
];

fn churn_request(pair: usize, seed: u64) -> GemmRequest {
    let (wf, af) = PAIRS[pair];
    let w = QMatrix::pseudo_random(24, 20, wf, 40 + pair as u64);
    let a = QMatrix::pseudo_random(20, 6, af, 50 + seed);
    GemmRequest::new(w, a)
}

fn submit(engine: &Engine, pair: usize, seed: u64) -> GemmResponse {
    engine
        .submit(&churn_request(pair, seed))
        .expect("churn shapes are feasible")
}

/// Per-pair resident image size, probed on an unbudgeted engine so the
/// eviction tests can size budgets exactly rather than guessing.
fn image_sizes() -> [u64; 3] {
    let probe = Engine::builder().threads(1).banks(1).build();
    let mut sizes = [0u64; 3];
    let mut before = 0;
    for (index, size) in sizes.iter_mut().enumerate() {
        submit(&probe, index, 0);
        let after = probe.lut_cache_stats().resident_bytes;
        *size = after - before;
        before = after;
    }
    sizes
}

// ---------------------------------------------------------------------
// Warm-from-disk restarts are bitwise identical to cold starts
// ---------------------------------------------------------------------

#[test]
fn warm_restart_reproduces_cold_responses_bitwise() {
    let dir = scratch("warm-responses");
    let drive = |engine: &Engine| -> Vec<GemmResponse> {
        (0..PAIRS.len())
            .chain(0..PAIRS.len()) // revisit: second pass must Hit
            .map(|pair| submit(engine, pair, 7))
            .collect()
    };

    let cold = Engine::builder()
        .threads(1)
        .banks(2)
        .cache_dir(&dir)
        .build();
    assert!(cold.cache_restore_error().is_none());
    assert_eq!(cold.lut_cache_stats().entries, 0, "directory starts empty");
    let cold_responses = drive(&cold);
    let cold_stats = cold.lut_cache_stats();
    let persisted = cold.persist_cache().expect("persist after drain");
    assert_eq!(persisted, cold_stats.entries);

    let warm = Engine::builder()
        .threads(1)
        .banks(2)
        .cache_dir(&dir)
        .build();
    assert!(warm.cache_restore_error().is_none());
    assert_eq!(
        warm.lut_cache_stats().entries,
        persisted,
        "warm engine restores every persisted image"
    );
    let warm_responses = drive(&warm);
    let warm_stats = warm.lut_cache_stats();

    // The headline contract: every response — values, checksum, simulated
    // stats, energy, and the per-response lut_cache outcome — is bitwise
    // identical. A restored entry's first request still reports Miss.
    assert_eq!(warm_responses, cold_responses);
    assert_eq!(
        warm_responses[0].lut_cache,
        Some(CacheOutcome::Miss),
        "first request of a restored shape records the cold outcome"
    );
    assert_eq!(
        warm_responses[PAIRS.len()].lut_cache,
        Some(CacheOutcome::Hit)
    );

    // Hit/miss folds agree; only the restored counter (and wall, not
    // modeled here) may differ between the two lifecycles.
    assert_eq!(warm_stats.hits, cold_stats.hits);
    assert_eq!(warm_stats.misses, cold_stats.misses);
    assert_eq!(warm_stats.evictions, cold_stats.evictions);
    assert_eq!(warm_stats.resident_bytes, cold_stats.resident_bytes);
    assert_eq!(cold_stats.restored, 0);
    assert_eq!(
        warm_stats.restored,
        PAIRS.len() as u64,
        "each restored shape is counted once, on its first request"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_restart_reproduces_cold_serving_summary_bitwise() {
    let dir = scratch("warm-summary");
    let traffic = TrafficConfig {
        clients: 2,
        requests_per_client: 3,
        mix: Mix::Mixed,
        seed: 97,
        decode_tokens: 4,
    };
    let log = full_log(&traffic);

    let cold = Engine::builder()
        .threads(1)
        .banks(2)
        .cache_dir(&dir)
        .build();
    let cold_summary = replay_serial(&cold, &log);
    cold.persist_cache().expect("persist after drain");

    let warm = Engine::builder()
        .threads(1)
        .banks(2)
        .cache_dir(&dir)
        .build();
    assert!(warm.lut_cache_stats().entries > 0, "warm start restored");
    let warm_summary = replay_serial(&warm, &log);

    assert_eq!(
        warm_summary, cold_summary,
        "the deterministic serving fold must not see the warm restore"
    );
    assert_eq!(cold_summary.failed_requests, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Byte-budget LRU eviction
// ---------------------------------------------------------------------

#[test]
fn lru_evicts_the_oldest_entry_and_refetch_rebuilds_bitwise() {
    let [size_a, size_b, size_c] = image_sizes();
    // Any two images fit; all three never do — each third insertion must
    // evict exactly the least recently used survivor.
    let budget = size_a + size_b + size_c - 1;
    let engine = Engine::builder()
        .threads(1)
        .banks(2)
        .cache_budget(budget)
        .build();

    let first_a = submit(&engine, 0, 3); // build A
    submit(&engine, 1, 3); // build B
    submit(&engine, 2, 3); // build C → evicts A (oldest)
    let after_churn = engine.lut_cache_stats();
    assert_eq!(after_churn.evictions, 1);
    assert!(after_churn.resident_bytes <= budget);

    let b_again = submit(&engine, 1, 3); // B must still be resident
    assert_eq!(b_again.lut_cache, Some(CacheOutcome::Hit));

    let a_again = submit(&engine, 0, 3); // A was evicted → rebuild
    assert_eq!(a_again.lut_cache, Some(CacheOutcome::Miss));
    assert_eq!(
        a_again, first_a,
        "an evicted-and-rebuilt image serves bitwise-identical responses"
    );
    // Rebuilding A had to evict the new oldest survivor: C, not B.
    let end = engine.lut_cache_stats();
    assert_eq!(end.evictions, 2);
    let b_final = submit(&engine, 1, 3);
    assert_eq!(
        b_final.lut_cache,
        Some(CacheOutcome::Hit),
        "the recently used entry survived the second eviction"
    );
}

#[test]
fn eviction_sequences_are_deterministic_across_runs() {
    let [size_a, size_b, size_c] = image_sizes();
    let budget = size_a + size_b + size_c - 1;
    let drive = || -> Vec<CacheStats> {
        let engine = Engine::builder()
            .threads(1)
            .banks(2)
            .cache_budget(budget)
            .build();
        [0, 1, 2, 0, 2, 1, 0]
            .into_iter()
            .map(|pair| {
                submit(&engine, pair, 11);
                engine.lut_cache_stats()
            })
            .collect()
    };
    let first = drive();
    let second = drive();
    assert_eq!(
        first, second,
        "identical request sequences must produce identical counter \
         trajectories — eviction order never depends on host state"
    );
    assert!(first.last().unwrap().evictions > 0, "the sequence churned");
}

// ---------------------------------------------------------------------
// Corrupt / truncated stores degrade to typed-error cold starts
// ---------------------------------------------------------------------

#[test]
fn garbage_manifest_is_a_typed_error_and_a_working_cold_start() {
    let dir = scratch("garbage-manifest");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    std::fs::write(store::manifest_path(&dir), b"this is not a cache manifest")
        .expect("write garbage");

    let engine = Engine::builder()
        .threads(1)
        .banks(2)
        .cache_dir(&dir)
        .build();
    assert!(
        matches!(
            engine.cache_restore_error(),
            Some(StoreError::BadMagic { .. })
        ),
        "got {:?}",
        engine.cache_restore_error()
    );
    assert_eq!(engine.lut_cache_stats().entries, 0);

    // Cold fallback serves normally and can even re-persist over the junk.
    let response = submit(&engine, 0, 1);
    assert_eq!(response.lut_cache, Some(CacheOutcome::Miss));
    engine.persist_cache().expect("overwrite the junk store");
    let healed = Engine::builder()
        .threads(1)
        .banks(2)
        .cache_dir(&dir)
        .build();
    assert!(healed.cache_restore_error().is_none());
    assert_eq!(healed.lut_cache_stats().entries, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_manifest_and_bitflipped_image_are_typed_errors() {
    let dir = scratch("truncated");
    let seed = Engine::builder()
        .threads(1)
        .banks(2)
        .cache_dir(&dir)
        .build();
    submit(&seed, 0, 1);
    submit(&seed, 1, 1);
    seed.persist_cache().expect("persist two images");

    // Truncating the manifest breaks its envelope.
    let manifest = store::manifest_path(&dir);
    let bytes = std::fs::read(&manifest).expect("read manifest");
    std::fs::write(&manifest, &bytes[..bytes.len() - 1]).expect("truncate");
    let engine = Engine::builder()
        .threads(1)
        .banks(2)
        .cache_dir(&dir)
        .build();
    assert!(
        matches!(
            engine.cache_restore_error(),
            Some(StoreError::ChecksumMismatch { .. } | StoreError::Truncated { .. })
        ),
        "got {:?}",
        engine.cache_restore_error()
    );
    assert_eq!(engine.lut_cache_stats().entries, 0, "cold fallback");
    assert_eq!(submit(&engine, 0, 1).lut_cache, Some(CacheOutcome::Miss));

    // Restore the manifest, then flip one bit in an image file: the
    // restore must refuse the whole store rather than half-load it.
    std::fs::write(&manifest, &bytes).expect("restore manifest");
    let image = std::fs::read_dir(&dir)
        .expect("list store")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("lut-"))
        })
        .expect("an image file exists");
    let mut image_bytes = std::fs::read(&image).expect("read image");
    let mid = image_bytes.len() / 2;
    image_bytes[mid] ^= 0x40;
    std::fs::write(&image, image_bytes).expect("corrupt image");
    let engine = Engine::builder()
        .threads(1)
        .banks(2)
        .cache_dir(&dir)
        .build();
    assert!(
        matches!(
            engine.cache_restore_error(),
            Some(StoreError::ChecksumMismatch { .. })
        ),
        "got {:?}",
        engine.cache_restore_error()
    );
    assert_eq!(engine.lut_cache_stats().entries, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Planner memo
// ---------------------------------------------------------------------

#[test]
fn memoized_plans_equal_recomputed_plans_bitwise() {
    use dnn::{ModelConfig, Workload};
    use engine::SessionRequest;

    let request = SessionRequest::new(Workload::with_decode(ModelConfig::bert_base(), 8, 4));
    let engine = Engine::builder().threads(1).banks(4).build();
    let first = engine.session_plans(&request).expect("plans exist");
    let baseline = engine.plan_memo_stats();
    assert!(baseline.misses > 0, "first planning pass computes");

    let second = engine.session_plans(&request).expect("plans exist");
    let after = engine.plan_memo_stats();
    assert_eq!(second, first, "a memo hit is bitwise the computed plan");
    assert!(after.hits > baseline.hits, "second pass hits the memo");
    assert_eq!(after.misses, baseline.misses, "nothing recomputed");

    // A fresh engine recomputes from scratch and lands on the same plans.
    let fresh = Engine::builder().threads(1).banks(4).build();
    assert_eq!(fresh.session_plans(&request).expect("plans exist"), first);
}

// ---------------------------------------------------------------------
// Budget invariant, property-tested
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// After every lookup in any request sequence under any budget, the
    /// resident byte count respects the budget — oversized entries are
    /// served but not retained, and eviction always restores the bound.
    #[test]
    fn resident_bytes_never_exceed_the_budget(
        budget in 1u64..300_000,
        sequence in proptest::collection::vec(0usize..PAIRS.len(), 1..10),
    ) {
        let engine = Engine::builder()
            .threads(1)
            .banks(1)
            .cache_budget(budget)
            .build();
        for pair in sequence {
            submit(&engine, pair, 5);
            let stats = engine.lut_cache_stats();
            prop_assert!(
                stats.resident_bytes <= budget,
                "resident {} exceeds budget {budget}",
                stats.resident_bytes
            );
        }
    }
}
