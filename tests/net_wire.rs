//! Network front-end behavior under hostile and edge-case input: malformed
//! and truncated frames, oversized payloads, mid-request disconnects,
//! per-connection quotas, bounded-queue backpressure, and the request-log
//! replay contract — all against a live loopback [`netserve::NetServer`].

use engine::serve::{replay_serial, ServeConfig};
use engine::{Engine, EngineError, Rejection};
use netserve::frame::{self, FramePoll, FrameReader};
use netserve::server::{NetConfig, NetReport, NetServer};
use netserve::wire::{self, WireRequest, WireResponse};
use netserve::NetClient;
use quant::{NumericFormat, QMatrix};
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

fn start(serve: &ServeConfig, net: &NetConfig) -> NetServer {
    let engine = Arc::new(Engine::builder().threads(1).banks(2).build());
    NetServer::bind(engine, serve, net, "127.0.0.1:0").expect("loopback bind")
}

fn serve_config() -> ServeConfig {
    ServeConfig::builder()
        .workers(2)
        .max_batch(2)
        .build()
        .expect("valid")
}

fn small_gemm() -> engine::GemmRequest {
    let w = QMatrix::pseudo_random(24, 20, NumericFormat::Bipolar, 7);
    let a = QMatrix::pseudo_random(20, 6, NumericFormat::Int(3), 8);
    engine::GemmRequest::new(w, a)
}

/// Reads one response frame off a raw socket (None on close).
fn recv_raw(stream: &mut TcpStream) -> Option<WireResponse> {
    let payload = frame::read_frame(stream, frame::DEFAULT_MAX_PAYLOAD).expect("readable")?;
    Some(wire::decode_response(&payload).expect("decodable"))
}

#[test]
fn bad_magic_closes_the_connection_and_counts_a_protocol_error() {
    let server = start(&serve_config(), &NetConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut header = Vec::new();
    header.extend_from_slice(b"XXXX");
    header.extend_from_slice(&frame::VERSION.to_be_bytes());
    header.extend_from_slice(&[0, 0]);
    header.extend_from_slice(&4u32.to_be_bytes());
    stream.write_all(&header).expect("write");
    assert!(recv_raw(&mut stream).is_none(), "server must hang up");
    let report = server.join();
    assert_eq!(report.protocol_errors, 1);
    assert_eq!(report.serve.summary.requests, 0);
}

#[test]
fn truncated_frame_counts_a_protocol_error() {
    let server = start(&serve_config(), &NetConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut full = Vec::new();
    frame::write_frame(
        &mut full,
        wire::encode_request(&WireRequest::Ping).as_bytes(),
    )
    .expect("encode");
    // Everything but the last byte, then a clean FIN mid-frame.
    stream.write_all(&full[..full.len() - 1]).expect("write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    assert!(recv_raw(&mut stream).is_none(), "server must hang up");
    let report = server.join();
    assert_eq!(report.protocol_errors, 1);
}

#[test]
fn oversized_claim_is_refused_from_the_header() {
    let net = NetConfig {
        max_payload: 1024,
        ..NetConfig::default()
    };
    let server = start(&serve_config(), &net);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut header = Vec::new();
    header.extend_from_slice(&frame::MAGIC);
    header.extend_from_slice(&frame::VERSION.to_be_bytes());
    header.extend_from_slice(&[0, 0]);
    // Claims 1 GiB; the server must refuse without ever allocating it.
    header.extend_from_slice(&(1u32 << 30).to_be_bytes());
    stream.write_all(&header).expect("write");
    assert!(recv_raw(&mut stream).is_none(), "server must hang up");
    let report = server.join();
    assert_eq!(report.protocol_errors, 1);
}

#[test]
fn garbage_payload_gets_a_typed_error_response() {
    let server = start(&serve_config(), &NetConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    frame::write_frame(&mut stream, b"not json at all").expect("write");
    match recv_raw(&mut stream) {
        Some(WireResponse::Error { kind, message }) => {
            assert_eq!(kind, "Net");
            assert!(!message.is_empty());
        }
        other => panic!("expected a typed error, got {other:?}"),
    }
    assert!(recv_raw(&mut stream).is_none(), "server closes afterwards");
    assert_eq!(server.join().protocol_errors, 1);
}

#[test]
fn quota_exhaustion_is_typed_and_does_not_count_executed() {
    let serve = ServeConfig::builder()
        .workers(1)
        .max_batch(1)
        .quota(2)
        .build()
        .expect("valid");
    let server = start(&serve, &NetConfig::default());
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let request = small_gemm();
    client.gemm(&request).expect("first fits the quota");
    client.gemm(&request).expect("second fits the quota");
    match client.gemm(&request) {
        Err(EngineError::Rejected(Rejection::QuotaExhausted { limit })) => assert_eq!(limit, 2),
        other => panic!("expected quota exhaustion, got {other:?}"),
    }
    drop(client);
    let report = server.join();
    assert_eq!(report.rejected_quota, 1);
    assert_eq!(report.serve.summary.requests, 2);
}

#[test]
fn queue_full_backpressure_rejects_instead_of_hanging() {
    let serve = ServeConfig::builder()
        .workers(1)
        .max_batch(1)
        .queue_cap(1)
        .build()
        .expect("valid");
    let server = start(&serve, &NetConfig::default());
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    // Pipeline more work than a 1-worker/1-slot queue can admit: the reader
    // submits in microseconds while each GEMM takes milliseconds, so some
    // must come back as typed QueueFull rejections — never a stall.
    let request = WireRequest::Gemm(small_gemm());
    const PIPELINED: usize = 8;
    for _ in 0..PIPELINED {
        client.send(&request).expect("send");
    }
    let mut served = 0u64;
    let mut rejected = 0u64;
    for _ in 0..PIPELINED {
        match client.recv().expect("every frame gets a response") {
            WireResponse::Gemm(_) => served += 1,
            WireResponse::Rejected(Rejection::QueueFull {
                capacity,
                retry_after_ms,
            }) => {
                assert_eq!(capacity, 1);
                assert!(retry_after_ms > 0);
                rejected += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    drop(client);
    let report = server.join();
    assert!(rejected > 0, "cap-1 queue must reject pipelined floods");
    assert_eq!(served + rejected, PIPELINED as u64);
    assert_eq!(report.serve.summary.requests, served);
}

#[test]
fn mid_request_disconnect_still_executes_and_accounts() {
    let log =
        std::env::temp_dir().join(format!("netserve-disconnect-{}.jsonl", std::process::id()));
    let net = NetConfig {
        log_path: Some(log.clone()),
        ..NetConfig::default()
    };
    let server = start(&serve_config(), &net);
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    client.send(&WireRequest::Gemm(small_gemm())).expect("send");
    // Vanish without reading the response: the server must still execute,
    // log, and account the admitted request. (Wait for admission first —
    // a drain that lands before the frame is read may legitimately drop
    // it at the frame boundary.)
    drop(client);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while server.summary().requests < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "request was never admitted"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let report = server.join();
    assert_eq!(report.serve.summary.requests, 1);
    assert_eq!(report.serve.summary.failed_requests, 0);
    let text = std::fs::read_to_string(&log).expect("request log exists");
    assert_eq!(text.lines().count(), 1, "one executed request, one line");
    let _ = std::fs::remove_file(&log);
}

#[test]
fn connection_cap_rejects_excess_clients_with_a_typed_frame() {
    let net = NetConfig {
        max_connections: 1,
        ..NetConfig::default()
    };
    let server = start(&serve_config(), &net);
    let mut first = NetClient::connect(server.local_addr()).expect("connect");
    assert_eq!(first.ping().expect("first connection serves"), 0);
    let mut second = NetClient::connect(server.local_addr()).expect("tcp accepts");
    match second.ping() {
        Err(EngineError::Rejected(Rejection::QueueFull { capacity, .. })) => {
            assert_eq!(capacity, 1);
        }
        other => panic!("expected a capacity rejection, got {other:?}"),
    }
    drop(first);
    drop(second);
    let report = server.join();
    assert_eq!(report.rejected_capacity, 1);
    assert_eq!(report.connections, 2);
}

#[test]
fn ping_reports_admissions_and_drain_stops_the_server() {
    let server = start(&serve_config(), &NetConfig::default());
    let addr = server.local_addr();
    let mut client = NetClient::connect(addr).expect("connect");
    assert_eq!(client.ping().expect("ping"), 0);
    client.gemm(&small_gemm()).expect("serves");
    assert_eq!(client.ping().expect("ping"), 1);
    let (summary, cache) = client.drain().expect("drain acknowledges");
    assert_eq!(summary.requests, 1);
    let cache = cache.expect("drain acks carry cache counters");
    assert_eq!(cache.lut.misses, 1, "one cold LUT build for one shape");
    assert_eq!(cache.lut.evictions, 0);
    let report = server.wait();
    assert_eq!(report.serve.summary.requests, 1);
    assert!(
        NetClient::connect(addr).and_then(|mut c| c.ping()).is_err(),
        "a drained server accepts no new work"
    );
}

/// The acceptance contract, in-process edition: replaying the request log
/// serially reproduces the concurrent server's summary bit for bit, for
/// multiple worker counts. (`tests/net_remote.rs` pins the same property
/// across OS processes.)
#[test]
fn request_log_replay_matches_summary_for_any_worker_count() {
    for workers in [1, 3] {
        let log = std::env::temp_dir().join(format!(
            "netserve-replay-{}-{workers}.jsonl",
            std::process::id()
        ));
        let serve = ServeConfig::builder()
            .workers(workers)
            .max_batch(2)
            .build()
            .expect("valid");
        let net = NetConfig {
            log_path: Some(log.clone()),
            ..NetConfig::default()
        };
        let server = start(&serve, &net);
        let addr = server.local_addr();
        let traffic = engine::traffic::TrafficConfig {
            clients: 2,
            requests_per_client: 2,
            mix: engine::traffic::Mix::Mixed,
            seed: 77,
            decode_tokens: 4,
        };
        std::thread::scope(|scope| {
            for client in 0..traffic.clients {
                let log = engine::traffic::client_log(&traffic, client);
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr).expect("connect");
                    for request in log {
                        match request {
                            engine::traffic::TrafficRequest::Gemm(r) => {
                                client.gemm(&r).expect("serves");
                            }
                            engine::traffic::TrafficRequest::Infer(r) => {
                                client.infer(&r).expect("serves");
                            }
                            engine::traffic::TrafficRequest::Session(r) => {
                                client.session(&r).expect("serves");
                            }
                        }
                    }
                });
            }
        });
        let report: NetReport = server.join();
        let text = std::fs::read_to_string(&log).expect("request log exists");
        let replayed = wire::parse_request_log(&text).expect("log parses");
        assert_eq!(replayed.len(), 4);
        let reference = Engine::builder().threads(1).banks(2).build();
        assert_eq!(
            replay_serial(&reference, &replayed),
            report.serve.summary,
            "serial replay of the wire log diverged at {workers} workers"
        );
        let _ = std::fs::remove_file(&log);
    }
}

#[test]
fn session_over_tcp_matches_in_process_inference() {
    // A decoder session served over loopback TCP (continuous batching on
    // the scheduler side) must return the exact integers the in-process
    // API computes, and its logged request line must replay to the same
    // summary.
    let log = std::env::temp_dir().join(format!("netserve-session-{}.jsonl", std::process::id()));
    let net = NetConfig {
        log_path: Some(log.clone()),
        ..NetConfig::default()
    };
    let server = start(&serve_config(), &net);
    let addr = server.local_addr();
    let request = engine::SessionRequest::new(dnn::Workload::with_decode(
        dnn::ModelConfig::opt_125m(),
        2,
        3,
    ));
    let mut client = NetClient::connect(addr).expect("connect");
    let remote = client.session(&request).expect("serves");
    let report: NetReport = server.join();

    let reference = Engine::builder().threads(1).banks(2).build();
    let local = reference.infer_session(&request).expect("feasible");
    assert_eq!(remote.stats, local.stats);
    assert_eq!(remote.energy_pj, local.energy_pj);
    assert_eq!(remote.ttft_femtos, local.ttft_femtos);
    assert_eq!(remote.decode_step_femtos, local.decode_step_femtos);
    assert_eq!(report.serve.summary.session_requests, 1);
    assert_eq!(report.serve.summary.decode_steps, 3);

    let text = std::fs::read_to_string(&log).expect("request log exists");
    let replayed = wire::parse_request_log(&text).expect("log parses");
    assert_eq!(replay_serial(&reference, &replayed), report.serve.summary);
    let _ = std::fs::remove_file(&log);
}

#[test]
fn frame_reader_survives_interleaved_partial_writes() {
    // Transport-level resumability on a real socket: a frame delivered one
    // byte at a time must still decode (the server's reader uses the same
    // FrameReader against read timeouts).
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr: SocketAddr = listener.local_addr().expect("addr");
    let payload = wire::encode_request(&WireRequest::Ping);
    let writer = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut full = Vec::new();
        frame::write_frame(&mut full, payload.as_bytes()).expect("encode");
        for byte in full {
            stream.write_all(&[byte]).expect("trickle");
            stream.flush().expect("flush");
        }
    });
    let (mut stream, _) = listener.accept().expect("accept");
    let mut reader = FrameReader::new(frame::DEFAULT_MAX_PAYLOAD);
    let payload = loop {
        match reader.poll(&mut stream).expect("no protocol error") {
            FramePoll::Frame(p) => break p,
            FramePoll::Pending => continue,
            FramePoll::Closed => panic!("closed before the frame completed"),
        }
    };
    writer.join().expect("writer");
    assert!(matches!(
        wire::decode_request(&payload),
        Ok(WireRequest::Ping)
    ));
}
