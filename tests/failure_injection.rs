//! Failure injection: every capacity/shape/format violation must surface
//! as a typed error through the public API — never a panic, never a wrong
//! answer.

use localut::kernels::{LcKernel, OpKernel, RcKernel, StreamingKernel};
use localut::plan::Planner;
use localut::{GemmDims, LocaLutError};
use pim_sim::{Dpu, DpuConfig, SimError};
use quant::{NumericFormat, QMatrix, Quantizer};

#[test]
fn wram_exhaustion_is_typed() {
    let mut dpu = Dpu::upmem();
    dpu.wram_alloc("big", 60 * 1024).unwrap();
    match dpu.wram_alloc("more", 8 * 1024) {
        Err(SimError::WramExhausted {
            requested,
            available,
        }) => {
            assert_eq!(requested, 8 * 1024);
            assert!(available < 8 * 1024);
        }
        other => panic!("expected WramExhausted, got {other:?}"),
    }
}

#[test]
fn bank_exhaustion_is_typed() {
    let mut dpu = Dpu::upmem();
    dpu.bank_place("lut", 60 * 1024 * 1024).unwrap();
    assert!(matches!(
        dpu.bank_place("more", 8 * 1024 * 1024),
        Err(SimError::BankExhausted { .. })
    ));
}

#[test]
fn oversized_packing_degrees_are_rejected_per_kernel() {
    let cfg = DpuConfig::upmem();
    let w1 = NumericFormat::Bipolar;
    let a3 = NumericFormat::Int(3);
    // Streaming: p=9 exceeds the bank budget at W1A3.
    assert!(matches!(
        StreamingKernel::new(cfg.clone(), w1, a3, 9, 2),
        Err(LocaLutError::BudgetExceeded { .. })
    ));
    // Zero p / zero k.
    assert!(StreamingKernel::new(cfg.clone(), w1, a3, 0, 2).is_err());
    assert!(StreamingKernel::new(cfg.clone(), w1, a3, 6, 0).is_err());
    assert!(OpKernel::with_p(cfg.clone(), w1, a3, 0).is_err());
    assert!(LcKernel::with_p(cfg.clone(), w1, a3, 0).is_err());
    assert!(RcKernel::with_p(cfg, w1, a3, 0).is_err());
}

#[test]
fn float_formats_rejected_by_integer_kernels() {
    let cfg = DpuConfig::upmem();
    for (wf, af) in [
        (NumericFormat::Fp4, NumericFormat::Int(3)),
        (NumericFormat::Bipolar, NumericFormat::Fp8),
        (NumericFormat::Fp16, NumericFormat::Fp16),
    ] {
        assert!(matches!(
            RcKernel::with_p(cfg.clone(), wf, af, 2),
            Err(LocaLutError::UnsupportedFormat(_))
        ));
        assert!(OpKernel::auto(cfg.clone(), wf, af).is_err());
    }
}

#[test]
fn starved_budgets_make_the_planner_fail_loudly() {
    let mut cfg = DpuConfig::upmem();
    cfg.lut_budget_fraction = 1e-9; // effectively zero LUT space
    let planner = Planner::new(cfg);
    let err = planner
        .plan(
            GemmDims { m: 64, k: 64, n: 8 },
            NumericFormat::Bipolar,
            NumericFormat::Int(3),
            Some(2),
        )
        .unwrap_err();
    assert!(matches!(err, LocaLutError::BudgetExceeded { .. }));
    // The error is descriptive.
    let msg = err.to_string();
    assert!(msg.contains("exceeds budget"), "unhelpful message: {msg}");
}

#[test]
fn bipolar_activations_with_ragged_k_fail_with_unpaddable() {
    // Activations without a zero code cannot pad K % p != 0.
    let cfg = DpuConfig::upmem();
    let wq = Quantizer::symmetric(NumericFormat::Int(2));
    let aq = Quantizer::symmetric(NumericFormat::Bipolar);
    let w = wq.quantize_matrix(&[0.5; 2 * 7], 2, 7).unwrap();
    let a = aq.quantize_matrix(&[0.5; 7 * 2], 7, 2).unwrap();
    let kernel = OpKernel::with_p(cfg, NumericFormat::Int(2), NumericFormat::Bipolar, 3).unwrap();
    assert!(matches!(
        kernel.run(&w, &a),
        Err(LocaLutError::UnpaddableRemainder { remainder: 1 })
    ));
}

#[test]
fn code_out_of_range_is_caught_at_construction() {
    // A code outside the format's space never reaches the kernels.
    let err = QMatrix::from_codes(vec![9], 1, 1, NumericFormat::Int(3), 1.0).unwrap_err();
    assert!(matches!(
        err,
        quant::QuantError::CodeOutOfRange { code: 9, space: 8 }
    ));
}

#[test]
fn errors_are_std_error_and_display() {
    // All error types compose with the std error ecosystem.
    fn takes_std_error(_: &dyn std::error::Error) {}
    let sim_err = SimError::InvalidConfig("x".into());
    takes_std_error(&sim_err);
    let lut_err: LocaLutError = sim_err.into();
    takes_std_error(&lut_err);
    assert!(std::error::Error::source(&lut_err).is_some());
    let q_err = quant::QuantError::UnsupportedBits(0);
    takes_std_error(&q_err);
    let lut_err2: LocaLutError = q_err.into();
    assert!(lut_err2.to_string().contains("unsupported bitwidth"));
}
