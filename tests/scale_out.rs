//! Full-machine scale-out battery: 2048-bank hierarchical plans through
//! the public API. Pins the three contracts the scale-out runtime makes:
//!
//! 1. A 2048-shard ranked run is **bit-identical** for worker counts
//!    {1, 4, 16} — values, per-bank profiles, merged stats, rank stats,
//!    and the contention phase.
//! 2. Work stealing is **deterministic**: repeated ragged runs land on
//!    the same bytes every time, regardless of who stole what.
//! 3. The rank merge tree is **exact**: per-rank ledgers fold to the same
//!    `Stats` as the flat shard-order fold, bit for bit, and the engine's
//!    ranked topology only adds the rank-bus phase on top of it.

use localut_repro::engine::{Engine, GemmRequest, Topology};
use localut_repro::localut::{GemmConfig, GemmDims, Method};
use localut_repro::pim_sim::Stats;
use localut_repro::quant::{NumericFormat, QMatrix};
use localut_repro::runtime::{ParallelExecutor, ShardPlan};

/// A GEMM shape whose ranked plan populates the paper's full machine with
/// exactly 2048 one-cell shards (grid 64 × 32), while staying cheap
/// enough for debug-profile test runs.
const FULL: GemmDims = GemmDims { m: 64, k: 8, n: 32 };

fn operands(dims: GemmDims, seed: u64) -> (QMatrix, QMatrix) {
    (
        QMatrix::pseudo_random(dims.m, dims.k, NumericFormat::Int(2), seed),
        QMatrix::pseudo_random(dims.k, dims.n, NumericFormat::Int(3), seed + 1),
    )
}

/// Contract 1: the full-machine plan executes bit-identically at worker
/// counts {1, 4, 16}, and matches the serial (unsharded) kernel's values.
#[test]
fn full_machine_2048_banks_bit_identical_across_worker_counts() {
    let (w, a) = operands(FULL, 20_48);
    let cfg = GemmConfig::upmem();
    let plan = ShardPlan::for_ranks(FULL, 32, 64);
    assert_eq!(plan.len(), 2048, "shape must populate the full machine");
    assert_eq!(plan.rank_plan().unwrap().populated(), 32);

    let serial = cfg.run(Method::OpLcRc, &w, &a).unwrap();
    let reference = ParallelExecutor::with_config(1, cfg.clone())
        .execute_plan(&plan, Method::OpLcRc, &w, &a)
        .unwrap();
    assert_eq!(reference.values, serial.values, "sharding changed values");
    assert_eq!(reference.per_bank.len(), 2048);
    assert_eq!(reference.rank_stats.len(), 32);
    assert!(
        reference.link_phase.is_some(),
        "ranked plans charge the bus"
    );

    for workers in [4usize, 16] {
        let par = ParallelExecutor::with_config(workers, cfg.clone())
            .execute_plan(&plan, Method::OpLcRc, &w, &a)
            .unwrap();
        // One assert covers everything: ParallelGemm compares values,
        // per-bank profiles, the profile fold, merged stats, rank stats,
        // and the link phase.
        assert_eq!(par, reference, "{workers}-worker run diverged");
    }
}

/// Contract 2: repeated runs of a ragged near-full-machine plan (uneven
/// edge tiles make steal timing vary wildly) produce the same bytes every
/// time on a many-worker executor.
#[test]
fn work_stealing_runs_are_deterministic_under_raggedness() {
    // 65 × 33 does not divide the machine evenly: the edge tiles are
    // half the size of the interior tiles (65 rows in 2-row tiles leave a
    // 1-row remainder), so workers finish out of sync and the stealing
    // pattern differs run to run.
    let dims = GemmDims { m: 65, k: 9, n: 33 };
    let (w, a) = operands(dims, 7);
    let cfg = GemmConfig::upmem();
    let plan = ShardPlan::for_ranks(dims, 32, 64);
    assert!(
        plan.len() > 1000,
        "want a big ragged plan, got {}",
        plan.len()
    );
    assert!(
        plan.shards().iter().any(|s| s.rows.len() != 2),
        "want ragged edge tiles"
    );

    let reference = ParallelExecutor::with_config(1, cfg.clone())
        .execute_plan(&plan, Method::OpLcRc, &w, &a)
        .unwrap();
    let executor = ParallelExecutor::with_config(16, cfg);
    for run in 0..5 {
        let par = executor
            .execute_plan(&plan, Method::OpLcRc, &w, &a)
            .unwrap();
        assert_eq!(par, reference, "run {run} diverged from the reference");
        assert_eq!(par.checksum(), reference.checksum());
    }
}

/// Contract 3: the rank merge tree is exactly the flat fold. Each rank's
/// ledger equals the serial fold of its banks, the fold of the rank
/// ledgers equals the flat shard-order fold over all banks, and the
/// merged stats are that fold plus the (bank-countless) link phase.
#[test]
fn rank_tree_merge_equals_flat_fold_exactly() {
    let (w, a) = operands(FULL, 4842);
    let cfg = GemmConfig::upmem();
    let plan = ShardPlan::for_ranks(FULL, 32, 64);
    let par = ParallelExecutor::with_config(8, cfg.clone())
        .execute_plan(&plan, Method::LoCaLut, &w, &a)
        .unwrap();

    let bank_stats: Vec<Stats> = par
        .per_bank
        .iter()
        .map(|b| Stats::from_profile(&b.profile))
        .collect();
    let rank_plan = plan.rank_plan().unwrap();

    // Middle level: each rank ledger is the fold of its banks.
    for (rank, range) in rank_plan.assignments().iter().enumerate() {
        let mut fold = Stats::default();
        for stats in &bank_stats[range.clone()] {
            fold.merge(stats);
        }
        assert_eq!(par.rank_stats[rank], fold, "rank {rank} ledger drifted");
    }

    // Root: rank ledgers fold to the flat fold, bit for bit.
    let mut tree = Stats::default();
    for rank in &par.rank_stats {
        tree.merge(rank);
    }
    let mut flat = Stats::default();
    for stats in &bank_stats {
        flat.merge(stats);
    }
    assert_eq!(tree, flat, "rank tree != flat fold");

    // Total: the merged stats are the fold plus the link phase, which
    // adds simulated time but no bank profiles.
    let link = par.link_phase.as_ref().unwrap();
    let mut expect = flat.clone();
    expect.merge(&Stats::from_phase_ledger(link.ledger()));
    assert_eq!(par.stats, expect);
    assert_eq!(par.stats.banks(), 2048, "phase must not count as a bank");

    // Cross-check against a flat 2048-bank plan of the same GEMM: same
    // banks, same fold; only the contention phase separates the two.
    let flat_run = ParallelExecutor::with_config(8, cfg)
        .execute_plan(&ShardPlan::for_banks(FULL, 2048), Method::LoCaLut, &w, &a)
        .unwrap();
    assert_eq!(flat_run.values, par.values);
    assert_eq!(flat_run.per_bank, par.per_bank);
    assert_eq!(flat_run.stats, flat);
    assert!(flat_run.rank_stats.is_empty());
    assert_eq!(flat_run.link_phase, None);
}

/// The engine surface honors the same contracts: a ranked engine's
/// response is worker-count invariant and differs from the flat engine's
/// only by the contention phase.
#[test]
fn ranked_engine_responses_are_worker_count_invariant() {
    let (w, a) = operands(FULL, 99);
    let reference = Engine::builder()
        .threads(1)
        .ranks(32, 64)
        .build()
        .submit(&GemmRequest::new(w.clone(), a.clone()))
        .unwrap();
    assert_eq!(reference.per_bank.len(), 2048);
    for workers in [4usize, 16] {
        let engine = Engine::builder().threads(workers).ranks(32, 64).build();
        assert_eq!(
            engine.topology(),
            Topology::Ranked {
                ranks: 32,
                banks_per_rank: 64
            }
        );
        let par = engine
            .submit(&GemmRequest::new(w.clone(), a.clone()))
            .unwrap();
        assert_eq!(par.values, reference.values);
        assert_eq!(par.stats, reference.stats);
        assert_eq!(par.per_bank, reference.per_bank);
        assert_eq!(par.energy_pj, reference.energy_pj);
        assert_eq!(par.checksum, reference.checksum);
    }
}
