//! Guards the workspace wiring itself: the facade re-exports must
//! resolve, and a tiny end-to-end GEMM must run through the public API
//! (quantize → `GemmConfig::upmem()` → LoCaLUT vs Naive PIM agreeing
//! bit-exactly). If a crate is dropped from the workspace or a facade
//! `pub use` goes missing, this suite fails before anything subtler does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn facade_reexports_resolve() {
    // Touch one public item through every re-exported crate path so a
    // missing `pub use` in src/lib.rs is a compile error here.
    let _dpu: localut_repro::pim_sim::DpuConfig = localut_repro::pim_sim::DpuConfig::upmem();
    let _fmt: localut_repro::quant::NumericFormat = localut_repro::quant::NumericFormat::Int(3);
    let _cfg: localut_repro::localut::GemmConfig = localut_repro::localut::GemmConfig::upmem();
    let _model: localut_repro::dnn::ModelConfig = localut_repro::dnn::ModelConfig::bert_base();
    let _pq: localut_repro::pq::PqConfig =
        localut_repro::pq::PqConfig::standard(localut_repro::pq::PqVariant::PimDl);
    let _xpu: localut_repro::xpu::XpuModel = localut_repro::xpu::XpuModel::xeon_gold_5215();
}

#[test]
fn end_to_end_gemm_through_facade() {
    use localut_repro::localut::gemm::{GemmConfig, GemmDims, Method};
    use localut_repro::quant::{NumericFormat, Quantizer};

    let dims = GemmDims { m: 8, k: 24, n: 4 };
    let mut rng = StdRng::seed_from_u64(2026);
    let wdata: Vec<f32> = (0..dims.m * dims.k)
        .map(|_| rng.random_range(-1.0f32..1.0))
        .collect();
    let adata: Vec<f32> = (0..dims.k * dims.n)
        .map(|_| rng.random_range(-2.0f32..2.0))
        .collect();

    let wq = Quantizer::symmetric(NumericFormat::Bipolar);
    let aq = Quantizer::symmetric(NumericFormat::Int(3));
    let w = wq
        .quantize_matrix(&wdata, dims.m, dims.k)
        .expect("quantize W");
    let a = aq
        .quantize_matrix(&adata, dims.k, dims.n)
        .expect("quantize A");

    let cfg = GemmConfig::upmem();
    let fast = cfg.run(Method::LoCaLut, &w, &a).expect("LoCaLUT kernel");
    let slow = cfg.run(Method::NaivePim, &w, &a).expect("Naive PIM kernel");

    assert_eq!(fast.values.len(), dims.m * dims.n);
    assert_eq!(fast.values, slow.values, "kernels must agree bit-exactly");
}
