//! Integration tests for the §IV-D planner and the end-to-end inference
//! model: optimality, calibration points, phase accounting, and energy
//! ordering through the public API.

use dnn::{InferenceSim, ModelConfig, Phase, Workload};
use localut::capacity;
use localut::model::PerfModel;
use localut::plan::{Placement, Planner};
use localut::tiling::{DistributedGemm, TileGrid};
use localut::{GemmDims, Method};
use pim_sim::{DpuConfig, EnergyModel};
use quant::{BitConfig, NumericFormat};

/// §V-A calibration points through the public capacity API.
#[test]
fn section_v_a_calibration_points() {
    let dpu = DpuConfig::upmem();
    let w1 = NumericFormat::Bipolar;
    let a3 = NumericFormat::Int(3);
    assert_eq!(capacity::max_p_localut(w1, a3, dpu.wram_lut_budget()), 5);
    assert_eq!(capacity::max_p_localut(w1, a3, dpu.bank_lut_budget()), 8);
    assert_eq!(capacity::max_p_op(w1, a3, dpu.wram_lut_budget()), 3);
    assert_eq!(capacity::max_p_op(w1, a3, dpu.bank_lut_budget()), 6);
}

/// The planner's chosen plan is never beaten by any feasible alternative
/// it could have produced (brute-force check).
#[test]
fn planner_is_optimal_over_feasible_space() {
    let dpu = DpuConfig::upmem();
    let planner = Planner::new(dpu.clone());
    let model = PerfModel::upmem();
    for cfg_str in ["W1A3", "W2A2", "W4A4"] {
        let cfg: BitConfig = cfg_str.parse().unwrap();
        let (wf, af) = (cfg.weight_format(), cfg.activation_format());
        for m in [4usize, 64, 1024] {
            let dims = GemmDims { m, k: 768, n: 32 };
            let plan = planner.plan(dims, wf, af, None).unwrap();
            // Brute force every feasible (placement, p, k).
            let p_local = capacity::max_p_localut(wf, af, dpu.wram_lut_budget());
            let mut best = f64::INFINITY;
            if p_local > 0 {
                best = best.min(model.buffer_seconds(dims, p_local));
            }
            for k in [1u32, 2, 4, 8] {
                let p_max = planner.max_streaming_p(wf, af, k);
                for p in 1..=p_max {
                    best = best.min(model.streaming_seconds(dims, cfg.bw, p));
                }
            }
            assert!(
                plan.predicted_seconds <= best + 1e-15,
                "{cfg_str} M={m}: planner {} vs brute force {best}",
                plan.predicted_seconds
            );
        }
    }
}

/// Eq. 6 in action: sweeping M crosses from buffer-resident to streaming
/// exactly once (monotone decision).
#[test]
fn placement_decision_is_monotone_in_m() {
    let planner = Planner::new(DpuConfig::upmem());
    let cfg: BitConfig = "W2A2".parse().unwrap();
    let mut seen_streaming = false;
    for m in [1usize, 2, 4, 8, 16, 64, 256, 1024, 4096] {
        let plan = planner
            .plan(
                GemmDims { m, k: 768, n: 64 },
                cfg.weight_format(),
                cfg.activation_format(),
                Some(2),
            )
            .unwrap();
        match plan.placement {
            Placement::Streaming => seen_streaming = true,
            Placement::BufferResident => {
                assert!(!seen_streaming, "placement flipped back to buffer at M={m}");
            }
        }
    }
    assert!(seen_streaming, "large M should have switched to streaming");
}

/// Tiling covers the matrix exactly: tiles × grid ≥ dims, and the grid
/// never exceeds the DPU count.
#[test]
fn tiling_covers_and_fits() {
    for (m, k, n) in [
        (768usize, 768usize, 128usize),
        (3072, 768, 128),
        (7, 5, 3),
        (1, 1, 1),
    ] {
        let dims = GemmDims { m, k, n };
        let grid = TileGrid::choose(dims, 2048);
        assert!(grid.dpus_used() <= 2048);
        let tile = grid.tile_dims(dims);
        assert!(tile.m * grid.grid_m as usize >= m);
        assert!(tile.n * grid.grid_n as usize >= n);
        assert_eq!(tile.k, k);
    }
}

/// End-to-end: the Fig. 10 ordering holds for every paper config on BERT.
#[test]
fn bert_method_ordering() {
    let sim = InferenceSim::upmem_server();
    let wl = Workload::prefill(ModelConfig::bert_base(), 16);
    for cfg in BitConfig::paper_integer_configs() {
        let t = |m: Method| sim.run(m, cfg, &wl).unwrap().total_seconds();
        let naive = t(Method::NaivePim);
        let op = t(Method::Op);
        let localut = t(Method::LoCaLut);
        assert!(localut < op, "{cfg}: LoCaLUT {localut} !< OP {op}");
        assert!(op <= naive * 1.01, "{cfg}: OP {op} !<= naive {naive}");
    }
}

/// Phases sum to the total and the PIM share is the largest single phase
/// for LoCaLUT (Fig. 16a shape).
#[test]
fn bert_phase_accounting() {
    let sim = InferenceSim::upmem_server();
    let wl = Workload::prefill(ModelConfig::bert_base(), 32);
    let r = sim
        .run(Method::LoCaLut, "W1A3".parse().unwrap(), &wl)
        .unwrap();
    let phases = r.phases();
    let sum: f64 = phases.iter().map(|(_, s)| s).sum();
    assert!((sum - r.total_seconds()).abs() < 1e-9 * r.total_seconds());
    let gemm = r.phase_seconds(Phase::GemmOnPim);
    for (phase, seconds) in &phases {
        if *phase != Phase::GemmOnPim {
            assert!(gemm >= *seconds, "{} exceeds the PIM phase", phase.label());
        }
    }
}

/// Energy: LoCaLUT uses less than Naive PIM at every paper config, and
/// less than LTC at W1Ax (Fig. 14).
#[test]
fn energy_ordering() {
    let sim = InferenceSim::upmem_server();
    let model = EnergyModel::upmem();
    let sys = sim.dist.system.config().clone();
    let wl = Workload::prefill(ModelConfig::bert_base(), 16);
    for cfg in BitConfig::paper_integer_configs() {
        let e = |m: Method| {
            let r = sim.run(m, cfg, &wl).unwrap();
            model.system_energy(&sys, &r.profile).total_j()
        };
        assert!(e(Method::LoCaLut) < e(Method::NaivePim), "{cfg}");
        if cfg.bw == 1 {
            assert!(e(Method::LoCaLut) < e(Method::Ltc), "{cfg} vs LTC");
        }
    }
}

/// Distributed GEMM speedups stay above 1 for the whole Fig. 11 grid
/// corner cases.
#[test]
fn fig11_corners_stay_above_one() {
    let dist = DistributedGemm::upmem_server();
    let cfg: BitConfig = "W1A3".parse().unwrap();
    for (m, k) in [(128usize, 128usize), (128, 1024), (1024, 128), (1024, 1024)] {
        let s = dist
            .speedup_over(
                Method::LoCaLut,
                Method::NaivePim,
                GemmDims { m, k, n: 128 },
                cfg.weight_format(),
                cfg.activation_format(),
            )
            .unwrap();
        assert!(s > 1.0, "({m},{k}): speedup {s} <= 1");
    }
}
