//! Concurrency stress tests for the serving scheduler: many client
//! threads hammering one `Server` must produce summaries bit-identical to
//! a serial replay of the same seeded request log — for every worker
//! count, arrival mode, and batching policy — and the engine itself must
//! be shareable across threads (`Send + Sync`) for that to be sound.

use engine::serve::{drive_client, replay_serial, ArrivalMode, ServeConfig, Server};
use engine::traffic::{client_log, full_log, Mix, TrafficConfig};
use engine::{Engine, GemmRequest, ServeSummary};
use quant::{NumericFormat, QMatrix};
use std::sync::Arc;

/// The static assertion the whole scheduler rests on: a shared `Engine`
/// (and the `Server` over it) may cross and be referenced from many
/// threads. A regression here fails to compile.
#[test]
fn engine_and_server_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<Server>();
    assert_send_sync::<engine::Ticket<engine::GemmResponse>>();
}

fn serve_concurrently(
    engine: &Arc<Engine>,
    traffic: &TrafficConfig,
    workers: usize,
    max_batch: usize,
    mode: ArrivalMode,
) -> ServeSummary {
    let server = Server::start(
        engine.clone(),
        &ServeConfig::builder()
            .workers(workers)
            .max_batch(max_batch)
            .build()
            .expect("test serve config is valid"),
    );
    std::thread::scope(|scope| {
        for client in 0..traffic.clients {
            let server = &server;
            let log = client_log(traffic, client);
            scope.spawn(move || drive_client(server, log, mode));
        }
    });
    let report = server.join();
    // Host-side scheduling observables stay plausible even though they
    // are not part of the deterministic surface.
    assert!(report.dispatches >= 1);
    assert!(report.largest_batch <= traffic.total_requests() as u64);
    report.summary
}

#[test]
fn any_interleaving_matches_serial_replay_bitwise() {
    let traffic = TrafficConfig {
        clients: 6,
        requests_per_client: 3,
        mix: Mix::Mixed,
        seed: 97,
        decode_tokens: 4,
    };
    let engine = Arc::new(Engine::builder().threads(2).banks(4).build());
    let serial = replay_serial(&engine, &full_log(&traffic));
    assert_eq!(
        serial.requests + serial.failed_requests,
        traffic.total_requests() as u64
    );
    assert!(serial.gemm_requests > 0, "mixed traffic must contain GEMMs");
    assert!(
        serial.infer_requests > 0,
        "mixed traffic must contain inference"
    );

    // Worker counts below, at, and above the client count; both arrival
    // modes; batching from disabled to queue-wide. Every combination must
    // merge to the identical summary — stats, energy, checksum, latency
    // percentiles, all integer-exact.
    for (workers, max_batch, mode) in [
        (1, 1, ArrivalMode::Closed),
        (2, 4, ArrivalMode::Closed),
        (6, 2, ArrivalMode::Open),
        (8, 16, ArrivalMode::Open),
    ] {
        let concurrent = serve_concurrently(&engine, &traffic, workers, max_batch, mode);
        assert_eq!(
            concurrent, serial,
            "summary diverged at workers={workers} max_batch={max_batch} mode={mode:?}"
        );
    }
}

#[test]
fn gemm_only_hammering_is_interleaving_invariant() {
    // A pure-GEMM mix maximizes coalescing pressure: every request shares
    // one compatibility class per bank count, so dynamic batches actually
    // form under the open loop.
    let traffic = TrafficConfig {
        clients: 8,
        requests_per_client: 2,
        mix: Mix::Gemm,
        seed: 5,
        decode_tokens: 4,
    };
    let engine = Arc::new(Engine::builder().threads(1).banks(2).build());
    let serial = replay_serial(&engine, &full_log(&traffic));
    assert_eq!(serial.failed_requests, 0);
    assert_eq!(serial.infer_requests, 0);
    let concurrent = serve_concurrently(&engine, &traffic, 3, 8, ArrivalMode::Open);
    assert_eq!(concurrent, serial);
    // The checksum is a real fingerprint: a different seed moves it.
    let other = replay_serial(&engine, &full_log(&TrafficConfig { seed: 6, ..traffic }));
    assert_ne!(other.checksum, serial.checksum);
}

#[test]
fn warm_cache_does_not_change_the_summary() {
    // Serial replay on a cold engine vs a server run on an engine whose
    // LUT cache the replay already warmed: responses must stay bitwise
    // identical (cache outcomes are observability, not semantics).
    let traffic = TrafficConfig {
        clients: 2,
        requests_per_client: 2,
        mix: Mix::Gemm,
        seed: 31,
        decode_tokens: 4,
    };
    let engine = Arc::new(Engine::builder().threads(1).banks(2).build());
    let cold = replay_serial(&engine, &full_log(&traffic));
    assert!(engine.lut_cache_stats().lookups() > 0);
    let warm = serve_concurrently(&engine, &traffic, 2, 4, ArrivalMode::Closed);
    assert_eq!(warm, cold);
}

#[test]
fn infeasible_requests_fail_identically_everywhere() {
    let engine = Arc::new(Engine::builder().threads(1).banks(2).build());
    let bad = || {
        GemmRequest::new(
            QMatrix::pseudo_random(4, 4, NumericFormat::Int(16), 1),
            QMatrix::pseudo_random(4, 2, NumericFormat::Int(16), 2),
        )
    };
    let server = Server::start(engine.clone(), &ServeConfig::default());
    let tickets: Vec<_> = (0..4).map(|_| server.submit_gemm(bad())).collect();
    for ticket in tickets {
        assert!(ticket.wait().is_err());
    }
    let report = server.join();
    assert_eq!(report.summary.failed_requests, 4);
    assert_eq!(report.summary.requests, 0);
    assert_eq!(
        report.summary.latency,
        engine::serve::LatencyDigest::default()
    );
}
