//! Property-based integration tests (proptest): kernel ≡ reference over
//! random shapes and bitwidths, canonicalization invariance, the
//! combinatorial bijections, associativity of the runtime's statistics
//! merge (flat and through arbitrary rank trees), exact-cover of ranked
//! shard plans, and serial/parallel bit-exactness of the bank-parallel
//! executor, all through the public API.

use localut::canonical::CanonicalLut;
use localut::gemm::{reference_gemm, GemmConfig, GemmDims, Method};
use localut::kernels::{
    par_run, LcKernel, LtcKernel, NaiveKernel, OpKernel, RcKernel, SharedLuts, StreamingKernel,
};
use localut::multiset;
use localut::packed::{pack_index, unpack_index};
use localut::perm::{apply, lehmer_rank, lehmer_unrank, sort_permutation};
use localut::value::dot_codes;
use pim_sim::{Category, CycleLedger, DpuConfig, Stats};
use proptest::prelude::*;
use quant::{NumericFormat, QMatrix};
use runtime::{ParallelExecutor, RankPlan, ShardPlan};

fn qmatrix(rows: usize, cols: usize, format: NumericFormat, seed: u64) -> QMatrix {
    QMatrix::pseudo_random(rows, cols, format, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every kernel reproduces the reference GEMM exactly on random
    /// shapes, bitwidths, and packing degrees.
    #[test]
    fn kernels_match_reference(
        m in 1usize..12,
        k in 1usize..24,
        n in 1usize..6,
        bw in 1u8..4,
        ba in 2u8..4,
        p in 1u32..5,
        seed in 0u64..1000,
    ) {
        let wf = NumericFormat::default_int(bw);
        let af = NumericFormat::Int(ba);
        let w = qmatrix(m, k, wf, seed);
        let a = qmatrix(k, n, af, seed.wrapping_add(1));
        let reference: Vec<i32> = reference_gemm(&w, &a).unwrap();
        let cfg = DpuConfig::upmem();

        let naive = NaiveKernel::new(cfg.clone(), wf, af).run(&w, &a).unwrap();
        prop_assert_eq!(&naive.values, &reference);
        let ltc = LtcKernel::new(cfg.clone(), wf, af).run(&w, &a).unwrap();
        prop_assert_eq!(&ltc.values, &reference);
        let op = OpKernel::with_p(cfg.clone(), wf, af, p).unwrap().run(&w, &a).unwrap();
        prop_assert_eq!(&op.values, &reference);
        let lc = LcKernel::with_p(cfg.clone(), wf, af, p).unwrap().run(&w, &a).unwrap();
        prop_assert_eq!(&lc.values, &reference);
        let rc = RcKernel::with_p(cfg.clone(), wf, af, p).unwrap().run(&w, &a).unwrap();
        prop_assert_eq!(&rc.values, &reference);
        if let Ok(streaming) = StreamingKernel::new(cfg, wf, af, p, 2) {
            let s = streaming.run(&w, &a).unwrap();
            prop_assert_eq!(&s.values, &reference);
        }
    }

    /// The blocked tile loops are bitwise-identical to the scalar
    /// reference over ragged shapes — `n` is drawn past the tile width so
    /// full tiles, partial last tiles, and sub-tile shapes all appear, and
    /// the shared-LUT entry point (the path the bank-parallel executor
    /// drives) is exercised directly alongside the self-building `run`.
    #[test]
    fn blocked_kernels_match_scalar_reference(
        m in 1usize..24,
        k in 1usize..40,
        n in 1usize..40,
        bw in 1u8..3,
        ba in 2u8..4,
        p in 1u32..6,
        seed in 0u64..1000,
    ) {
        let wf = NumericFormat::default_int(bw);
        let af = NumericFormat::Int(ba);
        let w = qmatrix(m, k, wf, seed);
        let a = qmatrix(k, n, af, seed.wrapping_add(3));
        let reference: Vec<i32> = reference_gemm(&w, &a).unwrap();
        let cfg = DpuConfig::upmem();

        let luts = SharedLuts::build(wf, af, p).unwrap();
        let rc = RcKernel::with_p(cfg.clone(), wf, af, p).unwrap();
        prop_assert_eq!(&rc.run_with_luts(&w, &a, &luts).unwrap().values, &reference);
        if let Ok(s) = StreamingKernel::new(cfg, wf, af, p, 2) {
            prop_assert_eq!(&s.run_with_luts(&w, &a, &luts).unwrap().values, &reference);
        }
    }

    /// Canonicalization invariance (§IV-A): for ANY joint permutation of
    /// the packed (weight, activation) pairs, the canonical lookup finds
    /// the same inner product.
    #[test]
    fn canonical_lookup_is_permutation_invariant(
        wcodes in prop::collection::vec(0u16..4, 3),
        acodes in prop::collection::vec(0u16..8, 3),
        perm_rank in 0u64..6,
    ) {
        let wf = NumericFormat::Int(2);
        let af = NumericFormat::Int(3);
        let lut = CanonicalLut::<i32>::build(wf, af, 3, 1 << 22).unwrap();
        let expected: i32 = dot_codes(wf, af, &wcodes, &acodes);

        let pi = lehmer_unrank(perm_rank, 3).unwrap();
        let wp = apply(&pi, &wcodes);
        let ap = apply(&pi, &acodes);
        let sort = sort_permutation(&ap);
        let sorted_a = apply(&sort, &ap);
        let reordered_w = apply(&sort, &wp);
        let col = lut.column_of(&sorted_a).unwrap();
        let row = pack_index(&reordered_w, 2);
        prop_assert_eq!(lut.lookup(row, col), expected);
    }

    /// Multiset rank/unrank is a bijection on random inputs.
    #[test]
    fn multiset_rank_bijection(
        mut codes in prop::collection::vec(0u16..16, 1..6),
    ) {
        codes.sort_unstable();
        let r = multiset::rank(&codes, 16).unwrap();
        prop_assert_eq!(multiset::unrank(r, 16, codes.len() as u32).unwrap(), codes);
    }

    /// Lehmer rank/unrank is a bijection; sorting permutations always sort.
    #[test]
    fn permutation_properties(
        codes in prop::collection::vec(0u16..32, 1..8),
    ) {
        let perm = sort_permutation(&codes);
        let sorted = apply(&perm, &codes);
        prop_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let rank = lehmer_rank(&perm).unwrap();
        prop_assert_eq!(lehmer_unrank(rank, perm.len() as u32).unwrap(), perm);
    }

    /// pack/unpack index roundtrip for arbitrary widths.
    #[test]
    fn pack_index_roundtrip(
        bits in 1u8..9,
        p in 1u32..5,
        seed in 0u64..10_000,
    ) {
        let space = 1u64 << bits;
        let codes: Vec<u16> = (0..p as usize)
            .map(|i| ((seed >> (i * 3)) % space) as u16)
            .collect();
        let idx = pack_index(&codes, bits);
        prop_assert_eq!(unpack_index(idx, bits, p), codes);
    }

    /// `Stats::merge` is associative and commutative with `Stats::default()`
    /// as identity, bitwise-exactly, on arbitrary ledgers — the property
    /// that makes the runtime's cross-bank merge independent of merge
    /// order. (Folding raw `f64` ledgers has no such guarantee.)
    #[test]
    fn stats_merge_associative(
        secs in prop::collection::vec(0.0f64..1.0, 9),
        counters in prop::collection::vec(0u64..1_000_000, 6),
    ) {
        let stats_from = |chunk: &[f64], salt: u64| {
            let mut l = CycleLedger::new();
            l.charge(Category::LutLoad, chunk[0] * 1e-3);
            l.charge(Category::IndexCalc, chunk[1]);
            l.charge(Category::Accumulate, chunk[2] * 1e6);
            l.instructions = counters[(salt as usize) % 6];
            l.dram_read_bytes = counters[(salt as usize + 1) % 6];
            Stats::from_ledger(&l)
        };
        let a = stats_from(&secs[0..3], 0);
        let b = stats_from(&secs[3..6], 2);
        let c = stats_from(&secs[6..9], 4);
        // Associativity (bitwise: Stats implements Eq).
        prop_assert_eq!(
            a.clone().merged(&b).merged(&c),
            a.clone().merged(&b.clone().merged(&c))
        );
        // Commutativity.
        prop_assert_eq!(a.clone().merged(&b), b.clone().merged(&a));
        // Identity.
        prop_assert_eq!(a.clone().merged(&Stats::default()), a);
    }

    /// The rank merge tree is exact for **arbitrary** rank/bank splits of
    /// the same ledger set: folding per-rank then across ranks lands on
    /// the same `Stats` as the flat fold, bit for bit — the property that
    /// licenses the executor's hierarchical merge at any machine shape.
    #[test]
    fn rank_tree_merge_equals_flat_fold(
        secs in prop::collection::vec(0.0f64..1.0, 2..40),
        banks_per_rank in 1u32..9,
    ) {
        let bank_stats: Vec<Stats> = secs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut l = CycleLedger::new();
                l.charge(Category::LutLoad, *s);
                l.charge(Category::Accumulate, s * 0.3);
                l.instructions = (i as u64 + 1) * 17;
                l.dram_read_bytes = (i as u64) * 129;
                Stats::from_ledger(&l)
            })
            .collect();
        let rank_plan = RankPlan::new(bank_stats.len(), 64, banks_per_rank);

        let mut flat = Stats::default();
        for stats in &bank_stats {
            flat.merge(stats);
        }
        let mut tree = Stats::default();
        for range in rank_plan.assignments() {
            let mut rank = Stats::default();
            for stats in &bank_stats[range.clone()] {
                rank.merge(stats);
            }
            tree.merge(&rank);
        }
        prop_assert_eq!(tree, flat);
    }

    /// A ranked plan covers every output cell exactly once for arbitrary
    /// machine shapes and GEMM sizes, and its rank level partitions the
    /// shard ids exactly: consecutive, disjoint, within the per-rank bank
    /// budget, and never more ranks than the machine has.
    #[test]
    fn rank_plan_covers_every_cell_exactly_once(
        ranks in 1u32..40,
        banks_per_rank in 1u32..70,
        m in 1usize..90,
        n in 1usize..70,
    ) {
        let dims = GemmDims { m, k: 3, n };
        let plan = ShardPlan::for_ranks(dims, ranks, banks_per_rank);
        // Output cover: every (row, col) in exactly one shard.
        let mut covered = vec![false; m * n];
        for shard in plan.shards() {
            for r in shard.rows.clone() {
                for c in shard.cols.clone() {
                    prop_assert!(!covered[r * n + c], "overlap at ({}, {})", r, c);
                    covered[r * n + c] = true;
                }
            }
        }
        prop_assert!(covered.iter().all(|&v| v), "hole in the shard cover");
        // Rank cover: the assignments tile 0..len exactly.
        let rp = plan.rank_plan().expect("for_ranks builds the rank level");
        prop_assert!(rp.populated() <= ranks as usize);
        let mut next = 0usize;
        for range in rp.assignments() {
            prop_assert_eq!(range.start, next);
            prop_assert!(!range.is_empty());
            prop_assert!(range.len() <= banks_per_rank as usize);
            next = range.end;
        }
        prop_assert_eq!(next, plan.len());
    }

    /// The bank-parallel executor is bit-identical to the serial path on
    /// random shapes and thread counts: values match `GemmConfig::run`,
    /// and for a fixed shard plan the merged profile and stats match the
    /// 1-worker execution of the same plan exactly.
    #[test]
    fn parallel_execution_matches_serial(
        m in 1usize..12,
        k in 1usize..24,
        n in 1usize..6,
        banks in 1u32..10,
        threads in 2usize..9,
        seed in 0u64..1000,
    ) {
        let wf = NumericFormat::Int(2);
        let af = NumericFormat::Int(3);
        let w = qmatrix(m, k, wf, seed);
        let a = qmatrix(k, n, af, seed.wrapping_add(1));
        let cfg = GemmConfig::upmem();
        let dims = GemmDims { m, k, n };
        let plan = ShardPlan::for_banks(dims, banks);

        for method in [Method::NaivePim, Method::OpLcRc, Method::LoCaLut] {
            let serial = cfg.run(method, &w, &a).unwrap();
            let one = ParallelExecutor::with_config(1, cfg.clone())
                .execute_plan(&plan, method, &w, &a).unwrap();
            let par = ParallelExecutor::with_config(threads, cfg.clone())
                .execute_plan(&plan, method, &w, &a).unwrap();
            prop_assert_eq!(&par.values, &serial.values);
            prop_assert_eq!(&par, &one); // profiles, stats, per-bank: bitwise
            // par_run: values AND profile bit-identical to the serial run.
            let host_par = par_run(&cfg, method, &w, &a, threads).unwrap();
            prop_assert_eq!(&host_par.values, &serial.values);
            prop_assert_eq!(&host_par.profile, &serial.profile);
        }
    }

    /// run().profile == cost(dims) for the parameterized kernels — the
    /// functional and analytic paths can never drift.
    #[test]
    fn run_profile_equals_cost_property(
        m in 1usize..10,
        k in 1usize..20,
        n in 1usize..5,
        p in 1u32..4,
        seed in 0u64..100,
    ) {
        let wf = NumericFormat::Int(2);
        let af = NumericFormat::Int(3);
        let w = qmatrix(m, k, wf, seed);
        let a = qmatrix(k, n, af, seed + 7);
        let dims = GemmDims { m, k, n };
        let cfg = DpuConfig::upmem();

        let op = OpKernel::with_p(cfg.clone(), wf, af, p).unwrap();
        prop_assert_eq!(op.run(&w, &a).unwrap().profile, op.cost(dims));
        let rc = RcKernel::with_p(cfg.clone(), wf, af, p).unwrap();
        prop_assert_eq!(rc.run(&w, &a).unwrap().profile, rc.cost(dims));
        if let Ok(s) = StreamingKernel::new(cfg, wf, af, p, 2) {
            prop_assert_eq!(s.run(&w, &a).unwrap().profile, s.cost(dims));
        }
    }
}
