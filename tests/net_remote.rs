//! Multi-process acceptance tests for the network serving front-end: a
//! real `serve-daemon` child process, driven by real `loadgen --remote`
//! child processes over loopback TCP. Pins the PR's contract:
//!
//! * a remote run's summary JSON is **byte-identical** to an in-process
//!   run of the same workload;
//! * serially replaying the daemon's request log reproduces the daemon's
//!   summary **bit for bit**, for multiple worker counts and with the
//!   workload split across ≥ 2 client processes;
//! * a drain request shuts the daemon down with exit code 0.

use engine::serve::replay_serial;
use engine::traffic::{full_log, Mix, TrafficConfig};
use engine::Engine;
use netserve::json::Json;
use netserve::wire;
use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

/// Kills the daemon if a test fails before draining it, so a broken run
/// fails instead of hanging the suite.
struct Daemon {
    child: Child,
    addr: String,
    log: PathBuf,
    out: PathBuf,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("netserve-{}-{name}", std::process::id()))
}

fn spawn_daemon(tag: &str, threads: usize) -> Daemon {
    let port_file = tmp(&format!("{tag}-port.txt"));
    let log = tmp(&format!("{tag}-requests.jsonl"));
    let out = tmp(&format!("{tag}-serve.json"));
    let _ = std::fs::remove_file(&port_file);
    let child = Command::new(env!("CARGO_BIN_EXE_serve-daemon"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--threads",
            &threads.to_string(),
            "--engine-threads",
            "1",
            "--port-file",
        ])
        .arg(&port_file)
        .arg("--log")
        .arg(&log)
        .arg("--out")
        .arg(&out)
        .spawn()
        .expect("serve-daemon spawns");
    // The daemon writes HOST:PORT once bound; poll for it.
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&port_file) {
            if !addr.is_empty() {
                break addr;
            }
        }
        assert!(Instant::now() < deadline, "daemon never published its port");
        std::thread::sleep(Duration::from_millis(25));
    };
    let _ = std::fs::remove_file(&port_file);
    Daemon {
        child,
        addr,
        log,
        out,
    }
}

fn loadgen(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_loadgen"));
    cmd.args(args);
    cmd
}

/// Reads the daemon's `--out` JSON back into a typed summary.
fn daemon_summary(daemon: &Daemon) -> engine::ServeSummary {
    let text = std::fs::read_to_string(&daemon.out).expect("daemon wrote --out");
    let doc = Json::parse(&text).expect("daemon out parses");
    let Json::Object(pairs) = &doc else {
        panic!("daemon out is not an object");
    };
    let summary = pairs
        .iter()
        .find(|(k, _)| *k == "summary")
        .map(|(_, v)| v)
        .expect("daemon out has a summary");
    wire::summary_from_json(summary).expect("summary decodes")
}

/// Serially replays the daemon's request log on a fresh single-threaded
/// engine.
fn replay_daemon_log(daemon: &Daemon) -> engine::ServeSummary {
    let text = std::fs::read_to_string(&daemon.log).expect("daemon wrote --log");
    let log = wire::parse_request_log(&text).expect("request log parses");
    let reference = Engine::builder().threads(1).build();
    replay_serial(&reference, &log)
}

fn cleanup(daemon: &Daemon, extra: &[&PathBuf]) {
    let _ = std::fs::remove_file(&daemon.log);
    let _ = std::fs::remove_file(&daemon.out);
    for path in extra {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn remote_run_is_byte_identical_to_in_process_and_replays_bitwise() {
    let mut daemon = spawn_daemon("single", 2);
    let local_out = tmp("single-local.json");
    let remote_out = tmp("single-remote.json");

    let workload = ["--clients", "2", "--requests", "2", "--seed", "9"];
    let local = loadgen(&workload)
        .arg("--out")
        .arg(&local_out)
        .status()
        .expect("local loadgen runs");
    assert!(local.success(), "in-process run failed: {local}");

    let remote = loadgen(&["--remote", &daemon.addr])
        .args(workload)
        .arg("--drain")
        .arg("--out")
        .arg(&remote_out)
        .status()
        .expect("remote loadgen runs");
    assert!(remote.success(), "remote run failed: {remote}");

    // Draining must exit the daemon cleanly (code 0).
    let status = daemon.child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit after drain: {status}");

    let local_json = std::fs::read_to_string(&local_out).expect("local out");
    let remote_json = std::fs::read_to_string(&remote_out).expect("remote out");
    assert_eq!(
        local_json, remote_json,
        "remote transport changed a deterministic byte"
    );

    // And the daemon's own log replays to its own summary, bit for bit.
    let summary = daemon_summary(&daemon);
    assert_eq!(summary.requests, 4);
    assert_eq!(replay_daemon_log(&daemon), summary);
    cleanup(&daemon, &[&local_out, &remote_out]);
}

#[test]
fn split_client_processes_replay_bitwise_at_a_different_worker_count() {
    let mut daemon = spawn_daemon("split", 3);
    let traffic = TrafficConfig {
        clients: 4,
        requests_per_client: 1,
        mix: Mix::Mixed,
        seed: 123,
        decode_tokens: 4,
    };
    let workload = ["--clients", "4", "--requests", "1", "--seed", "123"];

    // Two concurrent OS processes, each driving half the client ids.
    let mut first = loadgen(&["--remote", &daemon.addr])
        .args(workload)
        .args(["--client-offset", "0", "--client-count", "2"])
        .spawn()
        .expect("first half spawns");
    let mut second = loadgen(&["--remote", &daemon.addr])
        .args(workload)
        .args(["--client-offset", "2", "--client-count", "2"])
        .spawn()
        .expect("second half spawns");
    assert!(first.wait().expect("first exits").success());
    assert!(second.wait().expect("second exits").success());

    // A third, traffic-less process performs the drain.
    let drain = loadgen(&["--remote", &daemon.addr])
        .args(workload)
        .args(["--client-count", "0", "--drain"])
        .status()
        .expect("drain process runs");
    assert!(drain.success(), "drain run failed: {drain}");
    let status = daemon.child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit after drain: {status}");

    // The daemon saw the union of both processes' traffic; its summary
    // must equal both the serial replay of its own log *and* the serial
    // replay of the canonical workload (the fold is order-invariant).
    let summary = daemon_summary(&daemon);
    assert_eq!(summary.requests, 4);
    assert_eq!(replay_daemon_log(&daemon), summary);
    let reference = Engine::builder().threads(1).build();
    assert_eq!(replay_serial(&reference, &full_log(&traffic)), summary);
    cleanup(&daemon, &[]);
}
