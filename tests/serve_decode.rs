//! Continuous-batching correctness: decoder sessions decomposed into
//! per-step schedulable units must be *semantically invisible* — a session
//! served step-by-step on the concurrent scheduler returns the exact
//! integers of the monolithic batch API, and the deterministic summary
//! (including the new TTFT / per-decode-step percentiles) is bit-identical
//! for every worker count, arrival mode, and interleaving against
//! `replay_serial`. What continuous batching *is* allowed to change is
//! scheduling: new requests must be admitted between a session's decode
//! waves instead of head-of-line blocking behind the whole generation.

use dnn::{ModelConfig, Workload};
use engine::serve::{drive_client, replay_serial, ArrivalMode, ServeConfig, Server};
use engine::traffic::{client_log, full_log, Mix, TrafficConfig};
use engine::{Engine, GemmRequest, InferenceRequest, ServeSummary, SessionRequest};
use quant::{NumericFormat, QMatrix};
use std::sync::Arc;

fn session(batch: usize, decode_tokens: u32) -> SessionRequest {
    SessionRequest::new(Workload::with_decode(
        ModelConfig::opt_125m(),
        batch,
        decode_tokens,
    ))
}

fn serve_concurrently(
    engine: &Arc<Engine>,
    traffic: &TrafficConfig,
    workers: usize,
    mode: ArrivalMode,
) -> ServeSummary {
    let server = Server::start(
        engine.clone(),
        &ServeConfig::builder()
            .workers(workers)
            .max_batch(4)
            .build()
            .expect("test serve config is valid"),
    );
    std::thread::scope(|scope| {
        for client in 0..traffic.clients {
            let server = &server;
            let log = client_log(traffic, client);
            scope.spawn(move || drive_client(server, log, mode));
        }
    });
    server.join().summary
}

#[test]
fn session_decomposition_matches_monolithic_batch_bitwise() {
    // The step-by-step session fold must replicate `run_batch` exactly:
    // same merged stats, same single end-of-session energy rounding.
    let engine = Engine::builder().threads(2).banks(4).build();
    let request = session(2, 3);
    let stepped = engine.infer_session(&request).expect("feasible");
    let monolithic = engine
        .infer(&InferenceRequest::serving(request.workload.session_steps()))
        .expect("feasible");
    assert_eq!(stepped.stats, monolithic.stats);
    assert_eq!(stepped.energy_pj, monolithic.energy_pj);
    assert_eq!(stepped.reports.len(), 4); // prefill + 3 decode steps
    assert_eq!(
        stepped.ttft_femtos + stepped.decode_step_femtos.iter().sum::<u128>(),
        stepped.stats.snapshot().total_femtos
    );

    // And the scheduler path is the same state machine: a session served
    // with continuous batching returns the identical response.
    let server = Server::start(Arc::new(engine), &ServeConfig::default());
    let scheduled = server
        .submit_session(request)
        .wait()
        .expect("session serves");
    let report = server.join();
    assert_eq!(scheduled.stats, stepped.stats);
    assert_eq!(scheduled.energy_pj, stepped.energy_pj);
    assert_eq!(scheduled.ttft_femtos, stepped.ttft_femtos);
    assert_eq!(scheduled.decode_step_femtos, stepped.decode_step_femtos);
    assert_eq!(report.summary.session_requests, 1);
    assert_eq!(report.summary.decode_steps, 3);
}

#[test]
fn decode_traffic_is_interleaving_invariant_with_percentiles() {
    // Pure decoder-session traffic: every worker count and arrival mode
    // must land on the serial replay's exact summary — including the
    // TTFT and per-decode-step digests, whose sample multisets must not
    // depend on which worker ran which step when.
    let traffic = TrafficConfig {
        clients: 3,
        requests_per_client: 2,
        mix: Mix::Decode,
        seed: 1913,
        decode_tokens: 4,
    };
    let engine = Arc::new(Engine::builder().threads(1).banks(4).build());
    let serial = replay_serial(&engine, &full_log(&traffic));
    assert_eq!(serial.failed_requests, 0);
    assert_eq!(serial.session_requests, traffic.total_requests() as u64);
    assert!(serial.decode_steps > 0);
    assert!(serial.ttft.p50 > 0, "prefill steps must charge time");
    assert!(serial.decode.p50 > 0, "decode steps must charge time");
    // Decode GEMMs are skinny: a decode step must be cheaper than the
    // batch-wide prefill that opened its session.
    assert!(serial.decode.max < serial.ttft.p50);

    for (workers, mode) in [
        (1, ArrivalMode::Closed),
        (4, ArrivalMode::Closed),
        (1, ArrivalMode::Open),
        (4, ArrivalMode::Open),
    ] {
        let concurrent = serve_concurrently(&engine, &traffic, workers, mode);
        assert_eq!(
            concurrent, serial,
            "summary diverged at workers={workers} mode={mode:?}"
        );
    }
}

#[test]
fn chat_traffic_is_interleaving_invariant() {
    // The bursty mix — sessions interleaved with one-shot inference and
    // GEMMs — is the arrival pattern continuous batching exists for;
    // its summary must stay exactly as deterministic as the pure mixes.
    let traffic = TrafficConfig {
        clients: 4,
        requests_per_client: 3,
        mix: Mix::Chat,
        seed: 411,
        decode_tokens: 4,
    };
    let engine = Arc::new(Engine::builder().threads(1).banks(4).build());
    let serial = replay_serial(&engine, &full_log(&traffic));
    assert_eq!(serial.failed_requests, 0);
    assert!(
        serial.session_requests > 0,
        "chat traffic must have sessions"
    );
    assert!(
        serial.gemm_requests + serial.infer_requests > 0,
        "chat traffic must have one-shot requests"
    );
    assert_eq!(
        serial.requests,
        serial.gemm_requests + serial.infer_requests + serial.session_requests
    );

    for workers in [1, 4] {
        let concurrent = serve_concurrently(&engine, &traffic, workers, ArrivalMode::Open);
        assert_eq!(concurrent, serial, "summary diverged at workers={workers}");
    }
}

#[test]
fn new_requests_are_admitted_between_decode_waves() {
    // The head-of-line test: one worker, one long session, then a GEMM
    // submitted while the session decodes. Under monolithic scheduling the
    // GEMM would wait out every decode step; under continuous batching the
    // worker runs one session step per dispatch, so the GEMM (queued
    // behind only the next step) completes while the session is still
    // pending.
    //
    // The overlap itself is a host-scheduling outcome: on a busy (or
    // single-CPU) machine the woken worker can burn through the whole
    // session before this thread's GEMM enqueue wins the race into the
    // queue. Such an attempt proves nothing either way, so it is retried
    // on a fresh server; only a scheduler that head-of-line blocks on
    // *every* attempt fails the test. The one-step-per-dispatch shape is
    // deterministic and asserted on every attempt regardless.
    const DECODE_TOKENS: u32 = 256;
    for _attempt in 0..5 {
        let engine = Arc::new(Engine::builder().threads(1).banks(2).build());
        let server = Server::start(
            engine,
            &ServeConfig::builder()
                .workers(1)
                .max_batch(1)
                .build()
                .expect("valid"),
        );
        // Build the GEMM operands up front so the only work between the
        // two submissions is the enqueue itself.
        let gemm = GemmRequest::new(
            QMatrix::pseudo_random(24, 20, NumericFormat::Bipolar, 7),
            QMatrix::pseudo_random(20, 6, NumericFormat::Int(3), 8),
        );
        let session_ticket = server.submit_session(session(1, DECODE_TOKENS));
        let gemm_ticket = server.submit_gemm(gemm);
        gemm_ticket.wait().expect("gemm serves");
        let overlapped = !session_ticket.is_ready();
        let response = session_ticket.wait().expect("session completes");
        assert_eq!(response.decode_step_femtos.len(), DECODE_TOKENS as usize);
        let report = server.join();
        assert_eq!(report.summary.failed_requests, 0);
        assert_eq!(report.summary.requests, 2);
        // Prefill + each decode step + the solo GEMM each dispatch
        // separately — continuous batching's observable shape, which no
        // interleaving can change.
        assert_eq!(report.dispatches, u64::from(DECODE_TOKENS) + 2);
        if overlapped {
            return;
        }
    }
    panic!(
        "the queued GEMM never completed while the session was still \
         pending: the scheduler is head-of-line blocking behind the \
         whole generation"
    );
}

#[test]
fn session_phases_plan_separately() {
    // The per-phase planner split (fig. 13 / fig. 19): at W1A3 the
    // batch-wide prefill and the single-token decode tile pick different
    // execution plans, so the two phases key separately in the LUT cache.
    let engine = Engine::builder().threads(1).banks(2).build();
    let plans = engine
        .session_plans(&session(2, 4))
        .expect("paper shape plans");
    assert_ne!(
        plans.prefill_key(),
        plans.decode_key(),
        "prefill and decode must not share a LUT image at W1A3"
    );
}
