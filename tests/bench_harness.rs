//! End-to-end tests for the perf-harness subsystem: scenario execution →
//! report → JSON → comparison, wired exactly the way `bench-runner` and
//! the CI `perf-gate` job use it.
//!
//! The expensive scenarios (the full fig09 shapes) are exercised by the
//! release-profile `bench-runner` run in CI; here we drive the cheap
//! subset so the properties — schema round-trip, determinism modulo
//! wall-clock, threshold edges — are pinned in the debug test suite too.

use bench::regress::{compare, passes_gate, Verdict};
use bench::report::{BenchReport, SCHEMA_VERSION};
use bench::scenario::{run_scenarios, select, RunProfile, ScenarioCtx};

/// The cheap scenario subset (analytic + the small functional ones,
/// including the concurrent serving scheduler) that keeps this test fast
/// under the debug profile.
fn cheap_measured(threads: usize) -> Vec<bench::scenario::MeasuredScenario> {
    let scenarios: Vec<_> = select(RunProfile::Smoke, None)
        .into_iter()
        .filter(|s| {
            [
                "fig03_placement",
                "fig14_energy",
                "fig16_breakdown",
                "serve_mixed",
            ]
            .contains(&s.name)
        })
        .collect();
    assert_eq!(
        scenarios.len(),
        4,
        "expected the four cheap smoke scenarios"
    );
    run_scenarios(&scenarios, &ScenarioCtx { threads })
}

#[test]
fn report_roundtrips_through_json_with_and_without_wall() {
    let measured = cheap_measured(2);
    let report = BenchReport::new("e2e", "smoke", 2, &measured);

    // Wall-clock included: every field round-trips.
    let parsed = BenchReport::from_json(&report.to_json(true)).expect("valid JSON");
    assert_eq!(parsed, report);
    assert!(parsed.scenarios.iter().all(|s| s.wall_nanos.is_some()));

    // Deterministic form: identical modulo the stripped wall fields.
    let parsed = BenchReport::from_json(&report.to_json(false)).expect("valid JSON");
    assert_eq!(parsed, report.without_wall());
    assert!(parsed.scenarios.iter().all(|s| s.wall_nanos.is_none()));
    assert!(report
        .to_json(true)
        .contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
}

#[test]
fn two_runs_produce_identical_reports_modulo_wall_clock() {
    // Different thread counts on purpose: the runtime's determinism
    // guarantee means worker count must not change a single byte of the
    // deterministic report surface.
    let first = BenchReport::new("run", "smoke", 1, &cheap_measured(1));
    let second = BenchReport::new("run", "smoke", 1, &cheap_measured(3));
    assert_eq!(first.to_json(false), second.to_json(false));
    // And the regression gate sees them as exactly unchanged at zero
    // tolerance.
    let comparisons = compare(&first, &second, 0.0);
    assert!(comparisons.iter().all(|c| c.verdict == Verdict::Unchanged));
    assert!(passes_gate(&comparisons));
}

#[test]
fn committed_baseline_layout_matches_what_this_binary_writes() {
    // Guards the committed BENCH_baseline.json against schema drift: it
    // must parse, be the smoke profile, cover every smoke scenario in
    // registry order, and contain no wall-clock fields.
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_baseline.json"))
        .expect("BENCH_baseline.json is committed at the repo root");
    let baseline = BenchReport::from_json(&text).expect("committed baseline parses");
    assert_eq!(baseline.profile, "smoke");
    let smoke: Vec<&str> = select(RunProfile::Smoke, None)
        .iter()
        .map(|s| s.name)
        .collect();
    let recorded: Vec<&str> = baseline.scenarios.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        recorded, smoke,
        "baseline must cover the smoke registry in order"
    );
    assert!(
        baseline.scenarios.iter().all(|s| s.wall_nanos.is_none()),
        "committed baselines must not contain wall-clock fields"
    );
    assert!(baseline.scenarios.iter().all(|s| s.sim_femtos > 0));
    // Round-trip through this binary's writer is byte-stable.
    assert_eq!(baseline.to_json(false), text);
}

#[test]
fn cheap_scenarios_match_the_committed_baseline() {
    // The debug-profile twin of the CI perf gate: the cheap scenarios'
    // simulated metrics must match the committed baseline *exactly* —
    // femtosecond ledgers and functional checksums are profile- and
    // machine-independent.
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_baseline.json"))
        .expect("BENCH_baseline.json is committed at the repo root");
    let baseline = BenchReport::from_json(&text).expect("parses");
    let current = BenchReport::new("test", "smoke", 2, &cheap_measured(2));
    for row in &current.scenarios {
        let base = baseline
            .scenario(&row.name)
            .unwrap_or_else(|| panic!("{} missing from baseline", row.name));
        assert_eq!(
            row.sim_femtos, base.sim_femtos,
            "{} simulated time",
            row.name
        );
        assert_eq!(
            row.values_checksum, base.values_checksum,
            "{} checksum",
            row.name
        );
        assert_eq!(
            row.instructions, base.instructions,
            "{} instructions",
            row.name
        );
        assert_eq!(row.energy_pj, base.energy_pj, "{} energy", row.name);
    }
}

#[test]
fn fig09_wide_metrics_are_pinned_bitwise() {
    // The blocked-kernel refactor's contract: loop order, gather batching,
    // and panel resolution may change host wall-clock only. The W1A3 wide
    // fig. 9 shape is the tentpole scenario, so its deterministic metrics
    // are pinned here as literals — any drift in the packed-code walk, the
    // canonical/reorder gather, or the analytic charge model fails this
    // test before the CI perf gate ever sees it.
    let scenarios = select(RunProfile::Full, Some("fig09_gemm_wide"));
    assert_eq!(scenarios.len(), 1, "fig09_gemm_wide is one full scenario");
    let measured = run_scenarios(&scenarios, &ScenarioCtx { threads: 2 });
    let row = &BenchReport::new("pin", "full", 2, &measured).scenarios[0];
    assert_eq!(row.sim_femtos, 1_356_778_794_422_864);
    assert_eq!(row.values_checksum, 581_077_194_180_245_941);
    assert_eq!(row.instructions, 452_984_832);
}

#[test]
fn verdict_thresholds_gate_the_way_ci_relies_on() {
    let measured = cheap_measured(1);
    let baseline = BenchReport::new("base", "smoke", 1, &measured);
    // A 10% regression tolerance must tolerate exactly +10% and fail
    // beyond it, on real report data.
    let mut slower = baseline.clone();
    for s in &mut slower.scenarios {
        s.sim_femtos += s.sim_femtos / 10; // +10% (floored, so at most the threshold)
    }
    assert!(passes_gate(&compare(&baseline, &slower, 0.10)));
    for s in &mut slower.scenarios {
        s.sim_femtos += s.sim_femtos / 100;
    }
    let comparisons = compare(&baseline, &slower, 0.10);
    assert!(!passes_gate(&comparisons));
    assert!(comparisons.iter().any(|c| c.verdict == Verdict::Regressed));
}
