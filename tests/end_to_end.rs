//! Cross-crate integration: quantize → plan → execute on the simulator →
//! dequantize, for every method, against the fp32 and integer references.

use localut::gemm::{reference_gemm, GemmConfig, GemmDims, Method};
use quant::{BitConfig, Quantizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_fp(rng: &mut StdRng, len: usize, amp: f32) -> Vec<f32> {
    (0..len).map(|_| rng.random_range(-amp..amp)).collect()
}

fn fp32_gemm(w: &[f32], a: &[f32], dims: GemmDims) -> Vec<f32> {
    let mut out = vec![0.0f32; dims.m * dims.n];
    for m in 0..dims.m {
        for n in 0..dims.n {
            for k in 0..dims.k {
                out[m * dims.n + n] += w[m * dims.k + k] * a[k * dims.n + n];
            }
        }
    }
    out
}

/// Every method produces bit-identical outputs for every paper config.
#[test]
fn all_methods_agree_across_paper_configs() {
    let mut rng = StdRng::seed_from_u64(7);
    let dims = GemmDims {
        m: 24,
        k: 40,
        n: 10,
    };
    let gemm = GemmConfig::upmem();
    for cfg in BitConfig::paper_integer_configs() {
        let wdata = random_fp(&mut rng, dims.m * dims.k, 1.0);
        let adata = random_fp(&mut rng, dims.k * dims.n, 3.0);
        let w = Quantizer::symmetric(cfg.weight_format())
            .quantize_matrix(&wdata, dims.m, dims.k)
            .unwrap();
        let a = Quantizer::symmetric(cfg.activation_format())
            .quantize_matrix(&adata, dims.k, dims.n)
            .unwrap();
        let reference: Vec<i32> = reference_gemm(&w, &a).unwrap();
        for method in Method::ALL {
            let out = gemm.run(method, &w, &a).unwrap();
            assert_eq!(out.values, reference, "{method} diverged at {cfg}");
        }
    }
}

/// Dequantized LoCaLUT outputs converge to fp32 as bitwidths grow.
#[test]
fn dequantized_error_shrinks_with_bits() {
    let mut rng = StdRng::seed_from_u64(11);
    let dims = GemmDims { m: 32, k: 64, n: 8 };
    let wdata = random_fp(&mut rng, dims.m * dims.k, 1.0);
    let adata = random_fp(&mut rng, dims.k * dims.n, 2.0);
    let fp32 = fp32_gemm(&wdata, &adata, dims);
    let rms: f32 = fp32.iter().map(|x| x * x).sum::<f32>().sqrt();
    let gemm = GemmConfig::upmem();

    let rel_err = |cfg: BitConfig| -> f32 {
        let w = Quantizer::symmetric(cfg.weight_format())
            .quantize_matrix(&wdata, dims.m, dims.k)
            .unwrap();
        let a = Quantizer::symmetric(cfg.activation_format())
            .quantize_matrix(&adata, dims.k, dims.n)
            .unwrap();
        let out = gemm.run(Method::LoCaLut, &w, &a).unwrap();
        let scale = w.scale() * a.scale();
        let err: f32 = out
            .values
            .iter()
            .zip(&fp32)
            .map(|(&q, &f)| (q as f32 * scale - f).powi(2))
            .sum::<f32>()
            .sqrt();
        err / rms
    };

    let w8a8 = rel_err(BitConfig::new(8, 8).unwrap());
    let w4a4 = rel_err("W4A4".parse().unwrap());
    let w1a3 = rel_err("W1A3".parse().unwrap());
    assert!(w8a8 < 0.02, "W8A8 error {w8a8}");
    assert!(w4a4 < 0.2, "W4A4 error {w4a4}");
    assert!(
        w8a8 < w4a4 && w4a4 < w1a3,
        "{w8a8} < {w4a4} < {w1a3} violated"
    );
}

/// The simulated time ordering of the headline claim holds on a
/// representative GEMM: LoCaLUT < OP < Naive, and OP+LC is the known
/// regression point.
#[test]
fn method_time_ordering_matches_paper() {
    let mut rng = StdRng::seed_from_u64(3);
    let dims = GemmDims { m: 96, k: 96, n: 4 };
    let cfg: BitConfig = "W1A3".parse().unwrap();
    let wdata = random_fp(&mut rng, dims.m * dims.k, 1.0);
    let adata = random_fp(&mut rng, dims.k * dims.n, 2.0);
    let w = Quantizer::symmetric(cfg.weight_format())
        .quantize_matrix(&wdata, dims.m, dims.k)
        .unwrap();
    let a = Quantizer::symmetric(cfg.activation_format())
        .quantize_matrix(&adata, dims.k, dims.n)
        .unwrap();
    let gemm = GemmConfig::upmem();
    let t = |m: Method| gemm.run(m, &w, &a).unwrap().profile.total_seconds();

    let naive = t(Method::NaivePim);
    let op = t(Method::Op);
    let lc = t(Method::OpLc);
    let rc = t(Method::OpLcRc);
    let localut = t(Method::LoCaLut);
    assert!(localut < op, "LoCaLUT {localut} must beat OP {op}");
    assert!(op < naive, "OP {op} must beat naive {naive}");
    assert!(
        lc > rc,
        "software reordering {lc} must be slower than RC {rc}"
    );
    assert!(localut <= rc, "the planner must never lose to plain RC");
}

/// Rectangular, ragged, and degenerate shapes all work.
#[test]
fn awkward_shapes_are_handled() {
    let mut rng = StdRng::seed_from_u64(5);
    let gemm = GemmConfig::upmem();
    let cfg: BitConfig = "W2A2".parse().unwrap();
    for (m, k, n) in [(1, 1, 1), (1, 7, 1), (3, 17, 5), (40, 3, 2), (2, 100, 2)] {
        let wdata = random_fp(&mut rng, m * k, 1.0);
        let adata = random_fp(&mut rng, k * n, 1.0);
        let w = Quantizer::symmetric(cfg.weight_format())
            .quantize_matrix(&wdata, m, k)
            .unwrap();
        let a = Quantizer::symmetric(cfg.activation_format())
            .quantize_matrix(&adata, k, n)
            .unwrap();
        let reference: Vec<i32> = reference_gemm(&w, &a).unwrap();
        for method in Method::ALL {
            let out = gemm.run(method, &w, &a).unwrap();
            assert_eq!(out.values, reference, "{method} diverged at ({m},{k},{n})");
        }
    }
}

/// Mismatched shapes error cleanly through the whole stack.
#[test]
fn shape_errors_propagate() {
    let cfg: BitConfig = "W1A3".parse().unwrap();
    let w = Quantizer::symmetric(cfg.weight_format())
        .quantize_matrix(&[0.5, -0.5], 1, 2)
        .unwrap();
    let a = Quantizer::symmetric(cfg.activation_format())
        .quantize_matrix(&[1.0, 2.0, 3.0], 3, 1)
        .unwrap();
    let gemm = GemmConfig::upmem();
    for method in Method::ALL {
        assert!(
            gemm.run(method, &w, &a).is_err(),
            "{method} accepted bad shapes"
        );
    }
}
