//! Synthetic classification tasks for the accuracy experiments (Fig. 15,
//! Fig. 21b).
//!
//! **Substitution** (documented in DESIGN.md): the paper measures GLUE and
//! ImageNet accuracy of real fine-tuned checkpoints. We do not have those
//! checkpoints, so we measure the *approximation fidelity of the compute
//! pipelines themselves* — quantization, product quantization, and
//! floating-point reordering — on linear-teacher tasks whose labels come
//! from an fp32 reference model plus label noise. The relative ordering of
//! methods (which Fig. 15 is about) is governed by the same numeric error
//! those pipelines introduce on the real models.

use localut::fgemm::{AccumOrder, FloatGemm};
use localut::LocaLutError;
use quant::{BitConfig, NumericFormat, Quantizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic linear-teacher classification task.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticTask {
    /// Display name (GLUE stand-in).
    pub name: &'static str,
    /// Feature dimension.
    pub dim: usize,
    /// Number of classes.
    pub classes: usize,
    /// Label-noise magnitude relative to logit scale (controls the fp32
    /// ceiling accuracy, mimicking task difficulty).
    pub noise: f64,
    /// RNG seed (tasks are deterministic).
    pub seed: u64,
}

/// Generated task data.
#[derive(Debug, Clone)]
pub struct TaskData {
    /// Teacher weights, row-major `classes × dim`.
    pub teacher: Vec<f32>,
    /// Features, row-major `dim × samples` (activation-matrix layout).
    pub features: Vec<f32>,
    /// Ground-truth labels, one per sample.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Number of samples.
    pub samples: usize,
}

fn normal(rng: &mut StdRng) -> f64 {
    // Box–Muller from two uniforms (rand_distr is not in the offline set).
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

impl SyntheticTask {
    /// The four GLUE stand-ins of Fig. 15 (QNLI, QQP, STS-B, SST-2) with
    /// difficulties chosen to land their fp32 ceilings near the paper's
    /// reported accuracy bands.
    #[must_use]
    pub fn glue_suite() -> [SyntheticTask; 4] {
        [
            SyntheticTask {
                name: "QNLI",
                dim: 96,
                classes: 2,
                noise: 0.55,
                seed: 11,
            },
            SyntheticTask {
                name: "QQP",
                dim: 96,
                classes: 2,
                noise: 0.45,
                seed: 22,
            },
            SyntheticTask {
                name: "STS-B",
                dim: 96,
                classes: 5,
                noise: 0.35,
                seed: 33,
            },
            SyntheticTask {
                name: "SST-2",
                dim: 96,
                classes: 2,
                noise: 0.30,
                seed: 44,
            },
        ]
    }

    /// An ImageNet-like stand-in for the ViT experiments (Fig. 21b).
    #[must_use]
    pub fn imagenet_like() -> SyntheticTask {
        SyntheticTask {
            name: "ImageNet-like",
            dim: 120,
            classes: 10,
            noise: 0.4,
            seed: 77,
        }
    }

    /// Generates `samples` labelled examples.
    #[must_use]
    pub fn generate(&self, samples: usize) -> TaskData {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let teacher: Vec<f32> = (0..self.classes * self.dim)
            .map(|_| normal(&mut rng) as f32)
            .collect();
        let mut features = vec![0.0f32; self.dim * samples];
        let mut labels = Vec::with_capacity(samples);
        let logit_scale = (self.dim as f64).sqrt();
        for s in 0..samples {
            let x: Vec<f32> = (0..self.dim).map(|_| normal(&mut rng) as f32).collect();
            for (d, &v) in x.iter().enumerate() {
                features[d * samples + s] = v;
            }
            // Teacher logits + label noise.
            let mut best = (f64::NEG_INFINITY, 0usize);
            for c in 0..self.classes {
                let mut logit = 0.0f64;
                for d in 0..self.dim {
                    logit += f64::from(teacher[c * self.dim + d]) * f64::from(x[d]);
                }
                logit += self.noise * logit_scale * normal(&mut rng);
                if logit > best.0 {
                    best = (logit, c);
                }
            }
            labels.push(best.1);
        }
        TaskData {
            teacher,
            features,
            labels,
            classes: self.classes,
            dim: self.dim,
            samples,
        }
    }
}

impl TaskData {
    /// Accuracy of row-major `classes × samples` scores against the labels.
    #[must_use]
    pub fn accuracy_of_scores(&self, scores: &[f32]) -> f64 {
        assert_eq!(scores.len(), self.classes * self.samples);
        let mut correct = 0usize;
        for s in 0..self.samples {
            let mut best = (f32::NEG_INFINITY, 0usize);
            for c in 0..self.classes {
                let v = scores[c * self.samples + s];
                if v > best.0 {
                    best = (v, c);
                }
            }
            if best.1 == self.labels[s] {
                correct += 1;
            }
        }
        correct as f64 / self.samples as f64
    }

    /// fp32 reference scores (`classes × samples`).
    #[must_use]
    pub fn fp32_scores(&self) -> Vec<f32> {
        let mut scores = vec![0.0f32; self.classes * self.samples];
        for c in 0..self.classes {
            for s in 0..self.samples {
                let mut acc = 0.0f32;
                for d in 0..self.dim {
                    acc += self.teacher[c * self.dim + d] * self.features[d * self.samples + s];
                }
                scores[c * self.samples + s] = acc;
            }
        }
        scores
    }

    /// fp32 ceiling accuracy.
    #[must_use]
    pub fn fp32_accuracy(&self) -> f64 {
        self.accuracy_of_scores(&self.fp32_scores())
    }

    /// Accuracy through the integer quantized pipeline of a `WxAy` config
    /// (exactly what every LoCaLUT integer kernel computes).
    ///
    /// # Errors
    ///
    /// Quantization errors.
    pub fn quantized_accuracy(&self, cfg: BitConfig) -> Result<f64, LocaLutError> {
        let wq = Quantizer::symmetric(cfg.weight_format());
        let aq = Quantizer::symmetric(cfg.activation_format());
        let w = wq.quantize_matrix(&self.teacher, self.classes, self.dim)?;
        let a = aq.quantize_matrix(&self.features, self.dim, self.samples)?;
        let ints: Vec<i32> = localut::gemm::reference_gemm(&w, &a)?;
        let scale = w.scale() * a.scale();
        let scores: Vec<f32> = ints.iter().map(|&v| v as f32 * scale).collect();
        Ok(self.accuracy_of_scores(&scores))
    }

    /// Accuracy through the integer pipeline with **per-channel** weight
    /// quantization (the recipe of the paper's cited quantization works —
    /// each teacher row gets its own scale, costing nothing on the PIM
    /// side since kernels operate on codes).
    ///
    /// # Errors
    ///
    /// Quantization errors.
    pub fn quantized_accuracy_per_channel(&self, cfg: BitConfig) -> Result<f64, LocaLutError> {
        let w = quant::ChannelQMatrix::quantize(
            &self.teacher,
            self.classes,
            self.dim,
            cfg.weight_format(),
        )?;
        let aq = Quantizer::symmetric(cfg.activation_format());
        let a = aq.quantize_matrix(&self.features, self.dim, self.samples)?;
        let ints: Vec<i32> = localut::gemm::reference_gemm(w.codes(), &a)?;
        let scores = w.dequantize_gemm_output(&ints, self.samples, a.scale());
        Ok(self.accuracy_of_scores(&scores))
    }

    /// Accuracy through the *floating-point* LUT pipeline at packing degree
    /// `p`, with or without canonical reordering (Fig. 21b: reordering
    /// changes the accumulation order of fp values, and the experiment
    /// shows the impact is negligible).
    ///
    /// Uses [`localut::fgemm::FloatGemm`], which computes LUT entry values
    /// on demand (float canonical LUTs are too large to materialize) and
    /// is validated against a real `CanonicalLut<f32>` in its own tests.
    ///
    /// # Errors
    ///
    /// Quantization errors.
    pub fn float_lut_accuracy(
        &self,
        format: NumericFormat,
        p: u32,
        reordered: bool,
    ) -> Result<f64, LocaLutError> {
        let q = Quantizer::symmetric(format);
        let w = q.quantize_matrix(&self.teacher, self.classes, self.dim)?;
        let a = q.quantize_matrix(&self.features, self.dim, self.samples)?;
        let scale = w.scale() * a.scale();
        let order = if reordered {
            AccumOrder::Canonical
        } else {
            AccumOrder::Original
        };
        let mut scores = FloatGemm::new(format, format, p)?.run(&w, &a, order)?;
        for v in &mut scores {
            *v *= scale;
        }
        Ok(self.accuracy_of_scores(&scores))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_are_deterministic() {
        let t = SyntheticTask::glue_suite()[0].clone();
        let a = t.generate(50);
        let b = t.generate(50);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.teacher, b.teacher);
    }

    #[test]
    fn fp32_ceiling_is_high_but_not_perfect() {
        for t in SyntheticTask::glue_suite() {
            let data = t.generate(400);
            let acc = data.fp32_accuracy();
            assert!((0.75..0.999).contains(&acc), "{}: fp32 acc {acc}", t.name);
        }
    }

    #[test]
    fn quantization_degrades_gracefully() {
        let data = SyntheticTask::glue_suite()[3].generate(400);
        let fp32 = data.fp32_accuracy();
        let w4a4 = data.quantized_accuracy("W4A4".parse().unwrap()).unwrap();
        let w1a3 = data.quantized_accuracy("W1A3".parse().unwrap()).unwrap();
        // Finer quantization must not lose much vs fp32; coarser loses more.
        assert!(w4a4 > fp32 - 0.08, "W4A4 {w4a4} vs fp32 {fp32}");
        assert!(
            w1a3 <= w4a4 + 0.03,
            "W1A3 {w1a3} should not beat W4A4 {w4a4}"
        );
        assert!(w1a3 > 0.5, "W1A3 {w1a3} should beat chance");
    }

    #[test]
    fn float_reordering_impact_is_negligible() {
        // Fig. 21(b): reordering LUT produces negligible accuracy impact.
        let data = SyntheticTask::imagenet_like().generate(200);
        for p in [2u32, 3, 4] {
            let plain = data
                .float_lut_accuracy(NumericFormat::Fp4, p, false)
                .unwrap();
            let reordered = data
                .float_lut_accuracy(NumericFormat::Fp4, p, true)
                .unwrap();
            assert!(
                (plain - reordered).abs() < 0.02,
                "p={p}: {plain} vs {reordered}"
            );
        }
    }

    #[test]
    fn per_channel_quantization_rescues_scale_skewed_teachers() {
        // Per-channel scales matter when output channels have disparate
        // magnitudes (ubiquitous in trained nets): shrink two teacher rows
        // by 50x so per-tensor W4A4 quantization crushes them.
        let mut data = SyntheticTask::imagenet_like().generate(400);
        for c in 1..data.classes {
            for d in 0..data.dim {
                data.teacher[c * data.dim + d] *= 0.02;
            }
        }
        // Re-derive noise-free labels from the modified fp32 teacher.
        let scores = data.fp32_scores();
        for s in 0..data.samples {
            let mut best = (f32::NEG_INFINITY, 0usize);
            for c in 0..data.classes {
                let v = scores[c * data.samples + s];
                if v > best.0 {
                    best = (v, c);
                }
            }
            data.labels[s] = best.1;
        }
        let cfg: BitConfig = "W4A4".parse().unwrap();
        let pt = data.quantized_accuracy(cfg).unwrap();
        let pc = data.quantized_accuracy_per_channel(cfg).unwrap();
        assert!(
            pc > pt + 0.05,
            "per-channel {pc} should clearly beat per-tensor {pt} on skewed rows"
        );
        assert!(pc > 0.8, "per-channel should nearly recover the task: {pc}");
    }

    #[test]
    fn per_channel_matches_per_tensor_on_balanced_teachers() {
        // With similar row magnitudes the two schemes are equivalent
        // (within noise).
        let data = SyntheticTask::glue_suite()[2].generate(400);
        let cfg: BitConfig = "W4A4".parse().unwrap();
        let pt = data.quantized_accuracy(cfg).unwrap();
        let pc = data.quantized_accuracy_per_channel(cfg).unwrap();
        assert!((pc - pt).abs() < 0.06, "{pc} vs {pt}");
    }

    #[test]
    fn accuracy_of_perfect_scores_is_one_without_noise() {
        let t = SyntheticTask {
            name: "clean",
            dim: 32,
            classes: 3,
            noise: 0.0,
            seed: 5,
        };
        let data = t.generate(100);
        assert_eq!(data.fp32_accuracy(), 1.0);
    }
}
