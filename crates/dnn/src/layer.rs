//! The per-layer GEMM stream of Fig. 8.
//!
//! Per transformer layer, the PIM banks execute (with `T` = token count):
//!
//! * QKV projection: three `(hidden, hidden, T)` GEMMs,
//! * output projection: one `(hidden, hidden, T)` GEMM,
//! * FFN up: one `(ffn, hidden, T)` GEMM,
//! * FFN down: one `(hidden, ffn, T)` GEMM,
//!
//! while the host runs attention (QKᵀ, softmax, attention×V), the two
//! layer norms, GELU, and per-GEMM quantize/dequantize.

use crate::config::ModelConfig;
use localut::GemmDims;

/// One PIM-offloaded GEMM of a layer, with its Fig. 8 role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerGemm {
    /// Human-readable role ("qkv", "out-proj", "ffn-up", "ffn-down").
    pub role: &'static str,
    /// The GEMM dimensions (`M×K` weights times `K×N` activations).
    pub dims: GemmDims,
    /// How many identical GEMMs of this shape the layer performs.
    pub count: u32,
}

/// Host-side operation counts for one layer at `tokens` tokens of new
/// computation and `context` tokens of attention context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostOpCounts {
    /// Attention MACs (QKᵀ and attention×V), executed on the host (Fig. 8).
    pub attention_macs: u64,
    /// Softmax elements.
    pub softmax_elems: u64,
    /// LayerNorm elements (two norms per layer).
    pub layernorm_elems: u64,
    /// GELU elements (FFN intermediate).
    pub gelu_elems: u64,
    /// Elements crossing a quantize or dequantize boundary.
    pub quant_elems: u64,
}

/// The GEMM stream of one transformer layer for `tokens` tokens.
#[must_use]
pub fn layer_gemms(cfg: &ModelConfig, tokens: usize) -> Vec<LayerGemm> {
    let h = cfg.hidden;
    let f = cfg.ffn;
    vec![
        LayerGemm {
            role: "qkv",
            dims: GemmDims {
                m: h,
                k: h,
                n: tokens,
            },
            count: 3,
        },
        LayerGemm {
            role: "out-proj",
            dims: GemmDims {
                m: h,
                k: h,
                n: tokens,
            },
            count: 1,
        },
        LayerGemm {
            role: "ffn-up",
            dims: GemmDims {
                m: f,
                k: h,
                n: tokens,
            },
            count: 1,
        },
        LayerGemm {
            role: "ffn-down",
            dims: GemmDims {
                m: h,
                k: f,
                n: tokens,
            },
            count: 1,
        },
    ]
}

/// Host-side op counts for one layer: `tokens` new tokens attending over
/// `context` tokens (prefill: `context == tokens`; decode: the KV cache).
#[must_use]
pub fn layer_host_ops(cfg: &ModelConfig, tokens: usize, context: usize) -> HostOpCounts {
    let h = cfg.hidden as u64;
    let f = cfg.ffn as u64;
    let t = tokens as u64;
    let c = context as u64;
    HostOpCounts {
        // QKᵀ: t·c·h MACs; attention×V: t·c·h MACs.
        attention_macs: 2 * t * c * h,
        softmax_elems: t * c * u64::from(cfg.heads),
        layernorm_elems: 2 * t * h,
        gelu_elems: t * f,
        // Quantize activations into each of the 6 GEMMs, dequantize out:
        // inputs 4·t·h (qkv shares one) + t·h + t·f; outputs 3·t·h + t·h +
        // t·f + t·h — approximate with 2 crossings per GEMM operand/result.
        quant_elems: 2 * (4 * t * h + t * f + 3 * t * h + t * f),
    }
}

/// Total PIM MACs per layer (to sanity-check against model size).
#[must_use]
pub fn layer_macs(cfg: &ModelConfig, tokens: usize) -> u64 {
    layer_gemms(cfg, tokens)
        .iter()
        .map(|g| u64::from(g.count) * g.dims.macs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_layer_stream_shapes() {
        let cfg = ModelConfig::bert_base();
        let gemms = layer_gemms(&cfg, 128);
        assert_eq!(gemms.len(), 4);
        assert_eq!(gemms[0].count, 3);
        assert_eq!(
            gemms[0].dims,
            GemmDims {
                m: 768,
                k: 768,
                n: 128
            }
        );
        assert_eq!(
            gemms[2].dims,
            GemmDims {
                m: 3072,
                k: 768,
                n: 128
            }
        );
        assert_eq!(
            gemms[3].dims,
            GemmDims {
                m: 768,
                k: 3072,
                n: 128
            }
        );
    }

    #[test]
    fn layer_macs_match_hand_count() {
        let cfg = ModelConfig::bert_base();
        // 4 * 768²*128 + 2 * 3072*768*128.
        let expect = 4 * 768u64 * 768 * 128 + 2 * 3072 * 768 * 128;
        assert_eq!(layer_macs(&cfg, 128), expect);
    }

    #[test]
    fn fig9_shapes_appear_in_the_stream() {
        // The paper's representative GEMMs (768,768,128) and (3072,768,128)
        // are exactly the QKV and FFN-up shapes of these models.
        let gemms = layer_gemms(&ModelConfig::bert_base(), 128);
        assert!(gemms.iter().any(|g| g.dims
            == GemmDims {
                m: 768,
                k: 768,
                n: 128
            }));
        assert!(gemms.iter().any(|g| g.dims
            == GemmDims {
                m: 3072,
                k: 768,
                n: 128
            }));
    }

    #[test]
    fn decode_host_ops_scale_with_context() {
        let cfg = ModelConfig::opt_125m();
        let short = layer_host_ops(&cfg, 1, 128);
        let long = layer_host_ops(&cfg, 1, 256);
        assert_eq!(long.attention_macs, 2 * short.attention_macs);
        assert_eq!(long.gelu_elems, short.gelu_elems);
    }
}
