//! End-to-end inference timing (Fig. 10, Fig. 16a, Fig. 19) on top of the
//! distributed GEMM model.
//!
//! Prefill runs every layer's GEMM stream at `batch × seq_len` tokens;
//! decode (OPT) runs one token per step per sample with a growing KV cache
//! handled by the host attention (Fig. 8). Host and PIM phases serialize,
//! as on UPMEM.

use crate::config::{ModelConfig, ModelKind};
use crate::hostops::HostOpModel;
use crate::layer::{layer_gemms, layer_host_ops};
use localut::tiling::DistributedGemm;
use localut::{LocaLutError, Method};
use pim_sim::{Category, CycleLedger, Profile, Stats, SystemProfile};
use quant::BitConfig;
use runtime::ParallelExecutor;

/// The Fig. 16(a) execution phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// GEMM kernels on the PIM banks.
    GemmOnPim,
    /// Host ↔ PIM matrix transfers.
    MatrixTransfer,
    /// PQ centroid selection (PQ baselines only; zero here).
    CentroidSelection,
    /// Data layout reordering (PQ baselines only; zero here).
    DataReordering,
    /// Host-side quantization/dequantization.
    Quantization,
    /// Host-side activation packing and sorting.
    PackingSorting,
    /// Everything else the host runs (attention, softmax, norms, GELU).
    Others,
}

impl Phase {
    /// All phases in Fig. 16(a) legend order.
    pub const ALL: [Phase; 7] = [
        Phase::GemmOnPim,
        Phase::MatrixTransfer,
        Phase::CentroidSelection,
        Phase::DataReordering,
        Phase::Quantization,
        Phase::PackingSorting,
        Phase::Others,
    ];

    /// Figure label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::GemmOnPim => "GEMM on PIM",
            Phase::MatrixTransfer => "Matrix Transfer",
            Phase::CentroidSelection => "Centroid Selection",
            Phase::DataReordering => "Data reordering",
            Phase::Quantization => "Quantization",
            Phase::PackingSorting => "Packing & Sorting",
            Phase::Others => "Others",
        }
    }
}

/// Marks a workload as one decode step of a decomposed decoder session:
/// one new token per sample, attending over `context` cached tokens.
///
/// A step-marked workload is what [`Workload::session_steps`] emits for
/// the decode phase. It is timed on the **measured** planning path
/// (`localut::Planner::plan_measured`): decode GEMMs are skinny, so the
/// closed-form planner's `n`-cancellation no longer reflects the kernel's
/// real weight-streaming cost, and prefill and decode may legitimately
/// pick different `p*`/placement (cf. Fig. 13 / Fig. 19).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodeStep {
    /// KV-cache length this step attends over (grows by one per step).
    pub context: usize,
}

/// An inference workload: model, batch, and decode length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// The model configuration.
    pub model: ModelConfig,
    /// Batch size (samples processed together).
    pub batch: usize,
    /// Autoregressive output tokens (0 for prefill-only models).
    pub decode_tokens: u32,
    /// `Some` when this workload is a single decode step of a decomposed
    /// session ([`Workload::session_steps`]); `None` for the monolithic
    /// prefill/prefill+decode workloads.
    pub step: Option<DecodeStep>,
}

impl Workload {
    /// A prefill-only workload.
    #[must_use]
    pub fn prefill(model: ModelConfig, batch: usize) -> Self {
        Workload {
            model,
            batch,
            decode_tokens: 0,
            step: None,
        }
    }

    /// A prefill + decode workload (OPT-style).
    #[must_use]
    pub fn with_decode(model: ModelConfig, batch: usize, decode_tokens: u32) -> Self {
        Workload {
            model,
            batch,
            decode_tokens,
            step: None,
        }
    }

    /// One decode step: one new token per sample attending over `context`
    /// cached tokens. See [`DecodeStep`].
    #[must_use]
    pub fn decode_step(model: ModelConfig, batch: usize, context: usize) -> Self {
        Workload {
            model,
            batch,
            decode_tokens: 0,
            step: Some(DecodeStep { context }),
        }
    }

    /// Decomposes this workload into its session steps: one prefill step,
    /// then — for decoder (OPT-class) models — `decode_tokens` decode
    /// steps whose KV context grows by one token each
    /// (`seq_len, seq_len + 1, …`). A prefill-only workload decomposes to
    /// just its prefill; a step-marked workload is already a step and
    /// decomposes to itself.
    ///
    /// This is the schedulable-unit view continuous batching serves: each
    /// step re-enters the admission queue independently, so new prefills
    /// interleave between decode waves instead of queueing behind a whole
    /// session.
    #[must_use]
    pub fn session_steps(&self) -> Vec<Workload> {
        if self.step.is_some() {
            return vec![self.clone()];
        }
        let mut steps = vec![Workload::prefill(self.model.clone(), self.batch)];
        if self.model.kind == ModelKind::Opt {
            for i in 0..self.decode_tokens as usize {
                steps.push(Workload::decode_step(
                    self.model.clone(),
                    self.batch,
                    self.model.seq_len + i,
                ));
            }
        }
        steps
    }
}

/// An end-to-end inference timing report.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReport {
    /// Prefill seconds.
    pub prefill_seconds: f64,
    /// Decode seconds (0 without decode).
    pub decode_seconds: f64,
    /// Merged host+PIM profile (for the energy model).
    pub profile: SystemProfile,
}

impl InferenceReport {
    /// Total end-to-end seconds.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.prefill_seconds + self.decode_seconds
    }

    /// Seconds per Fig. 16(a) phase.
    #[must_use]
    pub fn phase_seconds(&self, phase: Phase) -> f64 {
        match phase {
            Phase::GemmOnPim => self.profile.pim.total_seconds(),
            Phase::MatrixTransfer => self.profile.host.seconds(Category::HostTransfer),
            Phase::CentroidSelection | Phase::DataReordering => 0.0,
            Phase::Quantization => self.profile.host.seconds(Category::HostQuantize),
            Phase::PackingSorting => self.profile.host.seconds(Category::HostSortPack),
            Phase::Others => self.profile.host.seconds(Category::HostCompute),
        }
    }

    /// `(phase, seconds)` pairs in legend order.
    #[must_use]
    pub fn phases(&self) -> Vec<(Phase, f64)> {
        Phase::ALL
            .iter()
            .map(|&p| (p, self.phase_seconds(p)))
            .collect()
    }
}

/// The aggregate of one batched multi-request serving run (see
/// [`InferenceSim::run_batch`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Per-request reports, in request order.
    pub reports: Vec<InferenceReport>,
    /// Deterministic request-order fold of the per-request profiles.
    pub merged: SystemProfile,
    /// Associative merge of per-request statistics — one ingest per
    /// request combining its host + PIM ledgers, so `stats.banks()`
    /// equals [`BatchReport::requests`] — bitwise invariant to merge
    /// order and worker count.
    pub stats: Stats,
}

impl BatchReport {
    /// Total serving-session seconds (requests serialize on the UPMEM
    /// host, so the session time is the sum).
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.reports
            .iter()
            .map(InferenceReport::total_seconds)
            .sum()
    }

    /// Number of requests served.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.reports.len()
    }
}

/// The end-to-end inference simulator.
#[derive(Debug, Clone)]
pub struct InferenceSim {
    /// The distributed GEMM model (system + kernel config).
    pub dist: DistributedGemm,
    /// Host-op cost weights.
    pub host_model: HostOpModel,
}

impl InferenceSim {
    /// The paper's 2048-DPU UPMEM server.
    #[must_use]
    pub fn upmem_server() -> Self {
        InferenceSim {
            dist: DistributedGemm::upmem_server(),
            host_model: HostOpModel::xeon(),
        }
    }

    /// Times one phase (all layers) at `tokens` new tokens attending over
    /// `context` tokens, scaled by `repeats`. With `measured`, LoCaLUT
    /// GEMMs plan by measured kernel cost
    /// ([`localut::tiling::DistributedGemm::cost_measured`]) — the decode-
    /// step path, where skinny tiles break the closed form's
    /// `n`-cancellation.
    #[allow(clippy::too_many_arguments)]
    fn phase_cost(
        &self,
        method: Method,
        cfg: BitConfig,
        model: &ModelConfig,
        tokens: usize,
        context: usize,
        repeats: u64,
        measured: bool,
    ) -> Result<SystemProfile, LocaLutError> {
        let wf = cfg.weight_format();
        let af = cfg.activation_format();
        let mut total = SystemProfile::default();
        for gemm in layer_gemms(model, tokens) {
            let one = if measured {
                self.dist.cost_measured(method, gemm.dims, wf, af)?
            } else {
                self.dist.cost(method, gemm.dims, wf, af)?
            };
            total = total.merged(&one.scaled(u64::from(gemm.count)));
        }
        // Host "Others": attention + softmax + norms + GELU.
        let counts = layer_host_ops(model, tokens, context);
        let ops = self.host_model.other_ops(&counts);
        let mut others = CycleLedger::new();
        others.charge(
            Category::HostCompute,
            self.dist.system.host_ops_seconds(ops),
        );
        others.host_ops = ops;
        total = total.merged(&SystemProfile {
            host: Profile::from_ledger(others),
            pim: Profile::new(),
        });
        Ok(total.scaled(repeats * u64::from(model.layers)))
    }

    /// One-time initialization cost of `method` at `cfg` (§V-A): building
    /// the LUT images on the host and broadcasting them to all banks, plus
    /// loading buffer-resident images into WRAM. Amortized across an
    /// entire serving session, so reported separately from per-inference
    /// time.
    ///
    /// # Errors
    ///
    /// Kernel feasibility errors.
    pub fn init_cost(&self, method: Method, cfg: BitConfig) -> Result<SystemProfile, LocaLutError> {
        use localut::capacity::{localut_bytes, max_p_localut, max_p_op, op_lut_bytes};
        let wf = cfg.weight_format();
        let af = cfg.activation_format();
        let dpu = &self.dist.gemm.dpu;
        // Bytes of the broadcast LUT image (zero for LUT-free methods).
        let (image_bytes, build_entries) = match method {
            Method::NaivePim | Method::Ltc => (0u64, 0u64),
            Method::Op => {
                let p = max_p_op(wf, af, dpu.wram_lut_budget());
                let b = op_lut_bytes(wf, af, p).unwrap_or(0) as u64;
                (b, b)
            }
            Method::OpLc | Method::OpLcRc => {
                let p = max_p_localut(wf, af, dpu.wram_lut_budget());
                let b = localut_bytes(wf, af, p).unwrap_or(0) as u64;
                (b, b)
            }
            Method::LoCaLut => {
                let p = max_p_localut(wf, af, dpu.bank_lut_budget());
                let b = localut_bytes(wf, af, p).unwrap_or(0) as u64;
                (b, b)
            }
        };
        let mut host = CycleLedger::new();
        // Host builds each entry (~4 ops: decode, multiply-accumulate p
        // times amortized, store) and broadcasts the image once.
        host.charge(
            Category::HostCompute,
            self.dist.system.host_ops_seconds(4 * build_entries),
        );
        host.charge(
            Category::HostTransfer,
            self.dist.system.broadcast_seconds(image_bytes),
        );
        host.host_bytes = image_bytes;
        host.host_ops = 4 * build_entries;
        // Buffer-resident images additionally stream bank → WRAM once.
        let mut pim = CycleLedger::new();
        if !matches!(method, Method::NaivePim | Method::Ltc | Method::LoCaLut) {
            pim.charge(
                Category::LutLoad,
                dpu.timings.dram_stream_seconds(image_bytes),
            );
            pim.dram_read_bytes = image_bytes;
        }
        Ok(SystemProfile {
            host: Profile::from_ledger(host),
            pim: Profile::from_ledger(pim),
        })
    }

    /// Runs a full inference workload under `method` and `cfg`.
    ///
    /// # Errors
    ///
    /// Kernel feasibility errors.
    pub fn run(
        &self,
        method: Method,
        cfg: BitConfig,
        workload: &Workload,
    ) -> Result<InferenceReport, LocaLutError> {
        let model = &workload.model;
        if let Some(step) = workload.step {
            // One decode step of a decomposed session: one new token per
            // sample over the step's exact KV context, timed on the
            // measured (per-phase) planning path.
            let decode =
                self.phase_cost(method, cfg, model, workload.batch, step.context, 1, true)?;
            return Ok(InferenceReport {
                prefill_seconds: 0.0,
                decode_seconds: decode.total_seconds(),
                profile: decode,
            });
        }
        let prefill_tokens = workload.batch * model.seq_len;
        let prefill =
            self.phase_cost(method, cfg, model, prefill_tokens, model.seq_len, 1, false)?;

        let decode = if workload.decode_tokens > 0 && model.kind == ModelKind::Opt {
            // Each decode step: one token per sample, KV context grows by
            // one; attention context averaged over the steps.
            let steps = u64::from(workload.decode_tokens);
            let avg_context = model.seq_len + workload.decode_tokens as usize / 2;
            self.phase_cost(
                method,
                cfg,
                model,
                workload.batch,
                avg_context,
                steps,
                false,
            )?
        } else {
            SystemProfile::default()
        };

        Ok(InferenceReport {
            prefill_seconds: prefill.total_seconds(),
            decode_seconds: decode.total_seconds(),
            profile: prefill.merged(&decode),
        })
    }

    /// Batched multi-request execution on the bank-parallel runtime: every
    /// workload is timed independently on `pool`'s worker threads (ordered
    /// [`ParallelExecutor::map`], so reports come back in request order and
    /// the result is bitwise identical for any worker count), then the
    /// per-request profiles fold into one serving-session aggregate.
    ///
    /// # Errors
    ///
    /// Kernel feasibility errors, reported for the lowest-index failing
    /// request.
    ///
    /// # Examples
    ///
    /// ```
    /// use dnn::{InferenceSim, ModelConfig, Workload};
    /// use localut::Method;
    /// use runtime::ParallelExecutor;
    ///
    /// let sim = InferenceSim::upmem_server();
    /// let requests = vec![
    ///     Workload::prefill(ModelConfig::bert_base(), 8),
    ///     Workload::prefill(ModelConfig::vit_base(), 4),
    /// ];
    /// let batch = sim.run_batch(
    ///     &ParallelExecutor::new(2), Method::LoCaLut,
    ///     "W1A3".parse().unwrap(), &requests)?;
    /// assert_eq!(batch.reports.len(), 2);
    /// assert!(batch.total_seconds() > 0.0);
    /// # Ok::<(), localut::LocaLutError>(())
    /// ```
    pub fn run_batch(
        &self,
        pool: &ParallelExecutor,
        method: Method,
        cfg: BitConfig,
        workloads: &[Workload],
    ) -> Result<BatchReport, LocaLutError> {
        let results = pool.map(workloads, |wl| self.run(method, cfg, wl));
        let mut reports = Vec::with_capacity(results.len());
        for result in results {
            reports.push(result?);
        }
        let mut merged = SystemProfile::default();
        let mut stats = Stats::default();
        for report in &reports {
            merged = merged.merged(&report.profile);
            // One Stats ingest per request (host + PIM ledgers combined),
            // so `stats.banks()` counts requests.
            let mut ledger = report.profile.host.ledger().clone();
            ledger.merge(report.profile.pim.ledger());
            stats.merge(&Stats::from_ledger(&ledger));
        }
        Ok(BatchReport {
            reports,
            merged,
            stats,
        })
    }

    /// End-to-end speedup of `method` over `baseline`.
    ///
    /// # Errors
    ///
    /// Kernel feasibility errors.
    pub fn speedup_over(
        &self,
        method: Method,
        baseline: Method,
        cfg: BitConfig,
        workload: &Workload,
    ) -> Result<f64, LocaLutError> {
        let a = self.run(method, cfg, workload)?.total_seconds();
        let b = self.run(baseline, cfg, workload)?.total_seconds();
        Ok(b / a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w1a3() -> BitConfig {
        "W1A3".parse().unwrap()
    }

    #[test]
    fn bert_prefill_has_no_decode() {
        let sim = InferenceSim::upmem_server();
        let wl = Workload::prefill(ModelConfig::bert_base(), 32);
        let r = sim.run(Method::LoCaLut, w1a3(), &wl).unwrap();
        assert!(r.prefill_seconds > 0.0);
        assert_eq!(r.decode_seconds, 0.0);
    }

    #[test]
    fn opt_decode_adds_time() {
        let sim = InferenceSim::upmem_server();
        let cfg: BitConfig = "W4A4".parse().unwrap();
        let no_decode = Workload::prefill(ModelConfig::opt_125m(), 8);
        let with_decode = Workload::with_decode(ModelConfig::opt_125m(), 8, 8);
        let a = sim.run(Method::LoCaLut, cfg, &no_decode).unwrap();
        let b = sim.run(Method::LoCaLut, cfg, &with_decode).unwrap();
        assert!(b.decode_seconds > 0.0);
        assert!(b.total_seconds() > a.total_seconds());
        assert!((a.prefill_seconds - b.prefill_seconds).abs() < 1e-12);
    }

    #[test]
    fn localut_beats_naive_end_to_end() {
        // Fig. 10: LoCaLUT outperforms Naive PIM end-to-end (1.77x geomean).
        let sim = InferenceSim::upmem_server();
        let wl = Workload::prefill(ModelConfig::bert_base(), 32);
        let s = sim
            .speedup_over(Method::LoCaLut, Method::NaivePim, w1a3(), &wl)
            .unwrap();
        assert!(s > 1.2, "end-to-end speedup {s} too small");
    }

    #[test]
    fn phase_breakdown_sums_to_total() {
        let sim = InferenceSim::upmem_server();
        let wl = Workload::prefill(ModelConfig::vit_base(), 16);
        let r = sim
            .run(Method::LoCaLut, "W2A2".parse().unwrap(), &wl)
            .unwrap();
        let sum: f64 = r.phases().iter().map(|(_, s)| s).sum();
        assert!((sum - r.total_seconds()).abs() < 1e-9 * r.total_seconds().max(1.0));
        assert!(r.phase_seconds(Phase::GemmOnPim) > 0.0);
        assert!(r.phase_seconds(Phase::PackingSorting) > 0.0);
        assert_eq!(r.phase_seconds(Phase::CentroidSelection), 0.0);
    }

    #[test]
    fn init_cost_reflects_lut_sizes() {
        let sim = InferenceSim::upmem_server();
        let cfg = w1a3();
        let naive = sim.run(
            Method::NaivePim,
            cfg,
            &Workload::prefill(ModelConfig::bert_base(), 8),
        );
        assert!(naive.is_ok());
        let i_naive = sim.init_cost(Method::NaivePim, cfg).unwrap();
        let i_op = sim.init_cost(Method::Op, cfg).unwrap();
        let i_localut = sim.init_cost(Method::LoCaLut, cfg).unwrap();
        // LUT-free methods have no init cost.
        assert_eq!(i_naive.total_seconds(), 0.0);
        // LoCaLUT's DRAM-resident image (p=8, ~12 MB) dwarfs OP's 4 KB.
        assert!(i_localut.total_seconds() > i_op.total_seconds() * 10.0);
        // But init amortizes: it stays below one BERT inference.
        let one_inference = sim
            .run(
                Method::LoCaLut,
                cfg,
                &Workload::prefill(ModelConfig::bert_base(), 32),
            )
            .unwrap()
            .total_seconds();
        assert!(i_localut.total_seconds() < one_inference);
    }

    #[test]
    fn run_batch_matches_serial_runs_for_any_worker_count() {
        let sim = InferenceSim::upmem_server();
        let requests = vec![
            Workload::prefill(ModelConfig::bert_base(), 8),
            Workload::prefill(ModelConfig::vit_base(), 4),
            Workload::with_decode(ModelConfig::opt_125m(), 2, 4),
        ];
        let cfg: BitConfig = "W4A4".parse().unwrap();
        let serial: Vec<InferenceReport> = requests
            .iter()
            .map(|wl| sim.run(Method::LoCaLut, cfg, wl).unwrap())
            .collect();
        let baseline = sim
            .run_batch(&ParallelExecutor::new(1), Method::LoCaLut, cfg, &requests)
            .unwrap();
        assert_eq!(baseline.reports, serial);
        assert_eq!(baseline.requests(), 3);
        assert_eq!(baseline.stats.banks(), 3); // one ingest per request
        for threads in [2usize, 4, 7] {
            let batch = sim
                .run_batch(
                    &ParallelExecutor::new(threads),
                    Method::LoCaLut,
                    cfg,
                    &requests,
                )
                .unwrap();
            assert_eq!(batch, baseline, "threads = {threads}");
        }
        let sum: f64 = serial.iter().map(InferenceReport::total_seconds).sum();
        assert!((baseline.total_seconds() - sum).abs() < 1e-12);
    }

    #[test]
    fn run_batch_propagates_first_error() {
        let sim = InferenceSim::upmem_server();
        let requests = vec![Workload::prefill(ModelConfig::bert_base(), 8)];
        // W16A16 is infeasible for every LUT method.
        let cfg = BitConfig { bw: 16, ba: 16 };
        let err = sim.run_batch(&ParallelExecutor::new(2), Method::LoCaLut, cfg, &requests);
        assert!(err.is_err());
    }

    #[test]
    fn session_steps_decompose_prefill_plus_decode() {
        let wl = Workload::with_decode(ModelConfig::opt_125m(), 2, 3);
        let steps = wl.session_steps();
        assert_eq!(steps.len(), 4);
        assert_eq!(steps[0], Workload::prefill(ModelConfig::opt_125m(), 2));
        let seq = ModelConfig::opt_125m().seq_len;
        for (i, step) in steps[1..].iter().enumerate() {
            assert_eq!(step.step, Some(DecodeStep { context: seq + i }));
            assert_eq!(step.batch, 2);
            assert_eq!(step.decode_tokens, 0);
        }
        // Prefill-only workloads are a single step; encoder models never
        // decompose into decode steps (monolithic `run` ignores their
        // decode_tokens the same way); steps decompose to themselves.
        assert_eq!(
            Workload::prefill(ModelConfig::bert_base(), 8).session_steps(),
            vec![Workload::prefill(ModelConfig::bert_base(), 8)]
        );
        assert_eq!(
            Workload::with_decode(ModelConfig::bert_base(), 8, 4).session_steps(),
            vec![Workload::prefill(ModelConfig::bert_base(), 8)]
        );
        assert_eq!(steps[2].session_steps(), vec![steps[2].clone()]);
    }

    #[test]
    fn decode_step_times_decode_only() {
        let sim = InferenceSim::upmem_server();
        let cfg: BitConfig = "W4A4".parse().unwrap();
        let seq = ModelConfig::opt_125m().seq_len;
        let step = Workload::decode_step(ModelConfig::opt_125m(), 2, seq);
        let r = sim.run(Method::LoCaLut, cfg, &step).unwrap();
        assert_eq!(r.prefill_seconds, 0.0);
        assert!(r.decode_seconds > 0.0);
        // A longer KV context costs more host attention time.
        let later = Workload::decode_step(ModelConfig::opt_125m(), 2, seq + 64);
        let r2 = sim.run(Method::LoCaLut, cfg, &later).unwrap();
        assert!(r2.decode_seconds > r.decode_seconds);
        // Determinism: the measured planning path is a pure function of
        // the step.
        assert_eq!(sim.run(Method::LoCaLut, cfg, &step).unwrap(), r);
    }

    #[test]
    fn bigger_batches_take_longer() {
        let sim = InferenceSim::upmem_server();
        let small = Workload::prefill(ModelConfig::bert_base(), 8);
        let big = Workload::prefill(ModelConfig::bert_base(), 64);
        let a = sim.run(Method::Op, w1a3(), &small).unwrap();
        let b = sim.run(Method::Op, w1a3(), &big).unwrap();
        assert!(b.total_seconds() > a.total_seconds());
    }
}
