//! Model shape configurations for the paper's three workloads (§VI-A).

/// Which of the paper's models a configuration describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Encoder-only language model (prefill-only inference).
    Bert,
    /// Decoder-only language model (prefill + autoregressive decode).
    Opt,
    /// Vision transformer (prefill-only over image patches).
    Vit,
}

/// Transformer shape configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelConfig {
    /// Display name.
    pub name: &'static str,
    /// Model family.
    pub kind: ModelKind,
    /// Number of transformer layers.
    pub layers: u32,
    /// Hidden dimension.
    pub hidden: usize,
    /// FFN intermediate dimension.
    pub ffn: usize,
    /// Attention heads.
    pub heads: u32,
    /// Default sequence length (tokens per sample; the paper caps GLUE
    /// inputs at 128 and ViT-Base/16 at 224² → 196 patches + CLS).
    pub seq_len: usize,
}

impl ModelConfig {
    /// BERT-base: 12 layers, hidden 768, FFN 3072, 12 heads, seq 128
    /// (110 M parameters).
    #[must_use]
    pub fn bert_base() -> Self {
        ModelConfig {
            name: "BERT",
            kind: ModelKind::Bert,
            layers: 12,
            hidden: 768,
            ffn: 3072,
            heads: 12,
            seq_len: 128,
        }
    }

    /// OPT-125M: 12 layers, hidden 768, FFN 3072, 12 heads, seq 128.
    #[must_use]
    pub fn opt_125m() -> Self {
        ModelConfig {
            name: "OPT",
            kind: ModelKind::Opt,
            layers: 12,
            hidden: 768,
            ffn: 3072,
            heads: 12,
            seq_len: 128,
        }
    }

    /// ViT-Base: 12 layers, hidden 768, FFN 3072, 12 heads, 197 tokens
    /// (86 M parameters).
    #[must_use]
    pub fn vit_base() -> Self {
        ModelConfig {
            name: "ViT",
            kind: ModelKind::Vit,
            layers: 12,
            hidden: 768,
            ffn: 3072,
            heads: 12,
            seq_len: 197,
        }
    }

    /// All three evaluation models.
    #[must_use]
    pub fn paper_models() -> [ModelConfig; 3] {
        [Self::bert_base(), Self::opt_125m(), Self::vit_base()]
    }

    /// Parameter count of the GEMM weights per layer
    /// (QKV + output projection + two FFN matrices).
    #[must_use]
    pub fn gemm_params_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        let f = self.ffn as u64;
        4 * h * h + 2 * h * f
    }

    /// Whether inference includes an autoregressive decode phase.
    #[must_use]
    pub fn has_decode(&self) -> bool {
        self.kind == ModelKind::Opt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_models_have_expected_shapes() {
        let bert = ModelConfig::bert_base();
        assert_eq!((bert.layers, bert.hidden, bert.ffn), (12, 768, 3072));
        let vit = ModelConfig::vit_base();
        assert_eq!(vit.seq_len, 197);
        assert!(!vit.has_decode());
        assert!(ModelConfig::opt_125m().has_decode());
    }

    #[test]
    fn parameter_counts_are_plausible() {
        // BERT-base GEMM weights: 12 * (4*768² + 2*768*3072) ≈ 85 M.
        let bert = ModelConfig::bert_base();
        let total = u64::from(bert.layers) * bert.gemm_params_per_layer();
        assert!((80_000_000..90_000_000).contains(&total), "{total}");
    }
}
