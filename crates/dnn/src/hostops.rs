//! Host-side operation cost model (Fig. 8: softmax, normalization, GELU,
//! attention, and quantize/dequantize run on the Xeon host).

use crate::layer::HostOpCounts;

/// Scalar-op weights per element for each host operation class
/// (multi-op transcendentals cost more than adds).
#[derive(Debug, Clone, PartialEq)]
pub struct HostOpModel {
    /// Ops per attention MAC (fused multiply-add on vector units).
    pub attention_mac_ops: f64,
    /// Ops per softmax element (exp + normalization).
    pub softmax_ops: f64,
    /// Ops per layer-norm element (mean/var + scale/shift).
    pub layernorm_ops: f64,
    /// Ops per GELU element (tanh-approximation).
    pub gelu_ops: f64,
    /// Ops per quantize/dequantize element (scale + round / multiply).
    pub quant_ops: f64,
}

impl HostOpModel {
    /// Representative Xeon weights.
    #[must_use]
    pub fn xeon() -> Self {
        HostOpModel {
            // Attention MACs vectorize on AVX-512 but pay framework and
            // layout overheads (~2 MACs per scalar-op-equivalent of the
            // 10 Gop/s host budget). These weights are calibrated so the
            // host "Others" share of Fig. 16(a) matches the paper's.
            attention_mac_ops: 0.5,
            softmax_ops: 3.0,
            layernorm_ops: 4.0,
            gelu_ops: 5.0,
            quant_ops: 2.0,
        }
    }

    /// Total host scalar ops for a layer's counts, excluding quantization
    /// (reported as its own Fig. 16a phase).
    #[must_use]
    pub fn other_ops(&self, c: &HostOpCounts) -> u64 {
        (c.attention_macs as f64 * self.attention_mac_ops
            + c.softmax_elems as f64 * self.softmax_ops
            + c.layernorm_elems as f64 * self.layernorm_ops
            + c.gelu_elems as f64 * self.gelu_ops) as u64
    }

    /// Quantization ops (the "Quantization" phase of Fig. 16a).
    #[must_use]
    pub fn quant_ops(&self, c: &HostOpCounts) -> u64 {
        (c.quant_elems as f64 * self.quant_ops) as u64
    }
}

impl Default for HostOpModel {
    fn default() -> Self {
        Self::xeon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::layer::layer_host_ops;

    #[test]
    fn attention_dominates_other_host_ops_at_long_context() {
        let model = HostOpModel::xeon();
        let cfg = ModelConfig::bert_base();
        let counts = layer_host_ops(&cfg, 512, 512);
        let other = model.other_ops(&counts);
        // At long context the attention term is the largest contributor.
        let attention = counts.attention_macs as f64 * model.attention_mac_ops;
        assert!(other as f64 > attention * 0.99);
        assert!(attention > other as f64 * 0.4);
    }

    #[test]
    fn quant_ops_separate_from_other() {
        let model = HostOpModel::xeon();
        let counts = layer_host_ops(&ModelConfig::bert_base(), 128, 128);
        assert!(model.quant_ops(&counts) > 0);
        assert!(model.other_ops(&counts) > 0);
    }
}
