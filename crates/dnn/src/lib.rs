//! # dnn — transformer workload substrate
//!
//! The paper evaluates LoCaLUT end-to-end on BERT-base, OPT-125M and
//! ViT-Base (§VI-A). Execution-time results depend on the models only
//! through their *GEMM shape streams* and the host-side operations between
//! GEMMs (Fig. 8: the PIM banks run QKV projection, output projection and
//! FFN; the host runs attention, softmax, normalization, GELU, and
//! quantize/dequantize). This crate provides:
//!
//! * [`config::ModelConfig`] — exact shape configurations of the three
//!   models.
//! * [`layer`] — the per-layer GEMM stream and host-op counts (Fig. 8).
//! * [`hostops`] — the host-side operation cost model.
//! * [`inference`] — end-to-end prefill/decode timing with the Fig. 16(a)
//!   phase breakdown, on top of `localut::tiling`.
//! * [`tasks`] — synthetic GLUE-like classification tasks used by the
//!   accuracy experiments (Fig. 15, Fig. 21b). *Substitution note*: the
//!   paper fine-tunes real checkpoints on GLUE/ImageNet; we measure the
//!   approximation fidelity of the identical numeric pipelines
//!   (quantization, PQ, float reordering) on synthetic linear-teacher
//!   tasks instead, which exercises the same compute paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod hostops;
pub mod inference;
pub mod layer;
pub mod tasks;

pub use config::{ModelConfig, ModelKind};
pub use inference::{DecodeStep, InferenceReport, InferenceSim, Phase, Workload};
