//! Lloyd's k-means with L1 and L2 distances — the codebook learner behind
//! PIM-DL and LUT-DLA.
//!
//! LUT-DLA supports both L1 and L2 centroid–activation similarity to trade
//! host compute for accuracy (§VI-A); L1 centroids are updated with the
//! component-wise median (the L1 Fréchet mean), L2 with the mean.

use crate::PqError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distance metric for assignment and centroid updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distance {
    /// Manhattan distance (cheaper on hardware, slightly worse fit).
    L1,
    /// Euclidean distance (squared; the conventional k-means).
    L2,
}

impl Distance {
    /// Distance between two vectors.
    #[must_use]
    pub fn eval(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Distance::L1 => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Distance::L2 => a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum(),
        }
    }
}

/// A learned codebook: `n_centroids` centroids of dimension `dim`.
#[derive(Debug, Clone, PartialEq)]
pub struct Codebook {
    centroids: Vec<f32>,
    dim: usize,
    n_centroids: usize,
    distance: Distance,
}

impl Codebook {
    /// Number of centroids.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n_centroids
    }

    /// Whether the codebook is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n_centroids == 0
    }

    /// Sub-vector dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The distance metric the codebook was trained with.
    #[must_use]
    pub fn distance(&self) -> Distance {
        self.distance
    }

    /// Centroid `c` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `c` is out of range.
    #[must_use]
    pub fn centroid(&self, c: usize) -> &[f32] {
        assert!(c < self.n_centroids, "centroid index out of range");
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// Index of the nearest centroid to `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != dim`.
    #[must_use]
    pub fn assign(&self, v: &[f32]) -> usize {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let mut best = (f32::INFINITY, 0usize);
        for c in 0..self.n_centroids {
            let d = self.distance.eval(v, self.centroid(c));
            if d < best.0 {
                best = (d, c);
            }
        }
        best.1
    }
}

/// Runs Lloyd's k-means over `samples` row-major `dim`-vectors.
///
/// # Errors
///
/// [`PqError::InvalidConfig`] for empty inputs or zero centroids;
/// [`PqError::ShapeMismatch`] when the data length is not a multiple of
/// `dim`.
pub fn kmeans(
    data: &[f32],
    dim: usize,
    n_centroids: usize,
    distance: Distance,
    iters: u32,
    seed: u64,
) -> Result<Codebook, PqError> {
    if dim == 0 || n_centroids == 0 {
        return Err(PqError::InvalidConfig(
            "dim and n_centroids must be positive",
        ));
    }
    if data.is_empty() || !data.len().is_multiple_of(dim) {
        return Err(PqError::ShapeMismatch {
            expected: dim,
            actual: data.len(),
        });
    }
    let n = data.len() / dim;
    let sample = |i: usize| &data[i * dim..(i + 1) * dim];
    let mut rng = StdRng::seed_from_u64(seed);

    // Farthest-point initialization: first centroid random, each next one
    // the sample farthest from all chosen so far (robustly spreads the
    // codebook across the data's support).
    let mut centroids: Vec<f32> = Vec::with_capacity(n_centroids * dim);
    centroids.extend_from_slice(sample(rng.random_range(0..n)));
    while centroids.len() < n_centroids * dim {
        let chosen = centroids.len() / dim;
        let farthest = (0..n)
            .max_by(|&a, &b| {
                let da = (0..chosen)
                    .map(|c| distance.eval(sample(a), &centroids[c * dim..(c + 1) * dim]))
                    .fold(f32::INFINITY, f32::min);
                let db = (0..chosen)
                    .map(|c| distance.eval(sample(b), &centroids[c * dim..(c + 1) * dim]))
                    .fold(f32::INFINITY, f32::min);
                da.total_cmp(&db)
            })
            .expect("n > 0");
        centroids.extend_from_slice(sample(farthest));
    }

    let mut assignments = vec![0usize; n];
    for _ in 0..iters {
        // Assignment step.
        let book = Codebook {
            centroids: centroids.clone(),
            dim,
            n_centroids,
            distance,
        };
        for (i, a) in assignments.iter_mut().enumerate() {
            *a = book.assign(sample(i));
        }
        // Update step.
        for c in 0..n_centroids {
            let members: Vec<usize> = (0..n).filter(|&i| assignments[i] == c).collect();
            if members.is_empty() {
                // Re-seed empty clusters from a random sample.
                let s = sample(rng.random_range(0..n));
                centroids[c * dim..(c + 1) * dim].copy_from_slice(s);
                continue;
            }
            for d in 0..dim {
                let new = match distance {
                    Distance::L2 => {
                        members.iter().map(|&i| sample(i)[d]).sum::<f32>() / members.len() as f32
                    }
                    Distance::L1 => {
                        let mut vals: Vec<f32> = members.iter().map(|&i| sample(i)[d]).collect();
                        vals.sort_by(f32::total_cmp);
                        vals[vals.len() / 2]
                    }
                };
                centroids[c * dim + d] = new;
            }
        }
    }
    Ok(Codebook {
        centroids,
        dim,
        n_centroids,
        distance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob_data() -> Vec<f32> {
        // 2-D points clustered near (0,0) and (10,10).
        let mut data = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f32 * 0.1;
            data.extend_from_slice(&[jitter, -jitter]);
            data.extend_from_slice(&[10.0 + jitter, 10.0 - jitter]);
        }
        data
    }

    #[test]
    fn kmeans_finds_two_blobs() {
        for dist in [Distance::L1, Distance::L2] {
            let book = kmeans(&two_blob_data(), 2, 2, dist, 10, 42).unwrap();
            let a = book.assign(&[0.2, 0.0]);
            let b = book.assign(&[9.8, 10.1]);
            assert_ne!(a, b, "{dist:?} failed to separate blobs");
            // Centroids are near the blob centers.
            let near_origin = book.centroid(a);
            assert!(near_origin[0].abs() < 1.0 && near_origin[1].abs() < 1.0);
        }
    }

    #[test]
    fn assign_picks_nearest() {
        let book = kmeans(&two_blob_data(), 2, 2, Distance::L2, 5, 7).unwrap();
        let v = [10.0f32, 10.0];
        let c = book.assign(&v);
        let other = 1 - c;
        assert!(
            Distance::L2.eval(&v, book.centroid(c)) <= Distance::L2.eval(&v, book.centroid(other))
        );
    }

    #[test]
    fn distances_are_correct() {
        assert_eq!(Distance::L1.eval(&[1.0, 2.0], &[3.0, 0.0]), 4.0);
        assert_eq!(Distance::L2.eval(&[1.0, 2.0], &[3.0, 0.0]), 8.0);
    }

    #[test]
    fn invalid_configs_error() {
        assert!(kmeans(&[1.0], 0, 2, Distance::L2, 1, 0).is_err());
        assert!(kmeans(&[1.0], 1, 0, Distance::L2, 1, 0).is_err());
        assert!(kmeans(&[], 2, 2, Distance::L2, 1, 0).is_err());
        assert!(kmeans(&[1.0, 2.0, 3.0], 2, 2, Distance::L2, 1, 0).is_err());
    }

    #[test]
    fn kmeans_is_deterministic() {
        let a = kmeans(&two_blob_data(), 2, 2, Distance::L2, 5, 9).unwrap();
        let b = kmeans(&two_blob_data(), 2, 2, Distance::L2, 5, 9).unwrap();
        assert_eq!(a, b);
    }
}
