//! PQ-approximate GEMM: the algorithmic core shared by PIM-DL and LUT-DLA.
//!
//! Setup (offline): split the `K` dimension into `K/d` subspaces; learn a
//! `C`-centroid codebook per subspace from calibration activations; build
//! per-subspace LUTs `table[c][m] = dot(centroid_c, W[m, subspace])`.
//!
//! Inference: the host snaps every activation sub-vector to its nearest
//! centroid (the expensive "Centroid Selection" phase of Fig. 16a); the
//! PIM/accelerator side adds `K/d` LUT entries per output element.

use crate::kmeans::{kmeans, Codebook, Distance};
use crate::PqError;

/// Which published system a configuration models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PqVariant {
    /// PIM-DL on UPMEM-class PIM.
    PimDl,
    /// LUT-DLA with L1 centroid distance.
    LutDlaL1,
    /// LUT-DLA with L2 centroid distance.
    LutDlaL2,
}

impl PqVariant {
    /// Display label used in Fig. 15.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PqVariant::PimDl => "PIM-DL",
            PqVariant::LutDlaL1 => "LUT-DLA (L1)",
            PqVariant::LutDlaL2 => "LUT-DLA (L2)",
        }
    }

    /// The centroid distance metric the variant uses.
    #[must_use]
    pub fn distance(self) -> Distance {
        match self {
            PqVariant::LutDlaL1 => Distance::L1,
            _ => Distance::L2,
        }
    }
}

/// PQ hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PqConfig {
    /// Which system this models.
    pub variant: PqVariant,
    /// Sub-vector dimension `d`.
    pub sub_dim: usize,
    /// Centroids per subspace `C` (16 → 4-bit codes, the common setting).
    pub n_centroids: usize,
    /// k-means iterations for codebook learning.
    pub kmeans_iters: u32,
    /// RNG seed.
    pub seed: u64,
}

impl PqConfig {
    /// The published default: `d = 8`, `C = 16` (4-bit codes).
    #[must_use]
    pub fn standard(variant: PqVariant) -> Self {
        PqConfig {
            variant,
            sub_dim: 8,
            n_centroids: 16,
            kmeans_iters: 12,
            seed: 1234,
        }
    }
}

/// A trained PQ engine for a fixed weight matrix.
#[derive(Debug, Clone)]
pub struct PqEngine {
    cfg: PqConfig,
    codebooks: Vec<Codebook>,
    /// Per-subspace LUTs, `tables[j][c * m_rows + m]`.
    tables: Vec<Vec<f32>>,
    m_rows: usize,
    k: usize,
}

impl PqEngine {
    /// Trains codebooks on calibration activations (`k × calib_samples`,
    /// row-major by K) and precomputes the centroid·weight LUTs for the
    /// `m × k` weight matrix.
    ///
    /// # Errors
    ///
    /// Shape/configuration errors.
    pub fn fit(
        cfg: PqConfig,
        weights: &[f32],
        m: usize,
        k: usize,
        calib_activations: &[f32],
        calib_samples: usize,
    ) -> Result<Self, PqError> {
        if weights.len() != m * k {
            return Err(PqError::ShapeMismatch {
                expected: m * k,
                actual: weights.len(),
            });
        }
        if calib_activations.len() != k * calib_samples {
            return Err(PqError::ShapeMismatch {
                expected: k * calib_samples,
                actual: calib_activations.len(),
            });
        }
        if !k.is_multiple_of(cfg.sub_dim) {
            return Err(PqError::IndivisibleK {
                k,
                sub_dim: cfg.sub_dim,
            });
        }
        let d = cfg.sub_dim;
        let n_sub = k / d;
        let mut codebooks = Vec::with_capacity(n_sub);
        let mut tables = Vec::with_capacity(n_sub);
        for j in 0..n_sub {
            // Gather the j-th sub-vector of every calibration sample
            // (activations are `k × samples`, column-per-sample).
            let mut subs = Vec::with_capacity(calib_samples * d);
            for s in 0..calib_samples {
                for dd in 0..d {
                    subs.push(calib_activations[(j * d + dd) * calib_samples + s]);
                }
            }
            let book = kmeans(
                &subs,
                d,
                cfg.n_centroids,
                cfg.variant.distance(),
                cfg.kmeans_iters,
                cfg.seed.wrapping_add(j as u64),
            )?;
            // LUT: dot(centroid, weight sub-row) for every (centroid, row).
            let mut table = vec![0.0f32; cfg.n_centroids * m];
            for c in 0..cfg.n_centroids {
                let cent = book.centroid(c);
                for row in 0..m {
                    let mut acc = 0.0f32;
                    for dd in 0..d {
                        acc += cent[dd] * weights[row * k + j * d + dd];
                    }
                    table[c * m + row] = acc;
                }
            }
            codebooks.push(book);
            tables.push(table);
        }
        Ok(PqEngine {
            cfg,
            codebooks,
            tables,
            m_rows: m,
            k,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &PqConfig {
        &self.cfg
    }

    /// Number of subspaces (`K / d`).
    #[must_use]
    pub fn n_subspaces(&self) -> usize {
        self.codebooks.len()
    }

    /// Approximate GEMM: scores `m × n` (row-major) for activations
    /// `k × n` (row-major by K).
    ///
    /// # Errors
    ///
    /// Shape errors.
    pub fn gemm(&self, activations: &[f32], n: usize) -> Result<Vec<f32>, PqError> {
        if activations.len() != self.k * n {
            return Err(PqError::ShapeMismatch {
                expected: self.k * n,
                actual: activations.len(),
            });
        }
        let d = self.cfg.sub_dim;
        let mut out = vec![0.0f32; self.m_rows * n];
        let mut sub = vec![0.0f32; d];
        for s in 0..n {
            for (j, book) in self.codebooks.iter().enumerate() {
                for dd in 0..d {
                    sub[dd] = activations[(j * d + dd) * n + s];
                }
                // Host: centroid selection.
                let c = book.assign(&sub);
                // PIM: table adds.
                let table = &self.tables[j];
                for row in 0..self.m_rows {
                    out[row * n + s] += table[c * self.m_rows + row];
                }
            }
        }
        Ok(out)
    }

    /// Host centroid-selection scalar ops for an `n`-sample batch:
    /// `n · (K/d) · C · d` distance terms (each ~2 ops).
    #[must_use]
    pub fn centroid_selection_ops(&self, n: usize) -> u64 {
        2 * n as u64
            * self.n_subspaces() as u64
            * self.cfg.n_centroids as u64
            * self.cfg.sub_dim as u64
    }

    /// PIM-side table-add operations for an `n`-sample batch:
    /// `M · n · (K/d)`.
    #[must_use]
    pub fn pim_adds(&self, n: usize) -> u64 {
        self.m_rows as u64 * n as u64 * self.n_subspaces() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.random_range(-1.0f32..1.0)).collect()
    }

    fn exact_gemm(w: &[f32], a: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for row in 0..m {
            for s in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += w[row * k + kk] * a[kk * n + s];
                }
                out[row * n + s] = acc;
            }
        }
        out
    }

    #[test]
    fn pq_gemm_approximates_exact_gemm() {
        let mut rng = StdRng::seed_from_u64(3);
        let (m, k, n) = (6, 32, 40);
        let w = random_matrix(&mut rng, m * k);
        let a = random_matrix(&mut rng, k * n);
        for variant in [PqVariant::PimDl, PqVariant::LutDlaL1, PqVariant::LutDlaL2] {
            let engine = PqEngine::fit(PqConfig::standard(variant), &w, m, k, &a, n).unwrap();
            let approx = engine.gemm(&a, n).unwrap();
            let exact = exact_gemm(&w, &a, m, k, n);
            // Relative RMS error must be bounded (PQ is lossy but sane).
            let rms_err: f32 = approx
                .iter()
                .zip(&exact)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt();
            let rms: f32 = exact.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!(
                rms_err / rms < 0.8,
                "{variant:?}: relative error {} too large",
                rms_err / rms
            );
        }
    }

    #[test]
    fn more_centroids_reduce_error() {
        let mut rng = StdRng::seed_from_u64(5);
        let (m, k, n) = (4, 16, 64);
        let w = random_matrix(&mut rng, m * k);
        let a = random_matrix(&mut rng, k * n);
        let exact = exact_gemm(&w, &a, m, k, n);
        let err_for = |c: usize| {
            let cfg = PqConfig {
                n_centroids: c,
                ..PqConfig::standard(PqVariant::PimDl)
            };
            let engine = PqEngine::fit(cfg, &w, m, k, &a, n).unwrap();
            let approx = engine.gemm(&a, n).unwrap();
            approx
                .iter()
                .zip(&exact)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
        };
        assert!(err_for(32) < err_for(2));
    }

    #[test]
    fn op_counts_match_formulas() {
        let mut rng = StdRng::seed_from_u64(7);
        let (m, k, n) = (8, 32, 10);
        let w = random_matrix(&mut rng, m * k);
        let a = random_matrix(&mut rng, k * n);
        let engine = PqEngine::fit(PqConfig::standard(PqVariant::PimDl), &w, m, k, &a, n).unwrap();
        assert_eq!(engine.n_subspaces(), 4);
        assert_eq!(engine.centroid_selection_ops(10), 2 * 10 * 4 * 16 * 8);
        assert_eq!(engine.pim_adds(10), 8 * 10 * 4);
    }

    #[test]
    fn indivisible_k_rejected() {
        let err = PqEngine::fit(
            PqConfig::standard(PqVariant::PimDl),
            &vec![0.0; 5 * 30],
            5,
            30,
            &vec![0.0; 30 * 4],
            4,
        )
        .unwrap_err();
        assert!(matches!(err, PqError::IndivisibleK { .. }));
    }

    #[test]
    fn variant_labels_and_distances() {
        assert_eq!(PqVariant::PimDl.label(), "PIM-DL");
        assert_eq!(PqVariant::LutDlaL1.distance(), Distance::L1);
        assert_eq!(PqVariant::LutDlaL2.distance(), Distance::L2);
    }
}
