//! System-level cost model for the PQ baselines (Fig. 15 speedups,
//! Fig. 16a breakdown).
//!
//! The defining cost signature of PQ methods (§VI-G): the PIM side only
//! *adds* precomputed partials — a small "GEMM on PIM" phase — but the
//! host pays a large "Centroid Selection" phase
//! (`N · (K/d) · C · d` distance terms per GEMM). LUT-DLA accelerates
//! centroid selection with dedicated hardware, L1 more cheaply than L2.

use crate::pqgemm::{PqConfig, PqVariant};
use pim_sim::{Category, CycleLedger, DpuTimings, PimSystem, Profile, SystemProfile};

/// Cost model for a PQ system execution.
#[derive(Debug, Clone)]
pub struct PqCostModel {
    /// The PIM system (topology + host link).
    pub system: PimSystem,
    /// DPU timings for the PIM-side adds.
    pub timings: DpuTimings,
    /// Instructions per PIM table-add (load id amortized + load entry +
    /// add).
    pub add_instrs: u32,
}

impl PqCostModel {
    /// The paper's UPMEM server.
    #[must_use]
    pub fn upmem_server() -> Self {
        PqCostModel {
            system: PimSystem::upmem_server(),
            timings: DpuTimings::upmem(),
            add_instrs: 3,
        }
    }

    /// Hardware acceleration factor for centroid selection: PIM-DL does it
    /// on the host CPU; LUT-DLA has dedicated comparator trees (L1 simpler
    /// than L2).
    fn centroid_accel(variant: PqVariant) -> f64 {
        match variant {
            PqVariant::PimDl => 1.0,
            PqVariant::LutDlaL1 => 1.6,
            PqVariant::LutDlaL2 => 1.3,
        }
    }

    /// System cost of one PQ GEMM `M×K×N`.
    #[must_use]
    pub fn gemm_cost(&self, cfg: &PqConfig, m: usize, k: usize, n: usize) -> SystemProfile {
        let n_sub = (k / cfg.sub_dim).max(1) as u64;
        let (m64, n64, k64) = (m as u64, n as u64, k as u64);

        // Host: centroid selection (the dominant phase for PIM-DL).
        // ~4 scalar ops per distance term: gather + subtract + square/abs +
        // accumulate, plus the running argmin — centroid search vectorizes
        // poorly compared to plain quantization.
        let centroid_ops = 4 * n64 * n_sub * cfg.n_centroids as u64 * cfg.sub_dim as u64;
        let accel = Self::centroid_accel(cfg.variant);
        let mut host = CycleLedger::new();
        host.charge(
            Category::HostCentroid,
            self.system.host_ops_seconds(centroid_ops) / accel,
        );
        // Host: data layout reordering (gathering sub-vectors, packing ids)
        // — the Fig. 16(a) "Data reordering" segment.
        let reorder_ops = k64 * n64;
        host.charge(Category::Other, self.system.host_ops_seconds(reorder_ops));
        // Transfers: 4-bit centroid ids in, fp32 outputs back.
        let id_bytes = (n64 * n_sub).div_ceil(2);
        let out_bytes = m64 * n64 * 4;
        host.charge(
            Category::HostTransfer,
            self.system.scatter_seconds(id_bytes) + self.system.gather_seconds(out_bytes),
        );
        host.host_bytes = id_bytes + out_bytes;
        host.host_ops = centroid_ops + reorder_ops;

        // PIM: table adds, split across the DPUs (LUT tables are sharded
        // by output row).
        let n_dpus = u64::from(self.system.config().n_dpus());
        let adds = m64 * n64 * n_sub;
        let adds_per_dpu = adds.div_ceil(n_dpus);
        let mut pim = CycleLedger::new();
        pim.charge(
            Category::Compute,
            self.timings
                .instruction_seconds(adds_per_dpu * u64::from(self.add_instrs)),
        );
        pim.instructions = adds_per_dpu * u64::from(self.add_instrs);
        pim.wram_accesses = adds_per_dpu;

        SystemProfile {
            host: Profile::from_ledger(host),
            pim: Profile::from_ledger(pim),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(variant: PqVariant) -> PqConfig {
        PqConfig::standard(variant)
    }

    #[test]
    fn centroid_selection_dominates_pimdl() {
        // §VI-G: PIM-DL "exhibits a large overhead on the host ... for
        // finding the centroid for each value".
        let model = PqCostModel::upmem_server();
        let sp = model.gemm_cost(&cfg(PqVariant::PimDl), 768, 768, 128);
        let centroid = sp.host.seconds(Category::HostCentroid);
        assert!(
            centroid > sp.pim.total_seconds(),
            "centroid phase too small"
        );
        assert!(centroid / sp.total_seconds() > 0.4);
    }

    #[test]
    fn lutdla_accelerates_centroid_selection() {
        let model = PqCostModel::upmem_server();
        let pimdl = model.gemm_cost(&cfg(PqVariant::PimDl), 768, 768, 128);
        let l1 = model.gemm_cost(&cfg(PqVariant::LutDlaL1), 768, 768, 128);
        let l2 = model.gemm_cost(&cfg(PqVariant::LutDlaL2), 768, 768, 128);
        assert!(l1.total_seconds() < pimdl.total_seconds());
        assert!(
            l1.total_seconds() < l2.total_seconds(),
            "L1 is cheaper than L2"
        );
    }

    #[test]
    fn pim_phase_scales_with_m() {
        let model = PqCostModel::upmem_server();
        let small = model.gemm_cost(&cfg(PqVariant::PimDl), 768, 768, 128);
        let big = model.gemm_cost(&cfg(PqVariant::PimDl), 3072, 768, 128);
        assert!(big.pim.total_seconds() > small.pim.total_seconds());
        // Centroid selection is M-independent.
        assert!(
            (big.host.seconds(Category::HostCentroid) - small.host.seconds(Category::HostCentroid))
                .abs()
                < 1e-12
        );
    }
}
