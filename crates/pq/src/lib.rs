//! # pq — product-quantization baselines (PIM-DL, LUT-DLA)
//!
//! The paper compares LoCaLUT against two PQ-based LUT systems (§VI-A,
//! Fig. 15, Fig. 16a):
//!
//! * **PIM-DL** (ASPLOS'24): approximates GEMM by product quantization —
//!   activations are chunked into sub-vectors, each snapped to its nearest
//!   learned centroid on the *host*, and the PIM banks add precomputed
//!   centroid·weight partial dot products from a LUT.
//! * **LUT-DLA** (HPCA'25): the same PQ idea in a dedicated accelerator,
//!   with L1 and L2 centroid-distance variants.
//!
//! This crate implements the full algorithm (Lloyd's k-means codebook
//! learning, centroid assignment, LUT construction, approximate GEMM) plus
//! the cost model that produces PQ's characteristic Fig. 16(a) profile: a
//! small PIM phase but a large host "Centroid Selection" phase.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod kmeans;
pub mod pqgemm;

pub use cost::PqCostModel;
pub use kmeans::{kmeans, Codebook, Distance};
pub use pqgemm::{PqConfig, PqEngine, PqVariant};

/// Errors produced by the PQ baselines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PqError {
    /// Shape error: `K` must be divisible by the sub-vector dimension.
    IndivisibleK {
        /// The inner dimension.
        k: usize,
        /// The sub-vector dimension.
        sub_dim: usize,
    },
    /// Data length does not match the declared shape.
    ShapeMismatch {
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        actual: usize,
    },
    /// Invalid configuration (zero centroids, zero dimension, ...).
    InvalidConfig(&'static str),
}

impl core::fmt::Display for PqError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PqError::IndivisibleK { k, sub_dim } => {
                write!(
                    f,
                    "inner dimension {k} not divisible by sub-vector dim {sub_dim}"
                )
            }
            PqError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape ({expected} expected)"
                )
            }
            PqError::InvalidConfig(msg) => write!(f, "invalid PQ configuration: {msg}"),
        }
    }
}

impl std::error::Error for PqError {}
