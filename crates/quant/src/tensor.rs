//! Quantized matrices: the code-level view of weights and activations that
//! every LUT kernel consumes.

use crate::formats::NumericFormat;
use crate::QuantError;

/// A row-major quantized matrix: codewords + format + per-tensor scale.
///
/// Codes are stored as `u16` (formats up to 16 bits). The GEMM kernels in
/// the `localut` crate operate directly on codes; dequantization multiplies
/// decoded values by `scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct QMatrix {
    codes: Vec<u16>,
    rows: usize,
    cols: usize,
    format: NumericFormat,
    scale: f32,
}

impl QMatrix {
    /// Builds a matrix from raw codes.
    ///
    /// # Errors
    ///
    /// [`QuantError::ShapeMismatch`] when `codes.len() != rows * cols`;
    /// [`QuantError::CodeOutOfRange`] when a code exceeds the format's code
    /// space.
    pub fn from_codes(
        codes: Vec<u16>,
        rows: usize,
        cols: usize,
        format: NumericFormat,
        scale: f32,
    ) -> Result<Self, QuantError> {
        if codes.len() != rows * cols {
            return Err(QuantError::ShapeMismatch {
                expected: rows * cols,
                actual: codes.len(),
            });
        }
        let space = format.code_space();
        if let Some(&bad) = codes.iter().find(|&&c| u32::from(c) >= space) {
            return Err(QuantError::CodeOutOfRange {
                code: u32::from(bad),
                space,
            });
        }
        Ok(QMatrix {
            codes,
            rows,
            cols,
            format,
            scale,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The numeric format of the codes.
    #[must_use]
    pub fn format(&self) -> NumericFormat {
        self.format
    }

    /// The per-tensor dequantization scale.
    #[must_use]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Raw codes, row-major.
    #[must_use]
    pub fn codes(&self) -> &[u16] {
        &self.codes
    }

    /// Code at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the position is out of bounds.
    #[must_use]
    pub fn code_at(&self, row: usize, col: usize) -> u16 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.codes[row * self.cols + col]
    }

    /// One row of codes.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of bounds.
    #[must_use]
    pub fn row(&self, row: usize) -> &[u16] {
        assert!(row < self.rows, "row out of bounds");
        &self.codes[row * self.cols..(row + 1) * self.cols]
    }

    /// Decoded integer value at `(row, col)` (integer formats only).
    #[must_use]
    pub fn value_at(&self, row: usize, col: usize) -> Option<i32> {
        self.format.decode_int(u32::from(self.code_at(row, col)))
    }

    /// Dequantizes the whole matrix to f32 (`decode(code) * scale`).
    #[must_use]
    pub fn dequantize(&self) -> Vec<f32> {
        self.codes
            .iter()
            .map(|&c| self.format.decode_f32(u32::from(c)) * self.scale)
            .collect()
    }

    /// Total bytes the codes occupy when bit-packed (`ceil(bits*len/8)`),
    /// the footprint used for transfer-cost accounting.
    #[must_use]
    pub fn packed_bytes(&self) -> u64 {
        (u64::from(self.format.bits()) * self.codes.len() as u64).div_ceil(8)
    }

    /// A deterministic pseudo-random matrix: codes drawn from a fixed
    /// per-index integer hash (splitmix64 finalizer) over the format's
    /// code space, so the same `(shape, format, seed)` always yields the
    /// same matrix and nearby seeds yield unrelated matrices. Used by the
    /// property tests, the runtime benches, and the CLI's functional demo
    /// runs — anywhere reproducible operands matter more than a
    /// statistical distribution.
    ///
    /// # Examples
    ///
    /// ```
    /// use quant::{NumericFormat, QMatrix};
    ///
    /// let a = QMatrix::pseudo_random(3, 4, NumericFormat::Int(3), 42);
    /// let b = QMatrix::pseudo_random(3, 4, NumericFormat::Int(3), 42);
    /// assert_eq!(a, b); // same seed, same matrix
    /// let c = QMatrix::pseudo_random(3, 4, NumericFormat::Int(3), 43);
    /// assert_ne!(a, c); // adjacent seeds diverge
    /// assert!(a.codes().iter().all(|&c| u32::from(c) < NumericFormat::Int(3).code_space()));
    /// ```
    #[must_use]
    pub fn pseudo_random(rows: usize, cols: usize, format: NumericFormat, seed: u64) -> QMatrix {
        let space = u64::from(format.code_space());
        let codes: Vec<u16> = (0..rows * cols)
            .map(|i| {
                let mut x = (i as u64) ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^= x >> 31;
                (x % space) as u16
            })
            .collect();
        QMatrix {
            codes,
            rows,
            cols,
            format,
            scale: 1.0,
        }
    }

    /// A rectangular sub-matrix copy covering `rows × cols` (same
    /// format/scale) — the operand slice a bank-parallel runtime hands one
    /// worker.
    ///
    /// # Panics
    ///
    /// Panics when a range end exceeds the matrix bounds or a range is
    /// reversed.
    ///
    /// # Examples
    ///
    /// ```
    /// use quant::{NumericFormat, QMatrix};
    ///
    /// let m = QMatrix::from_codes(vec![0, 1, 2, 3, 4, 5], 2, 3,
    ///     NumericFormat::Int(3), 1.0).unwrap();
    /// let tile = m.submatrix(0..2, 1..3);
    /// assert_eq!(tile.codes(), &[1, 2, 4, 5]);
    /// ```
    #[must_use]
    pub fn submatrix(
        &self,
        rows: core::ops::Range<usize>,
        cols: core::ops::Range<usize>,
    ) -> QMatrix {
        assert!(
            rows.start <= rows.end && rows.end <= self.rows,
            "row range out of bounds"
        );
        assert!(
            cols.start <= cols.end && cols.end <= self.cols,
            "column range out of bounds"
        );
        let n_rows = rows.len();
        let mut codes = Vec::with_capacity(n_rows * cols.len());
        for r in rows {
            codes.extend_from_slice(
                &self.codes[r * self.cols + cols.start..r * self.cols + cols.end],
            );
        }
        QMatrix {
            codes,
            rows: n_rows,
            cols: cols.len(),
            format: self.format,
            scale: self.scale,
        }
    }

    /// Transposed copy (codes only; same format/scale).
    #[must_use]
    pub fn transposed(&self) -> QMatrix {
        let mut codes = vec![0u16; self.codes.len()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                codes[c * self.rows + r] = self.codes[r * self.cols + c];
            }
        }
        QMatrix {
            codes,
            rows: self.cols,
            cols: self.rows,
            format: self.format,
            scale: self.scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QMatrix {
        QMatrix::from_codes(vec![0, 1, 2, 3, 4, 5], 2, 3, NumericFormat::Int(3), 0.5).unwrap()
    }

    #[test]
    fn shape_and_access() {
        let m = sample();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.code_at(1, 2), 5);
        assert_eq!(m.row(0), &[0, 1, 2]);
        assert_eq!(m.value_at(1, 2), Some(-3)); // code 5 in int3 = -3
    }

    #[test]
    fn from_codes_validates_shape_and_range() {
        assert!(matches!(
            QMatrix::from_codes(vec![0; 5], 2, 3, NumericFormat::Int(3), 1.0),
            Err(QuantError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            QMatrix::from_codes(vec![8], 1, 1, NumericFormat::Int(3), 1.0),
            Err(QuantError::CodeOutOfRange { .. })
        ));
    }

    #[test]
    fn dequantize_applies_scale() {
        let m = sample();
        let d = m.dequantize();
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 0.5);
        assert_eq!(d[5], -1.5);
    }

    #[test]
    fn packed_bytes_rounds_up() {
        let m = sample(); // 6 codes * 3 bits = 18 bits -> 3 bytes
        assert_eq!(m.packed_bytes(), 3);
        let one = QMatrix::from_codes(vec![1], 1, 1, NumericFormat::Bipolar, 1.0).unwrap();
        assert_eq!(one.packed_bytes(), 1);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.code_at(2, 1), m.code_at(1, 2));
        assert_eq!(t.transposed(), m);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_bounds_access_panics() {
        let m = sample();
        let _ = m.code_at(2, 0);
    }

    #[test]
    fn submatrix_extracts_tiles() {
        let m = sample(); // [[0,1,2],[3,4,5]]
        let full = m.submatrix(0..2, 0..3);
        assert_eq!(full, m);
        let tile = m.submatrix(1..2, 0..2);
        assert_eq!((tile.rows(), tile.cols()), (1, 2));
        assert_eq!(tile.codes(), &[3, 4]);
        assert_eq!(tile.format(), m.format());
        assert_eq!(tile.scale(), m.scale());
        let empty = m.submatrix(0..0, 0..3);
        assert_eq!((empty.rows(), empty.cols()), (0, 3));
    }

    #[test]
    #[should_panic(expected = "column range out of bounds")]
    fn submatrix_validates_ranges() {
        let _ = sample().submatrix(0..1, 2..4);
    }
}
