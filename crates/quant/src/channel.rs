//! Per-channel (per-output-row) weight quantization.
//!
//! The paper's quantization recipes (BinaryBERT, KDLSQ-BERT, Q-ViT,
//! OmniQuant) quantize weights per output channel: each weight row gets its
//! own scale, which costs nothing at inference time — LUT kernels operate
//! on codes, and the per-row scale multiplies the accumulated integer
//! output during dequantization. This module provides the per-channel
//! quantizer and the dequantization helper for GEMM outputs.

use crate::formats::NumericFormat;
use crate::scheme::Quantizer;
use crate::tensor::QMatrix;
use crate::QuantError;

/// A per-row-scaled quantized matrix: codes plus one scale per row.
///
/// The codes are stored in an ordinary [`QMatrix`] whose global scale is 1;
/// `row_scales[r]` dequantizes row `r`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelQMatrix {
    codes: QMatrix,
    row_scales: Vec<f32>,
}

impl ChannelQMatrix {
    /// Quantizes a row-major `rows × cols` matrix with one scale per row.
    ///
    /// # Errors
    ///
    /// [`QuantError::ShapeMismatch`] when `data.len() != rows * cols`.
    pub fn quantize(
        data: &[f32],
        rows: usize,
        cols: usize,
        format: NumericFormat,
    ) -> Result<Self, QuantError> {
        if data.len() != rows * cols {
            return Err(QuantError::ShapeMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        let q = Quantizer::symmetric(format);
        let mut codes = Vec::with_capacity(rows * cols);
        let mut row_scales = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let scale = q.scale_for(row);
            row_scales.push(scale);
            codes.extend(
                row.iter()
                    .map(|&x| format.encode_nearest_f32(x / scale) as u16),
            );
        }
        Ok(ChannelQMatrix {
            codes: QMatrix::from_codes(codes, rows, cols, format, 1.0)?,
            row_scales,
        })
    }

    /// The code matrix (usable by every LUT kernel; its global scale is 1).
    #[must_use]
    pub fn codes(&self) -> &QMatrix {
        &self.codes
    }

    /// The per-row scales.
    #[must_use]
    pub fn row_scales(&self) -> &[f32] {
        &self.row_scales
    }

    /// Dequantizes the matrix itself.
    #[must_use]
    pub fn dequantize(&self) -> Vec<f32> {
        let cols = self.codes.cols();
        let format = self.codes.format();
        self.codes
            .codes()
            .iter()
            .enumerate()
            .map(|(i, &c)| format.decode_f32(u32::from(c)) * self.row_scales[i / cols])
            .collect()
    }

    /// Dequantizes an integer GEMM output `self × A` (row-major `rows × n`)
    /// produced from this matrix's codes and an activation matrix with
    /// per-tensor scale `act_scale`.
    ///
    /// # Panics
    ///
    /// Panics when `output.len() != rows * n`.
    #[must_use]
    pub fn dequantize_gemm_output(&self, output: &[i32], n: usize, act_scale: f32) -> Vec<f32> {
        assert_eq!(
            output.len(),
            self.row_scales.len() * n,
            "output shape mismatch"
        );
        output
            .iter()
            .enumerate()
            .map(|(i, &v)| v as f32 * self.row_scales[i / n] * act_scale)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_channel_handles_disparate_row_magnitudes() {
        // Row 0 is tiny, row 1 is huge: per-tensor quantization would
        // crush row 0 to zero at 4 bits; per-channel preserves it.
        let data = vec![0.01, -0.02, 0.015, 100.0, -80.0, 60.0];
        let per_tensor = Quantizer::symmetric(NumericFormat::Int(4))
            .quantize_matrix(&data, 2, 3)
            .unwrap();
        let per_channel = ChannelQMatrix::quantize(&data, 2, 3, NumericFormat::Int(4)).unwrap();

        let pt = per_tensor.dequantize();
        let pc = per_channel.dequantize();
        let err = |back: &[f32]| -> f32 {
            data.iter()
                .zip(back)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f32>()
        };
        // Never worse overall, and the tiny row — which per-tensor
        // quantization crushes to zero — survives per-channel.
        assert!(err(&pc) <= err(&pt) + 1e-9);
        let row0_err_pc: f32 = (0..3).map(|i| (data[i] - pc[i]).powi(2)).sum();
        let row0_err_pt: f32 = (0..3).map(|i| (data[i] - pt[i]).powi(2)).sum();
        assert!(
            row0_err_pc < row0_err_pt * 0.1,
            "{row0_err_pc} vs {row0_err_pt}"
        );
        assert!(pc[0].abs() > 0.005, "row 0 crushed: {:?}", &pc[..3]);
        assert_eq!(pt[0], 0.0, "per-tensor is expected to crush row 0");
    }

    #[test]
    fn gemm_output_dequantization() {
        let data = vec![1.0, -1.0, 10.0, -10.0]; // 2x2, very different rows
        let w = ChannelQMatrix::quantize(&data, 2, 2, NumericFormat::Int(4)).unwrap();
        // Integer GEMM output against an identity-ish activation (scale 0.5).
        let raw = vec![7, -7, 7, -7];
        let deq = w.dequantize_gemm_output(&raw, 2, 0.5);
        // Row 1's scale is 10x row 0's.
        assert!((deq[2] / deq[0] - 10.0).abs() < 0.5, "{deq:?}");
    }

    #[test]
    fn codes_matrix_is_kernel_compatible() {
        let data = vec![0.5, -0.5, 0.25, 2.0, -2.0, 1.0];
        let w = ChannelQMatrix::quantize(&data, 2, 3, NumericFormat::Int(3)).unwrap();
        assert_eq!(w.codes().rows(), 2);
        assert_eq!(w.codes().cols(), 3);
        assert_eq!(w.codes().scale(), 1.0);
        assert_eq!(w.row_scales().len(), 2);
    }

    #[test]
    fn shape_mismatch_rejected() {
        assert!(matches!(
            ChannelQMatrix::quantize(&[1.0; 5], 2, 3, NumericFormat::Int(4)),
            Err(QuantError::ShapeMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn output_shape_mismatch_panics() {
        let w = ChannelQMatrix::quantize(&[1.0; 4], 2, 2, NumericFormat::Int(4)).unwrap();
        let _ = w.dequantize_gemm_output(&[1, 2, 3], 2, 1.0);
    }
}
