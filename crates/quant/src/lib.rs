//! # quant — low-bit numeric formats and quantizers
//!
//! LoCaLUT targets low-bit quantized DNN inference (W1A3, W1A4, W2A2, W4A4
//! for the integer experiments; FP4/FP8/FP16 for §VI-K). LUTs treat numbers
//! as *symbols*: the LUT entry count depends only on the bitwidth, while the
//! decoded values determine the entry contents. This crate provides:
//!
//! * [`NumericFormat`] — the code ↔ value mapping for every format the
//!   paper uses (two's-complement ints, bipolar 1-bit weights, FP4 e2m1,
//!   FP8 e4m3, FP16).
//! * [`BitConfig`] — a `WxAy` weight/activation bitwidth pair.
//! * [`Quantizer`] — symmetric per-tensor quantization of f32 data into
//!   codes, and dequantization back.
//! * [`QMatrix`] — a quantized matrix of codes with its scale, the input
//!   type of every GEMM kernel in the `localut` crate.
//!
//! ## Example
//!
//! ```
//! use quant::{BitConfig, NumericFormat, Quantizer, QMatrix};
//!
//! let cfg: BitConfig = "W1A3".parse()?;
//! assert_eq!(cfg.bw, 1);
//! assert_eq!(cfg.ba, 3);
//!
//! let data = vec![0.9, -0.4, 0.1, -0.8];
//! let q = Quantizer::symmetric(NumericFormat::Int(3));
//! let m = q.quantize_matrix(&data, 2, 2)?;
//! let back = m.dequantize();
//! assert_eq!(back.len(), 4);
//! # Ok::<(), quant::QuantError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod error;
pub mod formats;
pub mod scheme;
pub mod tensor;

pub use channel::ChannelQMatrix;
pub use error::QuantError;
pub use formats::NumericFormat;
pub use scheme::{BitConfig, Quantizer};
pub use tensor::QMatrix;
