//! Quantization schemes: `WxAy` bit configurations and the symmetric
//! per-tensor quantizer used by the paper's workloads.

use crate::formats::NumericFormat;
use crate::tensor::QMatrix;
use crate::QuantError;
use core::fmt;
use core::str::FromStr;

/// A weight/activation bitwidth pair, e.g. `W1A3`.
///
/// The paper evaluates W1A3, W1A4, W2A2 and W4A4 for the integer
/// experiments (§VI-A) and quantized floating-point variants in §VI-K.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitConfig {
    /// Weight bitwidth.
    pub bw: u8,
    /// Activation bitwidth.
    pub ba: u8,
}

impl BitConfig {
    /// Creates a config, validating both bitwidths (1..=16).
    ///
    /// # Errors
    ///
    /// [`QuantError::UnsupportedBits`] when a bitwidth is out of range.
    pub fn new(bw: u8, ba: u8) -> Result<Self, QuantError> {
        if !(1..=16).contains(&bw) {
            return Err(QuantError::UnsupportedBits(bw));
        }
        if !(1..=16).contains(&ba) {
            return Err(QuantError::UnsupportedBits(ba));
        }
        Ok(BitConfig { bw, ba })
    }

    /// The four integer configs of the paper's main evaluation.
    #[must_use]
    pub fn paper_integer_configs() -> [BitConfig; 4] {
        [
            BitConfig { bw: 1, ba: 3 },
            BitConfig { bw: 1, ba: 4 },
            BitConfig { bw: 2, ba: 2 },
            BitConfig { bw: 4, ba: 4 },
        ]
    }

    /// Default weight format for this config (bipolar at 1 bit).
    #[must_use]
    pub fn weight_format(&self) -> NumericFormat {
        NumericFormat::default_int(self.bw)
    }

    /// Default activation format for this config.
    #[must_use]
    pub fn activation_format(&self) -> NumericFormat {
        NumericFormat::default_int(self.ba)
    }
}

impl fmt::Display for BitConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{}A{}", self.bw, self.ba)
    }
}

impl FromStr for BitConfig {
    type Err = QuantError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || QuantError::ParseConfig(s.to_owned());
        let rest = s.strip_prefix(['W', 'w']).ok_or_else(err)?;
        let a_pos = rest.find(['A', 'a']).ok_or_else(err)?;
        let bw: u8 = rest[..a_pos].parse().map_err(|_| err())?;
        let ba: u8 = rest[a_pos + 1..].parse().map_err(|_| err())?;
        BitConfig::new(bw, ba)
    }
}

/// A symmetric per-tensor quantizer for a given [`NumericFormat`].
///
/// For integer formats: `scale = max|x| / quant_max`, `code =
/// round(x / scale)` clamped to the symmetric range. For floating-point
/// formats the same scale maps data into the format's representable range
/// and each value rounds to the nearest representable codeword.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    format: NumericFormat,
}

impl Quantizer {
    /// Creates a symmetric quantizer for `format`.
    #[must_use]
    pub fn symmetric(format: NumericFormat) -> Self {
        Quantizer { format }
    }

    /// The target format.
    #[must_use]
    pub fn format(&self) -> NumericFormat {
        self.format
    }

    /// Computes the per-tensor scale for `data` (1.0 for empty/all-zero
    /// tensors so dequantization stays well-defined).
    ///
    /// Bipolar (1-bit) tensors use the mean absolute value as the scale —
    /// the XNOR-Net/BinaryBERT estimator, which minimizes the L2 error of
    /// `sign(x) * scale`; all other formats use symmetric max scaling.
    #[must_use]
    pub fn scale_for(&self, data: &[f32]) -> f32 {
        if data.is_empty() {
            return 1.0;
        }
        let scale = if self.format == NumericFormat::Bipolar {
            data.iter().map(|x| x.abs()).sum::<f32>() / data.len() as f32
        } else {
            let max_abs = data.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            max_abs / self.format.quant_max()
        };
        if scale == 0.0 {
            1.0
        } else {
            scale
        }
    }

    /// Quantizes a row-major `rows × cols` matrix.
    ///
    /// # Errors
    ///
    /// [`QuantError::ShapeMismatch`] when `data.len() != rows * cols`.
    pub fn quantize_matrix(
        &self,
        data: &[f32],
        rows: usize,
        cols: usize,
    ) -> Result<QMatrix, QuantError> {
        if data.len() != rows * cols {
            return Err(QuantError::ShapeMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        let scale = self.scale_for(data);
        let codes = data
            .iter()
            .map(|&x| self.format.encode_nearest_f32(x / scale) as u16)
            .collect();
        QMatrix::from_codes(codes, rows, cols, self.format, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["W1A3", "W1A4", "W2A2", "W4A4", "W1A16"] {
            let cfg: BitConfig = s.parse().unwrap();
            assert_eq!(cfg.to_string(), s);
        }
        let cfg: BitConfig = "w2a8".parse().unwrap();
        assert_eq!(cfg, BitConfig::new(2, 8).unwrap());
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "W1", "A3", "WxAy", "W0A3", "W1A0", "W17A3", "1A3"] {
            assert!(s.parse::<BitConfig>().is_err(), "should reject '{s}'");
        }
    }

    #[test]
    fn paper_configs_are_four() {
        let cfgs = BitConfig::paper_integer_configs();
        assert_eq!(cfgs.len(), 4);
        assert_eq!(cfgs[0].to_string(), "W1A3");
        assert_eq!(cfgs[3].to_string(), "W4A4");
    }

    #[test]
    fn weight_format_is_bipolar_at_one_bit() {
        let cfg: BitConfig = "W1A3".parse().unwrap();
        assert_eq!(cfg.weight_format(), NumericFormat::Bipolar);
        assert_eq!(cfg.activation_format(), NumericFormat::Int(3));
    }

    #[test]
    fn symmetric_quantization_preserves_extremes() {
        let q = Quantizer::symmetric(NumericFormat::Int(4));
        let data = vec![7.0, -7.0, 0.0, 3.5];
        let m = q.quantize_matrix(&data, 2, 2).unwrap();
        let back = m.dequantize();
        assert!((back[0] - 7.0).abs() < 1e-6);
        assert!((back[1] + 7.0).abs() < 1e-6);
        assert!((back[2]).abs() < 1e-6);
        // 3.5 / scale(=1.0) rounds to 4.
        assert!((back[3] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn quantize_shape_mismatch() {
        let q = Quantizer::symmetric(NumericFormat::Int(4));
        let err = q.quantize_matrix(&[1.0, 2.0], 2, 2).unwrap_err();
        assert!(matches!(err, QuantError::ShapeMismatch { .. }));
    }

    #[test]
    fn all_zero_tensor_has_unit_scale() {
        let q = Quantizer::symmetric(NumericFormat::Int(3));
        assert_eq!(q.scale_for(&[0.0, 0.0]), 1.0);
        assert_eq!(q.scale_for(&[]), 1.0);
    }

    #[test]
    fn quantization_error_bounded_by_half_step() {
        let q = Quantizer::symmetric(NumericFormat::Int(8));
        let data: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) * 0.13).collect();
        let m = q.quantize_matrix(&data, 10, 10).unwrap();
        let back = m.dequantize();
        let scale = q.scale_for(&data);
        for (orig, deq) in data.iter().zip(&back) {
            assert!(
                (orig - deq).abs() <= scale * 0.5 + 1e-6,
                "error beyond half-step: {orig} vs {deq}"
            );
        }
    }

    #[test]
    fn bipolar_quantization_uses_sign() {
        let q = Quantizer::symmetric(NumericFormat::Bipolar);
        let m = q.quantize_matrix(&[0.3, -0.7, 0.0, -0.1], 2, 2).unwrap();
        let vals: Vec<i32> = m
            .codes()
            .iter()
            .map(|&c| NumericFormat::Bipolar.decode_int(u32::from(c)).unwrap())
            .collect();
        assert_eq!(vals, vec![1, -1, 1, -1]);
    }
}
