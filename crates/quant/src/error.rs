//! Error type for the quantization crate.

use core::fmt;

/// Errors produced by quantization operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// A bitwidth outside the supported 1..=16 range was requested.
    UnsupportedBits(u8),
    /// A `WxAy` string could not be parsed.
    ParseConfig(String),
    /// Matrix data length did not match `rows * cols`.
    ShapeMismatch {
        /// Expected element count (`rows * cols`).
        expected: usize,
        /// Actual data length.
        actual: usize,
    },
    /// A code outside the format's code space was supplied.
    CodeOutOfRange {
        /// The offending code.
        code: u32,
        /// Number of valid codes for the format.
        space: u32,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::UnsupportedBits(b) => {
                write!(f, "unsupported bitwidth {b}, expected 1..=16")
            }
            QuantError::ParseConfig(s) => write!(f, "invalid WxAy config string '{s}'"),
            QuantError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "matrix data length {actual} does not match shape ({expected} expected)"
                )
            }
            QuantError::CodeOutOfRange { code, space } => {
                write!(f, "code {code} outside format code space of {space}")
            }
        }
    }
}

impl std::error::Error for QuantError {}
