//! Numeric formats: the code ↔ value mappings behind every LUT.
//!
//! A format with `b` bits has a code space of `2^b` codewords. LUT-based
//! compute is format-agnostic in *structure* (entry counts depend only on
//! `b`, §VI-K: "the LUT entry count depends solely on input bitwidth rather
//! than numerical format") and format-specific in *contents* (the decoded
//! values).
//!
//! Integer formats decode exactly to `i32` so that integer GEMM through the
//! LUTs is bit-exact against a reference implementation; floating-point
//! formats decode to `f32`.

use crate::QuantError;

/// A numeric format: how `b`-bit codewords map to values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumericFormat {
    /// Two's-complement signed integer with the given bitwidth (2..=16).
    /// Codes `0..2^(b-1)` are non-negative, the rest wrap negative.
    Int(u8),
    /// Unsigned integer with the given bitwidth (1..=16).
    Uint(u8),
    /// Bipolar 1-bit format: code 0 → −1, code 1 → +1 (binary weight
    /// networks; the paper's W1 configs follow BinaryBERT).
    Bipolar,
    /// 4-bit floating point, e2m1 with exponent bias 1 (the FP4 of
    /// LLM-FP4 / MX-compliant e2m1): ±{0, 0.5, 1, 1.5, 2, 3, 4, 6}.
    Fp4,
    /// 8-bit floating point, e4m3 (OCP FP8), finite values only — the
    /// NaN codes (exp all-ones, mantissa all-ones) decode to the maximum
    /// magnitude ±448 to keep LUT contents total.
    Fp8,
    /// IEEE 754 half precision (16 bits). Infinities/NaNs saturate to
    /// ±65504 so LUT entries stay finite.
    Fp16,
}

impl NumericFormat {
    /// Bit width of the format's codes.
    #[must_use]
    pub fn bits(self) -> u8 {
        match self {
            NumericFormat::Int(b) | NumericFormat::Uint(b) => b,
            NumericFormat::Bipolar => 1,
            NumericFormat::Fp4 => 4,
            NumericFormat::Fp8 => 8,
            NumericFormat::Fp16 => 16,
        }
    }

    /// Number of codewords, `2^bits`.
    #[must_use]
    pub fn code_space(self) -> u32 {
        1u32 << self.bits()
    }

    /// Whether the format decodes exactly to integers.
    #[must_use]
    pub fn is_integer(self) -> bool {
        matches!(
            self,
            NumericFormat::Int(_) | NumericFormat::Uint(_) | NumericFormat::Bipolar
        )
    }

    /// Validates the format parameters.
    ///
    /// # Errors
    ///
    /// [`QuantError::UnsupportedBits`] for `Int` outside 2..=16 or `Uint`
    /// outside 1..=16.
    pub fn validate(self) -> Result<(), QuantError> {
        match self {
            NumericFormat::Int(b) if !(2..=16).contains(&b) => Err(QuantError::UnsupportedBits(b)),
            NumericFormat::Uint(b) if !(1..=16).contains(&b) => Err(QuantError::UnsupportedBits(b)),
            _ => Ok(()),
        }
    }

    /// The default format the paper uses for a `b`-bit operand: bipolar for
    /// 1 bit, two's-complement otherwise.
    #[must_use]
    pub fn default_int(bits: u8) -> Self {
        if bits == 1 {
            NumericFormat::Bipolar
        } else {
            NumericFormat::Int(bits)
        }
    }

    /// Decodes a codeword to an exact integer value.
    ///
    /// Returns `None` for floating-point formats.
    ///
    /// # Panics
    ///
    /// Debug-panics when `code` is outside the code space.
    #[must_use]
    pub fn decode_int(self, code: u32) -> Option<i32> {
        debug_assert!(code < self.code_space(), "code {code} out of range");
        match self {
            NumericFormat::Int(b) => {
                let half = 1u32 << (b - 1);
                if code < half {
                    Some(code as i32)
                } else {
                    Some(code as i32 - (1i32 << b))
                }
            }
            NumericFormat::Uint(_) => Some(code as i32),
            NumericFormat::Bipolar => Some(if code == 0 { -1 } else { 1 }),
            _ => None,
        }
    }

    /// Decodes a codeword to an `f32` value (works for every format).
    #[must_use]
    pub fn decode_f32(self, code: u32) -> f32 {
        debug_assert!(code < self.code_space(), "code {code} out of range");
        match self {
            NumericFormat::Int(_) | NumericFormat::Uint(_) | NumericFormat::Bipolar => {
                self.decode_int(code).expect("integer format") as f32
            }
            NumericFormat::Fp4 => decode_fp4(code as u8),
            NumericFormat::Fp8 => decode_fp8(code as u8),
            NumericFormat::Fp16 => decode_fp16(code as u16),
        }
    }

    /// Largest representable magnitude.
    #[must_use]
    pub fn max_abs(self) -> f32 {
        match self {
            NumericFormat::Int(b) => (1i32 << (b - 1)) as f32, // |-2^(b-1)|
            NumericFormat::Uint(b) => ((1u32 << b) - 1) as f32,
            NumericFormat::Bipolar => 1.0,
            NumericFormat::Fp4 => 6.0,
            NumericFormat::Fp8 => 448.0,
            NumericFormat::Fp16 => 65504.0,
        }
    }

    /// Largest magnitude used as the positive clipping point during
    /// symmetric quantization (for `Int` this is `2^(b-1) - 1` so the code
    /// space stays symmetric).
    #[must_use]
    pub fn quant_max(self) -> f32 {
        match self {
            NumericFormat::Int(b) => ((1i32 << (b - 1)) - 1) as f32,
            other => other.max_abs(),
        }
    }

    /// Encodes an exact integer value into its codeword.
    ///
    /// # Errors
    ///
    /// [`QuantError::CodeOutOfRange`] when the value is not representable,
    /// or when called on a floating-point format.
    pub fn encode_int(self, value: i32) -> Result<u32, QuantError> {
        let space = self.code_space();
        match self {
            NumericFormat::Int(b) => {
                let half = 1i32 << (b - 1);
                if (-half..half).contains(&value) {
                    Ok((value.rem_euclid(1i32 << b)) as u32)
                } else {
                    Err(QuantError::CodeOutOfRange {
                        code: value.unsigned_abs(),
                        space,
                    })
                }
            }
            NumericFormat::Uint(_) => {
                if value >= 0 && (value as u32) < space {
                    Ok(value as u32)
                } else {
                    Err(QuantError::CodeOutOfRange {
                        code: value.unsigned_abs(),
                        space,
                    })
                }
            }
            NumericFormat::Bipolar => match value {
                -1 => Ok(0),
                1 => Ok(1),
                _ => Err(QuantError::CodeOutOfRange {
                    code: value.unsigned_abs(),
                    space,
                }),
            },
            _ => Err(QuantError::CodeOutOfRange {
                code: value.unsigned_abs(),
                space,
            }),
        }
    }

    /// Encodes an `f32` to the nearest representable codeword (used for
    /// floating-point formats; integer formats round to nearest integer
    /// and clamp).
    #[must_use]
    pub fn encode_nearest_f32(self, value: f32) -> u32 {
        match self {
            NumericFormat::Int(b) => {
                let half = 1i32 << (b - 1);
                let v = value.round().clamp(-(half as f32) + 1.0, half as f32 - 1.0) as i32;
                (v.rem_euclid(1i32 << b)) as u32
            }
            NumericFormat::Uint(b) => {
                let max = (1u32 << b) - 1;
                value.round().clamp(0.0, max as f32) as u32
            }
            NumericFormat::Bipolar => u32::from(value >= 0.0),
            NumericFormat::Fp4 | NumericFormat::Fp8 | NumericFormat::Fp16 => {
                // Small code spaces: nearest-value scan is exact and simple.
                // Fp16's 65536 codes are still cheap enough for quantization
                // (done once per tensor offline).
                let mut best = 0u32;
                let mut best_err = f32::INFINITY;
                for code in 0..self.code_space() {
                    let err = (self.decode_f32(code) - value).abs();
                    if err < best_err {
                        best_err = err;
                        best = code;
                    }
                }
                best
            }
        }
    }
}

/// FP4 e2m1 (bias 1): s eem. Subnormal (e=0): ±0, ±0.5.
fn decode_fp4(code: u8) -> f32 {
    let sign = if code & 0b1000 != 0 { -1.0 } else { 1.0 };
    let exp = (code >> 1) & 0b11;
    let man = code & 1;
    let mag = if exp == 0 {
        0.5 * f32::from(man)
    } else {
        (1.0 + 0.5 * f32::from(man)) * 2f32.powi(i32::from(exp) - 1)
    };
    sign * mag
}

/// FP8 e4m3 (OCP, bias 7). NaN codes decode to ±448 to keep LUTs total.
fn decode_fp8(code: u8) -> f32 {
    let sign = if code & 0x80 != 0 { -1.0 } else { 1.0 };
    let exp = (code >> 3) & 0x0F;
    let man = code & 0x07;
    if exp == 0x0F && man == 0x07 {
        return sign * 448.0; // NaN encoding → saturate
    }
    let mag = if exp == 0 {
        f32::from(man) / 8.0 * 2f32.powi(-6)
    } else {
        (1.0 + f32::from(man) / 8.0) * 2f32.powi(i32::from(exp) - 7)
    };
    sign * mag
}

/// IEEE half precision; infinities/NaNs saturate to ±65504.
fn decode_fp16(code: u16) -> f32 {
    let sign = if code & 0x8000 != 0 { -1.0f32 } else { 1.0 };
    let exp = (code >> 10) & 0x1F;
    let man = code & 0x3FF;
    if exp == 0x1F {
        return sign * 65504.0; // inf/NaN → saturate
    }
    let mag = if exp == 0 {
        f32::from(man) / 1024.0 * 2f32.powi(-14)
    } else {
        (1.0 + f32::from(man) / 1024.0) * 2f32.powi(i32::from(exp) - 15)
    };
    sign * mag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_decode_two_complement() {
        let f = NumericFormat::Int(3);
        let values: Vec<i32> = (0..8).map(|c| f.decode_int(c).unwrap()).collect();
        assert_eq!(values, vec![0, 1, 2, 3, -4, -3, -2, -1]);
    }

    #[test]
    fn int_encode_roundtrip() {
        let f = NumericFormat::Int(4);
        for v in -8..8 {
            let code = f.encode_int(v).unwrap();
            assert_eq!(f.decode_int(code), Some(v));
        }
        assert!(f.encode_int(8).is_err());
        assert!(f.encode_int(-9).is_err());
    }

    #[test]
    fn bipolar_is_plus_minus_one() {
        let f = NumericFormat::Bipolar;
        assert_eq!(f.decode_int(0), Some(-1));
        assert_eq!(f.decode_int(1), Some(1));
        assert_eq!(f.encode_int(-1).unwrap(), 0);
        assert_eq!(f.encode_int(1).unwrap(), 1);
        assert!(f.encode_int(0).is_err());
    }

    #[test]
    fn uint_decode() {
        let f = NumericFormat::Uint(2);
        let values: Vec<i32> = (0..4).map(|c| f.decode_int(c).unwrap()).collect();
        assert_eq!(values, vec![0, 1, 2, 3]);
    }

    #[test]
    fn default_int_uses_bipolar_for_one_bit() {
        assert_eq!(NumericFormat::default_int(1), NumericFormat::Bipolar);
        assert_eq!(NumericFormat::default_int(3), NumericFormat::Int(3));
    }

    #[test]
    fn fp4_values_match_e2m1_table() {
        let f = NumericFormat::Fp4;
        let pos: Vec<f32> = (0..8).map(|c| f.decode_f32(c)).collect();
        assert_eq!(pos, vec![0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0]);
        assert_eq!(f.decode_f32(0b1110), -4.0);
        assert_eq!(f.max_abs(), 6.0);
    }

    #[test]
    fn fp8_known_values() {
        let f = NumericFormat::Fp8;
        // 0x00 → +0, 0x38 → 1.0 (exp=7, man=0), 0x7F → NaN→448.
        assert_eq!(f.decode_f32(0x00), 0.0);
        assert_eq!(f.decode_f32(0x38), 1.0);
        assert_eq!(f.decode_f32(0x7F), 448.0);
        assert_eq!(f.decode_f32(0xFF), -448.0);
        // Largest normal: 0x7E = 448.
        assert_eq!(f.decode_f32(0x7E), 448.0);
        // Smallest subnormal: 2^-9.
        assert!((f.decode_f32(0x01) - 2f32.powi(-9)).abs() < 1e-10);
    }

    #[test]
    fn fp16_known_values() {
        let f = NumericFormat::Fp16;
        assert_eq!(f.decode_f32(0x0000), 0.0);
        assert_eq!(f.decode_f32(0x3C00), 1.0);
        assert_eq!(f.decode_f32(0xC000), -2.0);
        assert_eq!(f.decode_f32(0x7BFF), 65504.0);
        // Inf saturates.
        assert_eq!(f.decode_f32(0x7C00), 65504.0);
    }

    #[test]
    fn encode_nearest_f32_picks_closest() {
        let f = NumericFormat::Fp4;
        assert_eq!(f.decode_f32(f.encode_nearest_f32(5.4)), 6.0);
        assert_eq!(f.decode_f32(f.encode_nearest_f32(2.4)), 2.0);
        assert_eq!(f.decode_f32(f.encode_nearest_f32(-0.6)), -0.5);
        let i = NumericFormat::Int(3);
        assert_eq!(i.decode_int(i.encode_nearest_f32(9.0)), Some(3));
        assert_eq!(i.decode_int(i.encode_nearest_f32(-9.0)), Some(-3));
    }

    #[test]
    fn validate_rejects_bad_bits() {
        assert!(NumericFormat::Int(1).validate().is_err());
        assert!(NumericFormat::Int(17).validate().is_err());
        assert!(NumericFormat::Uint(0).validate().is_err());
        assert!(NumericFormat::Int(8).validate().is_ok());
        assert!(NumericFormat::Fp4.validate().is_ok());
    }

    #[test]
    fn code_space_matches_bits() {
        assert_eq!(NumericFormat::Int(3).code_space(), 8);
        assert_eq!(NumericFormat::Bipolar.code_space(), 2);
        assert_eq!(NumericFormat::Fp16.code_space(), 65536);
    }

    #[test]
    fn is_integer_flags() {
        assert!(NumericFormat::Int(4).is_integer());
        assert!(NumericFormat::Bipolar.is_integer());
        assert!(!NumericFormat::Fp8.is_integer());
    }

    #[test]
    fn quant_max_symmetric_for_int() {
        assert_eq!(NumericFormat::Int(4).quant_max(), 7.0);
        assert_eq!(NumericFormat::Int(2).quant_max(), 1.0);
        assert_eq!(NumericFormat::Bipolar.quant_max(), 1.0);
    }
}
