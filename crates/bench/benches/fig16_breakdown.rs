//! Fig. 16: execution-time breakdowns.
//!
//! (a) BERT end-to-end phases for PIM-DL vs LoCaLUT (W2A2, W1A3): PIM-DL
//! spends little on PIM GEMM but pays a large host centroid-selection
//! phase; LoCaLUT's host work (quantization, packing & sorting) is much
//! lighter. (b) The LoCaLUT GEMM kernel itself: reordering-LUT index
//! calculation dominates, canonical/reordering accesses are small
//! (reordering access ≈ 6.9% in the paper).

use bench::{banner, pq_model_cost, Table};
use dnn::{InferenceSim, ModelConfig, Phase, Workload};
use localut::plan::Planner;
use localut::{GemmDims, Method};
use pim_sim::{Category, DpuConfig};
use pq::{PqConfig, PqCostModel, PqVariant};
use quant::BitConfig;

fn main() {
    banner("Fig 16(a)", "BERT execution breakdown (% of total)");
    let sim = InferenceSim::upmem_server();
    let model = ModelConfig::bert_base();
    let batch = 32;
    let wl = Workload::prefill(model.clone(), batch);

    let mut table = Table::new(&[
        "system",
        "GEMM on PIM",
        "Matrix Transfer",
        "Centroid Selection",
        "Data reordering",
        "Quantization",
        "Packing & Sorting",
        "Others",
    ]);
    // PIM-DL row.
    let pq = pq_model_cost(
        &model,
        batch,
        &PqConfig::standard(PqVariant::PimDl),
        &PqCostModel::upmem_server(),
    );
    let pq_total = pq.total_seconds();
    let pct = |s: f64| format!("{:.1}", 100.0 * s / pq_total);
    table.row(vec![
        "PIM-DL".into(),
        pct(pq.pim.total_seconds()),
        pct(pq.host.seconds(Category::HostTransfer)),
        pct(pq.host.seconds(Category::HostCentroid)),
        pct(pq.host.seconds(Category::Other)),
        pct(pq.host.seconds(Category::HostQuantize)),
        pct(pq.host.seconds(Category::HostSortPack)),
        pct(pq.host.seconds(Category::HostCompute)),
    ]);
    // LoCaLUT rows.
    for cfg_str in ["W2A2", "W1A3"] {
        let cfg: BitConfig = cfg_str.parse().expect("valid");
        let report = sim.run(Method::LoCaLut, cfg, &wl).expect("feasible");
        let total = report.total_seconds();
        let p = |phase: Phase| format!("{:.1}", 100.0 * report.phase_seconds(phase) / total);
        table.row(vec![
            format!("LoCaLUT ({cfg_str})"),
            p(Phase::GemmOnPim),
            p(Phase::MatrixTransfer),
            p(Phase::CentroidSelection),
            p(Phase::DataReordering),
            p(Phase::Quantization),
            p(Phase::PackingSorting),
            p(Phase::Others),
        ]);
    }
    table.print();
    println!("\n  Expected shape: PIM-DL's centroid selection dominates its host time;");
    println!("  LoCaLUT's host overhead (quantization + packing/sorting) is lighter.");

    banner(
        "Fig 16(b)",
        "LoCaLUT GEMM kernel breakdown (W1A3, % of kernel)",
    );
    let dpu = DpuConfig::upmem();
    let dims = GemmDims {
        m: 3072,
        k: 768,
        n: 128,
    };
    let plan = Planner::new(dpu.clone())
        .plan(
            dims,
            "W1A3".parse::<BitConfig>().expect("valid").weight_format(),
            "W1A3"
                .parse::<BitConfig>()
                .expect("valid")
                .activation_format(),
            Some(2),
        )
        .expect("plannable");
    let cost = plan.cost(&dpu, dims);
    let total = cost.total_seconds();
    let mut table = Table::new(&["category", "share (%)"]);
    for cat in [
        Category::CanonicalLookup,
        Category::ReorderLookup,
        Category::IndexCalc,
        Category::Accumulate,
        Category::LutLoad,
        Category::DataTransfer,
        Category::OutputWriteback,
    ] {
        table.row(vec![
            cat.label().to_owned(),
            format!("{:.1}", 100.0 * cost.seconds(cat) / total),
        ]);
    }
    table.print();
    let reorder_pct = 100.0 * cost.seconds(Category::ReorderLookup) / total;
    println!("\n  reordering LUT access: {reorder_pct:.1}% (paper: 6.9%)");
    println!("  Expected shape: index calculation dominates; LUT accesses are small.");
}
