//! Fig. 9: GEMM speedup across methods, bitwidths, and the two
//! representative matrix shapes.
//!
//! (M, K, N) ∈ {(768, 768, 128), (3072, 768, 128)} × {W1A3, W1A4, W2A2,
//! W4A4} × the six methods, all normalized to Naive PIM on the 2048-DPU
//! system. The paper reports LoCaLUT at 2.87× geomean over Naive PIM and
//! 1.77× over LTC (up to 4.73× and 1.93×).

use bench::{banner, geomean, Table};
use localut::tiling::DistributedGemm;
use localut::{GemmDims, Method};
use quant::BitConfig;

fn main() {
    banner("Fig 9", "GEMM speedup over Naive PIM (2048 DPUs)");
    let dist = DistributedGemm::upmem_server();
    let shapes = [
        GemmDims {
            m: 768,
            k: 768,
            n: 128,
        },
        GemmDims {
            m: 3072,
            k: 768,
            n: 128,
        },
    ];
    let configs = BitConfig::paper_integer_configs();

    let mut localut_over_naive = Vec::new();
    let mut localut_over_ltc = Vec::new();
    let mut peak_naive = 0.0f64;
    let mut peak_ltc = 0.0f64;

    for dims in shapes {
        println!("\n  (M, K, N) = {dims}");
        let mut table = Table::new(&[
            "config",
            "Naive PIM",
            "LTC (PIM)",
            "OP",
            "OP+LC",
            "OP+LC+RC",
            "LoCaLUT",
        ]);
        for cfg in configs {
            let wf = cfg.weight_format();
            let af = cfg.activation_format();
            let naive = dist
                .cost(Method::NaivePim, dims, wf, af)
                .expect("naive always feasible")
                .total_seconds();
            let mut cells = vec![cfg.to_string()];
            let mut per_method = Vec::new();
            for method in Method::ALL {
                let speedup = match dist.cost(method, dims, wf, af) {
                    Ok(c) => naive / c.total_seconds(),
                    Err(_) => f64::NAN,
                };
                per_method.push(speedup);
                cells.push(format!("{speedup:.2}"));
            }
            table.row(cells);
            let ltc = per_method[1];
            let localut = per_method[5];
            localut_over_naive.push(localut);
            localut_over_ltc.push(localut / ltc);
            peak_naive = peak_naive.max(localut);
            peak_ltc = peak_ltc.max(localut / ltc);
        }
        table.print();
    }

    println!(
        "\n  geomean LoCaLUT over Naive PIM: {:.2}x (paper: 2.87x)",
        geomean(&localut_over_naive)
    );
    println!(
        "  geomean LoCaLUT over LTC:       {:.2}x (paper: 1.77x)",
        geomean(&localut_over_ltc)
    );
    println!("  peak    LoCaLUT over Naive PIM: {peak_naive:.2}x (paper: up to 4.73x)");
    println!("  peak    LoCaLUT over LTC:       {peak_ltc:.2}x (paper: up to 1.93x)");
}
