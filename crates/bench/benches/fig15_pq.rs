//! Fig. 15: speedup vs accuracy against the product-quantization baselines.
//!
//! For each of four GLUE-stand-in tasks: LoCaLUT at W1A3/W1A4/W2A2/W4A4
//! (quantized-pipeline accuracy, BERT speedup over Naive PIM) against
//! PIM-DL and LUT-DLA (L1/L2) (real PQ approximation accuracy, PQ system
//! speedup). The paper's takeaway: LoCaLUT dominates the PQ methods on
//! both axes. Accuracy here is approximation fidelity on synthetic
//! linear-teacher tasks (see DESIGN.md substitutions).

use bench::{banner, pq_model_cost, Table};
use dnn::tasks::SyntheticTask;
use dnn::{InferenceSim, ModelConfig, Workload};
use localut::Method;
use pq::{PqConfig, PqCostModel, PqEngine, PqVariant};
use quant::BitConfig;

fn main() {
    banner(
        "Fig 15",
        "Speedup vs accuracy: LoCaLUT vs PQ-based LUT methods",
    );
    let sim = InferenceSim::upmem_server();
    let pq_cost = PqCostModel::upmem_server();
    let model = ModelConfig::bert_base();
    let batch = 32;
    let wl = Workload::prefill(model.clone(), batch);
    let samples = 512;

    // Speedups are task-independent (the paper notes "their speedups
    // remain identical over all benchmarks").
    let naive = sim
        .run(Method::NaivePim, "W1A3".parse().expect("valid"), &wl)
        .expect("feasible")
        .total_seconds();
    let mut localut_speed = Vec::new();
    for cfg_str in ["W1A3", "W1A4", "W2A2", "W4A4"] {
        let cfg: BitConfig = cfg_str.parse().expect("valid");
        let t = sim
            .run(Method::LoCaLut, cfg, &wl)
            .expect("feasible")
            .total_seconds();
        localut_speed.push((cfg_str, naive / t));
    }
    let mut pq_speed = Vec::new();
    for variant in [PqVariant::PimDl, PqVariant::LutDlaL1, PqVariant::LutDlaL2] {
        let cost = pq_model_cost(&model, batch, &PqConfig::standard(variant), &pq_cost);
        pq_speed.push((variant, naive / cost.total_seconds()));
    }

    for task in SyntheticTask::glue_suite() {
        let data = task.generate(samples);
        println!(
            "\n  task {} (fp32 ceiling {:.1}%)",
            task.name,
            100.0 * data.fp32_accuracy()
        );
        let mut table = Table::new(&["method", "accuracy (%)", "speedup"]);
        for &(cfg_str, speed) in &localut_speed {
            let cfg: BitConfig = cfg_str.parse().expect("valid");
            let acc = data.quantized_accuracy(cfg).expect("quantizable");
            table.row(vec![
                format!("LoCaLUT {cfg_str}"),
                format!("{:.1}", 100.0 * acc),
                format!("{speed:.2}"),
            ]);
        }
        for &(variant, speed) in &pq_speed {
            let engine = PqEngine::fit(
                PqConfig::standard(variant),
                &data.teacher,
                data.classes,
                data.dim,
                &data.features,
                data.samples,
            )
            .expect("PQ fit");
            let scores = engine.gemm(&data.features, data.samples).expect("PQ gemm");
            let acc = data.accuracy_of_scores(&scores);
            table.row(vec![
                variant.label().to_owned(),
                format!("{:.1}", 100.0 * acc),
                format!("{speed:.2}"),
            ]);
        }
        table.print();
    }
    println!("\n  Expected shape: the LoCaLUT points sit up-and-right of the PQ points");
    println!("  (higher speedup at comparable-or-better accuracy), as in the paper.");
}
