//! Fig. 13: sensitivity to the number of co-resident LUT slices `k`.
//!
//! k ∈ {1, 2, 4, 8} across the model/bitwidth cases, speedup normalized to
//! k = 1. Larger k improves weight-stream reuse (W1Ax keeps climbing), but
//! k slices compete with the packing degree for WRAM: at W2A2/W4A4 the
//! forced-lower p makes k = 4+ a slowdown, exactly the paper's crossover.

use bench::{banner, Table};
use dnn::{InferenceSim, ModelConfig, Workload};
use localut::Method;
use quant::BitConfig;

fn main() {
    banner(
        "Fig 13",
        "Sensitivity to the k slice count (normalized to k=1)",
    );
    let cases: Vec<(ModelConfig, &str)> = vec![
        (ModelConfig::bert_base(), "W1A3"),
        (ModelConfig::bert_base(), "W1A4"),
        (ModelConfig::bert_base(), "W2A2"),
        (ModelConfig::bert_base(), "W4A4"),
        (ModelConfig::vit_base(), "W2A2"),
        (ModelConfig::vit_base(), "W4A4"),
        (ModelConfig::opt_125m(), "W4A4"),
    ];
    let ks = [1u32, 2, 4, 8];
    // Batch 128 gives each DPU an 8-column N-tile, enough for the k-slice
    // weight-stream reuse to keep paying off through k = 8 (at batch 32
    // the per-DPU tile is ~2 columns and W1Ax saturates at k = 2).
    let batch = 128;

    let mut table = Table::new(&["model", "config", "k=1", "k=2", "k=4", "k=8"]);
    for (model, cfg_str) in cases {
        let cfg: BitConfig = cfg_str.parse().expect("valid");
        let wl = Workload::prefill(model.clone(), batch);
        let mut times = Vec::new();
        for &k in &ks {
            let mut sim = InferenceSim::upmem_server();
            sim.dist.gemm.k_slices = k;
            times.push(
                sim.run(Method::LoCaLut, cfg, &wl)
                    .expect("feasible")
                    .total_seconds(),
            );
        }
        let base = times[0];
        let mut cells = vec![model.name.to_owned(), cfg_str.to_owned()];
        cells.extend(times.iter().map(|t| format!("{:.3}", base / t)));
        table.row(cells);
    }
    table.print();
    println!("\n  Expected shape: W1Ax keeps improving with k (tiny slices, better weight");
    println!("  reuse); W2A2/W4A4 flatten or degrade at k>=4 because the larger slices");
    println!("  force a lower feasible p (the planner re-chooses p per k).");
}
