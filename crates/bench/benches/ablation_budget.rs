//! Ablation: the LUT capacity budget fraction.
//!
//! §V-A devotes "approximately half" of each memory to LUTs; §VII-B names
//! managing this capacity–performance tradeoff an open challenge. This
//! ablation sweeps the fraction and reports (a) the feasible packing
//! degrees and (b) the resulting LoCaLUT GEMM speedup over Naive PIM —
//! showing where the returns flatten and how much capacity a deployment
//! could give back to model storage. A second table ablates the
//! reordering LUT itself: software reordering (OP+LC) vs the reordering
//! LUT (OP+LC+RC) per packing degree.

use bench::{banner, Table};
use localut::capacity::max_p_localut;
use localut::kernels::{LcKernel, NaiveKernel, RcKernel};
use localut::tiling::DistributedGemm;
use localut::{GemmDims, Method};
use pim_sim::DpuConfig;
use quant::BitConfig;

fn main() {
    banner(
        "Ablation A",
        "LUT budget fraction vs feasible p and speedup (W1A3)",
    );
    let cfg: BitConfig = "W1A3".parse().expect("valid");
    let (wf, af) = (cfg.weight_format(), cfg.activation_format());
    let dims = GemmDims {
        m: 3072,
        k: 768,
        n: 128,
    };

    let mut table = Table::new(&["budget fraction", "p_local", "p_DRAM", "speedup vs naive"]);
    for fraction in [0.1f64, 0.2, 0.3, 0.4, 0.5, 0.55, 0.7, 0.9] {
        let mut dpu = DpuConfig::upmem();
        dpu.lut_budget_fraction = fraction;
        let p_local = max_p_localut(wf, af, dpu.wram_lut_budget());
        let p_dram = max_p_localut(wf, af, dpu.bank_lut_budget());
        let mut dist = DistributedGemm::upmem_server();
        dist.gemm.dpu = dpu;
        let speedup = dist
            .speedup_over(Method::LoCaLut, Method::NaivePim, dims, wf, af)
            .map_or("infeasible".to_owned(), |s| format!("{s:.2}"));
        table.row(vec![
            format!("{fraction:.2}"),
            p_local.to_string(),
            p_dram.to_string(),
            speedup,
        ]);
    }
    table.print();
    println!("\n  Expected shape: speedup saturates once p_DRAM stops growing — the");
    println!("  marginal LUT byte buys exponentially less packing (Eq. 1's growth).");

    banner(
        "Ablation B",
        "Reordering LUT vs software reordering per packing degree (W1A3)",
    );
    let dpu = DpuConfig::upmem();
    let tile = GemmDims {
        m: 192,
        k: 768,
        n: 1,
    };
    let naive = NaiveKernel::new(dpu.clone(), wf, af)
        .cost(tile)
        .total_seconds();
    let mut table = Table::new(&["p", "OP+LC (sw reorder)", "OP+LC+RC", "RC gain"]);
    for p in 1..=5u32 {
        let lc = LcKernel::with_p(dpu.clone(), wf, af, p)
            .expect("valid p")
            .cost(tile)
            .total_seconds();
        let rc = RcKernel::with_p(dpu.clone(), wf, af, p)
            .expect("valid p")
            .cost(tile)
            .total_seconds();
        table.row(vec![
            p.to_string(),
            format!("{:.2}x", naive / lc),
            format!("{:.2}x", naive / rc),
            format!("{:.2}x", lc / rc),
        ]);
    }
    table.print();
    println!("\n  Expected shape: the software-reordering penalty grows with p (8p+6");
    println!("  instructions per lookup), so the reordering LUT's advantage widens —");
    println!("  exactly why §IV-B introduces it before raising p further.");
}
