//! Criterion micro-benchmarks of the core LUT data structures: build and
//! lookup throughput of the canonical/reordering/packed LUTs, multiset
//! ranking, and the streaming kernel's functional path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use localut::canonical::CanonicalLut;
use localut::kernels::StreamingKernel;
use localut::multiset;
use localut::packed::OpPackedLut;
use localut::reorder::ReorderLut;
use pim_sim::DpuConfig;
use quant::{NumericFormat, Quantizer};
use std::hint::black_box;
use std::time::Duration;

const W1: NumericFormat = NumericFormat::Bipolar;
const A3: NumericFormat = NumericFormat::Int(3);

fn bench_lut_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("lut-build");
    g.bench_function("op-packed-w1a3-p3", |b| {
        b.iter(|| OpPackedLut::<i32>::build(W1, A3, black_box(3), 1 << 24).unwrap())
    });
    g.bench_function("canonical-w1a3-p5", |b| {
        b.iter(|| CanonicalLut::<i32>::build(W1, A3, black_box(5), 1 << 24).unwrap())
    });
    g.bench_function("reorder-w1-p5", |b| {
        b.iter(|| ReorderLut::build(1, black_box(5), 1 << 24).unwrap())
    });
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let canon = CanonicalLut::<i32>::build(W1, A3, 5, 1 << 24).unwrap();
    let reorder = ReorderLut::build(1, 5, 1 << 24).unwrap();
    let mut g = c.benchmark_group("lut-lookup");
    g.bench_function("canonical+reorder-chain", |b| {
        b.iter(|| {
            let mut acc = 0i32;
            for row in 0..32u64 {
                for perm in 0..8u64 {
                    let r = reorder.lookup(row, perm);
                    acc = acc.wrapping_add(canon.lookup(r, (row * 7 + perm) % canon.cols()));
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("multiset-rank-roundtrip", |b| {
        b.iter(|| {
            for r in 0..120u64 {
                let codes = multiset::unrank(r, 8, 3).unwrap();
                black_box(multiset::rank(&codes, 8).unwrap());
            }
        })
    });
    g.finish();
}

fn bench_streaming_kernel(c: &mut Criterion) {
    let wq = Quantizer::symmetric(W1);
    let aq = Quantizer::symmetric(A3);
    let wdata: Vec<f32> = (0..64 * 60).map(|i| ((i % 7) as f32) - 3.0).collect();
    let adata: Vec<f32> = (0..60 * 16).map(|i| ((i % 9) as f32) - 4.0).collect();
    let w = wq.quantize_matrix(&wdata, 64, 60).unwrap();
    let a = aq.quantize_matrix(&adata, 60, 16).unwrap();
    let kernel = StreamingKernel::new(DpuConfig::upmem(), W1, A3, 6, 2).unwrap();
    c.bench_function("streaming-kernel-64x60x16", |b| {
        b.iter_batched(
            || (w.clone(), a.clone()),
            |(w, a)| kernel.run(&w, &a).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench_lut_build, bench_lookup, bench_streaming_kernel
}
criterion_main!(benches);
