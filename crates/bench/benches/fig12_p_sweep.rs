//! Fig. 12: packing-degree sensitivity at W2A2 (K=768, N=128).
//!
//! For M ∈ {192, 768, 3072} and p = 1..6: speedup over Naive PIM and the
//! LUT capacity. Performance rises with p; beyond the buffer-fit degree
//! the design switches to slice streaming, whose benefit depends on M
//! (slice reuse) — at p = 6, larger M recovers the streaming overhead.

use bench::{banner, Table};
use localut::capacity::{localut_bytes, max_p_localut};
use localut::kernels::{NaiveKernel, RcKernel, StreamingKernel};
use localut::tiling::TileGrid;
use localut::GemmDims;
use pim_sim::DpuConfig;
use quant::{BitConfig, NumericFormat};

fn main() {
    banner(
        "Fig 12",
        "Packing degree (p) sensitivity (K=768, N=128, W2A2)",
    );
    let cfg: BitConfig = "W2A2".parse().expect("valid");
    let (wf, af): (NumericFormat, NumericFormat) = (cfg.weight_format(), cfg.activation_format());
    let dpu = DpuConfig::upmem();
    let p_local = max_p_localut(wf, af, dpu.wram_lut_budget());

    for m in [192usize, 768, 3072] {
        let dims = GemmDims { m, k: 768, n: 128 };
        let grid = TileGrid::choose(dims, 2048);
        let tile = grid.tile_dims(dims);
        let naive = NaiveKernel::new(dpu.clone(), wf, af)
            .cost(tile)
            .total_seconds();
        println!("\n  M = {m} (per-DPU tile {tile})");
        let mut table = Table::new(&["p", "placement", "speedup", "capacity (B)"]);
        for p in 1..=6u32 {
            let (placement, seconds) = if p <= p_local {
                let k = RcKernel::with_p(dpu.clone(), wf, af, p).expect("valid p");
                ("buffer", k.cost(tile).total_seconds())
            } else {
                match StreamingKernel::new(dpu.clone(), wf, af, p, 2) {
                    Ok(k) => ("stream", k.cost(tile).total_seconds()),
                    Err(_) => {
                        table.row(vec![
                            p.to_string(),
                            "infeasible".into(),
                            "-".into(),
                            "-".into(),
                        ]);
                        continue;
                    }
                }
            };
            let capacity = localut_bytes(wf, af, p).expect("within range");
            table.row(vec![
                p.to_string(),
                placement.into(),
                format!("{:.2}", naive / seconds),
                capacity.to_string(),
            ]);
        }
        table.print();
    }
    println!("\n  buffer-fit p_local = {p_local}; beyond it the design streams slices.");
    println!("  Expected shape: speedup grows with p; at p=6 the streaming overhead is");
    println!("  recovered only for larger M (more slice reuse), as in the paper.");
}
