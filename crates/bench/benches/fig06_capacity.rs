//! Fig. 6: LUT capacity vs packing degree for W1A3.
//!
//! Four curves (operation-packed LUT, canonical LUT, reordering LUT, and
//! canonical + reordering) plus the total reduction-rate line, which the
//! paper reports as 1.68× (p=2) rising to ~358× (p=8).

use bench::{banner, Table};
use localut::capacity::{canonical_lut_bytes, localut_bytes, op_lut_bytes, reorder_lut_bytes};
use quant::NumericFormat;

fn main() {
    banner("Fig 6", "LUT capacity vs packing degree (W1A3)");
    let wf = NumericFormat::Bipolar;
    let af = NumericFormat::Int(3);

    let mut table = Table::new(&[
        "p",
        "op-packed (B)",
        "canonical (B)",
        "reordering (B)",
        "canonical+reordering (B)",
        "reduction rate",
    ]);
    let mut reductions = Vec::new();
    for p in 2..=8u32 {
        let op = op_lut_bytes(wf, af, p).expect("within range");
        let canon = canonical_lut_bytes(wf, af, p).expect("within range");
        let reord = reorder_lut_bytes(wf, p).expect("within range");
        let total = localut_bytes(wf, af, p).expect("within range");
        let reduction = op as f64 / total as f64;
        reductions.push((p, reduction));
        table.row(vec![
            p.to_string(),
            op.to_string(),
            canon.to_string(),
            reord.to_string(),
            total.to_string(),
            format!("{reduction:.2}x"),
        ]);
    }
    table.print();

    let first = reductions.first().expect("non-empty").1;
    let last = reductions.last().expect("non-empty").1;
    println!("\n  total reduction band: {first:.2}x (p=2) .. {last:.1}x (p=8)");
    println!("  paper reports: 1.68x .. ~358x");
    assert!((first - 1.68).abs() < 0.05, "p=2 reduction off: {first}");
    assert!((300.0..420.0).contains(&last), "p=8 reduction off: {last}");
    println!("  [check] band matches the paper");
}
