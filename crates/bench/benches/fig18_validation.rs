//! Fig. 18: validating the §IV-D cost model against the simulated system.
//!
//! For W4A4 (p = 1..3) and W2A2 (p = 4..6) at (768, 768, 768) and
//! (3072, 768, 768): the model's "LUT access" and "LUT load" terms (Eq. 2 /
//! Eq. 4) against the full kernel simulation, which additionally charges
//! operand movement — the gap the paper attributes to "factors such as
//! input value loading". The model's argmin should match the simulated
//! argmin (the paper notes one near-tie misprediction at W2A2,
//! (768,768,768): p=5 picked over p=4 with a small difference).

use bench::{banner, Table};
use localut::capacity::max_p_localut;
use localut::kernels::{RcKernel, StreamingKernel};
use localut::model::PerfModel;
use localut::tiling::TileGrid;
use localut::GemmDims;
use pim_sim::{Category, DpuConfig};
use quant::BitConfig;

fn main() {
    banner("Fig 18", "Cost model validation: predicted vs simulated");
    let dpu = DpuConfig::upmem();
    let model = PerfModel::upmem();
    let cases: [(&str, Vec<u32>); 2] = [("W4A4", vec![1, 2, 3]), ("W2A2", vec![4, 5, 6])];
    let shapes = [
        GemmDims {
            m: 768,
            k: 768,
            n: 768,
        },
        GemmDims {
            m: 3072,
            k: 768,
            n: 768,
        },
    ];

    for (cfg_str, ps) in cases {
        let cfg: BitConfig = cfg_str.parse().expect("valid");
        let (wf, af) = (cfg.weight_format(), cfg.activation_format());
        let p_local = max_p_localut(wf, af, dpu.wram_lut_budget());
        for dims in shapes {
            let grid = TileGrid::choose(dims, 2048);
            let tile = grid.tile_dims(dims);
            println!("\n  {cfg_str}, (M,K,N) = {dims}, per-DPU tile {tile}, p_local = {p_local}");
            let mut table = Table::new(&[
                "p",
                "model LUT access (s)",
                "model LUT load (s)",
                "model total (s)",
                "sim exec time (s)",
            ]);
            let mut best_model = (f64::INFINITY, 0u32);
            let mut best_sim = (f64::INFINITY, 0u32);
            for &p in &ps {
                let (access, load) = if p <= p_local {
                    (model.buffer_seconds(tile, p), 0.0)
                } else {
                    let groups = PerfModel::groups(tile, p) as f64;
                    (
                        tile.m as f64 * groups * model.l_local,
                        2f64.powi(i32::from(cfg.bw) * p as i32) * groups * model.l_d,
                    )
                };
                let sim_time = if p <= p_local {
                    RcKernel::with_p(dpu.clone(), wf, af, p)
                        .expect("valid")
                        .cost(tile)
                        .total_seconds()
                } else {
                    match StreamingKernel::new(dpu.clone(), wf, af, p, 2) {
                        Ok(k) => k.cost(tile).total_seconds(),
                        Err(_) => {
                            table.row(vec![
                                p.to_string(),
                                "-".into(),
                                "-".into(),
                                "-".into(),
                                "infeasible".into(),
                            ]);
                            continue;
                        }
                    }
                };
                let total = access + load;
                if total < best_model.0 {
                    best_model = (total, p);
                }
                if sim_time < best_sim.0 {
                    best_sim = (sim_time, p);
                }
                table.row(vec![
                    p.to_string(),
                    format!("{access:.4e}"),
                    format!("{load:.4e}"),
                    format!("{total:.4e}"),
                    format!("{sim_time:.4e}"),
                ]);
            }
            table.print();
            println!(
                "  model picks p = {}, simulation picks p = {} {}",
                best_model.1,
                best_sim.1,
                if best_model.1 == best_sim.1 {
                    "[match]"
                } else {
                    "[mispredict — see paper's note]"
                }
            );
        }
    }
    let _ = Category::LutLoad; // categories documented in fig16
}
