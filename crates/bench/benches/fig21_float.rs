//! Fig. 21: floating-point support in LoCaLUT.
//!
//! (a) Quantized-float GEMM on the bank-level PIM vs native-fp16 HBM-PIM:
//! W1A4 (fp4 activations) wins big, W1A8 modestly, W1A16 is a slowdown
//! (HBM-PIM is native fp16 and LoCaLUT's slices must be host-generated —
//! the paper reports 2.99×, 1.22×, 0.62× and 1.17× for W4A4).
//! (b) ViT-like accuracy at W4A4-float across packing degrees, with (the
//! reordering LUT changes fp accumulation order) and without: the impact
//! must be negligible.

use bench::{banner, geomean, Table};
use dnn::tasks::SyntheticTask;
use pim_sim::banklevel::BankLevelPim;
use quant::NumericFormat;

fn main() {
    banner(
        "Fig 21(a)",
        "Floating-point GEMM speedup over HBM-PIM (native fp16)",
    );
    let pim = BankLevelPim::default();
    let sizes = [1024u64, 2048, 4096];
    // (label, bw, ba, simd-native?) — entry storage is fp16 (2 bytes).
    let cases: [(&str, u32, u32, bool); 4] = [
        ("W1A4 (fp4)", 1, 4, false),
        ("W1A8 (fp8)", 1, 8, false),
        ("W1A16 (fp16)", 1, 16, true),
        ("W4A4 (fp4)", 4, 4, false),
    ];

    let mut table = Table::new(&["config", "1K", "2K", "4K", "p", "bank-resident"]);
    for (label, bw, ba, native) in cases {
        let mut cells = vec![label.to_owned()];
        let mut plan_info = (0u32, true);
        let mut speeds = Vec::new();
        for &s in &sizes {
            let simd = pim.simd_gemm_seconds(s, s, s, native);
            let plan = pim.lut_gemm(s, s, s, bw, ba, 2).expect("feasible");
            plan_info = (plan.p, plan.bank_resident);
            let speedup = simd / plan.total_seconds();
            speeds.push(speedup);
            cells.push(format!("{speedup:.2}"));
        }
        cells.push(plan_info.0.to_string());
        cells.push(plan_info.1.to_string());
        table.row(cells);
        println!("  {label}: geomean {:.2}x", geomean(&speeds));
    }
    table.print();
    println!("\n  paper: W1A4 up to 2.99x, W1A8 1.22x, W1A16 0.62x (slowdown), W4A4 1.17x");

    banner(
        "Fig 21(b)",
        "ViT-like accuracy vs packing degree (W4A4 float, fp4)",
    );
    let data = SyntheticTask::imagenet_like().generate(600);
    let fp32 = data.fp32_accuracy();
    let mut table = Table::new(&["p", "FP32 (%)", "OP (%)", "LoCaLUT (%)", "delta (pp)"]);
    for p in 1..=5u32 {
        let op = data
            .float_lut_accuracy(NumericFormat::Fp4, p, false)
            .expect("computable");
        let localut = data
            .float_lut_accuracy(NumericFormat::Fp4, p, true)
            .expect("computable");
        table.row(vec![
            p.to_string(),
            format!("{:.1}", 100.0 * fp32),
            format!("{:.1}", 100.0 * op),
            format!("{:.1}", 100.0 * localut),
            format!("{:.2}", 100.0 * (localut - op).abs()),
        ]);
        assert!(
            (localut - op).abs() < 0.02,
            "reordering impact must be negligible (p={p})"
        );
    }
    table.print();
    println!(
        "\n  [check] reordering-LUT accuracy impact is negligible at every p (paper's finding)"
    );
}
