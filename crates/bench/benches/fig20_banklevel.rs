//! Fig. 20: LoCaLUT on accelerator-style bank-level PIM vs a SIMD-based
//! design (HBM-PIM class), on Ramulator-level cost models.
//!
//! Matrix sizes 1K/2K/4K cubed across the four integer configs. The paper
//! reports a 2.04× geomean speedup, retaining 1.17× at W4A4 where the
//! 512 B LUT units limit the packing degree.

use bench::{banner, geomean, Table};
use localut::capacity::entry_bytes;
use pim_sim::banklevel::BankLevelPim;
use quant::BitConfig;

fn main() {
    banner(
        "Fig 20",
        "Bank-level PIM: LUT units vs 16-lane SIMD (speedup)",
    );
    let pim = BankLevelPim::default();
    let sizes = [1024u64, 2048, 4096];

    let mut table = Table::new(&["config", "1K", "2K", "4K", "chosen p"]);
    let mut all = Vec::new();
    let mut w4a4 = Vec::new();
    for cfg_str in ["W1A3", "W1A4", "W2A2", "W4A4"] {
        let cfg: BitConfig = cfg_str.parse().expect("valid");
        let bo = entry_bytes(cfg.weight_format(), cfg.activation_format(), 4);
        let mut cells = vec![cfg_str.to_owned()];
        let mut chosen_p = 0;
        for &s in &sizes {
            let simd = pim.simd_gemm_seconds(s, s, s, false);
            let plan = pim
                .lut_gemm(s, s, s, u32::from(cfg.bw), u32::from(cfg.ba), bo)
                .expect("feasible");
            let speedup = simd / plan.total_seconds();
            chosen_p = plan.p;
            all.push(speedup);
            if cfg_str == "W4A4" {
                w4a4.push(speedup);
            }
            cells.push(format!("{speedup:.2}"));
        }
        cells.push(chosen_p.to_string());
        table.row(cells);
    }
    table.print();
    println!("\n  geomean: {:.2}x (paper: 2.04x)", geomean(&all));
    println!("  W4A4 geomean: {:.2}x (paper: 1.17x)", geomean(&w4a4));
}
