//! Fig. 19: LoCaLUT in real-world serving scenarios.
//!
//! (a) Prefill-only (BERT, W1A3) vs prefill+decode (OPT, W4A4, 4/8/16
//! output tokens), OP vs LoCaLUT, phase-decomposed. The paper reports
//! 1.34× prefill and 1.27× decode speedups.
//! (b) Batch-size sweep 32..512: LoCaLUT speedup over OP for BERT (W1A3),
//! ViT (W2A2), OPT (W4A4) — gains grow with batch via bank parallelism.
//! (c) **Parallel variant**: a mixed multi-request serving session
//! (BERT + ViT + OPT interleaved) executed end-to-end on the bank-parallel
//! runtime's worker pool, verifying the batched reports are identical for
//! every worker count.

use bench::{banner, Table};
use dnn::{InferenceSim, ModelConfig, Workload};
use localut::Method;
use quant::BitConfig;
use runtime::ParallelExecutor;

fn main() {
    banner("Fig 19(a)", "Prefill/decode phases: OP vs LoCaLUT");
    let sim = InferenceSim::upmem_server();
    let batch = 32;

    let mut table = Table::new(&[
        "workload",
        "method",
        "prefill (s)",
        "decode (s)",
        "total (s)",
    ]);
    let mut prefill_speedups = Vec::new();
    let mut decode_speedups = Vec::new();

    let bert_wl = Workload::prefill(ModelConfig::bert_base(), batch);
    let bert_cfg: BitConfig = "W1A3".parse().expect("valid");
    let mut bert_times = Vec::new();
    for method in [Method::Op, Method::LoCaLut] {
        let r = sim.run(method, bert_cfg, &bert_wl).expect("feasible");
        table.row(vec![
            "BERT (prefill)".into(),
            method.label().into(),
            format!("{:.4}", r.prefill_seconds),
            "-".into(),
            format!("{:.4}", r.total_seconds()),
        ]);
        bert_times.push(r.prefill_seconds);
    }
    prefill_speedups.push(bert_times[0] / bert_times[1]);

    let opt_cfg: BitConfig = "W4A4".parse().expect("valid");
    for out in [4u32, 8, 16] {
        let wl = Workload::with_decode(ModelConfig::opt_125m(), batch, out);
        let mut rows = Vec::new();
        for method in [Method::Op, Method::LoCaLut] {
            let r = sim.run(method, opt_cfg, &wl).expect("feasible");
            table.row(vec![
                format!("OPT (out {out})"),
                method.label().into(),
                format!("{:.4}", r.prefill_seconds),
                format!("{:.4}", r.decode_seconds),
                format!("{:.4}", r.total_seconds()),
            ]);
            rows.push(r);
        }
        prefill_speedups.push(rows[0].prefill_seconds / rows[1].prefill_seconds);
        decode_speedups.push(rows[0].decode_seconds / rows[1].decode_seconds);
    }
    table.print();
    println!(
        "\n  prefill speedup over OP: {:.2}x (paper: 1.34x); decode: {:.2}x (paper: 1.27x)",
        bench::geomean(&prefill_speedups),
        bench::geomean(&decode_speedups)
    );

    banner("Fig 19(b)", "Batch-size sweep: LoCaLUT speedup over OP");
    let cases: Vec<(ModelConfig, &str)> = vec![
        (ModelConfig::bert_base(), "W1A3"),
        (ModelConfig::vit_base(), "W2A2"),
        (ModelConfig::opt_125m(), "W4A4"),
    ];
    let batches = [32usize, 64, 128, 256, 512];
    let mut table = Table::new(&["model", "config", "b=32", "b=64", "b=128", "b=256", "b=512"]);
    for (model, cfg_str) in cases {
        let cfg: BitConfig = cfg_str.parse().expect("valid");
        let mut cells = vec![model.name.to_owned(), cfg_str.to_owned()];
        for &b in &batches {
            let wl = Workload::prefill(model.clone(), b);
            let s = sim
                .speedup_over(Method::LoCaLut, Method::Op, cfg, &wl)
                .expect("feasible");
            cells.push(format!("{s:.2}"));
        }
        table.row(cells);
    }
    table.print();
    println!("\n  Expected shape: consistent >1x speedup over OP, holding or growing with batch.");

    banner(
        "Fig 19(c) (parallel variant)",
        "Mixed multi-request serving on the bank-parallel runtime",
    );
    // A mixed serving session: interleaved BERT, ViT, and OPT requests.
    let mut requests = Vec::new();
    for i in 0..4usize {
        requests.push(Workload::prefill(ModelConfig::bert_base(), 16 + 8 * i));
        requests.push(Workload::prefill(ModelConfig::vit_base(), 8 + 4 * i));
        requests.push(Workload::with_decode(
            ModelConfig::opt_125m(),
            8,
            4 + 2 * i as u32,
        ));
    }
    // All three models share W4A4 so one method config serves the mix.
    let cfg: BitConfig = "W4A4".parse().expect("valid");
    let baseline = sim
        .run_batch(&ParallelExecutor::new(1), Method::LoCaLut, cfg, &requests)
        .expect("feasible");

    let mut table = Table::new(&[
        "workers",
        "requests",
        "wall (ms)",
        "session (s)",
        "identical",
    ]);
    for workers in [1usize, 2, 4, 8] {
        let pool = ParallelExecutor::new(workers);
        let t0 = std::time::Instant::now();
        let batch = sim
            .run_batch(&pool, Method::LoCaLut, cfg, &requests)
            .expect("feasible");
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        table.row(vec![
            workers.to_string(),
            batch.requests().to_string(),
            format!("{wall:.1}"),
            format!("{:.4}", batch.total_seconds()),
            (batch == baseline).to_string(),
        ]);
    }
    table.print();
    println!("\n  Expected shape: identical = true on every row (worker count cannot");
    println!("  change any simulated number) and session time constant across rows.");
}
