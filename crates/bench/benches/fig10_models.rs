//! Fig. 10: end-to-end DNN model speedup over Naive PIM.
//!
//! BERT (W1A3/W1A4/W2A2/W4A4), ViT (W2A2/W4A4), OPT (W4A4) with the four
//! plotted methods. The paper reports LoCaLUT at 1.77× geomean over Naive
//! PIM and 1.82× over LTC, with the LoCaLUT-specific optimizations adding
//! 22% over plain OP.

use bench::{banner, geomean, Table};
use dnn::{InferenceSim, ModelConfig, Workload};
use localut::Method;
use quant::BitConfig;

fn main() {
    banner("Fig 10", "End-to-end DNN speedup over Naive PIM");
    let sim = InferenceSim::upmem_server();
    let batch = 32;
    let cases: Vec<(ModelConfig, &str)> = vec![
        (ModelConfig::bert_base(), "W1A3"),
        (ModelConfig::bert_base(), "W1A4"),
        (ModelConfig::bert_base(), "W2A2"),
        (ModelConfig::bert_base(), "W4A4"),
        (ModelConfig::vit_base(), "W2A2"),
        (ModelConfig::vit_base(), "W4A4"),
        (ModelConfig::opt_125m(), "W4A4"),
    ];
    let methods = [Method::NaivePim, Method::Ltc, Method::Op, Method::LoCaLut];

    let mut table = Table::new(&["model", "config", "Naive PIM", "LTC (PIM)", "OP", "LoCaLUT"]);
    let mut over_naive = Vec::new();
    let mut over_ltc = Vec::new();
    let mut over_op = Vec::new();
    for (model, cfg_str) in cases {
        let cfg: BitConfig = cfg_str.parse().expect("valid config");
        let wl = Workload::prefill(model.clone(), batch);
        let naive = sim
            .run(Method::NaivePim, cfg, &wl)
            .expect("naive feasible")
            .total_seconds();
        let mut cells = vec![model.name.to_owned(), cfg_str.to_owned()];
        let mut speeds = Vec::new();
        for method in methods {
            let s = naive
                / sim
                    .run(method, cfg, &wl)
                    .expect("method feasible")
                    .total_seconds();
            speeds.push(s);
            cells.push(format!("{s:.2}"));
        }
        table.row(cells);
        over_naive.push(speeds[3]);
        over_ltc.push(speeds[3] / speeds[1]);
        over_op.push(speeds[3] / speeds[2]);
    }
    table.print();

    println!(
        "\n  geomean LoCaLUT over Naive PIM: {:.2}x (paper: 1.77x)",
        geomean(&over_naive)
    );
    println!(
        "  geomean LoCaLUT over LTC:       {:.2}x (paper: 1.82x)",
        geomean(&over_ltc)
    );
    println!(
        "  LoCaLUT optimizations over OP:  +{:.0}% (paper: +22%)",
        (geomean(&over_op) - 1.0) * 100.0
    );
}
