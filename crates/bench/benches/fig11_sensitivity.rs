//! Fig. 11: sensitivity to the weight matrix dimensions.
//!
//! LoCaLUT speedup over Naive PIM as a heat map over M, K ∈ {128..1024}
//! with N = 128, for W1A3 and W2A2. The paper reports a ~2.86× geomean
//! under both settings and robustness across all sizes.

use bench::{banner, geomean};
use localut::tiling::DistributedGemm;
use localut::{GemmDims, Method};
use quant::BitConfig;

fn main() {
    banner(
        "Fig 11",
        "Speedup over Naive PIM vs weight matrix size (N=128)",
    );
    let dist = DistributedGemm::upmem_server();
    let sizes = [128usize, 256, 384, 512, 640, 768, 896, 1024];

    for cfg_str in ["W1A3", "W2A2"] {
        let cfg: BitConfig = cfg_str.parse().expect("valid");
        let (wf, af) = (cfg.weight_format(), cfg.activation_format());
        println!("\n  {cfg_str} (rows: M, cols: K)");
        print!("  {:>6}", "M\\K");
        for &k in &sizes {
            print!("  {k:>6}");
        }
        println!();
        let mut all = Vec::new();
        for &m in &sizes {
            print!("  {m:>6}");
            for &k in &sizes {
                let dims = GemmDims { m, k, n: 128 };
                let s = dist
                    .speedup_over(Method::LoCaLut, Method::NaivePim, dims, wf, af)
                    .expect("feasible");
                all.push(s);
                print!("  {s:>6.2}");
            }
            println!();
        }
        let g = geomean(&all);
        let min = all.iter().cloned().fold(f64::INFINITY, f64::min);
        println!("  geomean: {g:.2}x, min: {min:.2}x (paper: 2.86x geomean, >1x everywhere)");
    }
}
