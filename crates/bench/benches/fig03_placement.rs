//! Fig. 3(c): DRAM-sized vs buffer-sized operation-packed LUT.
//!
//! A 512×512×512 GEMM at W1A3 on a single DPU, sweeping the packing degree
//! p = 1..6. The DRAM-sized LUT pays a full DRAM access per lookup (row
//! activation + DMA setup dominate); the buffer-sized LUT pays single-cycle
//! WRAM accesses but is capacity-capped at p = 3 (§V-A). The paper's
//! takeaway — "the local-buffer LUT consistently outperforms the DRAM-based
//! LUT across all packing degrees" — motivates the buffer-first base
//! design.

use bench::{banner, Table};
use localut::capacity::{max_p_op, op_lut_bytes};
use localut::GemmDims;
use pim_sim::{DpuConfig, DpuTimings};
use quant::NumericFormat;

fn main() {
    banner(
        "Fig 3(c)",
        "DRAM-sized vs buffer-sized operation-packed LUT (512x512x512, W1A3, 1 DPU)",
    );
    let wf = NumericFormat::Bipolar;
    let af = NumericFormat::Int(3);
    let dims = GemmDims {
        m: 512,
        k: 512,
        n: 512,
    };
    let cfg = DpuConfig::upmem();
    let t = DpuTimings::upmem();

    // Per-lookup costs.
    // DRAM-sized LUT: every lookup is a short random DRAM access
    // (activation + DMA setup + entry transfer).
    let dram_lookup_s = (t.row_activate_cycles + t.dma_setup_cycles + 2.0 / t.dram_bytes_per_cycle)
        * t.cycle_seconds();
    // Buffer-sized LUT: the 6-instruction OP lookup composite.
    let costs = &cfg.processor.costs;
    let buf_lookup_s = t.instruction_seconds(u64::from(costs.op_lookup));

    let p_dram_max = max_p_op(wf, af, cfg.bank_lut_budget());
    let p_buf_max = max_p_op(wf, af, cfg.wram_lut_budget());

    let mut table = Table::new(&[
        "p",
        "DRAM-sized LUT (s)",
        "Buffer-sized LUT (s)",
        "DRAM LUT bytes",
    ]);
    for p in 1..=6u32 {
        let lookups = dims.m as u64 * (dims.k as u64).div_ceil(u64::from(p)) * dims.n as u64;
        let dram = if p <= p_dram_max {
            format!("{:.3}", lookups as f64 * dram_lookup_s)
        } else {
            "infeasible".into()
        };
        let buf = if p <= p_buf_max {
            format!("{:.3}", lookups as f64 * buf_lookup_s)
        } else {
            "infeasible".into()
        };
        let bytes = op_lut_bytes(wf, af, p).map_or("overflow".into(), |b| format!("{b}"));
        table.row(vec![p.to_string(), dram, buf, bytes]);
    }
    table.print();
    println!(
        "\n  feasible p: DRAM-sized <= {p_dram_max}, buffer-sized <= {p_buf_max} (paper: 6 and 3)"
    );
    println!("  Expected shape: buffer-sized curve sits well below the DRAM-sized curve");
    println!("  wherever both are feasible (single-cycle SRAM vs row-activation DRAM).");
}
