//! Fig. 3(c): DRAM-sized vs buffer-sized operation-packed LUT.
//!
//! A 512×512×512 GEMM at W1A3 on a single DPU, sweeping the packing degree
//! p = 1..6. The DRAM-sized LUT pays a full DRAM access per lookup (row
//! activation + DMA setup dominate); the buffer-sized LUT pays single-cycle
//! WRAM accesses but is capacity-capped at p = 3 (§V-A). The paper's
//! takeaway — "the local-buffer LUT consistently outperforms the DRAM-based
//! LUT across all packing degrees" — motivates the buffer-first base
//! design.
//!
//! The **parallel variant** then executes a placement-planned GEMM
//! *functionally* on the bank-parallel runtime with 1/2/4/8 workers and
//! verifies the sharded output stays bit-identical to the serial path.

use bench::{banner, Table};
use localut::capacity::{max_p_op, op_lut_bytes};
use localut::{GemmConfig, GemmDims, Method};
use pim_sim::{DpuConfig, DpuTimings};
use quant::{NumericFormat, QMatrix};
use runtime::{ParallelExecutor, ShardPlan};

fn main() {
    banner(
        "Fig 3(c)",
        "DRAM-sized vs buffer-sized operation-packed LUT (512x512x512, W1A3, 1 DPU)",
    );
    let wf = NumericFormat::Bipolar;
    let af = NumericFormat::Int(3);
    let dims = GemmDims {
        m: 512,
        k: 512,
        n: 512,
    };
    let cfg = DpuConfig::upmem();
    let t = DpuTimings::upmem();

    // Per-lookup costs.
    // DRAM-sized LUT: every lookup is a short random DRAM access
    // (activation + DMA setup + entry transfer).
    let dram_lookup_s = (t.row_activate_cycles + t.dma_setup_cycles + 2.0 / t.dram_bytes_per_cycle)
        * t.cycle_seconds();
    // Buffer-sized LUT: the 6-instruction OP lookup composite.
    let costs = &cfg.processor.costs;
    let buf_lookup_s = t.instruction_seconds(u64::from(costs.op_lookup));

    let p_dram_max = max_p_op(wf, af, cfg.bank_lut_budget());
    let p_buf_max = max_p_op(wf, af, cfg.wram_lut_budget());

    let mut table = Table::new(&[
        "p",
        "DRAM-sized LUT (s)",
        "Buffer-sized LUT (s)",
        "DRAM LUT bytes",
    ]);
    for p in 1..=6u32 {
        let lookups = dims.m as u64 * (dims.k as u64).div_ceil(u64::from(p)) * dims.n as u64;
        let dram = if p <= p_dram_max {
            format!("{:.3}", lookups as f64 * dram_lookup_s)
        } else {
            "infeasible".into()
        };
        let buf = if p <= p_buf_max {
            format!("{:.3}", lookups as f64 * buf_lookup_s)
        } else {
            "infeasible".into()
        };
        let bytes = op_lut_bytes(wf, af, p).map_or("overflow".into(), |b| format!("{b}"));
        table.row(vec![p.to_string(), dram, buf, bytes]);
    }
    table.print();
    println!(
        "\n  feasible p: DRAM-sized <= {p_dram_max}, buffer-sized <= {p_buf_max} (paper: 6 and 3)"
    );
    println!("  Expected shape: buffer-sized curve sits well below the DRAM-sized curve");
    println!("  wherever both are feasible (single-cycle SRAM vs row-activation DRAM).");

    parallel_variant();
}

fn parallel_variant() {
    banner(
        "Fig 3 (parallel variant)",
        "Planned placement executed functionally on the bank-parallel runtime",
    );
    let dims = GemmDims {
        m: 256,
        k: 256,
        n: 64,
    };
    let w = QMatrix::pseudo_random(dims.m, dims.k, NumericFormat::Bipolar, 11);
    let a = QMatrix::pseudo_random(dims.k, dims.n, NumericFormat::Int(3), 12);
    let cfg = GemmConfig::upmem();

    let t0 = std::time::Instant::now();
    let serial = cfg.run(Method::LoCaLut, &w, &a).expect("feasible");
    let serial_wall = t0.elapsed().as_secs_f64();

    let plan = ShardPlan::for_banks(dims, 8);
    let mut table = Table::new(&[
        "workers",
        "banks",
        "wall (s)",
        "bit-exact",
        "sim critical (s)",
    ]);
    table.row(vec![
        "serial".into(),
        "1".into(),
        format!("{serial_wall:.3}"),
        "ref".into(),
        format!("{:.3e}", serial.profile.total_seconds()),
    ]);
    for workers in [1usize, 2, 4, 8] {
        let pool = ParallelExecutor::with_config(workers, cfg.clone());
        let t1 = std::time::Instant::now();
        let par = pool
            .execute_plan(&plan, Method::LoCaLut, &w, &a)
            .expect("feasible");
        let wall = t1.elapsed().as_secs_f64();
        table.row(vec![
            workers.to_string(),
            par.per_bank.len().to_string(),
            format!("{wall:.3}"),
            (par.values == serial.values).to_string(),
            format!("{:.3e}", par.critical_path_seconds()),
        ]);
    }
    table.print();
    println!("\n  Expected shape: bit-exact = true on every row; the simulated critical");
    println!("  path of the 8-bank plan sits well below the serial single-DPU time.");
}
