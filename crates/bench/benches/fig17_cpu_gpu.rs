//! Fig. 17: execution time and energy vs CPU and GPU.
//!
//! GEMM (M, K, N) = (12288, 192, 65536) across bitwidths on the Xeon Gold
//! 5215 roofline, the RTX 2080 Ti roofline, and LoCaLUT on the 2048-DPU
//! system. The paper's shape: LoCaLUT always beats the CPU; it beats the
//! GPU at low bitwidths but loses at W4A4 (no sub-8-bit GPU datapath vs a
//! native one).

use bench::{banner, Table};
use localut::tiling::DistributedGemm;
use localut::{GemmDims, Method};
use pim_sim::EnergyModel;
use quant::BitConfig;
use xpu::XpuModel;

fn main() {
    banner("Fig 17", "GEMM vs CPU/GPU (M=12288, K=192, N=65536)");
    let dist = DistributedGemm::upmem_server();
    let energy_model = EnergyModel::upmem();
    let sys = dist.system.config().clone();
    let cpu = XpuModel::xeon_gold_5215();
    let gpu = XpuModel::rtx_2080ti();
    let dims = GemmDims {
        m: 12288,
        k: 192,
        n: 65536,
    };

    let mut time = Table::new(&["config", "CPU (s)", "GPU (s)", "LoCaLUT (s)"]);
    let mut energy = Table::new(&["config", "CPU (J)", "GPU (J)", "LoCaLUT (J)"]);
    for cfg_str in ["W1A3", "W1A4", "W2A2", "W4A4"] {
        let cfg: BitConfig = cfg_str.parse().expect("valid");
        let (m, k, n) = (dims.m as u64, dims.k as u64, dims.n as u64);
        let cpu_t = cpu.gemm_seconds(m, k, n, cfg.bw, cfg.ba);
        let gpu_t = gpu.gemm_seconds(m, k, n, cfg.bw, cfg.ba);
        let profile = dist
            .cost(
                Method::LoCaLut,
                dims,
                cfg.weight_format(),
                cfg.activation_format(),
            )
            .expect("feasible");
        let lut_t = profile.total_seconds();
        let lut_j = energy_model.system_energy(&sys, &profile).total_j();
        time.row(vec![
            cfg_str.into(),
            format!("{cpu_t:.3}"),
            format!("{gpu_t:.3}"),
            format!("{lut_t:.3}"),
        ]);
        energy.row(vec![
            cfg_str.into(),
            format!("{:.1}", cpu.gemm_energy_j(m, k, n, cfg.bw, cfg.ba)),
            format!("{:.1}", gpu.gemm_energy_j(m, k, n, cfg.bw, cfg.ba)),
            format!("{lut_j:.1}"),
        ]);
        let vs_cpu = cpu_t / lut_t;
        let vs_gpu = gpu_t / lut_t;
        println!("  {cfg_str}: {vs_cpu:.1}x vs CPU, {vs_gpu:.2}x vs GPU");
    }
    println!("\n  (a) execution time:");
    time.print();
    println!("\n  (b) energy:");
    energy.print();
    println!("\n  Expected shape: LoCaLUT > CPU everywhere; > GPU at W1/W2, < GPU at W4A4.");
}
