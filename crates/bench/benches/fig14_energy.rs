//! Fig. 14: energy comparison across methods and models.
//!
//! Energy of full-model inference for Naive PIM, LTC, OP-LUT and LoCaLUT
//! on the seven model/bitwidth cases. The paper reports LoCaLUT at 3.37×
//! less energy than Naive PIM and 1.88× less than LTC for W1Ax; parity
//! with OP at W2A2; and 1.16× over Naive PIM at W4A4 where LTC/OP fall
//! behind. Absolute Joules depend on the meter (see DESIGN.md "Substitutions
//! and caveats"); ratios are the reproduction target.

use bench::{banner, geomean, Table};
use dnn::{InferenceSim, ModelConfig, Workload};
use localut::Method;
use pim_sim::EnergyModel;
use quant::BitConfig;

fn main() {
    banner("Fig 14", "Inference energy (J) by method");
    let sim = InferenceSim::upmem_server();
    let energy_model = EnergyModel::upmem();
    let sys = sim.dist.system.config().clone();
    let batch = 32;
    let cases: Vec<(ModelConfig, &str)> = vec![
        (ModelConfig::bert_base(), "W1A3"),
        (ModelConfig::bert_base(), "W1A4"),
        (ModelConfig::bert_base(), "W2A2"),
        (ModelConfig::bert_base(), "W4A4"),
        (ModelConfig::vit_base(), "W2A2"),
        (ModelConfig::vit_base(), "W4A4"),
        (ModelConfig::opt_125m(), "W4A4"),
    ];
    let methods = [Method::NaivePim, Method::Ltc, Method::Op, Method::LoCaLut];

    let mut table = Table::new(&[
        "model",
        "config",
        "Naive-PIM",
        "LTC",
        "OP-LUT",
        "LoCaLUT",
        "Naive/LoCaLUT",
    ]);
    let mut w1_ratio_naive = Vec::new();
    let mut w1_ratio_ltc = Vec::new();
    let mut w4_ratio_naive = Vec::new();
    for (model, cfg_str) in cases {
        let cfg: BitConfig = cfg_str.parse().expect("valid");
        let wl = Workload::prefill(model.clone(), batch);
        let mut joules = Vec::new();
        for method in methods {
            let report = sim.run(method, cfg, &wl).expect("feasible");
            joules.push(energy_model.system_energy(&sys, &report.profile).total_j());
        }
        let ratio = joules[0] / joules[3];
        let mut cells = vec![model.name.to_owned(), cfg_str.to_owned()];
        cells.extend(joules.iter().map(|j| format!("{j:.2}")));
        cells.push(format!("{ratio:.2}x"));
        table.row(cells);
        if cfg_str.starts_with("W1") {
            w1_ratio_naive.push(ratio);
            w1_ratio_ltc.push(joules[1] / joules[3]);
        }
        if cfg_str == "W4A4" {
            w4_ratio_naive.push(ratio);
        }
    }
    table.print();

    println!(
        "\n  W1Ax: LoCaLUT energy reduction vs Naive-PIM {:.2}x (paper: 3.37x), vs LTC {:.2}x (paper: 1.88x)",
        geomean(&w1_ratio_naive),
        geomean(&w1_ratio_ltc)
    );
    println!(
        "  W4A4: LoCaLUT vs Naive-PIM {:.2}x (paper: 1.16x)",
        geomean(&w4_ratio_naive)
    );
}
