//! The perf-harness subsystem plus shared helpers for the
//! figure-regeneration bench targets.
//!
//! Two consumers share this crate:
//!
//! * Every `benches/figNN_*.rs` target is a `harness = false` binary that
//!   reruns one of the paper's experiments on the simulator and prints the
//!   same rows/series the paper plots. `cargo bench --workspace`
//!   regenerates the full evaluation; `EXPERIMENTS.md` records
//!   paper-vs-measured.
//! * The **`bench-runner`** binary (workspace root) measures the
//!   [`scenario`] registry and emits/compares schema-versioned
//!   `BENCH_*.json` reports ([`report`]), with tolerance-based regression
//!   verdicts ([`regress`]) gated in CI. The JSON layer is the
//!   dependency-free [`json`] module (the build environment has no
//!   registry access, so no `serde`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The dependency-free JSON tree the reports serialize through. The
/// implementation lives in the `netserve` crate (the wire protocol is
/// built on the same writer); re-exported here so report code keeps
/// saying `bench::json`.
pub use netserve::json;
pub mod regress;
pub mod report;
pub mod scenario;

use dnn::hostops::HostOpModel;
use dnn::layer::{layer_gemms, layer_host_ops};
use dnn::ModelConfig;
use pim_sim::{Category, CycleLedger, Profile, SystemProfile};
use pq::{PqConfig, PqCostModel};

/// Joules → integer picojoules: the canonical conversion lives with the
/// serving engine's response types; re-exported here so the perf reports
/// and the engine price energy through one function.
pub use engine::picojoules;

/// Geometric mean of positive values (1.0 for an empty slice).
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Prints a figure banner.
pub fn banner(fig: &str, title: &str) {
    println!();
    println!("================================================================");
    println!("{fig}: {title}");
    println!("================================================================");
}

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let cols: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            println!("  {}", cols.join("  "));
        };
        line(&self.header);
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// End-to-end BERT-style system cost under a PQ baseline: the per-layer
/// GEMM stream through [`PqCostModel`] plus the same host "Others" ops the
/// LoCaLUT inference model charges (attention, softmax, norms, GELU).
#[must_use]
pub fn pq_model_cost(
    model: &ModelConfig,
    batch: usize,
    pq_cfg: &PqConfig,
    cost_model: &PqCostModel,
) -> SystemProfile {
    let tokens = batch * model.seq_len;
    let mut total = SystemProfile::default();
    for gemm in layer_gemms(model, tokens) {
        let one = cost_model.gemm_cost(pq_cfg, gemm.dims.m, gemm.dims.k, gemm.dims.n);
        total = total.merged(&one.scaled(u64::from(gemm.count)));
    }
    let host_model = HostOpModel::xeon();
    let counts = layer_host_ops(model, tokens, model.seq_len);
    let ops = host_model.other_ops(&counts);
    let mut others = CycleLedger::new();
    others.charge(
        Category::HostCompute,
        cost_model.system.host_ops_seconds(ops),
    );
    others.host_ops = ops;
    total = total.merged(&SystemProfile {
        host: Profile::from_ledger(others),
        pim: Profile::new(),
    });
    total.scaled(u64::from(model.layers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq::PqVariant;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(vec!["1".into()]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn pq_model_cost_is_positive_and_centroid_heavy() {
        let cost = pq_model_cost(
            &ModelConfig::bert_base(),
            8,
            &PqConfig::standard(PqVariant::PimDl),
            &PqCostModel::upmem_server(),
        );
        assert!(cost.total_seconds() > 0.0);
        assert!(cost.host.seconds(Category::HostCentroid) > cost.pim.total_seconds());
    }
}
