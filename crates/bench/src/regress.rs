//! Tolerance-based regression verdicts between two [`BenchReport`]s.
//!
//! The gated metric is **simulated time** (integer femtoseconds), not host
//! wall-clock: simulated time is machine-independent and exactly
//! reproducible, so a shared-runner CI box can enforce a tight threshold
//! without noise — the same lesson as deterministic-metric performance
//! pipelines on shared infrastructure. The functional `values_checksum` is
//! compared exactly: an "optimization" that changes results is a failure
//! even if it is faster.

use crate::report::BenchReport;
use std::fmt;

/// How one scenario moved against the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Simulated time within tolerance of the baseline.
    Unchanged,
    /// Simulated time more than `tolerance` below the baseline.
    Improved,
    /// Simulated time more than `tolerance` above the baseline — fails
    /// the gate.
    Regressed,
    /// Functional output fingerprint differs from the baseline — fails
    /// the gate regardless of timing.
    ChecksumMismatch,
    /// Present in the baseline but not in this run — fails the gate (a
    /// silently dropped scenario is not a passing scenario).
    Missing,
    /// Present in this run but not in the baseline — informational; it
    /// starts being gated once a new baseline is committed.
    New,
}

impl Verdict {
    /// Whether this verdict fails the regression gate.
    #[must_use]
    pub fn fails_gate(self) -> bool {
        matches!(
            self,
            Verdict::Regressed | Verdict::ChecksumMismatch | Verdict::Missing
        )
    }

    /// Short label for tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Unchanged => "unchanged",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::ChecksumMismatch => "CHECKSUM-MISMATCH",
            Verdict::Missing => "MISSING",
            Verdict::New => "new",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One scenario's baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Scenario name.
    pub name: String,
    /// Baseline simulated femtoseconds (0 when the scenario is new).
    pub baseline_femtos: u128,
    /// Current simulated femtoseconds (0 when the scenario is missing).
    pub current_femtos: u128,
    /// `current / baseline` (1.0 when both are zero; `f64::INFINITY`
    /// when only the baseline is zero).
    pub ratio: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// Compares `current` against `baseline` scenario-by-scenario.
///
/// `tolerance` is the relative slack on simulated time (0.10 = ±10%): a
/// scenario regresses when `current > baseline * (1 + tolerance)` and
/// improves when `current < baseline * (1 - tolerance)`. The comparison
/// is computed in exact integer arithmetic — no float rounding at the
/// threshold. Baseline rows are compared in baseline order, then new
/// scenarios in current-report order.
#[must_use]
pub fn compare(baseline: &BenchReport, current: &BenchReport, tolerance: f64) -> Vec<Comparison> {
    // Integer threshold: tolerance expressed in parts-per-million.
    let ppm = (tolerance * 1e6).round().max(0.0) as u128;
    let mut out = Vec::new();
    for base in &baseline.scenarios {
        let Some(cur) = current.scenario(&base.name) else {
            out.push(Comparison {
                name: base.name.clone(),
                baseline_femtos: base.sim_femtos,
                current_femtos: 0,
                ratio: 0.0,
                verdict: Verdict::Missing,
            });
            continue;
        };
        let ratio = if base.sim_femtos == 0 {
            if cur.sim_femtos == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            cur.sim_femtos as f64 / base.sim_femtos as f64
        };
        let verdict = if cur.values_checksum != base.values_checksum {
            Verdict::ChecksumMismatch
        } else if cur.sim_femtos * 1_000_000 > base.sim_femtos * (1_000_000 + ppm) {
            Verdict::Regressed
        } else if cur.sim_femtos * 1_000_000 < base.sim_femtos * (1_000_000 - ppm.min(1_000_000)) {
            Verdict::Improved
        } else {
            Verdict::Unchanged
        };
        out.push(Comparison {
            name: base.name.clone(),
            baseline_femtos: base.sim_femtos,
            current_femtos: cur.sim_femtos,
            ratio,
            verdict,
        });
    }
    for cur in &current.scenarios {
        if baseline.scenario(&cur.name).is_none() {
            out.push(Comparison {
                name: cur.name.clone(),
                baseline_femtos: 0,
                current_femtos: cur.sim_femtos,
                ratio: f64::INFINITY,
                verdict: Verdict::New,
            });
        }
    }
    out
}

/// Whether the comparison set passes the gate (no regression, no missing
/// scenario, no checksum drift).
#[must_use]
pub fn passes_gate(comparisons: &[Comparison]) -> bool {
    comparisons.iter().all(|c| !c.verdict.fails_gate())
}

/// Restricts a baseline to the scenarios a partial run deliberately
/// selected, so `--filter`/`--profile` subsets don't flag everything else
/// as `MISSING`.
///
/// A baseline row is dropped only when its scenario is still `registered`
/// but not in `selected` — i.e. this invocation *chose* not to run it. A
/// row whose name is registered nowhere is kept and will compare as
/// [`Verdict::Missing`]: deleting a scenario from the registry must fail
/// the gate until the baseline is regenerated.
#[must_use]
pub fn restrict_to_selected(
    baseline: &BenchReport,
    selected: &[&str],
    registered: &[&str],
) -> BenchReport {
    let mut restricted = baseline.clone();
    restricted
        .scenarios
        .retain(|s| selected.contains(&s.name.as_str()) || !registered.contains(&s.name.as_str()));
    restricted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BenchReport, ScenarioReport};

    fn row(name: &str, femtos: u128, checksum: u64) -> ScenarioReport {
        ScenarioReport {
            name: name.to_owned(),
            sim_femtos: femtos,
            categories: vec![],
            banks: 1,
            dram_read_bytes: 0,
            dram_write_bytes: 0,
            wram_accesses: 0,
            instructions: 0,
            host_bytes: 0,
            host_ops: 0,
            energy_pj: 0,
            values_checksum: checksum,
            wall_nanos: None,
        }
    }

    fn report(rows: Vec<ScenarioReport>) -> BenchReport {
        BenchReport {
            tag: "t".into(),
            profile: "smoke".into(),
            threads: 1,
            scenarios: rows,
        }
    }

    fn sole_verdict(base_femtos: u128, cur_femtos: u128, tolerance: f64) -> Verdict {
        let cmp = compare(
            &report(vec![row("s", base_femtos, 7)]),
            &report(vec![row("s", cur_femtos, 7)]),
            tolerance,
        );
        assert_eq!(cmp.len(), 1);
        cmp[0].verdict
    }

    #[test]
    fn threshold_edges_are_exact_at_ten_percent() {
        // 10% over a 1_000_000 fs baseline: 1_100_000 is the last pass.
        assert_eq!(sole_verdict(1_000_000, 1_100_000, 0.10), Verdict::Unchanged);
        assert_eq!(sole_verdict(1_000_000, 1_100_001, 0.10), Verdict::Regressed);
        // Symmetric on the improvement side: 900_000 is the last "unchanged".
        assert_eq!(sole_verdict(1_000_000, 900_000, 0.10), Verdict::Unchanged);
        assert_eq!(sole_verdict(1_000_000, 899_999, 0.10), Verdict::Improved);
        // Identical is always unchanged, even at zero tolerance.
        assert_eq!(sole_verdict(1_000_000, 1_000_000, 0.0), Verdict::Unchanged);
        assert_eq!(sole_verdict(1_000_000, 1_000_001, 0.0), Verdict::Regressed);
    }

    #[test]
    fn zero_baseline_edge_cases() {
        assert_eq!(sole_verdict(0, 0, 0.10), Verdict::Unchanged);
        // Any time charged against a zero baseline is a regression.
        assert_eq!(sole_verdict(0, 1, 0.10), Verdict::Regressed);
        let cmp = compare(
            &report(vec![row("s", 0, 7)]),
            &report(vec![row("s", 1, 7)]),
            0.10,
        );
        assert!(cmp[0].ratio.is_infinite());
    }

    #[test]
    fn tolerance_above_one_never_flags_improvement_spuriously() {
        // tolerance 1.5: lower bound clamps at zero — only an exact 0 can
        // "improve" from a positive baseline, which 0 < anything satisfies
        // trivially; anything positive is unchanged up to 2.5x.
        assert_eq!(sole_verdict(1_000, 2_500, 1.5), Verdict::Unchanged);
        assert_eq!(sole_verdict(1_000, 2_501, 1.5), Verdict::Regressed);
        assert_eq!(sole_verdict(1_000, 1, 1.5), Verdict::Unchanged);
    }

    #[test]
    fn checksum_mismatch_fails_even_when_faster() {
        let cmp = compare(
            &report(vec![row("s", 1_000_000, 7)]),
            &report(vec![row("s", 500_000, 8)]),
            0.10,
        );
        assert_eq!(cmp[0].verdict, Verdict::ChecksumMismatch);
        assert!(!passes_gate(&cmp));
    }

    #[test]
    fn missing_fails_and_new_passes() {
        let base = report(vec![row("kept", 10, 0), row("dropped", 10, 0)]);
        let cur = report(vec![row("kept", 10, 0), row("added", 10, 0)]);
        let cmp = compare(&base, &cur, 0.10);
        let by_name = |n: &str| cmp.iter().find(|c| c.name == n).unwrap();
        assert_eq!(by_name("kept").verdict, Verdict::Unchanged);
        assert_eq!(by_name("dropped").verdict, Verdict::Missing);
        assert_eq!(by_name("added").verdict, Verdict::New);
        assert!(!passes_gate(&cmp));
        // Without the drop, a new scenario alone passes the gate.
        let cmp2 = compare(&report(vec![row("kept", 10, 0)]), &cur, 0.10);
        assert!(passes_gate(&cmp2));
    }

    #[test]
    fn restricting_distinguishes_filtered_out_from_deleted() {
        let baseline = report(vec![
            row("ran", 10, 0),
            row("filtered_out", 10, 0),
            row("deleted_from_registry", 10, 0),
        ]);
        let registered = ["ran", "filtered_out"];
        let restricted = restrict_to_selected(&baseline, &["ran"], &registered);
        // "filtered_out" is registered but unselected → dropped from the
        // comparison; "deleted_from_registry" survives and fails the gate.
        let cmp = compare(&restricted, &report(vec![row("ran", 10, 0)]), 0.10);
        let names: Vec<&str> = cmp.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["ran", "deleted_from_registry"]);
        assert_eq!(cmp[0].verdict, Verdict::Unchanged);
        assert_eq!(cmp[1].verdict, Verdict::Missing);
        assert!(!passes_gate(&cmp));
        // Selecting everything is the identity.
        assert_eq!(
            restrict_to_selected(&baseline, &["ran", "filtered_out"], &registered),
            baseline
        );
    }

    #[test]
    fn gate_passes_on_identical_reports() {
        let r = report(vec![row("a", 123, 1), row("b", 0, 0)]);
        let cmp = compare(&r, &r, 0.10);
        assert!(passes_gate(&cmp));
        assert!(cmp.iter().all(|c| c.verdict == Verdict::Unchanged));
    }
}
