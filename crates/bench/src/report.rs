//! `BENCH_*.json`: the schema-versioned, diffable perf report.
//!
//! A [`BenchReport`] is the on-disk artifact `bench-runner` emits and the
//! regression gate compares against. Design constraints:
//!
//! * **Schema-versioned** — `schema_version` is checked on read so a
//!   stale baseline fails loudly instead of comparing garbage.
//! * **Deterministic bytes** — object keys sort, integers are exact
//!   decimal, scenarios keep registry order, and host wall-clock (the
//!   only nondeterministic field) is excluded unless explicitly included,
//!   so regenerating an unchanged baseline is byte-identical.
//! * **Integer metrics** — simulated time is the `u128` femtosecond
//!   ledger from [`pim_sim::Stats`], energy is rounded picojoules, and
//!   the functional fingerprint is a `u64` checksum; comparison never
//!   parses floats.

use crate::json::Json;
use crate::scenario::MeasuredScenario;
use pim_sim::Category;

/// The report schema version this crate writes and reads.
pub const SCHEMA_VERSION: u64 = 1;

/// One scenario's serialized metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioReport {
    /// Scenario registry name (the comparison key).
    pub name: String,
    /// Total simulated femtoseconds (the regression-gated metric).
    pub sim_femtos: u128,
    /// Per-category simulated femtoseconds (non-zero categories only,
    /// sorted by label).
    pub categories: Vec<(String, u128)>,
    /// Profiles merged into the aggregate.
    pub banks: u64,
    /// Bytes read from DRAM banks.
    pub dram_read_bytes: u128,
    /// Bytes written to DRAM banks.
    pub dram_write_bytes: u128,
    /// WRAM word accesses.
    pub wram_accesses: u128,
    /// DPU instructions retired.
    pub instructions: u128,
    /// Bytes over the host link.
    pub host_bytes: u128,
    /// Host scalar operations.
    pub host_ops: u128,
    /// Modeled energy in picojoules.
    pub energy_pj: u128,
    /// Fingerprint of functional output values (0 = analytic scenario).
    pub values_checksum: u64,
    /// Host wall-clock in nanoseconds — `None` in deterministic output,
    /// always ignored by comparison.
    pub wall_nanos: Option<u128>,
}

impl ScenarioReport {
    /// Builds the serializable report row from a measured scenario.
    #[must_use]
    pub fn from_measured(m: &MeasuredScenario) -> ScenarioReport {
        let snap = m.outcome.stats.snapshot();
        let mut categories: Vec<(String, u128)> = snap
            .category_femtos
            .iter()
            .map(|&(c, f)| (c.label().to_owned(), f))
            .collect();
        categories.sort();
        ScenarioReport {
            name: m.name.clone(),
            sim_femtos: snap.total_femtos,
            categories,
            banks: snap.banks,
            dram_read_bytes: snap.dram_read_bytes,
            dram_write_bytes: snap.dram_write_bytes,
            wram_accesses: snap.wram_accesses,
            instructions: snap.instructions,
            host_bytes: snap.host_bytes,
            host_ops: snap.host_ops,
            energy_pj: m.outcome.energy_pj,
            values_checksum: m.outcome.checksum,
            wall_nanos: Some(m.wall_nanos),
        }
    }

    /// Simulated milliseconds (for human-facing tables only).
    #[must_use]
    pub fn sim_millis(&self) -> f64 {
        self.sim_femtos as f64 / 1e12
    }

    fn to_json(&self, include_wall: bool) -> Json {
        let mut pairs = vec![
            ("name", Json::Str(self.name.clone())),
            ("sim_femtos", Json::UInt(self.sim_femtos)),
            (
                "categories",
                Json::Object(
                    self.categories
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            ("banks", Json::UInt(u128::from(self.banks))),
            ("dram_read_bytes", Json::UInt(self.dram_read_bytes)),
            ("dram_write_bytes", Json::UInt(self.dram_write_bytes)),
            ("wram_accesses", Json::UInt(self.wram_accesses)),
            ("instructions", Json::UInt(self.instructions)),
            ("host_bytes", Json::UInt(self.host_bytes)),
            ("host_ops", Json::UInt(self.host_ops)),
            ("energy_pj", Json::UInt(self.energy_pj)),
            (
                "values_checksum",
                Json::UInt(u128::from(self.values_checksum)),
            ),
        ];
        if include_wall {
            if let Some(wall) = self.wall_nanos {
                pairs.push(("wall_nanos", Json::UInt(wall)));
            }
        }
        Json::object(pairs)
    }

    fn from_json(v: &Json) -> Result<ScenarioReport, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("scenario missing 'name'")?
            .to_owned();
        let uint = |key: &str| -> Result<u128, String> {
            v.get(key)
                .and_then(Json::as_uint)
                .ok_or_else(|| format!("scenario '{name}' missing integer '{key}'"))
        };
        let mut categories = Vec::new();
        match v.get("categories") {
            Some(Json::Object(map)) => {
                for (label, value) in map {
                    if Category::from_label(label).is_none() {
                        return Err(format!("scenario '{name}': unknown category '{label}'"));
                    }
                    let femtos = value.as_uint().ok_or_else(|| {
                        format!("scenario '{name}': category '{label}' not an integer")
                    })?;
                    categories.push((label.clone(), femtos));
                }
            }
            _ => return Err(format!("scenario '{name}' missing 'categories' object")),
        }
        // BTreeMap iteration already sorts, but don't rely on it silently.
        categories.sort();
        Ok(ScenarioReport {
            sim_femtos: uint("sim_femtos")?,
            banks: u64::try_from(uint("banks")?).map_err(|_| "banks out of range")?,
            dram_read_bytes: uint("dram_read_bytes")?,
            dram_write_bytes: uint("dram_write_bytes")?,
            wram_accesses: uint("wram_accesses")?,
            instructions: uint("instructions")?,
            host_bytes: uint("host_bytes")?,
            host_ops: uint("host_ops")?,
            energy_pj: uint("energy_pj")?,
            values_checksum: u64::try_from(uint("values_checksum")?)
                .map_err(|_| "values_checksum out of range")?,
            wall_nanos: v.get("wall_nanos").and_then(Json::as_uint),
            categories,
            name,
        })
    }
}

/// A full perf report: header + one row per scenario, in run order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchReport {
    /// Tag naming this report (e.g. `baseline`, a branch, a commit).
    pub tag: String,
    /// The run profile (`smoke` / `full`).
    pub profile: String,
    /// Host worker threads the run used (informational; simulated
    /// numbers are thread-invariant).
    pub threads: u64,
    /// Scenario rows in run order.
    pub scenarios: Vec<ScenarioReport>,
}

impl BenchReport {
    /// Assembles a report from measured scenarios.
    #[must_use]
    pub fn new(
        tag: &str,
        profile: &str,
        threads: usize,
        measured: &[MeasuredScenario],
    ) -> BenchReport {
        BenchReport {
            tag: tag.to_owned(),
            profile: profile.to_owned(),
            threads: threads as u64,
            scenarios: measured.iter().map(ScenarioReport::from_measured).collect(),
        }
    }

    /// The row for `name`, if present.
    #[must_use]
    pub fn scenario(&self, name: &str) -> Option<&ScenarioReport> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Serializes to canonical JSON. With `include_wall = false` (the
    /// default for committed baselines) the nondeterministic host
    /// wall-clock fields are omitted and the output is byte-reproducible.
    #[must_use]
    pub fn to_json(&self, include_wall: bool) -> String {
        Json::object(vec![
            ("schema_version", Json::UInt(u128::from(SCHEMA_VERSION))),
            ("tag", Json::Str(self.tag.clone())),
            ("profile", Json::Str(self.profile.clone())),
            ("threads", Json::UInt(u128::from(self.threads))),
            (
                "scenarios",
                Json::Array(
                    self.scenarios
                        .iter()
                        .map(|s| s.to_json(include_wall))
                        .collect(),
                ),
            ),
        ])
        .to_pretty()
    }

    /// Parses a report, validating the schema version.
    ///
    /// # Errors
    ///
    /// Malformed JSON, wrong `schema_version`, or missing/ill-typed
    /// fields.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let root = Json::parse(text)?;
        let version = root
            .get("schema_version")
            .and_then(Json::as_uint)
            .ok_or("missing 'schema_version'")?;
        if version != u128::from(SCHEMA_VERSION) {
            return Err(format!(
                "schema version {version} unsupported (this binary reads {SCHEMA_VERSION}); \
                 regenerate the baseline with bench-runner --out"
            ));
        }
        let field = |key: &str| -> Result<String, String> {
            root.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string '{key}'"))
        };
        let scenarios = root
            .get("scenarios")
            .and_then(Json::as_array)
            .ok_or("missing 'scenarios' array")?
            .iter()
            .map(ScenarioReport::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            tag: field("tag")?,
            profile: field("profile")?,
            threads: u64::try_from(
                root.get("threads")
                    .and_then(Json::as_uint)
                    .ok_or("missing integer 'threads'")?,
            )
            .map_err(|_| "threads out of range")?,
            scenarios,
        })
    }

    /// A copy with wall-clock fields stripped (what a committed baseline
    /// contains).
    #[must_use]
    pub fn without_wall(&self) -> BenchReport {
        let mut copy = self.clone();
        for s in &mut copy.scenarios {
            s.wall_nanos = None;
        }
        copy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_row(name: &str, femtos: u128, checksum: u64) -> ScenarioReport {
        ScenarioReport {
            name: name.to_owned(),
            sim_femtos: femtos,
            categories: vec![
                ("accumulate".to_owned(), femtos / 2),
                ("lut-load".to_owned(), femtos - femtos / 2),
            ],
            banks: 2,
            dram_read_bytes: 1 << 40,
            dram_write_bytes: 7,
            wram_accesses: 11,
            instructions: u128::from(u64::MAX) + 5,
            host_bytes: 0,
            host_ops: 3,
            energy_pj: 999_999,
            values_checksum: checksum,
            wall_nanos: Some(123_456_789),
        }
    }

    fn sample() -> BenchReport {
        BenchReport {
            tag: "baseline".into(),
            profile: "smoke".into(),
            threads: 4,
            scenarios: vec![
                sample_row("fig09_gemm", 1_000_000, 42),
                sample_row("fig14_energy", 5, 0),
            ],
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let report = sample();
        let parsed = BenchReport::from_json(&report.to_json(true)).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn deterministic_output_strips_wall_clock() {
        let report = sample();
        let text = report.to_json(false);
        assert!(!text.contains("wall_nanos"));
        let parsed = BenchReport::from_json(&text).unwrap();
        assert_eq!(parsed, report.without_wall());
        // Byte-level determinism.
        assert_eq!(text, report.to_json(false));
        assert_eq!(text, parsed.to_json(false));
    }

    #[test]
    fn schema_version_is_checked() {
        let text = sample()
            .to_json(false)
            .replace("\"schema_version\": 1", "\"schema_version\": 999");
        let err = BenchReport::from_json(&text).unwrap_err();
        assert!(err.contains("schema version 999"), "{err}");
    }

    #[test]
    fn unknown_categories_are_rejected() {
        let text = sample().to_json(false).replace("lut-load", "warp-drive");
        let err = BenchReport::from_json(&text).unwrap_err();
        assert!(err.contains("unknown category"), "{err}");
    }

    #[test]
    fn missing_fields_error_with_context() {
        let text = sample()
            .to_json(false)
            .replace("\"sim_femtos\"", "\"sim_femtoz\"");
        let err = BenchReport::from_json(&text).unwrap_err();
        assert!(err.contains("sim_femtos"), "{err}");
        assert!(BenchReport::from_json("{}").is_err());
        assert!(BenchReport::from_json("not json").is_err());
    }

    #[test]
    fn scenario_lookup_by_name() {
        let report = sample();
        assert_eq!(report.scenario("fig09_gemm").unwrap().values_checksum, 42);
        assert!(report.scenario("absent").is_none());
    }
}
