//! The perf-harness scenario registry: each paper figure class exposed as
//! a deterministic callable.
//!
//! A [`Scenario`] is the unit `bench-runner` measures: a named workload
//! that executes on the simulator — routed through the [`engine`] serving
//! API, the same surface the examples and binaries use (functionally
//! where the figure is functional, analytically where it is a cost
//! sweep) — and returns a
//! [`ScenarioOutcome`] — the merged [`pim_sim::Stats`] ledger (integer
//! femtoseconds + event counters), the modeled energy, and a fingerprint
//! of any functional output. Everything in the outcome is deterministic:
//! two runs on any machine, at any worker count, produce identical
//! outcomes. Host wall-clock is measured *around* the scenario by
//! [`run_scenarios`], never inside it, so it stays out of the
//! deterministic surface.
//!
//! The registry covers the repo's figure benches at "smoke" (fast, run on
//! every CI push by the `perf-gate` job) and "full" (adds the large
//! shapes) granularity.

use crate::picojoules;
use dnn::{ModelConfig, Workload};
use engine::serve::{drive_client, ArrivalMode, ServeConfig, Server};
use engine::traffic::{client_log, Mix, TrafficConfig, TrafficRequest};
use engine::{Engine, GemmRequest, InferenceRequest, PlanPin};
use localut::plan::Placement;
use localut::{GemmDims, Method};
use netserve::server::{NetConfig, NetServer};
use netserve::NetClient;
use pim_sim::Stats;
use quant::{BitConfig, NumericFormat, QMatrix};
use std::sync::Arc;
use std::time::Instant;

/// Which scenario subset a run covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunProfile {
    /// The fast subset CI's perf gate runs on every push.
    Smoke,
    /// Every registered scenario, including the large shapes.
    Full,
}

impl RunProfile {
    /// The profile's canonical name (`smoke` / `full`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RunProfile::Smoke => "smoke",
            RunProfile::Full => "full",
        }
    }
}

impl std::str::FromStr for RunProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "smoke" => Ok(RunProfile::Smoke),
            "full" => Ok(RunProfile::Full),
            other => Err(format!("unknown profile '{other}' (smoke|full)")),
        }
    }
}

/// Execution context a scenario runs under.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioCtx {
    /// Host worker threads for the bank-parallel runtime (never changes a
    /// simulated number — the runtime is deterministic by construction —
    /// only the host wall-clock).
    pub threads: usize,
}

impl Default for ScenarioCtx {
    fn default() -> Self {
        ScenarioCtx { threads: 4 }
    }
}

/// What one scenario execution measured (the deterministic part).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Merged simulated statistics (integer femtoseconds + counters).
    pub stats: Stats,
    /// Modeled energy in picojoules (rounded once from the f64 model).
    pub energy_pj: u128,
    /// Fingerprint of the functional output values (0 for analytic
    /// scenarios with no functional output).
    pub checksum: u64,
}

/// One measured scenario plus its host wall-clock.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredScenario {
    /// The scenario's registry name.
    pub name: String,
    /// The deterministic outcome.
    pub outcome: ScenarioOutcome,
    /// Host wall-clock of the scenario body, in nanoseconds. Excluded
    /// from regression comparison and from deterministic report output.
    pub wall_nanos: u128,
}

/// A registered, callable figure scenario.
pub struct Scenario {
    /// Unique registry name (stable across PRs — baselines key on it).
    pub name: &'static str,
    /// One-line description shown by `bench-runner --list`.
    pub title: &'static str,
    /// Whether the smoke profile includes this scenario.
    pub smoke: bool,
    runner: fn(&ScenarioCtx) -> ScenarioOutcome,
}

impl Scenario {
    /// Executes the scenario body.
    #[must_use]
    pub fn run(&self, ctx: &ScenarioCtx) -> ScenarioOutcome {
        (self.runner)(ctx)
    }
}

/// All registered scenarios, in report order.
#[must_use]
pub fn registry() -> &'static [Scenario] {
    &[
        Scenario {
            name: "fig03_placement",
            title: "buffer vs streaming placement arms, functional (small GEMM)",
            smoke: true,
            runner: placement_scenario,
        },
        Scenario {
            name: "fig09_gemm",
            title: "LoCaLUT GEMM 768x768x128 W1A3, functional on the bank-parallel runtime",
            smoke: true,
            runner: |ctx| gemm_scenario(ctx, 768),
        },
        Scenario {
            name: "fig09_gemm_wide",
            title: "LoCaLUT GEMM 3072x768x128 W1A3, functional on the bank-parallel runtime",
            smoke: false,
            runner: |ctx| gemm_scenario(ctx, 3072),
        },
        Scenario {
            name: "fig09_huge",
            title: "LoCaLUT GEMM 768x768x128 W1A3 on the full machine: 32 ranks x 64 banks",
            smoke: false,
            runner: gemm_huge_scenario,
        },
        Scenario {
            name: "fig14_energy",
            title: "system energy, LoCaLUT vs Naive PIM at 768x768x128 W1A3 (analytic)",
            smoke: true,
            runner: energy_scenario,
        },
        Scenario {
            name: "fig16_breakdown",
            title: "per-DPU kernel category breakdown, OP+LC+RC at the paper shape (analytic)",
            smoke: true,
            runner: breakdown_scenario,
        },
        Scenario {
            name: "fig19_serving",
            title: "mixed BERT/OPT serving batch on the runtime worker pool",
            smoke: false,
            runner: serving_scenario,
        },
        Scenario {
            name: "serve_mixed",
            title:
                "concurrent scheduler: 3 clients x 4 seeded mixed requests through engine::serve",
            smoke: true,
            runner: serve_sched_scenario,
        },
        Scenario {
            name: "serve_decode",
            title:
                "continuous batching: 2 clients x 3 seeded decoder sessions through engine::serve",
            smoke: true,
            runner: serve_decode_scenario,
        },
        Scenario {
            name: "serve_net",
            title: "network front-end: 2 clients x 3 seeded mixed requests over loopback TCP",
            smoke: true,
            runner: serve_net_scenario,
        },
        Scenario {
            name: "serve_rank_scale",
            title:
                "concurrent scheduler on the ranked 32x64 machine: 2 clients x 3 seeded requests",
            smoke: true,
            runner: serve_rank_scale_scenario,
        },
        Scenario {
            name: "cache_churn",
            title: "LUT cache under a starved byte budget: format churn forces evict + rebuild",
            smoke: true,
            runner: cache_churn_scenario,
        },
    ]
}

/// Selects scenarios by profile and optional name filter (substring match).
#[must_use]
pub fn select(profile: RunProfile, filter: Option<&str>) -> Vec<&'static Scenario> {
    registry()
        .iter()
        .filter(|s| profile == RunProfile::Full || s.smoke)
        .filter(|s| filter.is_none_or(|f| s.name.contains(f)))
        .collect()
}

/// Runs the given scenarios in registry order, timing each body with the
/// host monotonic clock.
#[must_use]
pub fn run_scenarios(scenarios: &[&Scenario], ctx: &ScenarioCtx) -> Vec<MeasuredScenario> {
    scenarios
        .iter()
        .map(|s| {
            let t0 = Instant::now();
            let outcome = s.run(ctx);
            MeasuredScenario {
                name: s.name.to_owned(),
                outcome,
                wall_nanos: t0.elapsed().as_nanos(),
            }
        })
        .collect()
}

fn w1a3() -> (NumericFormat, NumericFormat) {
    (NumericFormat::Bipolar, NumericFormat::Int(3))
}

/// The serving engine a scenario runs on: every functional and analytic
/// path below routes through the session API, exactly like the examples
/// and the `localut-sim` binary.
fn serving_engine(ctx: &ScenarioCtx, banks: u32) -> Engine {
    Engine::builder().threads(ctx.threads).banks(banks).build()
}

/// Fig. 3 class: the two §IV-D placement arms served as pinned engine
/// requests on a small GEMM and their ledgers merged — exercises both LUT
/// kernel hot paths (and, because both pins share `p = 5`, nothing about
/// the LUT cache: the two placements key separately by design).
fn placement_scenario(ctx: &ScenarioCtx) -> ScenarioOutcome {
    let (wf, af) = w1a3();
    let eng = serving_engine(ctx, 1);
    let w = QMatrix::pseudo_random(48, 40, wf, 11);
    let a = QMatrix::pseudo_random(40, 12, af, 12);
    let buffer = eng
        .submit(&GemmRequest::new(w.clone(), a.clone()).with_pin(PlanPin {
            placement: Placement::BufferResident,
            p: 5,
        }))
        .expect("paper p_local fits");
    let streaming = eng
        .submit(&GemmRequest::new(w, a).with_pin(PlanPin {
            placement: Placement::Streaming,
            p: 5,
        }))
        .expect("slice budget fits");
    assert_eq!(buffer.values, streaming.values, "placement arms diverged");
    let model = eng.energy_model();
    let energy = model.dpu_dynamic_j(&buffer.profile) + model.dpu_dynamic_j(&streaming.profile);
    ScenarioOutcome {
        stats: buffer.stats.merged(&streaming.stats),
        energy_pj: picojoules(energy),
        checksum: buffer.checksum,
    }
}

/// Fig. 9 class: a full LoCaLUT GEMM served across a 16-bank shard plan.
/// The simulated side is the per-bank ledger merge; the host side
/// (wall-clock, measured by the harness) is what the LUT-kernel hot-path
/// optimization targets.
fn gemm_scenario(ctx: &ScenarioCtx, m: usize) -> ScenarioOutcome {
    let (wf, af) = w1a3();
    let dims = GemmDims { m, k: 768, n: 128 };
    let w = QMatrix::pseudo_random(dims.m, dims.k, wf, 1);
    let a = QMatrix::pseudo_random(dims.k, dims.n, af, 2);
    let response = serving_engine(ctx, 16)
        .submit(&GemmRequest::new(w, a))
        .expect("feasible");
    ScenarioOutcome {
        stats: response.stats,
        energy_pj: response.energy_pj,
        checksum: response.checksum,
    }
}

/// Fig. 9 at full-machine scale: the paper-shape GEMM sharded across the
/// ranked 32 × 64 topology — a 128 × 16 grid of exactly 2048 bank shards,
/// merged through the per-rank tree with the rank-bus contention phase on
/// the measured path. The host side is the work-stealing executor's
/// stress case (2048 ragged tiles); the simulated side pins the scale-out
/// cost model.
fn gemm_huge_scenario(ctx: &ScenarioCtx) -> ScenarioOutcome {
    let (wf, af) = w1a3();
    let dims = GemmDims {
        m: 768,
        k: 768,
        n: 128,
    };
    let w = QMatrix::pseudo_random(dims.m, dims.k, wf, 1);
    let a = QMatrix::pseudo_random(dims.k, dims.n, af, 2);
    let response = Engine::builder()
        .threads(ctx.threads)
        .ranks(32, 64)
        .build()
        .submit(&GemmRequest::new(w, a))
        .expect("feasible");
    assert_eq!(response.per_bank.len(), 2048, "full machine must populate");
    ScenarioOutcome {
        stats: response.stats,
        energy_pj: response.energy_pj,
        checksum: response.checksum,
    }
}

/// Fig. 14 class: system energy of LoCaLUT vs Naive PIM on the 2048-DPU
/// server (analytic). The ledger records the LoCaLUT execution; the energy
/// field records its total Joules, so a cost-model regression moves both.
fn energy_scenario(ctx: &ScenarioCtx) -> ScenarioOutcome {
    let cfg: BitConfig = "W1A3".parse().expect("valid");
    let dims = GemmDims {
        m: 768,
        k: 768,
        n: 128,
    };
    let eng = serving_engine(ctx, 16);
    let localut = eng
        .system_cost(Method::LoCaLut, dims, cfg)
        .expect("feasible");
    let naive = eng
        .system_cost(Method::NaivePim, dims, cfg)
        .expect("feasible");
    assert!(
        localut.total_seconds() < naive.total_seconds(),
        "LoCaLUT must beat Naive PIM on the paper shape"
    );
    let stats = Stats::from_profile(&localut.host).merged(&Stats::from_profile(&localut.pim));
    ScenarioOutcome {
        stats,
        energy_pj: picojoules(
            eng.energy_model()
                .system_energy(eng.sim().dist.system.config(), &localut)
                .total_j(),
        ),
        checksum: 0,
    }
}

/// Fig. 16 class: the buffer-resident kernel's per-category breakdown at
/// the paper's representative shape (the pinned cost twin).
fn breakdown_scenario(ctx: &ScenarioCtx) -> ScenarioOutcome {
    let cfg: BitConfig = "W1A3".parse().expect("valid");
    let eng = serving_engine(ctx, 1);
    let profile = eng
        .pinned_kernel_cost(
            PlanPin {
                placement: Placement::BufferResident,
                p: 5,
            },
            cfg,
            GemmDims {
                m: 768,
                k: 765,
                n: 128,
            },
        )
        .expect("paper p_local fits");
    ScenarioOutcome {
        stats: Stats::from_profile(&profile),
        energy_pj: picojoules(eng.energy_model().dpu_dynamic_j(&profile)),
        checksum: 0,
    }
}

/// Fig. 19 class: a mixed serving batch (BERT prefill + OPT
/// prefill+decode) on the engine's worker pool; the batch's associative
/// stats merge is worker-count invariant by construction.
fn serving_scenario(ctx: &ScenarioCtx) -> ScenarioOutcome {
    let cfg: BitConfig = "W4A4".parse().expect("valid");
    let requests = vec![
        Workload::prefill(ModelConfig::bert_base(), 16),
        Workload::with_decode(ModelConfig::opt_125m(), 8, 4),
        Workload::prefill(ModelConfig::bert_base(), 32),
    ];
    let response = serving_engine(ctx, 16)
        .infer(
            &InferenceRequest::serving(requests)
                .with_method(Method::LoCaLut)
                .with_bits(cfg),
        )
        .expect("feasible");
    ScenarioOutcome {
        stats: response.stats,
        energy_pj: response.energy_pj,
        checksum: 0,
    }
}

/// The `serve` class: real concurrent traffic — client threads submitting
/// a seeded mixed request log to the [`engine::serve`] scheduler, workers
/// coalescing compatible GEMMs into dynamic batches. The recorded outcome
/// is the server's deterministic summary: any interleaving, worker count,
/// and batching policy merges to these exact integers (the property
/// `tests/serve_concurrent.rs` pins against serial replay), so the perf
/// gate can hold serving throughput to the committed baseline.
fn serve_sched_scenario(ctx: &ScenarioCtx) -> ScenarioOutcome {
    let traffic = TrafficConfig {
        clients: 3,
        requests_per_client: 4,
        mix: Mix::Mixed,
        seed: 2026,
        decode_tokens: 4,
    };
    // Engine pool of 1: host parallelism comes from the scheduler workers
    // here, and nesting both pools would oversubscribe small CI runners.
    let engine = Arc::new(Engine::builder().threads(1).banks(4).build());
    let server = Server::start(
        engine,
        &ServeConfig::builder()
            .workers(ctx.threads)
            .max_batch(4)
            .build()
            .expect("static serve config is valid"),
    );
    std::thread::scope(|scope| {
        for client in 0..traffic.clients {
            let server = &server;
            let log = client_log(&traffic, client);
            scope.spawn(move || drive_client(server, log, ArrivalMode::Closed));
        }
    });
    let report = server.join();
    assert_eq!(
        report.summary.failed_requests, 0,
        "seeded serve traffic must be feasible"
    );
    ScenarioOutcome {
        stats: report.summary.stats.clone(),
        energy_pj: report.summary.energy_pj,
        checksum: report.summary.checksum,
    }
}

/// The scale-out serving class: the same concurrent scheduler as
/// `serve_mixed`, but over an engine configured as the paper's full
/// ranked machine (32 ranks × 64 banks). The seeded log's small
/// per-request bank overrides are stripped so the ranked topology governs
/// every GEMM's shard plan — each request merges through the per-rank
/// tree and pays the rank-bus contention phase. The summary stays exactly
/// as deterministic as the flat scenarios: the gate holds full-machine
/// serving cost to the committed baseline.
fn serve_rank_scale_scenario(ctx: &ScenarioCtx) -> ScenarioOutcome {
    let traffic = TrafficConfig {
        clients: 2,
        requests_per_client: 3,
        mix: Mix::Mixed,
        seed: 3215,
        decode_tokens: 4,
    };
    // Engine pool of 1 for the same oversubscription reason as serve_mixed.
    let engine = Arc::new(Engine::builder().threads(1).ranks(32, 64).build());
    let server = Server::start(
        engine,
        &ServeConfig::builder()
            .workers(ctx.threads)
            .max_batch(4)
            .build()
            .expect("static serve config is valid"),
    );
    std::thread::scope(|scope| {
        for client in 0..traffic.clients {
            let server = &server;
            let mut log = client_log(&traffic, client);
            for request in &mut log {
                if let TrafficRequest::Gemm(gemm) = request {
                    gemm.banks = None;
                }
            }
            scope.spawn(move || drive_client(server, log, ArrivalMode::Closed));
        }
    });
    let report = server.join();
    assert_eq!(
        report.summary.failed_requests, 0,
        "seeded rank-scale traffic must be feasible"
    );
    ScenarioOutcome {
        stats: report.summary.stats.clone(),
        energy_pj: report.summary.energy_pj,
        checksum: report.summary.checksum,
    }
}

/// The continuous-batching class: seeded decoder sessions
/// ([`Mix::Decode`]) through the [`engine::serve`] scheduler. Each session
/// is decomposed into one prefill step plus its decode steps; workers run
/// one step per dispatch and re-enqueue the continuation, so the decode
/// waves of concurrent sessions interleave. The recorded outcome is the
/// deterministic summary — identical at any worker count and any
/// interleaving (pinned by `tests/serve_decode.rs` against serial replay)
/// — so the perf gate holds decode-serving cost to the committed
/// baseline.
fn serve_decode_scenario(ctx: &ScenarioCtx) -> ScenarioOutcome {
    let traffic = TrafficConfig {
        clients: 2,
        requests_per_client: 3,
        mix: Mix::Decode,
        seed: 2608,
        decode_tokens: 4,
    };
    // Engine pool of 1 for the same oversubscription reason as serve_mixed.
    let engine = Arc::new(Engine::builder().threads(1).banks(4).build());
    let server = Server::start(
        engine,
        &ServeConfig::builder()
            .workers(ctx.threads)
            .max_batch(4)
            .build()
            .expect("static serve config is valid"),
    );
    std::thread::scope(|scope| {
        for client in 0..traffic.clients {
            let server = &server;
            let log = client_log(&traffic, client);
            scope.spawn(move || drive_client(server, log, ArrivalMode::Closed));
        }
    });
    let report = server.join();
    assert_eq!(
        report.summary.failed_requests, 0,
        "seeded decode traffic must be feasible"
    );
    assert!(
        report.summary.decode_steps > 0,
        "decode traffic must schedule decode steps"
    );
    ScenarioOutcome {
        stats: report.summary.stats.clone(),
        energy_pj: report.summary.energy_pj,
        checksum: report.summary.checksum,
    }
}

/// The network front-end class: seeded mixed traffic driven over loopback
/// TCP through [`netserve`] — frame codec, wire DTO round-trip, admission,
/// and drain all on the measured path. The outcome is the server's
/// deterministic summary, so it lands on the same integers regardless of
/// worker count, connection interleaving, or kernel socket scheduling; the
/// perf gate holds the wire path's simulated cost to the baseline.
fn serve_net_scenario(ctx: &ScenarioCtx) -> ScenarioOutcome {
    let traffic = TrafficConfig {
        clients: 2,
        requests_per_client: 3,
        mix: Mix::Mixed,
        seed: 4810,
        decode_tokens: 4,
    };
    // Engine pool of 1 for the same oversubscription reason as serve_mixed.
    let engine = Arc::new(Engine::builder().threads(1).banks(4).build());
    let config = ServeConfig::builder()
        .workers(ctx.threads)
        .max_batch(4)
        .build()
        .expect("static serve config is valid");
    let server = NetServer::bind(engine, &config, &NetConfig::default(), "127.0.0.1:0")
        .expect("loopback bind");
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        for client in 0..traffic.clients {
            let log = client_log(&traffic, client);
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).expect("loopback connect");
                for request in log {
                    match request {
                        TrafficRequest::Gemm(r) => {
                            client.gemm(&r).expect("seeded gemm is feasible");
                        }
                        TrafficRequest::Infer(r) => {
                            client.infer(&r).expect("seeded inference is feasible");
                        }
                        TrafficRequest::Session(r) => {
                            client.session(&r).expect("seeded session is feasible");
                        }
                    }
                }
            });
        }
    });
    let report = server.join();
    assert_eq!(
        report.serve.summary.failed_requests, 0,
        "seeded net traffic must be feasible"
    );
    ScenarioOutcome {
        stats: report.serve.summary.stats.clone(),
        energy_pj: report.serve.summary.energy_pj,
        checksum: report.serve.summary.checksum,
    }
}

/// The cache-lifecycle class: a format-churning GEMM stream against an
/// engine whose LUT byte budget is deliberately too small for the working
/// set, driven twice so evicted entries get re-requested and rebuilt. The
/// outcome — merged ledger, energy, response-checksum fold — is identical
/// to the same stream on an unbudgeted engine (eviction only ever moves
/// host wall and counters, the subsystem's core contract), so the perf
/// gate both pins the simulated cost and holds the evict + rebuild host
/// path to the committed wall baseline. The body asserts the churn
/// actually happened: evictions occurred, nothing failed.
fn cache_churn_scenario(ctx: &ScenarioCtx) -> ScenarioOutcome {
    // Distinct (wf, af) pairs key distinct LUT images; the budget below
    // holds roughly one of them, so cycling the list keeps the ledger
    // under continuous eviction pressure.
    let pairs = [
        (NumericFormat::Bipolar, NumericFormat::Int(3)),
        (NumericFormat::Bipolar, NumericFormat::Int(2)),
        (NumericFormat::Int(2), NumericFormat::Int(2)),
    ];
    let engine = Engine::builder()
        .threads(ctx.threads)
        .banks(2)
        .cache_budget(192 * 1024)
        .build();
    let mut stats = Stats::default();
    let mut energy_pj: u128 = 0;
    let mut checksums = Vec::new();
    for round in 0..2u64 {
        for (index, (wf, af)) in pairs.iter().enumerate() {
            let w = QMatrix::pseudo_random(48, 40, *wf, 31 + index as u64);
            let a = QMatrix::pseudo_random(40, 12, *af, 32 + round);
            let response = engine
                .submit(&GemmRequest::new(w, a))
                .expect("churn shapes are feasible");
            stats = stats.merged(&response.stats);
            energy_pj += response.energy_pj;
            checksums.extend_from_slice(&response.checksum.to_le_bytes());
        }
    }
    let cache = engine.lut_cache_stats();
    assert!(
        cache.evictions > 0,
        "the starved budget must evict (got {cache:?})"
    );
    assert!(
        cache.misses > pairs.len() as u64,
        "revisiting an evicted key must rebuild, not hit (got {cache:?})"
    );
    assert_eq!(cache.failed_builds, 0, "no churn build may fail");
    ScenarioOutcome {
        stats,
        energy_pj,
        checksum: runtime::fnv1a_64(checksums),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let mut names: Vec<&str> = registry().iter().map(|s| s.name).collect();
        assert!(!names.is_empty());
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry().len(), "duplicate scenario names");
    }

    #[test]
    fn smoke_profile_is_a_strict_subset_of_full() {
        let smoke = select(RunProfile::Smoke, None);
        let full = select(RunProfile::Full, None);
        assert!(!smoke.is_empty());
        assert!(smoke.len() < full.len());
        for s in &smoke {
            assert!(full.iter().any(|f| f.name == s.name));
        }
    }

    #[test]
    fn filter_selects_by_substring() {
        let hits = select(RunProfile::Full, Some("fig09"));
        assert_eq!(hits.len(), 3);
        assert!(select(RunProfile::Full, Some("no-such-scenario")).is_empty());
    }

    #[test]
    fn cheap_scenarios_are_deterministic_and_thread_invariant() {
        // The two analytic scenarios plus the small functional ones — fast
        // enough for debug-profile test runs. serve_mixed doubles as the
        // concurrency check: worker count must not move a single integer.
        for name in [
            "fig03_placement",
            "fig14_energy",
            "fig16_breakdown",
            "serve_mixed",
            "serve_decode",
            "serve_net",
            "serve_rank_scale",
            "cache_churn",
        ] {
            let scenario = registry().iter().find(|s| s.name == name).unwrap();
            let one = scenario.run(&ScenarioCtx { threads: 1 });
            let four = scenario.run(&ScenarioCtx { threads: 4 });
            assert_eq!(one, four, "{name} outcome varies with threads");
            assert!(one.stats.total_seconds() > 0.0, "{name} charged no time");
            assert!(one.energy_pj > 0, "{name} modeled no energy");
        }
    }

    #[test]
    fn placement_scenario_fingerprints_its_output() {
        let outcome = placement_scenario(&ScenarioCtx::default());
        assert_ne!(outcome.checksum, 0);
        assert_eq!(outcome.stats.banks(), 2); // buffer arm + streaming arm
    }

    #[test]
    fn serve_scenario_fingerprints_its_gemm_traffic() {
        let outcome = serve_sched_scenario(&ScenarioCtx { threads: 2 });
        // The seeded mixed log always contains GEMMs, so the sorted-fold
        // fingerprint is never the bare FNV basis of an empty stream.
        assert_ne!(outcome.checksum, runtime::fnv1a_64([]));
        assert!(outcome.stats.banks() > 0);
        assert!(outcome.energy_pj > 0);
    }
}
