//! Deterministic seeded traffic generation for the serving scheduler.
//!
//! A [`TrafficConfig`] fully determines a request log: every byte of every
//! generated operand comes from a [SplitMix64] stream keyed on
//! `(seed, client)`, so two processes — or the `loadgen` binary at two
//! different worker counts — generate the *identical* workload. That is
//! what lets the CI smoke job assert byte-identical summaries across
//! thread counts, and what gives [`crate::serve::replay_serial`] a
//! well-defined reference log to replay.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use crate::request::{GemmRequest, InferenceRequest};
use crate::sessions::SessionRequest;
use dnn::{ModelConfig, Workload};
use quant::{NumericFormat, QMatrix};

/// Which request kinds a generated workload mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// GEMM requests only.
    Gemm,
    /// Inference requests only.
    Inference,
    /// Roughly one inference request per two GEMMs, seed-determined.
    Mixed,
    /// Decoder sessions only ([`crate::Server::submit_session`]): every
    /// request is an OPT generation of seed-determined length, served
    /// with continuous batching.
    Decode,
    /// Chat-like bursty traffic: roughly half decoder sessions, the rest
    /// split between one-shot inference (prefill/embedding-style) and
    /// GEMM requests — the arrival pattern under which continuous
    /// batching pays (prefills interleave between decode waves).
    Chat,
}

impl Mix {
    /// The mix's canonical flag name
    /// (`gemm` / `infer` / `mixed` / `decode` / `chat`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mix::Gemm => "gemm",
            Mix::Inference => "infer",
            Mix::Mixed => "mixed",
            Mix::Decode => "decode",
            Mix::Chat => "chat",
        }
    }
}

impl std::str::FromStr for Mix {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "gemm" => Ok(Mix::Gemm),
            "infer" => Ok(Mix::Inference),
            "mixed" => Ok(Mix::Mixed),
            "decode" => Ok(Mix::Decode),
            "chat" => Ok(Mix::Chat),
            other => Err(format!(
                "unknown mix '{other}' (gemm|infer|mixed|decode|chat)"
            )),
        }
    }
}

/// A fully deterministic traffic specification: these values pin the
/// complete request log, independent of how it is later scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client submits.
    pub requests_per_client: usize,
    /// The request-kind mix.
    pub mix: Mix,
    /// Root seed; each client derives its own independent stream.
    pub seed: u64,
    /// Upper bound on generated tokens per decoder session (session
    /// lengths draw uniformly from `1..=decode_tokens`). Only the
    /// session-bearing mixes ([`Mix::Decode`], [`Mix::Chat`]) consume
    /// it; the legacy mixes generate identical logs at any value.
    pub decode_tokens: u32,
}

impl TrafficConfig {
    /// Total requests across all clients.
    #[must_use]
    pub fn total_requests(&self) -> usize {
        self.clients * self.requests_per_client
    }
}

/// One generated request, typed for the serving entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficRequest {
    /// A GEMM request ([`crate::Engine::submit`]).
    Gemm(GemmRequest),
    /// An inference request ([`crate::Engine::infer`]).
    Infer(InferenceRequest),
    /// A decoder session ([`crate::Engine::infer_session`], served with
    /// continuous batching by [`crate::Server::submit_session`]).
    Session(SessionRequest),
}

/// SplitMix64: a tiny, high-quality, dependency-free PRNG — chosen here
/// because the vendored `rand` shim is a dev-dependency only, and because
/// its output is pinned by the reference constants (so the generated
/// traffic can never drift silently across toolchains).
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform pick from `0..n` (n ≤ a few dozen here, so modulo bias is
    /// ≈ 2⁻⁶⁰ — irrelevant, and deterministic either way).
    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The small-GEMM shape table traffic draws from (m, k, n): serving-sized
/// tiles that keep even debug-profile runs fast while still planning
/// distinct packing degrees (so the LUT cache sees several keys).
const GEMM_SHAPES: [(usize, usize, usize); 4] =
    [(32, 24, 8), (48, 40, 12), (64, 24, 16), (40, 40, 8)];

/// One client's deterministic request log. Client streams are independent:
/// reordering client *threads* never changes any client's *log*.
#[must_use]
pub fn client_log(config: &TrafficConfig, client: usize) -> Vec<TrafficRequest> {
    let mut rng = SplitMix64(
        config
            .seed
            .wrapping_add((client as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
    );
    (0..config.requests_per_client)
        .map(|_| match config.mix {
            // The legacy mixes draw the identical call sequence they
            // always did: adding the session mixes must not move a single
            // byte of an existing seeded log.
            Mix::Gemm => generate_gemm(&mut rng),
            Mix::Inference => generate_infer(&mut rng),
            Mix::Mixed => {
                if rng.pick(3) == 0 {
                    generate_infer(&mut rng)
                } else {
                    generate_gemm(&mut rng)
                }
            }
            Mix::Decode => generate_session(&mut rng, config.decode_tokens),
            Mix::Chat => match rng.pick(4) {
                0 | 1 => generate_session(&mut rng, config.decode_tokens),
                2 => generate_infer(&mut rng),
                _ => generate_gemm(&mut rng),
            },
        })
        .collect()
}

/// The full log in canonical order: client 0's requests, then client 1's,
/// and so on — the serial-replay reference for any concurrent schedule of
/// the same config (summaries are order-invariant, so the canonical order
/// is a convenience, not a requirement).
#[must_use]
pub fn full_log(config: &TrafficConfig) -> Vec<TrafficRequest> {
    (0..config.clients)
        .flat_map(|client| client_log(config, client))
        .collect()
}

fn generate_gemm(rng: &mut SplitMix64) -> TrafficRequest {
    let (m, k, n) = GEMM_SHAPES[rng.pick(GEMM_SHAPES.len() as u64) as usize];
    let w_seed = rng.next();
    let a_seed = rng.next();
    let banks = [2u32, 4][rng.pick(2) as usize];
    TrafficRequest::Gemm(
        GemmRequest::new(
            QMatrix::pseudo_random(m, k, NumericFormat::Bipolar, w_seed),
            QMatrix::pseudo_random(k, n, NumericFormat::Int(3), a_seed),
        )
        .with_banks(banks),
    )
}

fn generate_infer(rng: &mut SplitMix64) -> TrafficRequest {
    let batch = [2usize, 4][rng.pick(2) as usize];
    let workload = if rng.pick(2) == 0 {
        Workload::prefill(ModelConfig::bert_base(), batch)
    } else {
        Workload::with_decode(ModelConfig::opt_125m(), batch, 2)
    };
    TrafficRequest::Infer(InferenceRequest::single(workload))
}

fn generate_session(rng: &mut SplitMix64, decode_tokens: u32) -> TrafficRequest {
    let batch = [1usize, 2][rng.pick(2) as usize];
    let steps = 1 + rng.pick(u64::from(decode_tokens.max(1))) as u32;
    TrafficRequest::Session(SessionRequest::new(Workload::with_decode(
        ModelConfig::opt_125m(),
        batch,
        steps,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(mix: Mix) -> TrafficConfig {
        TrafficConfig {
            clients: 3,
            requests_per_client: 5,
            mix,
            seed: 42,
            decode_tokens: 4,
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567 from the SplitMix64 reference
        // implementation — pins the stream against silent drift.
        let mut rng = SplitMix64(1_234_567);
        assert_eq!(rng.next(), 6_457_827_717_110_365_317);
        assert_eq!(rng.next(), 3_203_168_211_198_807_973);
    }

    #[test]
    fn logs_are_deterministic_and_client_independent() {
        let cfg = config(Mix::Mixed);
        assert_eq!(client_log(&cfg, 0), client_log(&cfg, 0));
        assert_ne!(client_log(&cfg, 0), client_log(&cfg, 1));
        let full = full_log(&cfg);
        assert_eq!(full.len(), cfg.total_requests());
        assert_eq!(full[..5], client_log(&cfg, 0)[..]);
        // A different seed moves every client's stream.
        let reseeded = TrafficConfig { seed: 43, ..cfg };
        assert_ne!(client_log(&reseeded, 0), client_log(&cfg, 0));
    }

    #[test]
    fn mix_controls_request_kinds() {
        let gemm_only = full_log(&config(Mix::Gemm));
        assert!(gemm_only
            .iter()
            .all(|r| matches!(r, TrafficRequest::Gemm(_))));
        let infer_only = full_log(&config(Mix::Inference));
        assert!(infer_only
            .iter()
            .all(|r| matches!(r, TrafficRequest::Infer(_))));
        let mixed = full_log(&config(Mix::Mixed));
        assert!(mixed.iter().any(|r| matches!(r, TrafficRequest::Gemm(_))));
        assert!(mixed.iter().any(|r| matches!(r, TrafficRequest::Infer(_))));
        let decode = full_log(&config(Mix::Decode));
        assert!(decode
            .iter()
            .all(|r| matches!(r, TrafficRequest::Session(_))));
        let chat = full_log(&config(Mix::Chat));
        assert!(chat.iter().any(|r| matches!(r, TrafficRequest::Session(_))));
        assert!(chat
            .iter()
            .any(|r| !matches!(r, TrafficRequest::Session(_))));
    }

    #[test]
    fn decode_tokens_bounds_session_lengths_and_leaves_legacy_logs_alone() {
        let base = config(Mix::Decode);
        for request in full_log(&base) {
            let TrafficRequest::Session(session) = request else {
                panic!("decode mix generates only sessions");
            };
            assert!((1..=base.decode_tokens).contains(&session.workload.decode_tokens));
        }
        // A longer budget changes session logs...
        let longer = TrafficConfig {
            decode_tokens: 16,
            ..base
        };
        assert_ne!(full_log(&longer), full_log(&base));
        // ...but the legacy mixes generate the identical log at any
        // budget: the knob must not perturb pre-session seeded traffic.
        for mix in [Mix::Gemm, Mix::Inference, Mix::Mixed] {
            let legacy = config(mix);
            let reconfigured = TrafficConfig {
                decode_tokens: 16,
                ..legacy
            };
            assert_eq!(full_log(&reconfigured), full_log(&legacy));
        }
    }

    #[test]
    fn mix_names_roundtrip() {
        for mix in [
            Mix::Gemm,
            Mix::Inference,
            Mix::Mixed,
            Mix::Decode,
            Mix::Chat,
        ] {
            assert_eq!(mix.name().parse::<Mix>().unwrap(), mix);
        }
        assert!("everything".parse::<Mix>().is_err());
    }
}
