//! The single error surface of the serving engine.
//!
//! Every layer below the engine has its own error enum — [`QuantError`]
//! (formats/quantizers), [`LocaLutError`] (planning and kernels),
//! [`SimError`] (the hardware substrate), [`PqError`] (the PQ baselines).
//! [`EngineError`] wraps all four **losslessly** via `From`, so engine
//! consumers match on one type, `?` works across every layer, and the
//! original error stays reachable through [`std::error::Error::source`].

use crate::cachelife::store::StoreError;
use core::fmt;
use localut::LocaLutError;
use pim_sim::SimError;
use pq::PqError;
use quant::QuantError;

/// Any error an [`crate::Engine`] request can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A quantization-layer error ([`quant`]).
    Quant(QuantError),
    /// A planning or kernel error ([`localut`]); also what the runtime's
    /// sharded execution reports.
    Gemm(LocaLutError),
    /// A hardware-substrate error ([`pim_sim`]).
    Sim(SimError),
    /// A product-quantization baseline error ([`pq`]).
    Pq(PqError),
    /// The request itself was malformed (empty batch, zero banks, a plan
    /// pin on a LUT-free method, an invalid serving configuration, ...).
    InvalidRequest(String),
    /// A serving-scheduler failure ([`crate::serve`]): the serving worker
    /// panicked mid-request (the panic is contained; the ticket still
    /// resolves).
    Serve(String),
    /// The server declined to admit the request — typed backpressure, not
    /// a failure of the request itself. Clients are expected to retry
    /// ([`Rejection::QueueFull`]) or stop ([`Rejection::QuotaExhausted`],
    /// [`Rejection::Draining`]).
    Rejected(Rejection),
    /// A network-transport or wire-protocol failure: socket I/O, frame
    /// decoding, payload decoding, or a remote-reported error. The
    /// underlying [`NetError`] stays reachable through
    /// [`std::error::Error::source`].
    Net(NetError),
    /// A cache-persistence failure ([`crate::cachelife::store`]):
    /// writing the on-disk image store failed, or a warm restore found a
    /// corrupt directory. Restores degrade to a cold build instead of
    /// surfacing this per-request; it appears on explicit persistence
    /// calls and via [`crate::Engine::cache_restore_error`].
    Cache(StoreError),
}

/// Why a serving front-end declined to admit a request.
///
/// Rejections are *control-flow*, not request failures: the request was
/// never executed and (for [`Rejection::QueueFull`]) may simply be
/// resubmitted after backing off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The bounded admission queue is at capacity; retry after the hinted
    /// backoff instead of buffering unboundedly.
    QueueFull {
        /// The queue capacity that was hit.
        capacity: usize,
        /// Suggested client backoff before resubmitting, milliseconds.
        retry_after_ms: u64,
    },
    /// The connection spent its per-client request quota.
    QuotaExhausted {
        /// The quota that was exhausted.
        limit: u64,
    },
    /// The server is draining (or already shut down): admission is closed
    /// and no new request will be accepted.
    Draining,
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::QueueFull {
                capacity,
                retry_after_ms,
            } => write!(
                f,
                "admission queue full (capacity {capacity}); retry after {retry_after_ms} ms"
            ),
            Rejection::QuotaExhausted { limit } => {
                write!(f, "per-client request quota exhausted (limit {limit})")
            }
            Rejection::Draining => write!(f, "server is draining; admission closed"),
        }
    }
}

impl std::error::Error for Rejection {}

/// A network-layer failure, typed so remote consumers can distinguish
/// transport faults from protocol faults from remote verdicts.
///
/// Socket errors are captured as [`std::io::ErrorKind`] plus a detail
/// string (not the unclonable [`std::io::Error`] itself), keeping
/// [`EngineError`]'s `Clone + PartialEq` contract intact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A socket-level I/O failure (connect, read, write, shutdown).
    Io {
        /// The [`std::io::ErrorKind`] of the underlying failure.
        kind: std::io::ErrorKind,
        /// Human-readable detail (operation + OS message).
        detail: String,
    },
    /// The byte stream violated the frame envelope; the leaf
    /// [`FrameError`] stays reachable through `source()`.
    Frame(FrameError),
    /// The frame payload was well-framed but not a valid wire message.
    Decode(String),
    /// The peer answered with a message that is valid on the wire but
    /// impossible in the current protocol state (e.g. a response kind
    /// that does not match the request).
    Protocol(String),
    /// The remote server reported a request failure; `kind` is the remote
    /// [`EngineError`] variant name, `message` its rendered text.
    Remote {
        /// Remote error classification (variant name).
        kind: String,
        /// Remote error text.
        message: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io { kind, detail } => write!(f, "socket error ({kind:?}): {detail}"),
            NetError::Frame(e) => write!(f, "frame error: {e}"),
            NetError::Decode(msg) => write!(f, "wire decode error: {msg}"),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            NetError::Remote { kind, message } => {
                write!(f, "remote error [{kind}]: {message}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl NetError {
    /// Captures a socket failure as a clonable, comparable value.
    #[must_use]
    pub fn io(operation: &str, error: &std::io::Error) -> NetError {
        NetError::Io {
            kind: error.kind(),
            detail: format!("{operation}: {error}"),
        }
    }
}

/// A violation of the length-prefixed frame envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The 4-byte magic did not match the protocol constant.
    BadMagic([u8; 4]),
    /// The peer speaks a frame-envelope version this build does not.
    UnsupportedVersion(u16),
    /// The declared payload length exceeds the configured maximum.
    Oversized {
        /// Declared payload length, bytes.
        len: u32,
        /// Configured maximum payload length, bytes.
        max: u32,
    },
    /// The stream ended mid-frame (mid-header or mid-payload).
    Truncated {
        /// Bytes the frame still owed when the stream ended.
        expected: usize,
        /// Bytes actually received for that section.
        got: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(magic) => write!(f, "bad frame magic {magic:02x?}"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Truncated { expected, got } => {
                write!(f, "stream truncated mid-frame ({got} of {expected} bytes)")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Quant(e) => write!(f, "quantization error: {e}"),
            EngineError::Gemm(e) => write!(f, "gemm error: {e}"),
            EngineError::Sim(e) => write!(f, "simulator error: {e}"),
            EngineError::Pq(e) => write!(f, "pq error: {e}"),
            EngineError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            EngineError::Serve(msg) => write!(f, "serving error: {msg}"),
            EngineError::Rejected(r) => write!(f, "request rejected: {r}"),
            EngineError::Net(e) => write!(f, "network error: {e}"),
            EngineError::Cache(e) => write!(f, "cache persistence error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Quant(e) => Some(e),
            EngineError::Gemm(e) => Some(e),
            EngineError::Sim(e) => Some(e),
            EngineError::Pq(e) => Some(e),
            EngineError::Rejected(r) => Some(r),
            EngineError::Net(e) => Some(e),
            EngineError::Cache(e) => Some(e),
            EngineError::InvalidRequest(_) | EngineError::Serve(_) => None,
        }
    }
}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::Cache(e)
    }
}

impl From<QuantError> for EngineError {
    fn from(e: QuantError) -> Self {
        EngineError::Quant(e)
    }
}

impl From<LocaLutError> for EngineError {
    fn from(e: LocaLutError) -> Self {
        EngineError::Gemm(e)
    }
}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        EngineError::Sim(e)
    }
}

impl From<PqError> for EngineError {
    fn from(e: PqError) -> Self {
        EngineError::Pq(e)
    }
}

impl From<NetError> for EngineError {
    fn from(e: NetError) -> Self {
        EngineError::Net(e)
    }
}

impl From<FrameError> for EngineError {
    fn from(e: FrameError) -> Self {
        EngineError::Net(NetError::Frame(e))
    }
}

impl From<Rejection> for EngineError {
    fn from(r: Rejection) -> Self {
        EngineError::Rejected(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn wrapping_is_lossless_and_source_chains() {
        let quant = QuantError::UnsupportedBits(99);
        let wrapped = EngineError::from(quant.clone());
        assert_eq!(wrapped, EngineError::Quant(quant.clone()));
        let source = wrapped.source().expect("wrapped errors expose a source");
        assert_eq!(source.to_string(), quant.to_string());

        // Two-level chain: LocaLutError already wraps SimError; the
        // engine wrapper keeps the whole chain walkable.
        let sim = SimError::InvalidConfig("zero DPUs".to_owned());
        let gemm = LocaLutError::Sim(sim.clone());
        let wrapped = EngineError::from(gemm);
        let mid = wrapped.source().expect("gemm source");
        let leaf = mid.source().expect("sim source below gemm");
        assert_eq!(leaf.to_string(), sim.to_string());
    }

    #[test]
    fn every_variant_displays_distinctly() {
        let errors = [
            EngineError::from(QuantError::UnsupportedBits(17)),
            EngineError::from(LocaLutError::InvalidPackingDegree(0)),
            EngineError::from(SimError::InvalidConfig("x".to_owned())),
            EngineError::from(PqError::InvalidConfig("y")),
            EngineError::InvalidRequest("empty batch".to_owned()),
            EngineError::Serve("worker panicked".to_owned()),
            EngineError::Rejected(Rejection::Draining),
            EngineError::from(NetError::Decode("not a request".to_owned())),
        ];
        let mut rendered: Vec<String> = errors.iter().map(ToString::to_string).collect();
        assert!(rendered.iter().all(|s| !s.is_empty()));
        rendered.sort();
        rendered.dedup();
        assert_eq!(rendered.len(), errors.len(), "ambiguous Display");
    }

    #[test]
    fn invalid_request_has_no_source() {
        assert!(EngineError::InvalidRequest("x".into()).source().is_none());
        assert!(EngineError::Serve("x".into()).source().is_none());
    }

    #[test]
    fn net_errors_chain_down_to_the_frame_leaf() {
        // Three-level chain: EngineError -> NetError -> FrameError.
        let frame = FrameError::Truncated {
            expected: 12,
            got: 3,
        };
        let wrapped = EngineError::from(frame);
        assert_eq!(wrapped, EngineError::Net(NetError::Frame(frame)));
        let mid = wrapped.source().expect("net source");
        assert_eq!(mid.to_string(), NetError::Frame(frame).to_string());
        let leaf = mid.source().expect("frame leaf below net");
        assert_eq!(leaf.to_string(), frame.to_string());

        // Socket capture is clonable/comparable and keeps the ErrorKind.
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "no listener");
        let net = NetError::io("connect", &io);
        assert_eq!(net.clone(), net);
        assert!(matches!(
            net,
            NetError::Io {
                kind: std::io::ErrorKind::ConnectionRefused,
                ..
            }
        ));
        assert!(net.to_string().contains("connect"));
    }

    #[test]
    fn rejections_are_typed_and_chained() {
        let rejected = EngineError::from(Rejection::QueueFull {
            capacity: 8,
            retry_after_ms: 25,
        });
        let source = rejected.source().expect("rejection source");
        assert!(source.to_string().contains("capacity 8"));
        assert!(source.to_string().contains("25 ms"));
        let quota = EngineError::Rejected(Rejection::QuotaExhausted { limit: 4 });
        assert!(quota.to_string().contains("limit 4"));
        // Every frame violation renders distinctly.
        let frames = [
            FrameError::BadMagic(*b"HTTP"),
            FrameError::UnsupportedVersion(9),
            FrameError::Oversized { len: 10, max: 4 },
            FrameError::Truncated {
                expected: 8,
                got: 1,
            },
        ];
        let mut rendered: Vec<String> = frames.iter().map(ToString::to_string).collect();
        rendered.sort();
        rendered.dedup();
        assert_eq!(rendered.len(), frames.len());
    }
}
