//! The single error surface of the serving engine.
//!
//! Every layer below the engine has its own error enum — [`QuantError`]
//! (formats/quantizers), [`LocaLutError`] (planning and kernels),
//! [`SimError`] (the hardware substrate), [`PqError`] (the PQ baselines).
//! [`EngineError`] wraps all four **losslessly** via `From`, so engine
//! consumers match on one type, `?` works across every layer, and the
//! original error stays reachable through [`std::error::Error::source`].

use core::fmt;
use localut::LocaLutError;
use pim_sim::SimError;
use pq::PqError;
use quant::QuantError;

/// Any error an [`crate::Engine`] request can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A quantization-layer error ([`quant`]).
    Quant(QuantError),
    /// A planning or kernel error ([`localut`]); also what the runtime's
    /// sharded execution reports.
    Gemm(LocaLutError),
    /// A hardware-substrate error ([`pim_sim`]).
    Sim(SimError),
    /// A product-quantization baseline error ([`pq`]).
    Pq(PqError),
    /// The request itself was malformed (empty batch, zero banks, a plan
    /// pin on a LUT-free method, ...).
    InvalidRequest(String),
    /// A serving-scheduler failure ([`crate::serve`]): the server was
    /// already shut down at submission, or the serving worker panicked
    /// mid-request (the panic is contained; the ticket still resolves).
    Serve(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Quant(e) => write!(f, "quantization error: {e}"),
            EngineError::Gemm(e) => write!(f, "gemm error: {e}"),
            EngineError::Sim(e) => write!(f, "simulator error: {e}"),
            EngineError::Pq(e) => write!(f, "pq error: {e}"),
            EngineError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            EngineError::Serve(msg) => write!(f, "serving error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Quant(e) => Some(e),
            EngineError::Gemm(e) => Some(e),
            EngineError::Sim(e) => Some(e),
            EngineError::Pq(e) => Some(e),
            EngineError::InvalidRequest(_) | EngineError::Serve(_) => None,
        }
    }
}

impl From<QuantError> for EngineError {
    fn from(e: QuantError) -> Self {
        EngineError::Quant(e)
    }
}

impl From<LocaLutError> for EngineError {
    fn from(e: LocaLutError) -> Self {
        EngineError::Gemm(e)
    }
}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        EngineError::Sim(e)
    }
}

impl From<PqError> for EngineError {
    fn from(e: PqError) -> Self {
        EngineError::Pq(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn wrapping_is_lossless_and_source_chains() {
        let quant = QuantError::UnsupportedBits(99);
        let wrapped = EngineError::from(quant.clone());
        assert_eq!(wrapped, EngineError::Quant(quant.clone()));
        let source = wrapped.source().expect("wrapped errors expose a source");
        assert_eq!(source.to_string(), quant.to_string());

        // Two-level chain: LocaLutError already wraps SimError; the
        // engine wrapper keeps the whole chain walkable.
        let sim = SimError::InvalidConfig("zero DPUs".to_owned());
        let gemm = LocaLutError::Sim(sim.clone());
        let wrapped = EngineError::from(gemm);
        let mid = wrapped.source().expect("gemm source");
        let leaf = mid.source().expect("sim source below gemm");
        assert_eq!(leaf.to_string(), sim.to_string());
    }

    #[test]
    fn every_variant_displays_distinctly() {
        let errors = [
            EngineError::from(QuantError::UnsupportedBits(17)),
            EngineError::from(LocaLutError::InvalidPackingDegree(0)),
            EngineError::from(SimError::InvalidConfig("x".to_owned())),
            EngineError::from(PqError::InvalidConfig("y")),
            EngineError::InvalidRequest("empty batch".to_owned()),
            EngineError::Serve("server is shut down".to_owned()),
        ];
        let mut rendered: Vec<String> = errors.iter().map(ToString::to_string).collect();
        assert!(rendered.iter().all(|s| !s.is_empty()));
        rendered.sort();
        rendered.dedup();
        assert_eq!(rendered.len(), errors.len(), "ambiguous Display");
    }

    #[test]
    fn invalid_request_has_no_source() {
        assert!(EngineError::InvalidRequest("x".into()).source().is_none());
        assert!(EngineError::Serve("x".into()).source().is_none());
    }
}
