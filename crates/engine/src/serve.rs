//! The concurrent serving scheduler: many client threads, one shared
//! [`Engine`], deterministic merged results.
//!
//! [`Server`] is the thread-safe request frontend the ROADMAP's
//! "heavy traffic" north star asks for: it owns a shared engine, an
//! admission queue, and a worker pool. Client threads submit typed
//! requests from anywhere and get back a [`Ticket`] they can block on;
//! workers drain the queue, **coalesce compatible GEMMs into dynamic
//! batches** (riding [`Engine::submit_batch`]'s warm-cache fan-out so one
//! busy period amortizes the LUT builds), and fulfill the tickets.
//!
//! ## Continuous batching
//!
//! Decoder sessions ([`Server::submit_session`]) are served **one step
//! per dispatch**: a worker advances the session's next step (prefill,
//! or one decode token over the step's exact KV context), then pushes
//! the session to the *back* of the admission queue and picks up
//! whatever is in front — so a freshly submitted prefill or GEMM is
//! admitted between a long session's decode waves instead of waiting for
//! the whole generation to finish. Step re-enqueues bypass the admission
//! cap and the drain gate (an admitted session always runs to
//! completion; the worker that pushes a continuation re-checks the queue
//! before exiting, so no step is stranded at shutdown). See
//! [`crate::sessions`] for the step state machine and its determinism
//! argument.
//!
//! ## The determinism contract
//!
//! Thread scheduling decides *when* a request runs and *which* requests
//! share a batch — but never what any request computes. Every quantity in
//! a [`ServeSummary`] is interleaving-invariant by construction:
//!
//! * per-request values, checksums, simulated statistics, and energy are
//!   functions of the request alone (the engine below is deterministic at
//!   any worker count, batched or not);
//! * the merged [`Stats`] aggregate is associative **and commutative**, so
//!   any completion order merges to the same integer femtoseconds;
//! * the summary checksum folds the per-request checksums in *sorted*
//!   order, and the latency percentiles are computed over the sorted
//!   multiset of per-request simulated latencies.
//!
//! Hence the invariant the workspace tests pin: for a fixed seeded request
//! log, any interleaving of concurrent clients produces a summary
//! bit-identical to [`replay_serial`] of the same log. Host-dependent
//! observables (dispatch counts, realized batch sizes) live on
//! [`ServeReport`], *outside* the deterministic summary.
//!
//! ## Quickstart
//!
//! ```
//! use engine::serve::{drive_client, replay_serial, ArrivalMode, ServeConfig, Server};
//! use engine::traffic::{client_log, full_log, Mix, TrafficConfig};
//! use engine::Engine;
//! use std::sync::Arc;
//!
//! let engine = Arc::new(Engine::builder().threads(1).banks(2).build());
//! let traffic = TrafficConfig {
//!     clients: 2,
//!     requests_per_client: 2,
//!     mix: Mix::Gemm,
//!     seed: 7,
//!     decode_tokens: 4,
//! };
//! let server = Server::start(engine.clone(), &ServeConfig::default());
//! std::thread::scope(|scope| {
//!     for client in 0..traffic.clients {
//!         let server = &server;
//!         let log = client_log(&traffic, client);
//!         scope.spawn(move || drive_client(server, log, ArrivalMode::Closed));
//!     }
//! });
//! let report = server.join();
//! assert_eq!(report.summary, replay_serial(&engine, &full_log(&traffic)));
//! assert_eq!(report.summary.requests, 4);
//! ```

use crate::request::{GemmRequest, InferenceRequest, PlanPin};
use crate::response::{GemmResponse, InferenceResponse};
use crate::sessions::{SessionJob, SessionRequest, SessionResponse, StepOutcome};
// The crate-wide poison-recovering lock: serving state is kept valid at
// every panic point (completed responses are recorded atomically, queue
// entries are whole jobs), so a worker that panicked while holding a lock
// must not wedge every other client.
use crate::cachelife::memo::MemoStats;
use crate::lock_recover as lock;
use crate::{BatchGemmRequest, CacheStats, Engine, EngineError, Rejection};
use localut::Method;
use pim_sim::Stats;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

use crate::traffic::TrafficRequest;

/// Backoff hint carried by [`Rejection::QueueFull`] rejections from this
/// scheduler, in milliseconds.
pub const RETRY_AFTER_MS: u64 = 25;

/// Configures a [`Server`]'s worker pool, batching policy, and admission
/// limits.
///
/// Constructed through the validating [`ServeConfig::builder`] (mirroring
/// [`crate::EngineBuilder`]) — invalid knob combinations are typed
/// [`EngineError::InvalidRequest`]s at build time, never silent clamps:
///
/// ```
/// use engine::serve::ServeConfig;
///
/// let config = ServeConfig::builder()
///     .workers(4)
///     .max_batch(8)
///     .queue_cap(64)
///     .quota(1_000)
///     .build()
///     .expect("valid");
/// assert_eq!(config.workers(), 4);
/// assert!(ServeConfig::builder().workers(0).build().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    workers: usize,
    max_batch: usize,
    queue_cap: Option<usize>,
    quota: Option<u64>,
}

impl ServeConfig {
    /// A builder seeded with the default configuration.
    #[must_use]
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::default(),
        }
    }

    /// Scheduler worker threads draining the admission queue. Each worker
    /// serves one dispatch at a time; the engine's own pool parallelism
    /// applies inside a dispatch.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Upper bound on how many compatible GEMM requests one dispatch may
    /// coalesce into a dynamic batch (1 disables coalescing).
    #[must_use]
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Admission-queue capacity. `None` (the default) leaves admission
    /// unbounded; `Some(cap)` makes submission beyond `cap` queued jobs
    /// resolve immediately to [`Rejection::QueueFull`] — explicit
    /// backpressure instead of unbounded buffering.
    #[must_use]
    pub fn queue_cap(&self) -> Option<usize> {
        self.queue_cap
    }

    /// Per-client request quota. The scheduler itself has no client
    /// identity, so this knob is enforced by connection-owning front-ends
    /// (the `netserve` crate's TCP server applies it per connection).
    #[must_use]
    pub fn quota(&self) -> Option<u64> {
        self.quota
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 8,
            queue_cap: None,
            quota: None,
        }
    }
}

/// Validating builder for [`ServeConfig`]; see [`ServeConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Sets the scheduler worker count (must be ≥ 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the dynamic-batch coalescing bound (must be ≥ 1; 1 disables
    /// coalescing).
    #[must_use]
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch;
        self
    }

    /// Bounds the admission queue (must be ≥ 1 when set).
    #[must_use]
    pub fn queue_cap(mut self, queue_cap: usize) -> Self {
        self.config.queue_cap = Some(queue_cap);
        self
    }

    /// Sets the per-client request quota (must be ≥ 1 when set).
    #[must_use]
    pub fn quota(mut self, quota: u64) -> Self {
        self.config.quota = Some(quota);
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidRequest`] when `workers` or `max_batch` is 0,
    /// or a set `queue_cap`/`quota` is 0.
    pub fn build(self) -> Result<ServeConfig, EngineError> {
        let c = &self.config;
        if c.workers == 0 {
            return Err(EngineError::InvalidRequest(
                "ServeConfig workers must be at least 1".to_owned(),
            ));
        }
        if c.max_batch == 0 {
            return Err(EngineError::InvalidRequest(
                "ServeConfig max_batch must be at least 1 (1 disables coalescing)".to_owned(),
            ));
        }
        if c.queue_cap == Some(0) {
            return Err(EngineError::InvalidRequest(
                "ServeConfig queue_cap must be at least 1 when bounded".to_owned(),
            ));
        }
        if c.quota == Some(0) {
            return Err(EngineError::InvalidRequest(
                "ServeConfig quota must be at least 1 when set".to_owned(),
            ));
        }
        Ok(self.config)
    }
}

/// How a client paces its submissions (affects queueing and batching
/// opportunities on the host — never any deterministic output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalMode {
    /// Fire-and-forget: submit the whole log, then wait on every ticket.
    Open,
    /// One in flight: wait for each response before the next submission.
    Closed,
}

impl std::str::FromStr for ArrivalMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "open" => Ok(ArrivalMode::Open),
            "closed" => Ok(ArrivalMode::Closed),
            other => Err(format!("unknown arrival mode '{other}' (open|closed)")),
        }
    }
}

enum TicketState<T> {
    Pending,
    Done(Result<T, EngineError>),
    Taken,
}

struct TicketCell<T> {
    slot: Mutex<TicketState<T>>,
    ready: Condvar,
}

impl<T> TicketCell<T> {
    fn new() -> Self {
        TicketCell {
            slot: Mutex::new(TicketState::Pending),
            ready: Condvar::new(),
        }
    }

    fn fulfill(&self, result: Result<T, EngineError>) {
        *lock(&self.slot) = TicketState::Done(result);
        self.ready.notify_all();
    }
}

/// A claim on one in-flight request: block on [`Ticket::wait`] for the
/// typed response, or poll with [`Ticket::is_ready`].
pub struct Ticket<T> {
    cell: Arc<TicketCell<T>>,
}

impl<T> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("ready", &self.is_ready())
            .finish()
    }
}

impl<T> Ticket<T> {
    /// Whether the response has been produced (a subsequent
    /// [`Ticket::wait`] will not block).
    #[must_use]
    pub fn is_ready(&self) -> bool {
        matches!(*lock(&self.cell.slot), TicketState::Done(_))
    }

    /// Blocks until the request completes and returns its result.
    ///
    /// # Errors
    ///
    /// The request's own [`EngineError`]; [`EngineError::Rejected`] when
    /// admission declined the request (server draining, bounded queue
    /// full); [`EngineError::Serve`] when the serving worker panicked
    /// mid-request.
    pub fn wait(self) -> Result<T, EngineError> {
        let mut slot = lock(&self.cell.slot);
        loop {
            if matches!(*slot, TicketState::Done(_)) {
                let TicketState::Done(result) = std::mem::replace(&mut *slot, TicketState::Taken)
                else {
                    unreachable!("checked Done above");
                };
                return result;
            }
            slot = self
                .cell
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The coalescing key: two GEMM requests may share a dynamic batch only
/// when they agree on the *effective* method, bank count, and plan pin
/// (after engine defaults) — the configurations under which a batched
/// execution is the warm-cache twin of back-to-back solo submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CompatKey {
    method: Method,
    banks: u32,
    pin: Option<PlanPin>,
}

impl CompatKey {
    fn of(engine: &Engine, request: &GemmRequest) -> CompatKey {
        CompatKey {
            method: request.method.unwrap_or(engine.default_method()),
            banks: request.banks.unwrap_or(engine.default_banks()),
            pin: request.pin,
        }
    }
}

enum Job {
    Gemm(Box<GemmRequest>, Arc<TicketCell<GemmResponse>>),
    Infer(Box<InferenceRequest>, Arc<TicketCell<InferenceResponse>>),
    Session(Box<SessionJob>, Arc<TicketCell<SessionResponse>>),
}

struct Queue {
    jobs: VecDeque<Job>,
    open: bool,
}

/// Per-request accounting shared by the concurrent server, the serial
/// replay, and remote clients reconstructing a summary from wire
/// responses — the *same* code computes every side of the determinism
/// invariant.
#[derive(Debug, Default, Clone)]
pub struct ServeRecorder {
    stats: Stats,
    energy_pj: u128,
    gemm_requests: u64,
    infer_requests: u64,
    session_requests: u64,
    decode_steps: u64,
    failed_requests: u64,
    latencies: Vec<u128>,
    ttfts: Vec<u128>,
    decode_latencies: Vec<u128>,
    checksums: Vec<u64>,
}

impl ServeRecorder {
    /// A fresh recorder (the identity: `summary()` of it is all-zero).
    #[must_use]
    pub fn new() -> ServeRecorder {
        ServeRecorder::default()
    }

    /// Records one GEMM verdict.
    pub fn record_gemm(&mut self, result: &Result<GemmResponse, EngineError>) {
        match result {
            Ok(response) => self.record_gemm_parts(
                &response.stats,
                response.energy_pj,
                gemm_latency_femtos(response),
                response.checksum,
            ),
            Err(_) => self.record_failure(),
        }
    }

    /// Records a successful GEMM from its deterministic parts — what a
    /// remote client extracts from a wire response. In-process recording
    /// routes through this same method, so the two sides cannot drift.
    pub fn record_gemm_parts(
        &mut self,
        stats: &Stats,
        energy_pj: u128,
        latency_femtos: u128,
        checksum: u64,
    ) {
        self.stats.merge(stats);
        self.energy_pj += energy_pj;
        self.gemm_requests += 1;
        self.latencies.push(latency_femtos);
        self.checksums.push(checksum);
    }

    /// Records one inference verdict.
    pub fn record_infer(&mut self, result: &Result<InferenceResponse, EngineError>) {
        match result {
            Ok(response) => self.record_infer_parts(&response.stats, response.energy_pj),
            Err(_) => self.record_failure(),
        }
    }

    /// Records a successful inference from its deterministic parts (the
    /// latency is the request's own merged simulated time, derived here
    /// so every recording path agrees).
    pub fn record_infer_parts(&mut self, stats: &Stats, energy_pj: u128) {
        self.stats.merge(stats);
        self.energy_pj += energy_pj;
        self.infer_requests += 1;
        self.latencies.push(stats.snapshot().total_femtos);
    }

    /// Records one session verdict.
    pub fn record_session(&mut self, result: &Result<SessionResponse, EngineError>) {
        match result {
            Ok(response) => self.record_session_parts(
                &response.stats,
                response.energy_pj,
                response.ttft_femtos,
                &response.decode_step_femtos,
            ),
            Err(_) => self.record_failure(),
        }
    }

    /// Records a completed session from its deterministic parts — what a
    /// remote client extracts from a wire response. The session's
    /// end-to-end latency (its merged simulated femtoseconds) joins the
    /// request latency multiset; TTFT and each decode step's
    /// femtoseconds additionally feed the per-phase digests.
    pub fn record_session_parts(
        &mut self,
        stats: &Stats,
        energy_pj: u128,
        ttft_femtos: u128,
        decode_step_femtos: &[u128],
    ) {
        self.stats.merge(stats);
        self.energy_pj += energy_pj;
        self.session_requests += 1;
        self.decode_steps += decode_step_femtos.len() as u64;
        self.latencies.push(stats.snapshot().total_femtos);
        self.ttfts.push(ttft_femtos);
        self.decode_latencies.extend_from_slice(decode_step_femtos);
    }

    /// Records a failed request of any kind.
    pub fn record_failure(&mut self) {
        self.failed_requests += 1;
    }

    /// The deterministic summary of everything recorded so far.
    #[must_use]
    pub fn summary(&self) -> ServeSummary {
        let mut checksums = self.checksums.clone();
        checksums.sort_unstable();
        ServeSummary {
            requests: self.gemm_requests + self.infer_requests + self.session_requests,
            gemm_requests: self.gemm_requests,
            infer_requests: self.infer_requests,
            session_requests: self.session_requests,
            decode_steps: self.decode_steps,
            failed_requests: self.failed_requests,
            stats: self.stats.clone(),
            energy_pj: self.energy_pj,
            latency: LatencyDigest::from_unsorted(self.latencies.clone()),
            ttft: LatencyDigest::from_unsorted(self.ttfts.clone()),
            decode: LatencyDigest::from_unsorted(self.decode_latencies.clone()),
            checksum: runtime::fnv1a_64(checksums.iter().flat_map(|c| c.to_le_bytes())),
        }
    }
}

/// A GEMM request's simulated latency: the critical path across its bank
/// shards in integer femtoseconds (banks execute concurrently on the
/// modeled hardware, so the slowest shard bounds the response time).
#[must_use]
pub fn gemm_latency_femtos(response: &GemmResponse) -> u128 {
    response
        .per_bank
        .iter()
        .map(|bank| Stats::from_profile(&bank.profile).snapshot().total_femtos)
        .max()
        .unwrap_or(0)
}

/// Nearest-rank percentile over an ascending-sorted slice (integer
/// femtoseconds; 0 for an empty slice).
fn percentile(sorted: &[u128], q: u128) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u128 * q).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Percentiles of the per-request simulated latencies, in integer
/// femtoseconds. Computed over the sorted multiset, so the digest is
/// identical for every completion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyDigest {
    /// Median (nearest-rank p50).
    pub p50: u128,
    /// 95th percentile (nearest-rank).
    pub p95: u128,
    /// 99th percentile (nearest-rank).
    pub p99: u128,
    /// Slowest request.
    pub max: u128,
    /// Sum over all requests (the denominator of mean latency).
    pub total: u128,
}

impl LatencyDigest {
    /// Digests an (unordered) collection of per-request latencies.
    #[must_use]
    pub fn from_unsorted(mut latencies: Vec<u128>) -> LatencyDigest {
        latencies.sort_unstable();
        LatencyDigest {
            p50: percentile(&latencies, 50),
            p95: percentile(&latencies, 95),
            p99: percentile(&latencies, 99),
            max: latencies.last().copied().unwrap_or(0),
            total: latencies.iter().sum(),
        }
    }
}

/// The deterministic outcome of a serving run: bit-identical for every
/// client interleaving, worker count, arrival mode, and batching policy
/// over the same request log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Successful requests served (GEMM + inference).
    pub requests: u64,
    /// Successful GEMM requests.
    pub gemm_requests: u64,
    /// Successful inference requests.
    pub infer_requests: u64,
    /// Completed decoder sessions ([`Server::submit_session`]).
    pub session_requests: u64,
    /// Decode steps executed across every completed session.
    pub decode_steps: u64,
    /// Requests that returned an error (also interleaving-invariant:
    /// feasibility is a function of the request).
    pub failed_requests: u64,
    /// Associative + commutative merge of every successful response's
    /// statistics.
    pub stats: Stats,
    /// Total modeled energy, picojoules.
    pub energy_pj: u128,
    /// Latency percentiles over per-request simulated femtoseconds
    /// (sessions contribute their end-to-end latency).
    pub latency: LatencyDigest,
    /// Time-to-first-token percentiles over completed sessions' prefill
    /// steps, integer femtoseconds (all-zero when no sessions ran).
    pub ttft: LatencyDigest,
    /// Per-decode-step latency percentiles over every decode step of
    /// every completed session (all-zero when no sessions ran).
    pub decode: LatencyDigest,
    /// Order-invariant fingerprint: FNV-1a fold of the per-request GEMM
    /// values checksums in sorted order.
    pub checksum: u64,
}

impl ServeSummary {
    /// Simulated throughput: requests per *simulated* second of merged
    /// bank/host work — machine-independent, unlike wall-clock rates.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        let seconds = self.stats.total_seconds();
        if seconds > 0.0 {
            self.requests as f64 / seconds
        } else {
            0.0
        }
    }
}

/// A finished serving run: the deterministic [`ServeSummary`] plus
/// host-dependent scheduling observables (how batching actually played
/// out), which legitimately vary run to run and are therefore kept
/// outside the summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// The interleaving-invariant outcome.
    pub summary: ServeSummary,
    /// Service dispatches executed (a coalesced batch counts once).
    pub dispatches: u64,
    /// Requests that shared a dispatch with at least one other request.
    pub coalesced_requests: u64,
    /// Largest dynamic batch any dispatch coalesced.
    pub largest_batch: u64,
    /// LUT cache lifecycle counters at the moment the report was taken.
    /// Host-side only: eviction and warm restore move these without
    /// touching any simulated number in [`ServeSummary`].
    pub lut_cache: CacheStats,
    /// Planner-memo counters at the moment the report was taken.
    pub plan_memo: MemoStats,
}

#[derive(Debug, Default)]
struct Metrics {
    recorder: ServeRecorder,
    dispatches: u64,
    coalesced_requests: u64,
    largest_batch: u64,
}

struct Shared {
    engine: Arc<Engine>,
    queue: Mutex<Queue>,
    admit: Condvar,
    metrics: Mutex<Metrics>,
    max_batch: usize,
    queue_cap: Option<usize>,
}

impl Shared {
    fn report(&self) -> ServeReport {
        let metrics = lock(&self.metrics);
        ServeReport {
            summary: metrics.recorder.summary(),
            dispatches: metrics.dispatches,
            coalesced_requests: metrics.coalesced_requests,
            largest_batch: metrics.largest_batch,
            lut_cache: self.engine.lut_cache_stats(),
            plan_memo: self.engine.plan_memo_stats(),
        }
    }
}

/// The concurrent serving frontend: a shared [`Engine`], an admission
/// queue, and a worker pool. See the [module docs](crate::serve) for the
/// determinism contract.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("max_batch", &self.max_batch)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Starts a server over `engine` with `config.workers()` scheduler
    /// threads. The configuration arrives pre-validated (only
    /// [`ServeConfig::builder`] and `Default` can construct one), so
    /// there are no silent clamps here.
    #[must_use]
    pub fn start(engine: Arc<Engine>, config: &ServeConfig) -> Server {
        let shared = Arc::new(Shared {
            engine,
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                open: true,
            }),
            admit: Condvar::new(),
            metrics: Mutex::new(Metrics::default()),
            max_batch: config.max_batch(),
            queue_cap: config.queue_cap(),
        });
        let workers = (0..config.workers())
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serving worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// The engine this server schedules onto.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// The scheduler worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one GEMM request; the ticket resolves when a worker has
    /// served it (solo or inside a coalesced batch — bitwise the same).
    /// After [`Server::join`] the ticket resolves immediately to
    /// [`Rejection::Draining`]; when a bounded queue is at capacity it
    /// resolves immediately to [`Rejection::QueueFull`].
    pub fn submit_gemm(&self, request: GemmRequest) -> Ticket<GemmResponse> {
        let cell = Arc::new(TicketCell::new());
        self.enqueue(Job::Gemm(Box::new(request), cell.clone()), &cell);
        Ticket { cell }
    }

    /// Enqueues one inference request (never coalesced: inference requests
    /// are already internally batched workload groups).
    pub fn submit_infer(&self, request: InferenceRequest) -> Ticket<InferenceResponse> {
        let cell = Arc::new(TicketCell::new());
        self.enqueue(Job::Infer(Box::new(request), cell.clone()), &cell);
        Ticket { cell }
    }

    /// Enqueues one decoder session, served with continuous batching: a
    /// worker advances one step per dispatch and re-enqueues the session
    /// at the back of the queue, so other requests interleave between
    /// its decode waves. The ticket resolves once the final step
    /// completes (or the first failing step's error). Admission control
    /// (drain gate, queue cap) applies to the initial submission only —
    /// an admitted session always runs to completion.
    pub fn submit_session(&self, request: SessionRequest) -> Ticket<SessionResponse> {
        let cell = Arc::new(TicketCell::new());
        let job = SessionJob::new(&self.shared.engine, &request);
        self.enqueue(Job::Session(Box::new(job), cell.clone()), &cell);
        Ticket { cell }
    }

    fn enqueue<T>(&self, job: Job, cell: &TicketCell<T>) {
        let mut queue = lock(&self.shared.queue);
        if !queue.open {
            drop(queue);
            cell.fulfill(Err(EngineError::Rejected(Rejection::Draining)));
            return;
        }
        // Bounded admission: a full queue rejects immediately with a
        // typed, retry-after-hinted verdict — the ticket never blocks and
        // the queue never grows past its cap.
        if let Some(cap) = self.shared.queue_cap {
            if queue.jobs.len() >= cap {
                drop(queue);
                cell.fulfill(Err(EngineError::Rejected(Rejection::QueueFull {
                    capacity: cap,
                    retry_after_ms: RETRY_AFTER_MS,
                })));
                return;
            }
        }
        queue.jobs.push_back(job);
        drop(queue);
        self.shared.admit.notify_one();
    }

    /// A point-in-time deterministic summary of everything served so far.
    #[must_use]
    pub fn summary(&self) -> ServeSummary {
        lock(&self.shared.metrics).recorder.summary()
    }

    /// A point-in-time [`ServeReport`]: the deterministic summary plus
    /// host-side scheduling and cache lifecycle observables so far.
    #[must_use]
    pub fn report(&self) -> ServeReport {
        self.shared.report()
    }

    /// Closes admission, drains the queue, joins the workers, and returns
    /// the final report. Requests already queued are still served;
    /// requests submitted afterwards are rejected.
    #[must_use]
    pub fn join(self) -> ServeReport {
        let shared = self.shared.clone();
        drop(self); // Drop closes the queue and joins the workers.
        shared.report()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        lock(&self.shared.queue).open = false;
        self.shared.admit.notify_all();
        for handle in self.workers.drain(..) {
            // A worker that panicked outside the catch_unwind window has
            // nothing left to deliver; the remaining workers still drain
            // the queue, so don't propagate.
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(batch) = next_batch(shared) {
        execute_batch(shared, batch);
    }
}

/// Pops the next dispatch: the queue head, plus — when the head is a GEMM
/// — every queued GEMM with the same [`CompatKey`], up to `max_batch`.
/// Returns `None` once the queue is drained and closed.
fn next_batch(shared: &Shared) -> Option<Vec<Job>> {
    let mut queue = lock(&shared.queue);
    loop {
        if let Some(head) = queue.jobs.pop_front() {
            let mut batch = vec![head];
            if let Job::Gemm(request, _) = &batch[0] {
                let key = CompatKey::of(&shared.engine, request);
                let mut index = 0;
                while index < queue.jobs.len() && batch.len() < shared.max_batch {
                    let compatible = matches!(
                        &queue.jobs[index],
                        Job::Gemm(other, _) if CompatKey::of(&shared.engine, other) == key
                    );
                    if compatible {
                        batch.push(queue.jobs.remove(index).expect("index in bounds"));
                    } else {
                        index += 1;
                    }
                }
            }
            return Some(batch);
        }
        if !queue.open {
            return None;
        }
        queue = shared
            .admit
            .wait(queue)
            .unwrap_or_else(PoisonError::into_inner);
    }
}

/// Runs an engine call, converting a panic into an [`EngineError::Serve`]
/// so the ticket always resolves and the worker survives.
fn guarded<T>(call: impl FnOnce() -> Result<T, EngineError>) -> Result<T, EngineError> {
    catch_unwind(AssertUnwindSafe(call)).unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "unknown panic".to_owned());
        Err(EngineError::Serve(format!(
            "serving worker panicked: {msg}"
        )))
    })
}

fn execute_batch(shared: &Shared, batch: Vec<Job>) {
    let size = batch.len() as u64;
    {
        let mut metrics = lock(&shared.metrics);
        metrics.dispatches += 1;
        if size > 1 {
            metrics.coalesced_requests += size;
        }
        metrics.largest_batch = metrics.largest_batch.max(size);
    }

    let mut gemms: Vec<(Box<GemmRequest>, Arc<TicketCell<GemmResponse>>)> = Vec::new();
    for job in batch {
        match job {
            Job::Infer(request, cell) => {
                let result = guarded(|| shared.engine.infer(&request));
                lock(&shared.metrics).recorder.record_infer(&result);
                cell.fulfill(result);
            }
            Job::Session(mut session, cell) => {
                // One step per dispatch — the continuous-batching pivot.
                // The push happens on this worker before it returns to
                // `next_batch`, so even at shutdown the continuation is
                // in the queue before any drained-and-closed check this
                // worker makes: no step is ever stranded.
                match guarded(|| session.advance(&shared.engine)) {
                    Ok(StepOutcome::Continue) => {
                        let mut queue = lock(&shared.queue);
                        queue.jobs.push_back(Job::Session(session, cell));
                        drop(queue);
                        shared.admit.notify_one();
                    }
                    Ok(StepOutcome::Done(response)) => {
                        let result = Ok(*response);
                        lock(&shared.metrics).recorder.record_session(&result);
                        cell.fulfill(result);
                    }
                    Err(error) => {
                        let result = Err(error);
                        lock(&shared.metrics).recorder.record_session(&result);
                        cell.fulfill(result);
                    }
                }
            }
            Job::Gemm(request, cell) => gemms.push((request, cell)),
        }
    }
    match gemms.len() {
        0 => {}
        1 => {
            let (request, cell) = gemms.pop().expect("one gemm");
            let result = guarded(|| shared.engine.submit(&request));
            lock(&shared.metrics).recorder.record_gemm(&result);
            cell.fulfill(result);
        }
        _ => {
            // Move the requests into the batch (no operand clones on the
            // hot path); the failure fallback below reads them back out of
            // `batch.requests` by reference.
            let (requests, cells): (Vec<GemmRequest>, Vec<Arc<TicketCell<GemmResponse>>>) = gemms
                .into_iter()
                .map(|(request, cell)| (*request, cell))
                .unzip();
            let batch = BatchGemmRequest::new(requests);
            match guarded(|| shared.engine.submit_batch(&batch)) {
                Ok(response) if response.responses.len() == cells.len() => {
                    for (result, cell) in response.responses.into_iter().zip(cells) {
                        let result = Ok(result);
                        lock(&shared.metrics).recorder.record_gemm(&result);
                        cell.fulfill(result);
                    }
                }
                // The batch fails as a unit on the first bad member; fall
                // back to solo submissions so each ticket carries its own
                // verdict — and the good requests still succeed, bitwise
                // identical to the batched path. A *short* success
                // (impossible today: submit_batch answers every request or
                // errors as a unit) degrades the same way, so no ticket can
                // ever be left unresolved by a zip truncation.
                _ => {
                    for (request, cell) in batch.requests.iter().zip(cells) {
                        let result = guarded(|| shared.engine.submit(request));
                        lock(&shared.metrics).recorder.record_gemm(&result);
                        cell.fulfill(result);
                    }
                }
            }
        }
    }
}

/// Submits one client's request log against a server, pacing by `mode`,
/// and returns how many of its requests failed. This is the client half
/// every consumer (the `loadgen` binary, the bench `serve` scenario, the
/// concurrency tests) shares.
pub fn drive_client(server: &Server, log: Vec<TrafficRequest>, mode: ArrivalMode) -> usize {
    match mode {
        ArrivalMode::Closed => log
            .into_iter()
            .map(|request| match request {
                TrafficRequest::Gemm(r) => server.submit_gemm(r).wait().is_err(),
                TrafficRequest::Infer(r) => server.submit_infer(r).wait().is_err(),
                TrafficRequest::Session(r) => server.submit_session(r).wait().is_err(),
            })
            .filter(|failed| *failed)
            .count(),
        ArrivalMode::Open => {
            enum AnyTicket {
                Gemm(Ticket<GemmResponse>),
                Infer(Ticket<InferenceResponse>),
                Session(Ticket<SessionResponse>),
            }
            let tickets: Vec<AnyTicket> = log
                .into_iter()
                .map(|request| match request {
                    TrafficRequest::Gemm(r) => AnyTicket::Gemm(server.submit_gemm(r)),
                    TrafficRequest::Infer(r) => AnyTicket::Infer(server.submit_infer(r)),
                    TrafficRequest::Session(r) => AnyTicket::Session(server.submit_session(r)),
                })
                .collect();
            tickets
                .into_iter()
                .map(|ticket| match ticket {
                    AnyTicket::Gemm(t) => t.wait().is_err(),
                    AnyTicket::Infer(t) => t.wait().is_err(),
                    AnyTicket::Session(t) => t.wait().is_err(),
                })
                .filter(|failed| *failed)
                .count()
        }
    }
}

/// Serves a request log serially — one request at a time, in log order,
/// straight on the engine — and produces the same [`ServeSummary`] a
/// concurrent [`Server`] run over the same log produces. This is the
/// reference side of the determinism invariant.
#[must_use]
pub fn replay_serial(engine: &Engine, log: &[TrafficRequest]) -> ServeSummary {
    let mut recorder = ServeRecorder::new();
    for request in log {
        match request {
            TrafficRequest::Gemm(r) => recorder.record_gemm(&engine.submit(r)),
            TrafficRequest::Infer(r) => recorder.record_infer(&engine.infer(r)),
            TrafficRequest::Session(r) => recorder.record_session(&engine.infer_session(r)),
        }
    }
    recorder.summary()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{client_log, full_log, Mix, TrafficConfig};
    use quant::{NumericFormat, QMatrix};

    fn small_gemm(seed: u64) -> GemmRequest {
        GemmRequest::new(
            QMatrix::pseudo_random(8, 12, NumericFormat::Int(2), seed),
            QMatrix::pseudo_random(12, 4, NumericFormat::Int(3), seed + 50),
        )
        .with_banks(2)
    }

    fn mixed_traffic() -> TrafficConfig {
        TrafficConfig {
            clients: 2,
            requests_per_client: 3,
            mix: Mix::Mixed,
            seed: 11,
            decode_tokens: 4,
        }
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let digest = LatencyDigest::from_unsorted(vec![40, 10, 20, 30]);
        assert_eq!(digest.p50, 20);
        assert_eq!(digest.p95, 40);
        assert_eq!(digest.p99, 40);
        assert_eq!(digest.max, 40);
        assert_eq!(digest.total, 100);
        assert_eq!(
            LatencyDigest::from_unsorted(vec![]),
            LatencyDigest::default()
        );
        let single = LatencyDigest::from_unsorted(vec![7]);
        assert_eq!((single.p50, single.p99, single.max), (7, 7, 7));
    }

    #[test]
    fn single_worker_server_matches_serial_replay() {
        let traffic = mixed_traffic();
        let engine = Arc::new(Engine::builder().threads(1).banks(2).build());
        let serial = replay_serial(&engine, &full_log(&traffic));
        let server = Server::start(
            engine.clone(),
            &ServeConfig::builder()
                .workers(1)
                .max_batch(4)
                .build()
                .expect("valid"),
        );
        for client in 0..traffic.clients {
            assert_eq!(
                drive_client(&server, client_log(&traffic, client), ArrivalMode::Closed),
                0
            );
        }
        let report = server.join();
        assert_eq!(report.summary, serial);
        assert!(report.dispatches >= 1);
        assert!(report.summary.latency.p50 > 0);
        assert!(report.summary.throughput_rps() > 0.0);
    }

    #[test]
    fn open_loop_coalesces_compatible_requests() {
        let engine = Arc::new(Engine::builder().threads(1).banks(2).build());
        // One worker + open-loop submission before any dispatch can finish
        // guarantees a coalescing opportunity once the worker wakes.
        let server = Server::start(
            engine,
            &ServeConfig::builder()
                .workers(1)
                .max_batch(8)
                .build()
                .expect("valid"),
        );
        let tickets: Vec<_> = (0..6).map(|i| server.submit_gemm(small_gemm(i))).collect();
        let solo: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let report = server.join();
        assert_eq!(report.summary.gemm_requests, 6);
        // Responses are bitwise what solo submissions produce (checksums
        // folded in sorted order).
        let mut sums: Vec<u64> = solo.iter().map(|r| r.checksum).collect();
        sums.sort_unstable();
        assert_eq!(
            report.summary.checksum,
            runtime::fnv1a_64(sums.iter().flat_map(|c| c.to_le_bytes()))
        );
        assert!(report.dispatches <= 6);
        assert!(report.largest_batch >= 1);
    }

    #[test]
    fn failed_requests_resolve_their_tickets_and_are_counted() {
        let engine = Arc::new(Engine::upmem());
        let server = Server::start(engine, &ServeConfig::default());
        let bad = GemmRequest::new(
            QMatrix::pseudo_random(4, 4, NumericFormat::Int(16), 1),
            QMatrix::pseudo_random(4, 2, NumericFormat::Int(16), 2),
        );
        let err = server.submit_gemm(bad).wait().unwrap_err();
        assert!(matches!(err, EngineError::Gemm(_)));
        let ok = server.submit_gemm(small_gemm(9)).wait();
        assert!(ok.is_ok());
        let report = server.join();
        assert_eq!(report.summary.failed_requests, 1);
        assert_eq!(report.summary.gemm_requests, 1);
    }

    #[test]
    fn mixed_batch_failure_falls_back_to_solo_verdicts() {
        let engine = Arc::new(Engine::builder().threads(1).banks(2).build());
        let server = Server::start(
            engine,
            &ServeConfig::builder()
                .workers(1)
                .max_batch(8)
                .build()
                .expect("valid"),
        );
        // Same compat key (engine-default method/banks, no pin) so the bad
        // request coalesces with the good ones and fails the batch.
        let bad = GemmRequest::new(
            QMatrix::pseudo_random(4, 4, NumericFormat::Int(16), 1),
            QMatrix::pseudo_random(4, 2, NumericFormat::Int(16), 2),
        );
        let good_a = small_gemm(1).with_banks(4);
        let good_b = small_gemm(2).with_banks(4);
        let bad = bad.with_banks(4);
        let t1 = server.submit_gemm(good_a);
        let t2 = server.submit_gemm(bad);
        let t3 = server.submit_gemm(good_b);
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_err());
        assert!(t3.wait().is_ok());
        let report = server.join();
        assert_eq!(report.summary.gemm_requests, 2);
        assert_eq!(report.summary.failed_requests, 1);
    }

    #[test]
    fn submissions_after_join_are_rejected_not_wedged() {
        let engine = Arc::new(Engine::upmem());
        let server = Server::start(engine.clone(), &ServeConfig::default());
        let _ = server.join();
        let server = Server::start(
            engine,
            &ServeConfig::builder()
                .workers(1)
                .max_batch(1)
                .build()
                .expect("valid"),
        );
        // Simulate a post-shutdown submission by closing the queue first.
        lock(&server.shared.queue).open = false;
        let ticket = server.submit_gemm(small_gemm(3));
        assert!(ticket.is_ready());
        assert!(matches!(
            ticket.wait(),
            Err(EngineError::Rejected(Rejection::Draining))
        ));
    }

    #[test]
    fn builder_validates_every_knob() {
        assert!(ServeConfig::builder().build().is_ok());
        for bad in [
            ServeConfig::builder().workers(0),
            ServeConfig::builder().max_batch(0),
            ServeConfig::builder().queue_cap(0),
            ServeConfig::builder().quota(0),
        ] {
            assert!(matches!(bad.build(), Err(EngineError::InvalidRequest(_))));
        }
        let config = ServeConfig::builder()
            .workers(3)
            .max_batch(2)
            .queue_cap(16)
            .quota(9)
            .build()
            .unwrap();
        assert_eq!(
            (
                config.workers(),
                config.max_batch(),
                config.queue_cap(),
                config.quota()
            ),
            (3, 2, Some(16), Some(9))
        );
        // The default is itself a valid configuration with no limits.
        assert_eq!(ServeConfig::default().queue_cap(), None);
        assert_eq!(ServeConfig::default().quota(), None);
    }

    #[test]
    fn bounded_queue_rejects_with_typed_backpressure() {
        let engine = Arc::new(Engine::builder().threads(1).banks(2).build());
        let server = Server::start(
            engine,
            &ServeConfig::builder()
                .workers(1)
                .max_batch(1)
                .queue_cap(1)
                .build()
                .expect("valid"),
        );
        // Hold the single worker on a slow request, then overfill the
        // 1-deep queue: beyond-capacity tickets must resolve *immediately*
        // (no hang, no unbounded buffering) to a QueueFull rejection
        // carrying the capacity and a retry hint.
        let slow = GemmRequest::new(
            QMatrix::pseudo_random(256, 96, NumericFormat::Bipolar, 1),
            QMatrix::pseudo_random(96, 64, NumericFormat::Int(3), 2),
        )
        .with_banks(2);
        let head = server.submit_gemm(slow);
        let burst: Vec<_> = (0..32).map(|i| server.submit_gemm(small_gemm(i))).collect();
        let mut rejected = 0;
        let mut served = 0;
        for ticket in burst {
            match ticket.wait() {
                Err(EngineError::Rejected(Rejection::QueueFull {
                    capacity,
                    retry_after_ms,
                })) => {
                    assert_eq!(capacity, 1);
                    assert_eq!(retry_after_ms, RETRY_AFTER_MS);
                    rejected += 1;
                }
                Ok(_) => served += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(head.wait().is_ok());
        // With a 1-deep queue and a busy worker, the 32-deep burst cannot
        // be admitted wholesale; rejections are the backpressure signal.
        assert!(rejected > 0, "no backpressure on an overfilled queue");
        let report = server.join();
        assert_eq!(report.summary.gemm_requests, served + 1);
        // Rejected submissions never executed and are not failures.
        assert_eq!(report.summary.failed_requests, 0);
    }

    #[test]
    fn arrival_mode_parses() {
        assert_eq!("open".parse::<ArrivalMode>().unwrap(), ArrivalMode::Open);
        assert_eq!(
            "closed".parse::<ArrivalMode>().unwrap(),
            ArrivalMode::Closed
        );
        assert!("burst".parse::<ArrivalMode>().is_err());
    }
}
