//! The keyed LUT cache: one canonical/reordering build per
//! `(formats, p, placement)`, shared by every request that needs it.
//!
//! Building the canonical LUT is the expensive host-side step of a LUT
//! kernel launch (up to ~12 M entries at W1A3, `p = 8`). A serving engine
//! sees the *same* configuration over and over — every repeated GEMM or
//! inference request at one bit-config re-derives the same plan — so the
//! engine builds each image once and hands out `Arc` clones from then on,
//! the software twin of the paper's one-time §V-A broadcast amortized
//! across a whole serving session instead of a single launch.

use crate::lock_recover;
use localut::kernels::SharedLuts;
use localut::plan::Placement;
use localut::LocaLutError;
use quant::NumericFormat;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

/// The cache key: everything a [`SharedLuts`] build depends on, plus the
/// placement the kernel uses it under.
///
/// The LUT *images* for buffer-resident and streaming kernels at equal
/// `(wf, af, p)` are identical; the placement still participates in the
/// key so cache statistics distinguish the two serving configurations and
/// an eviction policy could treat the (much larger) streamed images
/// separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LutKey {
    /// Weight format.
    pub wf: NumericFormat,
    /// Activation format.
    pub af: NumericFormat,
    /// Packing degree.
    pub p: u32,
    /// LUT placement the requesting kernel runs under.
    pub placement: Placement,
}

/// Running counters of cache behavior (monotonic over the engine's life).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from an already-built image.
    pub hits: u64,
    /// Requests that had to build the image.
    pub misses: u64,
    /// Distinct keys currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Total lookups (`hits + misses`).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// How one request's LUT lookup resolved (recorded on responses whose
/// method uses shared LUT images; LUT-free methods record nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The images were already resident.
    Hit,
    /// The images were built by this request (and are now resident).
    Miss,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<LutKey, SharedLuts>,
    hits: u64,
    misses: u64,
}

/// A thread-safe `(formats, p, placement) → SharedLuts` cache.
///
/// `SharedLuts` is internally `Arc`-backed, so a cached entry is cloned
/// out by reference-count bump — N concurrent requests read one image.
/// The build runs under the lock: two racing first requests for one key
/// would otherwise both pay the multi-megabyte build, and determinism of
/// the recorded hit/miss outcome matters more here than lock hold time
/// (the engine's batch path warms the cache serially for exactly that
/// reason).
#[derive(Debug, Default)]
pub(crate) struct LutCache {
    inner: Mutex<Inner>,
}

impl LutCache {
    /// Locks the cache via [`lock_recover`]: a serving worker that
    /// panicked while holding the lock can only have left fully-built
    /// entries behind (the map is mutated exactly once per build, by
    /// inserting a complete [`SharedLuts`] *after* its build succeeded),
    /// so the cached state is valid and every other server thread keeps
    /// serving. Before this, one panicking worker turned every later
    /// `submit` into a panic — a wedge, not a recovery.
    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        lock_recover(&self.inner)
    }

    /// Returns the shared images for `key`, building them on first use.
    pub(crate) fn get_or_build(
        &self,
        key: LutKey,
    ) -> Result<(SharedLuts, CacheOutcome), LocaLutError> {
        let mut inner = self.lock_inner();
        if let Some(luts) = inner.map.get(&key) {
            let luts = luts.clone();
            inner.hits += 1;
            return Ok((luts, CacheOutcome::Hit));
        }
        let luts = SharedLuts::build(key.wf, key.af, key.p)?;
        inner.map.insert(key, luts.clone());
        inner.misses += 1;
        Ok((luts, CacheOutcome::Miss))
    }

    pub(crate) fn stats(&self) -> CacheStats {
        let inner = self.lock_inner();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: u32, placement: Placement) -> LutKey {
        LutKey {
            wf: NumericFormat::Int(2),
            af: NumericFormat::Int(3),
            p,
            placement,
        }
    }

    #[test]
    fn second_lookup_hits_and_shares_the_image() {
        let cache = LutCache::default();
        let (first, o1) = cache
            .get_or_build(key(2, Placement::BufferResident))
            .unwrap();
        let (second, o2) = cache
            .get_or_build(key(2, Placement::BufferResident))
            .unwrap();
        assert_eq!((o1, o2), (CacheOutcome::Miss, CacheOutcome::Hit));
        // Same underlying canonical image, not a rebuild.
        assert!(std::ptr::eq(first.canonical(), second.canonical()));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
        assert_eq!(cache.stats().lookups(), 2);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = LutCache::default();
        cache
            .get_or_build(key(2, Placement::BufferResident))
            .unwrap();
        cache
            .get_or_build(key(3, Placement::BufferResident))
            .unwrap();
        cache.get_or_build(key(2, Placement::Streaming)).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 3, 3));
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_wedging() {
        let cache = LutCache::default();
        cache
            .get_or_build(key(2, Placement::BufferResident))
            .unwrap();
        // Poison the mutex the way a panicking serving worker would:
        // panic while holding the guard.
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let _guard = cache.inner.lock().unwrap();
                panic!("worker dies while holding the cache lock");
            });
            assert!(handle.join().is_err(), "the worker must have panicked");
        });
        assert!(cache.inner.is_poisoned());
        // The cache still serves — the resident entry survives and new
        // keys still build — instead of panicking every caller.
        let (_, outcome) = cache
            .get_or_build(key(2, Placement::BufferResident))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        cache.get_or_build(key(2, Placement::Streaming)).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let cache = LutCache::default();
        let bad = LutKey {
            wf: NumericFormat::Int(16),
            af: NumericFormat::Int(16),
            p: 8,
            placement: Placement::Streaming,
        };
        assert!(cache.get_or_build(bad).is_err());
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().lookups(), 0);
    }
}
