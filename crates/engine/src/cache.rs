//! The keyed LUT cache: one canonical/reordering build per
//! `(formats, p, placement)`, shared by every request that needs it.
//!
//! Building the canonical LUT is the expensive host-side step of a LUT
//! kernel launch (up to ~12 M entries at W1A3, `p = 8`). A serving engine
//! sees the *same* configuration over and over — every repeated GEMM or
//! inference request at one bit-config re-derives the same plan — so the
//! engine builds each image once and hands out `Arc` clones from then on,
//! the software twin of the paper's one-time §V-A broadcast amortized
//! across a whole serving session instead of a single launch.
//!
//! Since the cache-lifecycle subsystem ([`crate::cachelife`]) the map is
//! no longer grow-only: an optional byte budget bounds residency with
//! deterministic LRU eviction ([`crate::cachelife::lru`]), and entries
//! can be restored from an on-disk image store
//! ([`crate::cachelife::store`]) on engine construction. Neither moves a
//! simulated number — see the module docs of [`crate::cachelife`] for
//! the full determinism contract.

use crate::cachelife::lru::{Found, LruLedger};
use crate::lock_recover;
use localut::kernels::SharedLuts;
use localut::plan::Placement;
use localut::LocaLutError;
use quant::NumericFormat;
use std::sync::{Mutex, MutexGuard};

/// The cache key: everything a [`SharedLuts`] build depends on, plus the
/// placement the kernel uses it under.
///
/// The LUT *images* for buffer-resident and streaming kernels at equal
/// `(wf, af, p)` are identical; the placement still participates in the
/// key so cache statistics distinguish the two serving configurations and
/// the eviction policy treats the two residencies separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LutKey {
    /// Weight format.
    pub wf: NumericFormat,
    /// Activation format.
    pub af: NumericFormat,
    /// Packing degree.
    pub p: u32,
    /// LUT placement the requesting kernel runs under.
    pub placement: Placement,
}

/// Running counters of cache behavior (monotonic over the engine's life,
/// except `entries`/`resident_bytes`, which track current residency).
///
/// All of these are **host-side observables**: they appear in
/// [`crate::ServeReport`] and operator-facing output, never inside the
/// deterministic [`crate::ServeSummary`] or on simulated metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from an already-requested resident image.
    pub hits: u64,
    /// Requests that saw their key for the first time in this process —
    /// whether the image was then built (`misses - restored`) or already
    /// resident from a disk restore (`restored`).
    pub misses: u64,
    /// Resident images discarded by the byte-budget LRU policy.
    pub evictions: u64,
    /// Host bytes the resident images currently occupy (never exceeds a
    /// configured budget).
    pub resident_bytes: u64,
    /// Lookups whose image build *failed* — neither a hit nor a miss, so
    /// without this counter a failing configuration would be invisible in
    /// the cache telemetry.
    pub failed_builds: u64,
    /// The subset of `misses` whose build was skipped because the image
    /// was restored from disk (the warm-start win, counted).
    pub restored: u64,
    /// Distinct keys currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Total completed lookups (`hits + misses`; failed builds are
    /// counted separately in `failed_builds`).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// How one request's LUT lookup resolved (recorded on responses whose
/// method uses shared LUT images; LUT-free methods record nothing).
///
/// The outcome answers "was this shape requested before in this serving
/// process?" — **not** "was a build skipped": the first request for a
/// disk-restored key records a [`CacheOutcome::Miss`] (and bumps
/// [`CacheStats::restored`] instead of paying the build), so responses
/// stay bitwise identical between warm and cold engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The images were already resident from a previous request.
    Hit,
    /// This was the first request for the key; the images were built (or
    /// adopted from a disk restore) and are now resident.
    Miss,
}

#[derive(Debug, Default)]
struct Inner {
    ledger: LruLedger,
    hits: u64,
    misses: u64,
    failed_builds: u64,
    restored: u64,
}

/// A thread-safe `(formats, p, placement) → SharedLuts` cache.
///
/// `SharedLuts` is internally `Arc`-backed, so a cached entry is cloned
/// out by reference-count bump — N concurrent requests read one image.
/// The build runs under the lock: two racing first requests for one key
/// would otherwise both pay the multi-megabyte build, and determinism of
/// the recorded hit/miss outcome matters more here than lock hold time
/// (the engine's batch path warms the cache serially for exactly that
/// reason).
#[derive(Debug, Default)]
pub(crate) struct LutCache {
    inner: Mutex<Inner>,
}

impl LutCache {
    /// An empty cache with an optional resident-byte budget.
    pub(crate) fn with_budget(budget: Option<u64>) -> Self {
        LutCache {
            inner: Mutex::new(Inner {
                ledger: LruLedger::new(budget),
                ..Inner::default()
            }),
        }
    }

    /// Locks the cache via [`lock_recover`]: a serving worker that
    /// panicked while holding the lock can only have left fully-built
    /// entries behind (the ledger is mutated exactly once per build, by
    /// inserting a complete [`SharedLuts`] *after* its build succeeded),
    /// so the cached state is valid and every other server thread keeps
    /// serving. Before this, one panicking worker turned every later
    /// `submit` into a panic — a wedge, not a recovery.
    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        lock_recover(&self.inner)
    }

    /// Returns the shared images for `key`, building them on first use
    /// (unless a disk restore already staged them) and evicting back
    /// under the byte budget afterwards.
    pub(crate) fn get_or_build(
        &self,
        key: LutKey,
    ) -> Result<(SharedLuts, CacheOutcome), LocaLutError> {
        let mut inner = self.lock_inner();
        if let Some((luts, found)) = inner.ledger.lookup(key) {
            return Ok(match found {
                Found::Touched => {
                    inner.hits += 1;
                    (luts, CacheOutcome::Hit)
                }
                // First request for a restored key: the build is skipped,
                // but the response-visible outcome stays the cold
                // engine's (a miss), preserving bitwise-identical
                // responses across warm restarts.
                Found::Restored => {
                    inner.misses += 1;
                    inner.restored += 1;
                    (luts, CacheOutcome::Miss)
                }
            });
        }
        let luts = match SharedLuts::build(key.wf, key.af, key.p) {
            Ok(luts) => luts,
            Err(e) => {
                inner.failed_builds += 1;
                return Err(e);
            }
        };
        inner.ledger.insert_built(key, luts.clone());
        inner.misses += 1;
        Ok((luts, CacheOutcome::Miss))
    }

    /// Adopts disk-restored images in manifest order (untouched, evicted
    /// before anything a request has used, skipped when over budget).
    /// Returns how many entries were kept resident.
    pub(crate) fn restore(&self, entries: Vec<(LutKey, SharedLuts)>) -> usize {
        let mut inner = self.lock_inner();
        entries
            .into_iter()
            .filter(|(key, luts)| inner.ledger.insert_restored(*key, luts.clone()))
            .count()
    }

    /// Every resident image in the store's canonical order, for
    /// persistence.
    pub(crate) fn snapshot(&self) -> Vec<(LutKey, SharedLuts)> {
        self.lock_inner().ledger.snapshot()
    }

    pub(crate) fn stats(&self) -> CacheStats {
        let inner = self.lock_inner();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.ledger.evictions(),
            resident_bytes: inner.ledger.resident_bytes(),
            failed_builds: inner.failed_builds,
            restored: inner.restored,
            entries: inner.ledger.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: u32, placement: Placement) -> LutKey {
        LutKey {
            wf: NumericFormat::Int(2),
            af: NumericFormat::Int(3),
            p,
            placement,
        }
    }

    #[test]
    fn second_lookup_hits_and_shares_the_image() {
        let cache = LutCache::default();
        let (first, o1) = cache
            .get_or_build(key(2, Placement::BufferResident))
            .unwrap();
        let (second, o2) = cache
            .get_or_build(key(2, Placement::BufferResident))
            .unwrap();
        assert_eq!((o1, o2), (CacheOutcome::Miss, CacheOutcome::Hit));
        // Same underlying canonical image, not a rebuild.
        assert!(std::ptr::eq(first.canonical(), second.canonical()));
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.entries, stats.evictions),
            (1, 1, 1, 0)
        );
        assert_eq!(stats.resident_bytes, first.resident_bytes());
        assert_eq!(stats.lookups(), 2);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = LutCache::default();
        cache
            .get_or_build(key(2, Placement::BufferResident))
            .unwrap();
        cache
            .get_or_build(key(3, Placement::BufferResident))
            .unwrap();
        cache.get_or_build(key(2, Placement::Streaming)).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 3, 3));
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_wedging() {
        let cache = LutCache::default();
        cache
            .get_or_build(key(2, Placement::BufferResident))
            .unwrap();
        // Poison the mutex the way a panicking serving worker would:
        // panic while holding the guard.
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let _guard = cache.inner.lock().unwrap();
                panic!("worker dies while holding the cache lock");
            });
            assert!(handle.join().is_err(), "the worker must have panicked");
        });
        assert!(cache.inner.is_poisoned());
        // The cache still serves — the resident entry survives and new
        // keys still build — instead of panicking every caller.
        let (_, outcome) = cache
            .get_or_build(key(2, Placement::BufferResident))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        cache.get_or_build(key(2, Placement::Streaming)).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
    }

    #[test]
    fn failed_builds_are_counted_but_not_cached() {
        let cache = LutCache::default();
        let bad = LutKey {
            wf: NumericFormat::Int(16),
            af: NumericFormat::Int(16),
            p: 8,
            placement: Placement::Streaming,
        };
        assert!(cache.get_or_build(bad).is_err());
        assert!(cache.get_or_build(bad).is_err());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        // A failed build is neither a hit nor a miss — it is its own
        // counter, so the failing configuration stays visible.
        assert_eq!(stats.lookups(), 0);
        assert_eq!(stats.failed_builds, 2);
    }

    #[test]
    fn eviction_under_budget_pressure_rebuilds_on_refetch() {
        // Budget for exactly one p=2 image: the second key evicts the
        // first, and refetching the first rebuilds it (a miss, not an
        // error).
        let probe = SharedLuts::build(NumericFormat::Int(2), NumericFormat::Int(3), 2).unwrap();
        let cache = LutCache::with_budget(Some(probe.resident_bytes()));
        let (first, _) = cache
            .get_or_build(key(2, Placement::BufferResident))
            .unwrap();
        cache.get_or_build(key(2, Placement::Streaming)).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 1);
        let (again, outcome) = cache
            .get_or_build(key(2, Placement::BufferResident))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        // The rebuild is bitwise identical to the evicted image.
        assert_eq!(first.canonical().entries(), again.canonical().entries());
        assert_eq!(first.reorder().entries(), again.reorder().entries());
        assert!(cache.stats().resident_bytes <= probe.resident_bytes());
    }

    #[test]
    fn restored_entries_serve_first_request_as_miss_without_build() {
        let cache = LutCache::default();
        let k = key(2, Placement::BufferResident);
        let image = SharedLuts::build(k.wf, k.af, k.p).unwrap();
        assert_eq!(cache.restore(vec![(k, image)]), 1);
        let (luts, outcome) = cache.get_or_build(k).unwrap();
        // Cold-equivalent outcome, but the build was skipped.
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(cache.stats().restored, 1);
        assert_eq!(cache.stats().misses, 1);
        let (_, second) = cache.get_or_build(k).unwrap();
        assert_eq!(second, CacheOutcome::Hit);
        assert!(luts.resident_bytes() > 0);
    }
}
