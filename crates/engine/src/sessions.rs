//! Decoder sessions for continuous batching: one inference request,
//! many schedulable steps.
//!
//! A monolithic decoder request ([`crate::InferenceRequest`] with
//! `decode_tokens > 0`) occupies a serving worker for its whole
//! prefill-plus-decode lifetime, head-of-line blocking every request
//! behind it. A [`SessionRequest`] decomposes the same workload into the
//! paper's serving units instead — one prefill step plus one step per
//! generated token ([`dnn::Workload::session_steps`]) — and the
//! scheduler re-enqueues the session after *every* step, so freshly
//! arrived prefills interleave between decode waves (continuous
//! batching).
//!
//! Decode steps are skinny GEMMs (`n = batch`, one token per sample),
//! and the paper's fig. 13/fig. 19 sweeps show skinny shapes prefer a
//! different packing degree and placement than prefill-sized shapes. A
//! decode-marked step therefore plans on the measured per-phase path
//! ([`localut::plan::Planner::plan_measured`]), while prefill keeps the
//! closed-form fixed-`k` plan — the two phases resolve to *different*
//! LUT-cache keys, observable via [`crate::Engine::session_plans`].
//!
//! ## Determinism
//!
//! [`crate::Engine::infer_session`] advances the session's steps
//! serially and folds them exactly the way
//! [`dnn::InferenceSim::run_batch`] folds independent workloads: the
//! response's `stats`, `merged` profile, and picojoule energy are
//! bitwise identical to `engine.infer()` over
//! `workload.session_steps()`. The scheduler executes one step per
//! dispatch through the *same* `SessionJob::advance` state machine, so
//! any interleaving, worker count, and arrival mode produces the same
//! [`SessionResponse`] — and the same per-step femtosecond latencies —
//! as the serial path.
//!
//! ## Example
//!
//! ```
//! use engine::sessions::SessionRequest;
//! use engine::{Engine, InferenceRequest};
//! use dnn::{ModelConfig, Workload};
//!
//! let engine = Engine::builder().threads(1).banks(4).build();
//! // A 3-token OPT decode session: 1 prefill step + 3 decode steps.
//! let workload = Workload::with_decode(ModelConfig::opt_125m(), 1, 3);
//! let session = engine.infer_session(&SessionRequest::new(workload.clone()))?;
//! assert_eq!(session.reports.len(), 4);
//! assert_eq!(session.decode_step_femtos.len(), 3);
//! assert!(session.ttft_femtos > 0);
//!
//! // Bitwise identical to serving the decomposed steps monolithically.
//! let steps = engine.infer(&InferenceRequest::serving(workload.session_steps()))?;
//! assert_eq!(session.stats, steps.stats);
//! assert_eq!(session.energy_pj, steps.energy_pj);
//! # Ok::<(), engine::EngineError>(())
//! ```

use crate::cache::{CacheOutcome, LutKey};
use crate::response::picojoules;
use crate::{Engine, EngineError};
use dnn::inference::InferenceReport;
use dnn::layer::layer_gemms;
use dnn::Workload;
use localut::plan::ExecutionPlan;
use localut::tiling::TileGrid;
use localut::{GemmDims, Method};
use pim_sim::{Stats, SystemProfile};
use quant::BitConfig;

/// One decoder serving session: a workload the scheduler decomposes into
/// independently schedulable steps (see the [module docs](self)).
///
/// Sessions are opt-in: a plain [`crate::InferenceRequest`] still runs
/// monolithically, bitwise identical to every release before sessions
/// existed.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRequest {
    /// The decoder workload to decompose
    /// ([`dnn::Workload::session_steps`] defines the step list).
    pub workload: Workload,
    /// Execution method override (`None` uses the engine default).
    pub method: Option<Method>,
    /// Bit-configuration override (`None` uses the engine default).
    pub bits: Option<BitConfig>,
}

impl SessionRequest {
    /// A session over `workload` with engine-default method and bits.
    #[must_use]
    pub fn new(workload: Workload) -> Self {
        SessionRequest {
            workload,
            method: None,
            bits: None,
        }
    }

    /// Overrides the execution method.
    #[must_use]
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = Some(method);
        self
    }

    /// Overrides the bit configuration.
    #[must_use]
    pub fn with_bits(mut self, bits: BitConfig) -> Self {
        self.bits = Some(bits);
        self
    }
}

/// The completed outcome of one session: per-step reports plus the exact
/// aggregate [`crate::Engine::infer`] would produce over the decomposed
/// step list, extended with the per-step latencies continuous batching
/// reports (TTFT and per-decode-step femtoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResponse {
    /// Per-step reports in step order (prefill first, then each decode
    /// step at its exact KV context).
    pub reports: Vec<InferenceReport>,
    /// Step-order fold of the per-step profiles (the energy basis).
    pub merged: SystemProfile,
    /// Associative + commutative merge of per-step statistics — one
    /// ingest per step, so `stats.banks()` counts steps.
    pub stats: Stats,
    /// Modeled energy over the merged profile, picojoules.
    pub energy_pj: u128,
    /// The method that executed.
    pub method: Method,
    /// Time to first token: the prefill step's simulated femtoseconds
    /// (0 for a session that begins mid-decode).
    pub ttft_femtos: u128,
    /// Each decode step's simulated femtoseconds, in step order.
    pub decode_step_femtos: Vec<u128>,
}

impl SessionResponse {
    /// Total simulated seconds across every step.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.merged.total_seconds()
    }

    /// Number of steps the session executed.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.reports.len()
    }
}

/// The per-phase execution plans a session resolves to — the paper's
/// fig. 13/fig. 19 observation made concrete: prefill (token-parallel,
/// wide `n`) and decode (one token per sample, skinny `n`) pick their
/// own packing degree and placement, hence their own LUT-cache keys.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionPlans {
    /// Plan for the representative prefill-phase tile (closed-form
    /// fixed-`k` path, matching the monolithic prefill).
    pub prefill: ExecutionPlan,
    /// Plan for the representative decode-step tile (measured per-phase
    /// path, [`localut::plan::Planner::plan_measured`]).
    pub decode: ExecutionPlan,
}

impl SessionPlans {
    /// The LUT-cache key the prefill-phase plan resolves to.
    #[must_use]
    pub fn prefill_key(&self) -> LutKey {
        plan_key(&self.prefill)
    }

    /// The LUT-cache key the decode-phase plan resolves to.
    #[must_use]
    pub fn decode_key(&self) -> LutKey {
        plan_key(&self.decode)
    }
}

fn plan_key(plan: &ExecutionPlan) -> LutKey {
    LutKey {
        wf: plan.wf,
        af: plan.af,
        p: plan.p,
        placement: plan.placement,
    }
}

/// What one [`SessionJob::advance`] call produced.
pub(crate) enum StepOutcome {
    /// The step completed; the session has more steps and must re-enter
    /// the admission queue.
    Continue,
    /// The final step completed; the session is finished.
    Done(Box<SessionResponse>),
}

/// The in-flight state machine of one session: which step runs next and
/// the accumulated aggregates. The scheduler advances it one step per
/// dispatch; [`Engine::infer_session`] advances it in a tight loop —
/// both paths share this code, which is what makes them bitwise equal.
pub(crate) struct SessionJob {
    method: Method,
    bits: BitConfig,
    steps: Vec<Workload>,
    next: usize,
    reports: Vec<InferenceReport>,
    merged: SystemProfile,
    stats: Stats,
    ttft_femtos: u128,
    decode_step_femtos: Vec<u128>,
}

impl SessionJob {
    /// Decomposes `request` against `engine`'s defaults.
    pub(crate) fn new(engine: &Engine, request: &SessionRequest) -> SessionJob {
        SessionJob {
            method: request.method.unwrap_or(engine.method),
            bits: request.bits.unwrap_or(engine.bits),
            steps: request.workload.session_steps(),
            next: 0,
            reports: Vec::new(),
            merged: SystemProfile::default(),
            stats: Stats::default(),
            ttft_femtos: 0,
            decode_step_femtos: Vec::new(),
        }
    }

    /// Executes the next step and folds it into the aggregates, exactly
    /// as [`dnn::InferenceSim::run_batch`] folds independent workloads.
    pub(crate) fn advance(&mut self, engine: &Engine) -> Result<StepOutcome, EngineError> {
        let step = &self.steps[self.next];
        let report = engine.sim.run(self.method, self.bits, step)?;
        let mut ledger = report.profile.host.ledger().clone();
        ledger.merge(report.profile.pim.ledger());
        let step_stats = Stats::from_ledger(&ledger);
        let femtos = step_stats.snapshot().total_femtos;
        if step.step.is_some() {
            self.decode_step_femtos.push(femtos);
        } else {
            self.ttft_femtos = femtos;
        }
        self.merged = self.merged.merged(&report.profile);
        self.stats.merge(&step_stats);
        self.reports.push(report);
        self.next += 1;
        if self.next < self.steps.len() {
            return Ok(StepOutcome::Continue);
        }
        let energy = engine
            .energy
            .system_energy(engine.sim.dist.system.config(), &self.merged)
            .total_j();
        Ok(StepOutcome::Done(Box::new(SessionResponse {
            reports: std::mem::take(&mut self.reports),
            merged: std::mem::take(&mut self.merged),
            stats: std::mem::take(&mut self.stats),
            energy_pj: picojoules(energy),
            method: self.method,
            ttft_femtos: self.ttft_femtos,
            decode_step_femtos: std::mem::take(&mut self.decode_step_femtos),
        })))
    }
}

impl std::fmt::Debug for SessionJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionJob")
            .field("next", &self.next)
            .field("steps", &self.steps.len())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Runs one session to completion on the calling thread: every step
    /// in order through the same state machine the scheduler advances
    /// one dispatch at a time, so the two paths are bitwise equal by
    /// construction — and both equal [`Engine::infer`] over
    /// [`dnn::Workload::session_steps`].
    ///
    /// # Errors
    ///
    /// Kernel feasibility errors of the failing step;
    /// [`EngineError::InvalidRequest`] for a workload that decomposes to
    /// no steps (impossible for the public constructors).
    pub fn infer_session(&self, request: &SessionRequest) -> Result<SessionResponse, EngineError> {
        let mut job = SessionJob::new(self, request);
        if job.steps.is_empty() {
            return Err(EngineError::InvalidRequest(
                "session workload decomposes to no steps".to_owned(),
            ));
        }
        loop {
            if let StepOutcome::Done(response) = job.advance(self)? {
                return Ok(*response);
            }
        }
    }

    /// Resolves the session's per-phase execution plans: the plan of the
    /// representative (largest) layer GEMM tile of each phase, sharded
    /// across the engine's full DPU fleet. Purely analytic — no LUT
    /// image is built or cached (see [`Engine::warm_session`] for that),
    /// though repeated shapes return memoized plans
    /// ([`crate::cachelife::memo`]; bitwise equal to a recompute).
    ///
    /// # Errors
    ///
    /// [`EngineError::Gemm`] when no feasible plan exists for a phase at
    /// the session's bit configuration.
    pub fn session_plans(&self, request: &SessionRequest) -> Result<SessionPlans, EngineError> {
        let bits = request.bits.unwrap_or(self.bits);
        let (wf, af) = (bits.weight_format(), bits.activation_format());
        let model = &request.workload.model;
        let n_dpus = self.sim.dist.system.config().n_dpus();
        let tile = |tokens: usize| -> GemmDims {
            let dims = layer_gemms(model, tokens.max(1))
                .into_iter()
                .max_by_key(|g| g.dims.m * g.dims.k * g.dims.n)
                .map(|g| g.dims)
                .unwrap_or(GemmDims { m: 1, k: 1, n: 1 });
            TileGrid::choose(dims, n_dpus).tile_dims(dims)
        };
        let prefill_tile = tile(request.workload.batch * model.seq_len);
        let decode_tile = tile(request.workload.batch);
        Ok(SessionPlans {
            prefill: self.memo_plan(prefill_tile, wf, af, Some(self.gemm.k_slices))?,
            decode: self.memo_plan_measured(decode_tile, wf, af)?,
        })
    }

    /// Builds (or fetches) the two per-phase LUT images a session's
    /// plans resolve to — the software twin of the paper's §V-A one-time
    /// broadcast, applied per phase. Explicit because a prefill-phase
    /// image can run to millions of entries: callers opt into the build
    /// cost instead of every session paying it.
    ///
    /// Returns `None` for LUT-free methods (nothing to warm).
    ///
    /// # Errors
    ///
    /// Plan-resolution or LUT-construction errors.
    pub fn warm_session(
        &self,
        request: &SessionRequest,
    ) -> Result<Option<(CacheOutcome, CacheOutcome)>, EngineError> {
        let method = request.method.unwrap_or(self.method);
        if !matches!(method, Method::LoCaLut | Method::OpLcRc) {
            return Ok(None);
        }
        let plans = self.session_plans(request)?;
        let (_, prefill) = self.cache.get_or_build(plans.prefill_key())?;
        let (_, decode) = self.cache.get_or_build(plans.decode_key())?;
        Ok(Some((prefill, decode)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::InferenceRequest;
    use dnn::ModelConfig;

    #[test]
    fn session_matches_monolithic_decomposition_bitwise() {
        let engine = Engine::builder().threads(2).banks(4).build();
        let workload = Workload::with_decode(ModelConfig::opt_125m(), 2, 3);
        let session = engine
            .infer_session(&SessionRequest::new(workload.clone()))
            .unwrap();
        let steps = engine
            .infer(&InferenceRequest::serving(workload.session_steps()))
            .unwrap();
        assert_eq!(session.reports, steps.reports);
        assert_eq!(session.merged, steps.merged);
        assert_eq!(session.stats, steps.stats);
        assert_eq!(session.energy_pj, steps.energy_pj);
        assert_eq!(session.method, steps.method);
        // Step accounting: 1 prefill + 3 decode steps, TTFT + decode
        // latencies partition the total.
        assert_eq!(session.steps(), 4);
        assert_eq!(session.decode_step_femtos.len(), 3);
        assert!(session.ttft_femtos > 0);
        assert_eq!(
            session.ttft_femtos + session.decode_step_femtos.iter().sum::<u128>(),
            session.stats.snapshot().total_femtos
        );
        // Later decode steps attend over more KV context, so cost is
        // monotone nondecreasing along the wave.
        assert!(session.decode_step_femtos[2] >= session.decode_step_femtos[0]);
    }

    #[test]
    fn prefill_only_session_has_no_decode_steps() {
        let engine = Engine::builder().threads(1).banks(2).build();
        let session = engine
            .infer_session(&SessionRequest::new(Workload::prefill(
                ModelConfig::bert_base(),
                4,
            )))
            .unwrap();
        assert_eq!(session.steps(), 1);
        assert!(session.decode_step_femtos.is_empty());
        assert_eq!(session.ttft_femtos, session.stats.snapshot().total_femtos);
    }

    #[test]
    fn session_plans_separate_prefill_from_decode() {
        // At the engine default (W1A3, OPT-125M), the prefill tile is
        // wide (batch × seq_len tokens split across 2048 DPUs) while the
        // decode tile is one token per sample — the phases resolve to
        // different plans, hence different LUT-cache keys.
        let engine = Engine::upmem();
        let request = SessionRequest::new(Workload::with_decode(ModelConfig::opt_125m(), 2, 4));
        let plans = engine.session_plans(&request).unwrap();
        assert_ne!(
            plans.prefill_key(),
            plans.decode_key(),
            "prefill {:?} vs decode {:?}",
            plans.prefill,
            plans.decode
        );
        // Purely analytic: resolving plans touched no cache entry.
        assert_eq!(engine.lut_cache_stats().lookups(), 0);
        // Deterministic: re-resolving yields the identical plans.
        assert_eq!(engine.session_plans(&request).unwrap(), plans);
    }

    #[test]
    fn warm_session_builds_both_phase_images() {
        // W2A3 keeps both phase images small (prefill plans Streaming
        // p = 4, decode BufferResident p = 3 at int2 weights), so the
        // warming path is testable without a multi-second build.
        let engine = Engine::builder().bits(BitConfig { bw: 2, ba: 3 }).build();
        let request = SessionRequest::new(Workload::with_decode(ModelConfig::opt_125m(), 2, 2));
        let plans = engine.session_plans(&request).unwrap();
        assert_ne!(plans.prefill_key(), plans.decode_key());
        let first = engine.warm_session(&request).unwrap().unwrap();
        assert_eq!(first, (CacheOutcome::Miss, CacheOutcome::Miss));
        let again = engine.warm_session(&request).unwrap().unwrap();
        assert_eq!(again, (CacheOutcome::Hit, CacheOutcome::Hit));
        assert_eq!(engine.lut_cache_stats().entries, 2);
        // LUT-free methods have nothing to warm.
        assert_eq!(
            engine
                .warm_session(&request.clone().with_method(Method::NaivePim))
                .unwrap(),
            None
        );
    }

    #[test]
    fn session_overrides_resolve_like_infer_overrides() {
        let engine = Engine::builder().threads(1).banks(2).build();
        let workload = Workload::with_decode(ModelConfig::opt_125m(), 1, 2);
        let request = SessionRequest::new(workload.clone())
            .with_method(Method::Op)
            .with_bits(BitConfig { bw: 4, ba: 4 });
        let session = engine.infer_session(&request).unwrap();
        assert_eq!(session.method, Method::Op);
        let monolithic = engine
            .infer(
                &InferenceRequest::serving(workload.session_steps())
                    .with_method(Method::Op)
                    .with_bits(BitConfig { bw: 4, ba: 4 }),
            )
            .unwrap();
        assert_eq!(session.stats, monolithic.stats);
        assert_eq!(session.energy_pj, monolithic.energy_pj);
    }
}
