//! Typed requests: what a consumer hands the engine.
//!
//! Every request carries its operands plus *optional* overrides; anything
//! left `None` falls back to the engine's builder-time defaults, so the
//! common serving call is just `engine.submit(&GemmRequest::new(w, a))`.

use dnn::Workload;
use localut::plan::Placement;
use localut::Method;
use quant::{BitConfig, QMatrix};

/// A pinned execution plan: force the LUT placement and packing degree
/// instead of letting the §V-A planner choose.
///
/// Pinning serves two real needs: evaluation workloads that compare
/// placement arms head-to-head (the Fig. 3 scenario), and serving
/// deployments that fix the plan at rollout so every request skips the
/// planner entirely and lands on one cached LUT image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanPin {
    /// Forced LUT placement.
    pub placement: Placement,
    /// Forced packing degree `p`.
    pub p: u32,
}

/// One GEMM to execute functionally on the bank-parallel runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmRequest {
    /// Quantized weight matrix (`M×K`).
    pub w: QMatrix,
    /// Quantized activation matrix (`K×N`).
    pub a: QMatrix,
    /// Execution method; `None` uses the engine default.
    pub method: Option<Method>,
    /// Banks to shard the output across; `None` uses the engine default.
    pub banks: Option<u32>,
    /// Optional pinned plan (LUT methods only; overrides `method`'s
    /// planning step).
    pub pin: Option<PlanPin>,
}

impl GemmRequest {
    /// A request with engine-default method and bank count.
    #[must_use]
    pub fn new(w: QMatrix, a: QMatrix) -> Self {
        GemmRequest {
            w,
            a,
            method: None,
            banks: None,
            pin: None,
        }
    }

    /// Overrides the execution method.
    #[must_use]
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = Some(method);
        self
    }

    /// Overrides the bank count the output is sharded across.
    #[must_use]
    pub fn with_banks(mut self, banks: u32) -> Self {
        self.banks = Some(banks);
        self
    }

    /// Pins placement and packing degree, bypassing the planner.
    #[must_use]
    pub fn with_pin(mut self, pin: PlanPin) -> Self {
        self.pin = Some(pin);
        self
    }
}

/// A batch of GEMM requests served as one unit: the engine warms the LUT
/// cache in request order, then fans the requests out across its worker
/// pool (each request's own bank merge runs serially inside one worker,
/// so the batch is bitwise identical to submitting the requests one by
/// one — pinned by tests).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchGemmRequest {
    /// The requests, in submission (and response) order.
    pub requests: Vec<GemmRequest>,
}

impl BatchGemmRequest {
    /// Wraps a vector of requests.
    #[must_use]
    pub fn new(requests: Vec<GemmRequest>) -> Self {
        BatchGemmRequest { requests }
    }
}

impl FromIterator<GemmRequest> for BatchGemmRequest {
    fn from_iter<I: IntoIterator<Item = GemmRequest>>(iter: I) -> Self {
        BatchGemmRequest::new(iter.into_iter().collect())
    }
}

/// An inference serving request: one or more model workloads timed
/// end-to-end on the engine's worker pool.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceRequest {
    /// The workloads, in request (and report) order.
    pub workloads: Vec<Workload>,
    /// Execution method; `None` uses the engine default.
    pub method: Option<Method>,
    /// Bit configuration; `None` uses the engine default.
    pub bits: Option<BitConfig>,
}

impl InferenceRequest {
    /// A single-workload request with engine defaults.
    #[must_use]
    pub fn single(workload: Workload) -> Self {
        InferenceRequest {
            workloads: vec![workload],
            method: None,
            bits: None,
        }
    }

    /// A multi-request serving batch with engine defaults.
    #[must_use]
    pub fn serving(workloads: Vec<Workload>) -> Self {
        InferenceRequest {
            workloads,
            method: None,
            bits: None,
        }
    }

    /// Overrides the execution method.
    #[must_use]
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = Some(method);
        self
    }

    /// Overrides the bit configuration.
    #[must_use]
    pub fn with_bits(mut self, bits: BitConfig) -> Self {
        self.bits = Some(bits);
        self
    }
}
