//! The cache-lifecycle subsystem: byte-budget LRU eviction, on-disk LUT
//! persistence, and planner memoization.
//!
//! The LUT cache (the crate-private `cache` module) started as a
//! grow-only map — the
//! software twin of the paper's one-time §V-A broadcast. A deployable
//! serving process gets restarted, rescheduled, and multi-tenanted, so
//! this module adds the lifecycle around that map:
//!
//! * `lru` (crate-private) — a byte-budgeted least-recently-used ledger.
//!   Every entry's
//!   resident size is derived from its image dimensions
//!   ([`localut::kernels::SharedLuts::resident_bytes`]); when a configured
//!   budget is exceeded the least-recently-used entries are evicted, in a
//!   deterministic order, until the cache fits again.
//! * [`store`] — dependency-free on-disk persistence (`std::fs` only): a
//!   checksummed manifest plus one checksummed binary image file per
//!   cache key, written on drain and restored on engine construction.
//!   LUT images are pure functions of their key, so a restored image is
//!   bitwise identical to a rebuilt one.
//! * [`memo`] — a bounded memo of §V-A planning decisions
//!   (`(dims, formats, k-slices, cost model) → ExecutionPlan`), so
//!   repeated shapes skip re-planning on the hot path.
//!
//! ## The determinism contract
//!
//! Nothing in this module may move a simulated number. Eviction only
//! discards host-resident images — a later request for an evicted key
//! rebuilds the identical image and produces the identical response.
//! Restore only skips host-side build wall-clock: a warm-from-disk engine
//! reports the same per-request [`crate::CacheOutcome`] a cold engine
//! would (the first request for a restored key still records a *miss*,
//! because hit/miss answers "was this shape requested before in this
//! serving process?" — the restore is visible in
//! [`crate::CacheStats::restored`] and in the skipped build time, not on
//! the response). Plan memoization returns clones of deterministic plans.
//! What *is* allowed to differ between a warm and a cold run, or between
//! budgeted and unbudgeted runs, are the host-side lifecycle counters
//! ([`crate::CacheStats`], [`memo::MemoStats`]) and wall-clock.

pub(crate) mod lru;
pub mod memo;
pub mod store;
