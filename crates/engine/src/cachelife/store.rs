//! On-disk persistence of LUT-cache images (`std::fs` only).
//!
//! A cache directory holds one checksummed binary file per cache key plus
//! a checksummed manifest listing them:
//!
//! ```text
//! <dir>/manifest.lcm          magic "LCLM", version, entry table, FNV-64
//! <dir>/lut-<keyhex>.bin      magic "LCLT", version, key, canonical
//!                             image (i32 LE), reorder image (u64 LE),
//!                             FNV-64 over everything before it
//! ```
//!
//! All integers are little-endian; the checksum is the workspace-standard
//! FNV-1a 64 ([`runtime::fnv1a_64`]) over every byte that precedes it.
//! The manifest records each image file's length and checksum, so a
//! truncated, corrupted, or swapped file is detected before any entry is
//! trusted — and every failure is a typed [`StoreError`], which the
//! engine maps to "fall back to a cold build" rather than a crash.
//!
//! LUT images are pure functions of their key, so restoring one is
//! bitwise equivalent to rebuilding it; the store exists purely to skip
//! the multi-hundred-millisecond host-side build on warm starts. Writes
//! go through a temp file + rename so a crashed writer can't leave a
//! half-written manifest that parses.

use crate::cache::LutKey;
use localut::canonical::CanonicalLut;
use localut::kernels::SharedLuts;
use localut::plan::Placement;
use localut::reorder::ReorderLut;
use quant::NumericFormat;
use runtime::fnv1a_64;
use std::fmt;
use std::path::{Path, PathBuf};

/// Manifest magic bytes.
const MANIFEST_MAGIC: [u8; 4] = *b"LCLM";
/// Image-file magic bytes.
const IMAGE_MAGIC: [u8; 4] = *b"LCLT";
/// On-disk format version (bumped on any incompatible layout change).
const VERSION: u16 = 1;
/// Manifest file name inside a cache directory.
const MANIFEST_NAME: &str = "manifest.lcm";
/// Bytes of one encoded [`LutKey`].
const KEY_BYTES: usize = 10;

/// Why a cache directory could not be read or written.
///
/// Every variant names the file it arose from; load failures are
/// *recoverable* by design — [`crate::EngineBuilder::build`] records the
/// error and falls back to a cold cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem I/O failed (the error is carried as text so the type
    /// stays `Clone + PartialEq` like every other engine error).
    Io {
        /// Path the operation touched.
        path: String,
        /// The underlying I/O error, displayed.
        message: String,
    },
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// Offending file.
        path: String,
    },
    /// The file's format version is not one this build reads.
    UnsupportedVersion {
        /// Offending file.
        path: String,
        /// Version found.
        version: u16,
    },
    /// The file ended before its declared contents did.
    Truncated {
        /// Offending file.
        path: String,
    },
    /// The trailing checksum does not match the file's bytes, or an image
    /// file's length/checksum does not match what the manifest recorded.
    ChecksumMismatch {
        /// Offending file.
        path: String,
    },
    /// The file decoded structurally but its contents are inconsistent
    /// (unknown format tag, image shape mismatch, key mismatch, ...).
    Corrupt {
        /// Offending file.
        path: String,
        /// What was inconsistent.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "cache store I/O on {path}: {message}"),
            StoreError::BadMagic { path } => {
                write!(f, "{path} is not a LUT cache file (bad magic)")
            }
            StoreError::UnsupportedVersion { path, version } => {
                write!(f, "{path} has unsupported cache format version {version}")
            }
            StoreError::Truncated { path } => write!(f, "{path} is truncated"),
            StoreError::ChecksumMismatch { path } => write!(f, "{path} failed its checksum"),
            StoreError::Corrupt { path, detail } => write!(f, "{path} is corrupt: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_error(path: &Path, e: &std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// The canonical 10-byte encoding of a cache key: format tags and bit
/// widths, packing degree, placement. Doubles as the persistence sort
/// key and the image file name stem, so on-disk layout is a pure
/// function of the cache contents.
#[must_use]
pub fn key_bytes(key: LutKey) -> [u8; KEY_BYTES] {
    fn format_tag(f: NumericFormat) -> (u8, u8) {
        match f {
            NumericFormat::Int(b) => (0, b),
            NumericFormat::Uint(b) => (1, b),
            NumericFormat::Bipolar => (2, 1),
            NumericFormat::Fp4 => (3, 4),
            NumericFormat::Fp8 => (4, 8),
            NumericFormat::Fp16 => (5, 16),
        }
    }
    let (wt, wb) = format_tag(key.wf);
    let (at, ab) = format_tag(key.af);
    let p = key.p.to_le_bytes();
    let placement = match key.placement {
        Placement::BufferResident => 0u8,
        Placement::Streaming => 1u8,
    };
    [wt, wb, at, ab, p[0], p[1], p[2], p[3], placement, 0]
}

fn decode_format(tag: u8, bits: u8, path: &Path) -> Result<NumericFormat, StoreError> {
    match tag {
        0 => Ok(NumericFormat::Int(bits)),
        1 => Ok(NumericFormat::Uint(bits)),
        2 => Ok(NumericFormat::Bipolar),
        3 => Ok(NumericFormat::Fp4),
        4 => Ok(NumericFormat::Fp8),
        5 => Ok(NumericFormat::Fp16),
        other => Err(StoreError::Corrupt {
            path: path.display().to_string(),
            detail: format!("unknown numeric-format tag {other}"),
        }),
    }
}

fn decode_key(bytes: &[u8], path: &Path) -> Result<LutKey, StoreError> {
    let wf = decode_format(bytes[0], bytes[1], path)?;
    let af = decode_format(bytes[2], bytes[3], path)?;
    let p = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let placement = match bytes[8] {
        0 => Placement::BufferResident,
        1 => Placement::Streaming,
        other => {
            return Err(StoreError::Corrupt {
                path: path.display().to_string(),
                detail: format!("unknown placement tag {other}"),
            });
        }
    };
    Ok(LutKey {
        wf,
        af,
        p,
        placement,
    })
}

/// The image file name for a cache key.
fn image_name(key: LutKey) -> String {
    let hex: String = key_bytes(key).iter().map(|b| format!("{b:02x}")).collect();
    format!("lut-{hex}.bin")
}

/// A bounds-checked little-endian reader with typed errors.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
    path: &'a Path,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.at..end];
                self.at = end;
                Ok(slice)
            }
            None => Err(StoreError::Truncated {
                path: self.path.display().to_string(),
            }),
        }
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }
}

/// Verifies magic + version + trailing checksum, returning the payload
/// between the header and the checksum.
fn check_envelope<'a>(
    bytes: &'a [u8],
    magic: [u8; 4],
    path: &Path,
) -> Result<&'a [u8], StoreError> {
    let display = || path.display().to_string();
    if bytes.len() < 4 || bytes[..4] != magic {
        return Err(StoreError::BadMagic { path: display() });
    }
    if bytes.len() < 4 + 2 + 8 {
        return Err(StoreError::Truncated { path: display() });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: display(),
            version,
        });
    }
    let body_end = bytes.len() - 8;
    let recorded = u64::from_le_bytes(bytes[body_end..].try_into().expect("8-byte tail"));
    if fnv1a_64(bytes[..body_end].iter().copied()) != recorded {
        return Err(StoreError::ChecksumMismatch { path: display() });
    }
    Ok(&bytes[6..body_end])
}

fn finish_with_checksum(mut bytes: Vec<u8>) -> Vec<u8> {
    let checksum = fnv1a_64(bytes.iter().copied());
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

fn encode_image(key: LutKey, luts: &SharedLuts) -> Vec<u8> {
    let canonical = luts.canonical();
    let reorder = luts.reorder();
    let mut out = Vec::with_capacity(
        4 + 2
            + KEY_BYTES
            + 16
            + canonical.entries().len() * 4
            + 17
            + reorder.entries().len() * 8
            + 8,
    );
    out.extend_from_slice(&IMAGE_MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&key_bytes(key));
    out.extend_from_slice(&canonical.rows().to_le_bytes());
    out.extend_from_slice(&canonical.cols().to_le_bytes());
    for &v in canonical.entries() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.push(reorder.bits());
    out.extend_from_slice(&reorder.rows().to_le_bytes());
    out.extend_from_slice(&reorder.cols().to_le_bytes());
    for &v in reorder.entries() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    finish_with_checksum(out)
}

fn decode_image(bytes: &[u8], path: &Path) -> Result<(LutKey, SharedLuts), StoreError> {
    let payload = check_envelope(bytes, IMAGE_MAGIC, path)?;
    let mut r = Reader {
        bytes: payload,
        at: 0,
        path,
    };
    let key = decode_key(r.take(KEY_BYTES)?, path)?;
    let corrupt = |detail: String| StoreError::Corrupt {
        path: path.display().to_string(),
        detail,
    };
    let count = |rows: u64, cols: u64| -> Result<usize, StoreError> {
        usize::try_from(
            rows.checked_mul(cols)
                .ok_or_else(|| corrupt(format!("image shape {rows} x {cols} overflows")))?,
        )
        .map_err(|_| corrupt(format!("image shape {rows} x {cols} exceeds host memory")))
    };
    let (rows, cols) = (r.u64()?, r.u64()?);
    let mut canonical_entries = Vec::with_capacity(count(rows, cols)?);
    for _ in 0..count(rows, cols)? {
        let b = r.take(4)?;
        canonical_entries.push(i32::from_le_bytes([b[0], b[1], b[2], b[3]]));
    }
    let canonical = CanonicalLut::<i32>::from_parts(key.wf, key.af, key.p, canonical_entries)
        .map_err(|e| corrupt(format!("canonical image: {e}")))?;
    if (canonical.rows(), canonical.cols()) != (rows, cols) {
        return Err(corrupt(format!(
            "canonical shape {rows} x {cols} does not match the key"
        )));
    }
    let bits = r.take(1)?[0];
    let (rrows, rcols) = (r.u64()?, r.u64()?);
    let mut reorder_entries = Vec::with_capacity(count(rrows, rcols)?);
    for _ in 0..count(rrows, rcols)? {
        reorder_entries.push(r.u64()?);
    }
    if r.at != r.bytes.len() {
        return Err(corrupt("trailing bytes after the reorder image".to_owned()));
    }
    let reorder = ReorderLut::from_parts(bits, key.p, reorder_entries)
        .map_err(|e| corrupt(format!("reorder image: {e}")))?;
    if (reorder.rows(), reorder.cols()) != (rrows, rcols) {
        return Err(corrupt(format!(
            "reorder shape {rrows} x {rcols} does not match the key"
        )));
    }
    let luts = SharedLuts::from_parts(canonical, reorder)
        .map_err(|e| corrupt(format!("image pair: {e}")))?;
    Ok((key, luts))
}

/// Writes every `(key, image)` pair to `dir` (created if absent) and
/// replaces its manifest atomically (temp file + rename). Existing image
/// files for keys not in `entries` are left in place but dropped from the
/// manifest, so they are ignored by [`load`].
///
/// # Errors
///
/// [`StoreError::Io`] on any filesystem failure.
pub fn save(dir: &Path, entries: &[(LutKey, SharedLuts)]) -> Result<(), StoreError> {
    std::fs::create_dir_all(dir).map_err(|e| io_error(dir, &e))?;
    let mut manifest = Vec::new();
    manifest.extend_from_slice(&MANIFEST_MAGIC);
    manifest.extend_from_slice(&VERSION.to_le_bytes());
    manifest.extend_from_slice(
        &u32::try_from(entries.len())
            .unwrap_or(u32::MAX)
            .to_le_bytes(),
    );
    for (key, luts) in entries {
        let image = encode_image(*key, luts);
        let image_path = dir.join(image_name(*key));
        write_atomically(&image_path, &image)?;
        manifest.extend_from_slice(&key_bytes(*key));
        manifest.extend_from_slice(&(image.len() as u64).to_le_bytes());
        let image_checksum =
            u64::from_le_bytes(image[image.len() - 8..].try_into().expect("8-byte tail"));
        manifest.extend_from_slice(&image_checksum.to_le_bytes());
    }
    write_atomically(&dir.join(MANIFEST_NAME), &finish_with_checksum(manifest))
}

fn write_atomically(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes).map_err(|e| io_error(&tmp, &e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_error(path, &e))
}

/// Reads every image the manifest lists, in manifest order, verifying the
/// manifest's checksum, each image file's recorded length and checksum,
/// and each image's internal consistency (shape, key, format tags).
///
/// Returns an empty vector when `dir` has no manifest at all (a fresh
/// cache directory is not an error).
///
/// # Errors
///
/// Any [`StoreError`]; the caller is expected to fall back to a cold
/// cache and surface the error as an observable, not fatal, condition.
pub fn load(dir: &Path) -> Result<Vec<(LutKey, SharedLuts)>, StoreError> {
    let manifest_path = dir.join(MANIFEST_NAME);
    let bytes = match std::fs::read(&manifest_path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_error(&manifest_path, &e)),
    };
    let payload = check_envelope(&bytes, MANIFEST_MAGIC, &manifest_path)?;
    let mut r = Reader {
        bytes: payload,
        at: 0,
        path: &manifest_path,
    };
    let count = r.u32()?;
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let key = decode_key(r.take(KEY_BYTES)?, &manifest_path)?;
        let recorded_len = r.u64()?;
        let recorded_checksum = r.u64()?;
        let image_path = dir.join(image_name(key));
        let image = std::fs::read(&image_path).map_err(|e| io_error(&image_path, &e))?;
        if image.len() as u64 != recorded_len {
            return Err(StoreError::ChecksumMismatch {
                path: image_path.display().to_string(),
            });
        }
        let tail = u64::from_le_bytes(image[image.len() - 8..].try_into().expect("8-byte tail"));
        if tail != recorded_checksum {
            return Err(StoreError::ChecksumMismatch {
                path: image_path.display().to_string(),
            });
        }
        let (decoded_key, luts) = decode_image(&image, &image_path)?;
        if decoded_key != key {
            return Err(StoreError::Corrupt {
                path: image_path.display().to_string(),
                detail: "image key does not match its manifest entry".to_owned(),
            });
        }
        entries.push((key, luts));
    }
    if r.at != r.bytes.len() {
        return Err(StoreError::Corrupt {
            path: manifest_path.display().to_string(),
            detail: "trailing bytes after the entry table".to_owned(),
        });
    }
    Ok(entries)
}

/// The manifest path inside a cache directory (exposed so tests and
/// tooling can corrupt or inspect it without duplicating the name).
#[must_use]
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_NAME)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("localut-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_key(p: u32, placement: Placement) -> LutKey {
        LutKey {
            wf: NumericFormat::Int(2),
            af: NumericFormat::Int(3),
            p,
            placement,
        }
    }

    fn sample_entry(p: u32, placement: Placement) -> (LutKey, SharedLuts) {
        let key = sample_key(p, placement);
        (key, SharedLuts::build(key.wf, key.af, key.p).unwrap())
    }

    #[test]
    fn roundtrip_is_bitwise_identical() {
        let dir = tempdir("roundtrip");
        let entries = vec![
            sample_entry(2, Placement::BufferResident),
            sample_entry(3, Placement::Streaming),
        ];
        save(&dir, &entries).unwrap();
        let loaded = load(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        for ((key, built), (lkey, restored)) in entries.iter().zip(&loaded) {
            assert_eq!(key, lkey);
            assert_eq!(built.canonical().entries(), restored.canonical().entries());
            assert_eq!(built.reorder().entries(), restored.reorder().entries());
            assert_eq!(built.resident_bytes(), restored.resident_bytes());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_an_empty_cache() {
        let dir = tempdir("empty");
        assert!(load(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_manifest_is_typed() {
        let dir = tempdir("truncated");
        save(&dir, &[sample_entry(2, Placement::BufferResident)]).unwrap();
        let path = manifest_path(&dir);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        // Chopping the manifest in half lands either mid-table (checksum
        // fails) — both are typed, never a panic or a partial load.
        assert!(matches!(
            load(&dir).unwrap_err(),
            StoreError::ChecksumMismatch { .. } | StoreError::Truncated { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_image_byte_is_detected() {
        let dir = tempdir("flip");
        let entries = [sample_entry(2, Placement::BufferResident)];
        save(&dir, &entries).unwrap();
        let image_path = dir.join(image_name(entries[0].0));
        let mut bytes = std::fs::read(&image_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&image_path, &bytes).unwrap();
        assert!(matches!(
            load(&dir).unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_magic_is_typed() {
        let dir = tempdir("magic");
        std::fs::write(manifest_path(&dir), b"not a manifest at all").unwrap();
        assert!(matches!(
            load(&dir).unwrap_err(),
            StoreError::BadMagic { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn future_version_is_typed() {
        let dir = tempdir("version");
        save(&dir, &[]).unwrap();
        let path = manifest_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        // Bump the version field, then re-seal the checksum so only the
        // version is "wrong".
        bytes[4] = 99;
        let body = bytes[..bytes.len() - 8].to_vec();
        std::fs::write(&path, finish_with_checksum(body)).unwrap();
        assert!(matches!(
            load(&dir).unwrap_err(),
            StoreError::UnsupportedVersion { version: 99, .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_bytes_sorts_formats_before_degrees() {
        // Sanity: distinct keys encode distinctly and deterministically.
        let a = key_bytes(sample_key(2, Placement::BufferResident));
        let b = key_bytes(sample_key(2, Placement::Streaming));
        let c = key_bytes(sample_key(3, Placement::BufferResident));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, key_bytes(sample_key(2, Placement::BufferResident)));
    }

    #[test]
    fn errors_display_distinctly() {
        let variants = [
            StoreError::Io {
                path: "x".into(),
                message: "denied".into(),
            },
            StoreError::BadMagic { path: "x".into() },
            StoreError::UnsupportedVersion {
                path: "x".into(),
                version: 2,
            },
            StoreError::Truncated { path: "x".into() },
            StoreError::ChecksumMismatch { path: "x".into() },
            StoreError::Corrupt {
                path: "x".into(),
                detail: "why".into(),
            },
        ];
        let mut seen = std::collections::HashSet::new();
        for v in &variants {
            assert!(seen.insert(v.to_string()), "duplicate display: {v}");
        }
    }
}
