//! Bounded memoization of §V-A planning decisions.
//!
//! Planning is deterministic — [`localut::plan::Planner::plan`] and
//! [`localut::plan::Planner::plan_measured`] are pure functions of the
//! GEMM dimensions,
//! the operand formats, the slice budget, and the engine's fixed DPU cost
//! model — so a memoized plan is bitwise equal to a recomputed one by
//! construction, and memoization can only move host wall-clock. The memo
//! key is `(dims, formats, k-slices, closed-form vs measured)`; the DPU
//! profile and topology are engine-wide constants and one memo lives per
//! engine, so they need no key bits.
//!
//! The map is bounded (LRU, [`PLAN_MEMO_CAP`] entries) because a serving
//! process facing many-tenant shape churn must not grow without bound —
//! the same production constraint that motivates the LUT cache's byte
//! budget, applied to the (much smaller) plan records.

use crate::lock_recover;
use localut::plan::ExecutionPlan;
use localut::{GemmDims, LocaLutError};
use quant::NumericFormat;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

/// Entry bound of the plan memo. Plans are a few dozen bytes, so this
/// caps the memo in the tens of kilobytes while comfortably covering the
/// distinct shapes a serving mix produces.
pub const PLAN_MEMO_CAP: usize = 1024;

/// Everything a §V-A planning decision depends on, given one engine's
/// fixed DPU cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    pub(crate) dims: GemmDims,
    pub(crate) wf: NumericFormat,
    pub(crate) af: NumericFormat,
    /// `Some(k)` pins the slice budget; `None` searches over it.
    pub(crate) k_slices: Option<u32>,
    /// True for the measured-cost decode path
    /// ([`localut::plan::Planner::plan_measured`]), false for the
    /// closed-form path.
    pub(crate) measured: bool,
}

/// Running counters of plan-memo behavior (host-side observability; never
/// on the deterministic response surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Plans served from the memo.
    pub hits: u64,
    /// Plans computed (and memoized) on first sight of their key.
    pub misses: u64,
    /// Distinct keys currently memoized.
    pub entries: usize,
}

impl MemoStats {
    /// Total lookups (`hits + misses`).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<PlanKey, (ExecutionPlan, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// A thread-safe, bounded `(plan key) → ExecutionPlan` memo.
#[derive(Debug, Default)]
pub(crate) struct PlanMemo {
    inner: Mutex<Inner>,
}

impl PlanMemo {
    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        // Same poison policy as the LUT cache: the map is only ever
        // mutated by inserting a complete plan, so recovered state is
        // valid.
        lock_recover(&self.inner)
    }

    /// Returns the memoized plan for `key`, computing and memoizing it on
    /// first sight. Failed computations are returned as-is and memoize
    /// nothing (the next lookup retries).
    pub(crate) fn get_or_plan(
        &self,
        key: PlanKey,
        compute: impl FnOnce() -> Result<ExecutionPlan, LocaLutError>,
    ) -> Result<ExecutionPlan, LocaLutError> {
        let mut inner = self.lock_inner();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((plan, last_use)) = inner.map.get_mut(&key) {
            *last_use = tick;
            let plan = plan.clone();
            inner.hits += 1;
            return Ok(plan);
        }
        // Compute under the lock, like the LUT cache's build: racing
        // first lookups must not both plan, and recorded hit/miss
        // counters must not depend on worker scheduling.
        let plan = compute()?;
        inner.misses += 1;
        inner.map.insert(key, (plan.clone(), tick));
        if inner.map.len() > PLAN_MEMO_CAP {
            // Ticks are unique, so the LRU victim is unambiguous.
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, last_use))| *last_use)
                .map(|(k, _)| *k)
            {
                inner.map.remove(&victim);
            }
        }
        Ok(plan)
    }

    pub(crate) fn stats(&self) -> MemoStats {
        let inner = self.lock_inner();
        MemoStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use localut::plan::Placement;

    fn plan(p: u32) -> ExecutionPlan {
        ExecutionPlan {
            placement: Placement::BufferResident,
            p,
            k_slices: 2,
            predicted_seconds: 0.5,
            wf: NumericFormat::Int(2),
            af: NumericFormat::Int(3),
        }
    }

    fn key(m: usize) -> PlanKey {
        PlanKey {
            dims: GemmDims { m, k: 8, n: 4 },
            wf: NumericFormat::Int(2),
            af: NumericFormat::Int(3),
            k_slices: Some(2),
            measured: false,
        }
    }

    #[test]
    fn second_lookup_hits_without_recompute() {
        let memo = PlanMemo::default();
        let first = memo.get_or_plan(key(4), || Ok(plan(3))).unwrap();
        let second = memo
            .get_or_plan(key(4), || panic!("must not recompute"))
            .unwrap();
        assert_eq!(first, second);
        let stats = memo.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.lookups(), 2);
    }

    #[test]
    fn failed_plans_are_not_memoized() {
        let memo = PlanMemo::default();
        assert!(memo
            .get_or_plan(key(4), || Err(LocaLutError::InvalidPackingDegree(0)))
            .is_err());
        assert_eq!(memo.stats().entries, 0);
        // The next lookup retries the computation.
        assert!(memo.get_or_plan(key(4), || Ok(plan(3))).is_ok());
        assert_eq!(memo.stats().misses, 1);
    }

    #[test]
    fn memo_is_bounded_by_lru() {
        let memo = PlanMemo::default();
        for m in 0..PLAN_MEMO_CAP + 10 {
            memo.get_or_plan(key(m + 1), || Ok(plan(3))).unwrap();
        }
        assert_eq!(memo.stats().entries, PLAN_MEMO_CAP);
        // The oldest keys were evicted; the newest survive.
        let newest = key(PLAN_MEMO_CAP + 10);
        memo.get_or_plan(newest, || panic!("newest key must be memoized"))
            .unwrap();
        let oldest = key(1);
        let mut recomputed = false;
        memo.get_or_plan(oldest, || {
            recomputed = true;
            Ok(plan(3))
        })
        .unwrap();
        assert!(recomputed, "oldest key must have been evicted");
    }

    #[test]
    fn measured_and_closed_form_keys_are_distinct() {
        let memo = PlanMemo::default();
        memo.get_or_plan(key(4), || Ok(plan(3))).unwrap();
        let measured = PlanKey {
            measured: true,
            k_slices: None,
            ..key(4)
        };
        let mut computed = false;
        memo.get_or_plan(measured, || {
            computed = true;
            Ok(plan(4))
        })
        .unwrap();
        assert!(computed, "measured path must not alias the closed form");
        assert_eq!(memo.stats().entries, 2);
    }
}
