//! The byte-budgeted LRU ledger under the LUT cache.
//!
//! Single-threaded on purpose: [`crate::cache::LutCache`] owns the lock
//! and the hit/miss bookkeeping; this module owns residency. Every entry
//! carries the logical tick of its last use (a monotonic counter, not
//! wall-clock, so eviction order is a pure function of the lookup
//! sequence) and its resident byte size. Whenever the ledger grows past
//! its budget, entries are evicted strictly in ascending last-use order
//! until it fits — including, in the degenerate case, the entry that was
//! just inserted (a single image larger than the whole budget is returned
//! to its requester but never kept resident, so `resident_bytes ≤ budget`
//! holds after *every* operation).
//!
//! Disk-restored entries are inserted *untouched* with ticks below every
//! live lookup's: they are evicted before any entry a request has
//! actually used, so budget pressure from a warm restore can never evict
//! an entry a cold engine would have kept — the warm/cold bitwise
//! contract of [`crate::cachelife`] depends on exactly this ordering.

use crate::cache::LutKey;
use localut::kernels::SharedLuts;
use std::collections::HashMap;

#[derive(Debug)]
struct Entry {
    luts: SharedLuts,
    bytes: u64,
    last_use: u64,
    /// False until a lookup first returns this entry — i.e. still in the
    /// "restored from disk, never requested" state.
    touched: bool,
}

/// How a [`LruLedger::lookup`] resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Found {
    /// Resident and previously requested: a true hit.
    Touched,
    /// Resident from a disk restore, requested for the first time now:
    /// counts as a miss on the response surface, but skips the build.
    Restored,
}

/// The budgeted `LutKey → SharedLuts` map with LRU eviction.
#[derive(Debug, Default)]
pub(crate) struct LruLedger {
    map: HashMap<LutKey, Entry>,
    budget: Option<u64>,
    resident_bytes: u64,
    tick: u64,
    evictions: u64,
}

impl LruLedger {
    pub(crate) fn new(budget: Option<u64>) -> Self {
        LruLedger {
            budget,
            ..LruLedger::default()
        }
    }

    /// Returns the resident image for `key`, stamping its last use.
    pub(crate) fn lookup(&mut self, key: LutKey) -> Option<(SharedLuts, Found)> {
        self.tick += 1;
        let entry = self.map.get_mut(&key)?;
        entry.last_use = self.tick;
        let found = if entry.touched {
            Found::Touched
        } else {
            entry.touched = true;
            Found::Restored
        };
        Some((entry.luts.clone(), found))
    }

    /// Inserts a freshly built image as touched (its last use is now) and
    /// evicts back under budget.
    pub(crate) fn insert_built(&mut self, key: LutKey, luts: SharedLuts) {
        self.tick += 1;
        let bytes = luts.resident_bytes();
        self.resident_bytes += bytes;
        if let Some(old) = self.map.insert(
            key,
            Entry {
                luts,
                bytes,
                last_use: self.tick,
                touched: true,
            },
        ) {
            self.resident_bytes -= old.bytes;
        }
        self.enforce_budget();
    }

    /// Inserts a disk-restored image as untouched, in restore order,
    /// *without* consuming a lookup tick (restore ticks must stay below
    /// every live lookup's). An entry that would push the ledger over
    /// budget is skipped rather than admitted-then-evicted, so a warm
    /// start never exceeds the budget and never counts phantom evictions.
    /// Returns whether the entry was kept.
    pub(crate) fn insert_restored(&mut self, key: LutKey, luts: SharedLuts) -> bool {
        if self.map.contains_key(&key) {
            return false;
        }
        let bytes = luts.resident_bytes();
        if let Some(budget) = self.budget {
            if self.resident_bytes + bytes > budget {
                return false;
            }
        }
        self.tick += 1;
        self.resident_bytes += bytes;
        self.map.insert(
            key,
            Entry {
                luts,
                bytes,
                last_use: self.tick,
                touched: false,
            },
        );
        true
    }

    /// Evicts least-recently-used entries until the budget is respected.
    fn enforce_budget(&mut self) {
        let Some(budget) = self.budget else { return };
        while self.resident_bytes > budget {
            // Ticks are unique, so the minimum is unambiguous and the
            // eviction order is deterministic for a given lookup sequence.
            let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k)
            else {
                return;
            };
            let entry = self.map.remove(&victim).expect("victim key just seen");
            self.resident_bytes -= entry.bytes;
            self.evictions += 1;
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Every resident image, sorted by the store's canonical key encoding
    /// so persistence output is byte-stable regardless of map iteration
    /// order.
    pub(crate) fn snapshot(&self) -> Vec<(LutKey, SharedLuts)> {
        let mut entries: Vec<(LutKey, SharedLuts)> =
            self.map.iter().map(|(k, e)| (*k, e.luts.clone())).collect();
        entries.sort_by_key(|(k, _)| super::store::key_bytes(*k));
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use localut::plan::Placement;
    use quant::NumericFormat;

    fn key(p: u32) -> LutKey {
        LutKey {
            wf: NumericFormat::Int(2),
            af: NumericFormat::Int(3),
            p,
            placement: Placement::BufferResident,
        }
    }

    fn luts(p: u32) -> SharedLuts {
        SharedLuts::build(NumericFormat::Int(2), NumericFormat::Int(3), p).unwrap()
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let two = luts(2);
        let three = luts(3);
        // Budget fits both p=2 and p=3, but not a second p=3-sized entry
        // on top.
        let budget = two.resident_bytes() + three.resident_bytes();
        let mut ledger = LruLedger::new(Some(budget));
        ledger.insert_built(key(2), two);
        ledger.insert_built(key(3), three.clone());
        // Refresh p=2 so p=3 is now the LRU entry.
        assert!(ledger.lookup(key(2)).is_some());
        let streaming = LutKey {
            placement: Placement::Streaming,
            ..key(3)
        };
        ledger.insert_built(streaming, three);
        assert_eq!(ledger.evictions(), 1);
        assert!(ledger.lookup(key(2)).is_some(), "refreshed entry survives");
        assert!(ledger.lookup(key(3)).is_none(), "LRU entry was evicted");
        assert!(ledger.resident_bytes() <= budget);
    }

    #[test]
    fn oversized_entry_is_returned_but_not_kept() {
        let mut ledger = LruLedger::new(Some(1));
        ledger.insert_built(key(2), luts(2));
        assert_eq!(ledger.len(), 0);
        assert_eq!(ledger.resident_bytes(), 0);
        assert_eq!(ledger.evictions(), 1);
    }

    #[test]
    fn restored_entries_evict_before_touched_ones() {
        let two = luts(2);
        let three = luts(3);
        let budget = two.resident_bytes() + three.resident_bytes();
        let mut ledger = LruLedger::new(Some(budget));
        assert!(ledger.insert_restored(key(3), three.clone()));
        // A build that needs the space evicts the untouched restore, not
        // nothing, even though the restore was inserted "more recently"
        // than any lookup.
        ledger.insert_built(key(2), two);
        let streaming = LutKey {
            placement: Placement::Streaming,
            ..key(3)
        };
        ledger.insert_built(streaming, three);
        assert!(ledger.lookup(key(3)).is_none(), "restore evicted first");
        assert!(ledger.lookup(key(2)).is_some());
    }

    #[test]
    fn over_budget_restore_is_skipped_silently() {
        let two = luts(2);
        let mut ledger = LruLedger::new(Some(two.resident_bytes()));
        assert!(ledger.insert_restored(key(2), two.clone()));
        assert!(!ledger.insert_restored(
            LutKey {
                placement: Placement::Streaming,
                ..key(2)
            },
            two
        ));
        assert_eq!(ledger.evictions(), 0);
        assert_eq!(ledger.len(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let mut ledger = LruLedger::new(None);
        ledger.insert_built(key(3), luts(3));
        ledger.insert_built(key(2), luts(2));
        let snapshot = ledger.snapshot();
        assert_eq!(snapshot.len(), 2);
        let keys: Vec<_> = snapshot
            .iter()
            .map(|(k, _)| super::super::store::key_bytes(*k))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
