//! # engine — the unified serving surface of the LoCaLUT reproduction
//!
//! Every consumer used to hand-wire `quant → localut::Planner →
//! runtime::ParallelExecutor → dnn::InferenceSim` and juggle four disjoint
//! error enums. This crate redesigns that surface around one typed entry
//! point:
//!
//! * [`EngineBuilder`] — profile, worker threads, sharding [`Topology`]
//!   (a flat bank fleet, or the paper's full 32 × 64 ranked machine),
//!   bit-config and method defaults → [`Engine`].
//! * [`Engine`] — accepts typed requests ([`GemmRequest`],
//!   [`BatchGemmRequest`], [`InferenceRequest`]) and returns typed
//!   responses carrying values, merged [`pim_sim::Stats`], picojoule
//!   energy, and checksums, all through a single [`EngineError`].
//! * **LUT caching** — the engine owns a keyed cache
//!   (`(formats, p, placement) → SharedLuts`), so repeated requests skip
//!   the expensive canonical/reordering rebuild: the first real step
//!   toward request-serving throughput. Cache behavior is observable via
//!   [`Engine::lut_cache_stats`] and per-response [`CacheOutcome`]s.
//! * [`Session`] — a lightweight accumulator over one engine for serving
//!   sessions: per-session merged statistics, energy, and request counts.
//! * [`serve`] — the **concurrent serving scheduler**: a thread-safe
//!   [`Server`] frontend (admission queue + worker pool + dynamic GEMM
//!   batching) over one shared engine, with deterministic merged
//!   summaries and simulated-latency percentiles; [`traffic`] generates
//!   the seeded request logs the scheduler, the `loadgen` binary, and the
//!   tests share.
//! * [`sessions`] — **continuous batching** for decoder serving: a
//!   [`SessionRequest`] decomposes into one prefill step plus one step
//!   per decode token, each re-entering the admission queue as its own
//!   schedulable unit (new prefills interleave between decode waves),
//!   with per-phase execution planning and LUT-cache keying
//!   ([`Engine::session_plans`]) and deterministic TTFT/per-step latency
//!   digests in the [`ServeSummary`].
//!
//! Determinism is inherited from the layers below: for a fixed request,
//! every response is bitwise identical at any worker count, with or
//! without a warm cache — pinned by the workspace test suites.
//!
//! ## Quickstart
//!
//! ```
//! use engine::{Engine, GemmRequest};
//! use quant::{NumericFormat, QMatrix};
//!
//! let engine = Engine::builder().threads(2).banks(4).build();
//! let w = QMatrix::pseudo_random(16, 24, NumericFormat::Int(2), 1);
//! let a = QMatrix::pseudo_random(24, 8, NumericFormat::Int(3), 2);
//!
//! // First request builds the LUT images; the repeat reuses them and is
//! // bitwise identical (only the recorded cache outcome differs).
//! let first = engine.submit(&GemmRequest::new(w.clone(), a.clone()))?;
//! let again = engine.submit(&GemmRequest::new(w, a))?;
//! assert_eq!(first.values, again.values);
//! assert_eq!(first.stats, again.stats);
//! assert_eq!((first.checksum, first.energy_pj), (again.checksum, again.energy_pj));
//! assert_eq!(engine.lut_cache_stats().hits, 1);
//! # Ok::<(), engine::EngineError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cache;
pub mod cachelife;
mod error;
pub mod request;
pub mod response;
pub mod serve;
pub mod sessions;
pub mod traffic;

pub use cache::{CacheOutcome, CacheStats, LutKey};
pub use cachelife::memo::MemoStats;
pub use cachelife::store::StoreError;
pub use error::{EngineError, FrameError, NetError, Rejection};
pub use request::{BatchGemmRequest, GemmRequest, InferenceRequest, PlanPin};
pub use response::{picojoules, BatchGemmResponse, GemmResponse, InferenceResponse};
pub use serve::{
    LatencyDigest, ServeConfig, ServeConfigBuilder, ServeRecorder, ServeReport, ServeSummary,
    Server, Ticket,
};
pub use sessions::{SessionPlans, SessionRequest, SessionResponse};
pub use traffic::{Mix, TrafficConfig, TrafficRequest};

use cache::LutCache;
use cachelife::memo::{PlanKey, PlanMemo};
use dnn::InferenceSim;
use localut::kernels::{BankKernel, RcKernel, StreamingKernel};
use localut::plan::{ExecutionPlan, Placement, Planner};
use localut::{GemmConfig, GemmDims, LocaLutError, Method};
use pim_sim::{DpuConfig, EnergyModel, Profile, Stats, SystemProfile};
use quant::{BitConfig, NumericFormat};
use runtime::{ParallelExecutor, ShardPlan};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// How an engine shards GEMM requests across the machine by default.
///
/// The paper's server is hierarchical — 32 ranks × 64 DPU banks — and the
/// topology decides whether requests see that hierarchy:
///
/// * [`Topology::Flat`] shards across `n` interchangeable banks with a
///   flat statistics fold and **no** rank-bus contention term (the
///   pre-scale-out behavior, and still the default).
/// * [`Topology::Ranked`] shards across `ranks × banks_per_rank` banks
///   grouped under a [`runtime::RankPlan`]: statistics merge through the
///   per-rank tree and the busiest rank's host-link occupancy is charged
///   as an extra serving phase.
///
/// A per-request bank override ([`GemmRequest::with_banks`]) always
/// shards flat — it is an explicit "just use n banks" escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// A flat fleet of `n` interchangeable banks.
    Flat(u32),
    /// The two-level machine: `ranks` ranks of `banks_per_rank` banks.
    Ranked {
        /// Number of ranks (the paper's server has 32).
        ranks: u32,
        /// DPU banks per rank (the paper's server has 64).
        banks_per_rank: u32,
    },
}

impl Topology {
    /// Total bank count the topology shards across.
    #[must_use]
    pub fn total_banks(&self) -> u32 {
        match *self {
            Topology::Flat(banks) => banks,
            Topology::Ranked {
                ranks,
                banks_per_rank,
            } => ranks.saturating_mul(banks_per_rank),
        }
    }
}

/// Configures and constructs an [`Engine`].
///
/// Defaults model the paper's serving setup: the UPMEM DPU profile with
/// `k = 2` co-resident slice pairs, 4 worker threads, 16-bank GEMM
/// sharding, [`Method::LoCaLut`] and `W1A3`.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    gemm: GemmConfig,
    threads: usize,
    topology: Topology,
    method: Method,
    bits: BitConfig,
    energy: EnergyModel,
    cache_budget: Option<u64>,
    cache_dir: Option<PathBuf>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            gemm: GemmConfig::upmem(),
            threads: 4,
            topology: Topology::Flat(16),
            method: Method::LoCaLut,
            bits: BitConfig { bw: 1, ba: 3 },
            energy: EnergyModel::upmem(),
            cache_budget: None,
            cache_dir: None,
        }
    }
}

impl EngineBuilder {
    /// Host worker threads for the bank-parallel runtime (≥ 1; never
    /// changes a simulated number, only host wall-clock).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Default number of banks a GEMM request's output is sharded across
    /// (≥ 1; overridable per request). Selects a flat
    /// [`Topology`] — the pre-scale-out behavior.
    #[must_use]
    pub fn banks(mut self, banks: u32) -> Self {
        self.topology = Topology::Flat(banks.max(1));
        self
    }

    /// Shards GEMM requests across the two-level machine: `ranks` ranks
    /// of `banks_per_rank` banks each (≥ 1 each; the paper's server is
    /// `ranks(32, 64)`). Ranked engines merge statistics through the
    /// per-rank tree and charge the rank-bus contention phase; a
    /// per-request bank override still shards flat.
    #[must_use]
    pub fn ranks(mut self, ranks: u32, banks_per_rank: u32) -> Self {
        self.topology = Topology::Ranked {
            ranks: ranks.max(1),
            banks_per_rank: banks_per_rank.max(1),
        };
        self
    }

    /// Sets the sharding topology directly.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = match topology {
            Topology::Flat(banks) => Topology::Flat(banks.max(1)),
            Topology::Ranked {
                ranks,
                banks_per_rank,
            } => Topology::Ranked {
                ranks: ranks.max(1),
                banks_per_rank: banks_per_rank.max(1),
            },
        };
        self
    }

    /// Default execution method (overridable per request).
    #[must_use]
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Default bit configuration for inference requests (overridable per
    /// request; GEMM requests carry their formats in the operands).
    #[must_use]
    pub fn bits(mut self, bits: BitConfig) -> Self {
        self.bits = bits;
        self
    }

    /// Number of co-resident LUT slice pairs (`k` of §IV-C), applied to
    /// both the kernel configuration and the inference simulator.
    #[must_use]
    pub fn k_slices(mut self, k_slices: u32) -> Self {
        self.gemm.k_slices = k_slices;
        self
    }

    /// The DPU hardware profile kernels run on.
    #[must_use]
    pub fn dpu(mut self, dpu: DpuConfig) -> Self {
        self.gemm.dpu = dpu;
        self
    }

    /// The energy model responses are priced under.
    #[must_use]
    pub fn energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Byte budget for resident LUT images: when the cache grows past it,
    /// least-recently-used images are evicted (deterministically; see
    /// [`cachelife`]). `None` (the default) keeps the cache
    /// unbounded. Eviction never changes a simulated metric — an evicted
    /// key rebuilds its identical image on refetch.
    #[must_use]
    pub fn cache_budget(mut self, bytes: u64) -> Self {
        self.cache_budget = Some(bytes);
        self
    }

    /// Directory for on-disk LUT persistence: [`EngineBuilder::build`]
    /// warm-restores any images a previous process saved there
    /// ([`Engine::persist_cache`]), skipping their multi-hundred-
    /// millisecond rebuilds. A missing directory is a cold start; a
    /// corrupt one falls back to a cold start with the typed error kept
    /// observable via [`Engine::cache_restore_error`].
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Builds the engine (infallible: defaults are always valid,
    /// request-dependent failures surface per request, and a failed
    /// warm restore degrades to a cold cache instead of failing the
    /// build — the error stays readable via
    /// [`Engine::cache_restore_error`]).
    #[must_use]
    pub fn build(self) -> Engine {
        let mut sim = InferenceSim::upmem_server();
        sim.dist.gemm = self.gemm.clone();
        let cache = LutCache::with_budget(self.cache_budget);
        let cache_restore_error = match &self.cache_dir {
            Some(dir) => match cachelife::store::load(dir) {
                Ok(entries) => {
                    cache.restore(entries);
                    None
                }
                Err(e) => Some(e),
            },
            None => None,
        };
        Engine {
            pool: ParallelExecutor::with_config(self.threads, self.gemm.clone())
                .with_system(sim.dist.system.clone()),
            gemm: self.gemm,
            sim,
            topology: self.topology,
            method: self.method,
            bits: self.bits,
            energy: self.energy,
            cache,
            cache_dir: self.cache_dir,
            cache_restore_error,
            plan_memo: PlanMemo::default(),
        }
    }
}

/// The serving engine: one typed entry point over the planner, the
/// bank-parallel runtime, and the inference simulator, with a keyed cache
/// of the expensive canonical/reordering LUT images.
///
/// An engine is `Sync`: it serves requests from `&self`, so one instance
/// can be shared across application threads (the LUT cache is internally
/// locked).
#[derive(Debug)]
pub struct Engine {
    gemm: GemmConfig,
    pool: ParallelExecutor,
    sim: InferenceSim,
    topology: Topology,
    method: Method,
    bits: BitConfig,
    energy: EnergyModel,
    cache: LutCache,
    cache_dir: Option<PathBuf>,
    cache_restore_error: Option<StoreError>,
    plan_memo: PlanMemo,
}

/// Locks a mutex, **recovering** the data from a poisoned lock instead of
/// propagating the panic — the crate-wide policy for serving state (the
/// LUT cache, the scheduler queue/metrics/tickets): every critical
/// section leaves the guarded state valid at each panic point, so one
/// panicking worker must not wedge every other serving thread.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A kernel prepared for execution: built once, LUTs possibly from cache.
struct PreparedGemm {
    bank: BankKernel,
    plan: ShardPlan,
    method: Method,
    lut_cache: Option<CacheOutcome>,
}

impl Engine {
    /// Starts configuring an engine.
    #[must_use]
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// An engine with all defaults (see [`EngineBuilder`]).
    #[must_use]
    pub fn upmem() -> Self {
        EngineBuilder::default().build()
    }

    /// The worker count of the underlying pool.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The kernel configuration requests run under.
    #[must_use]
    pub fn gemm_config(&self) -> &GemmConfig {
        &self.gemm
    }

    /// The engine's default execution method.
    #[must_use]
    pub fn default_method(&self) -> Method {
        self.method
    }

    /// The engine's default bit configuration.
    #[must_use]
    pub fn default_bits(&self) -> BitConfig {
        self.bits
    }

    /// The engine's default bank count for GEMM requests (the topology's
    /// total).
    #[must_use]
    pub fn default_banks(&self) -> u32 {
        self.topology.total_banks()
    }

    /// The sharding topology GEMM requests default to.
    #[must_use]
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The inference simulator requests are timed on.
    #[must_use]
    pub fn sim(&self) -> &InferenceSim {
        &self.sim
    }

    /// The worker pool (for consumers that need the ordered parallel map
    /// directly).
    #[must_use]
    pub fn pool(&self) -> &ParallelExecutor {
        &self.pool
    }

    /// Running LUT-cache counters.
    #[must_use]
    pub fn lut_cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Running plan-memo counters.
    #[must_use]
    pub fn plan_memo_stats(&self) -> MemoStats {
        self.plan_memo.stats()
    }

    /// The cache directory warm restores and [`Engine::persist_cache`]
    /// use, when one was configured.
    #[must_use]
    pub fn cache_dir(&self) -> Option<&std::path::Path> {
        self.cache_dir.as_deref()
    }

    /// The typed error of a failed warm restore, if construction fell
    /// back to a cold cache (`None` after a clean restore or without a
    /// cache directory).
    #[must_use]
    pub fn cache_restore_error(&self) -> Option<&StoreError> {
        self.cache_restore_error.as_ref()
    }

    /// Persists every resident LUT image to the configured cache
    /// directory (checksummed manifest + image files; see
    /// [`cachelife::store`]), returning how many images were written. The
    /// natural call site is a drain — `serve-daemon` and `loadgen` save
    /// on exit so the next process warm-starts.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidRequest`] when no cache directory was
    /// configured; [`EngineError::Cache`] on a store failure.
    pub fn persist_cache(&self) -> Result<usize, EngineError> {
        let Some(dir) = &self.cache_dir else {
            return Err(EngineError::InvalidRequest(
                "persist_cache on an engine without a cache directory".to_owned(),
            ));
        };
        let snapshot = self.cache.snapshot();
        cachelife::store::save(dir, &snapshot)?;
        Ok(snapshot.len())
    }

    /// Plans through the bounded memo: repeated shapes return a clone of
    /// the memoized plan (bitwise equal to a recompute — planning is
    /// deterministic) instead of re-running the §V-A search.
    pub(crate) fn memo_plan(
        &self,
        dims: GemmDims,
        wf: NumericFormat,
        af: NumericFormat,
        k_slices: Option<u32>,
    ) -> Result<ExecutionPlan, LocaLutError> {
        let key = PlanKey {
            dims,
            wf,
            af,
            k_slices,
            measured: false,
        };
        self.plan_memo.get_or_plan(key, || {
            Planner::new(self.gemm.dpu.clone()).plan(dims, wf, af, k_slices)
        })
    }

    /// The measured-cost twin of [`Engine::memo_plan`] (the decode-phase
    /// path of [`Engine::session_plans`]).
    pub(crate) fn memo_plan_measured(
        &self,
        dims: GemmDims,
        wf: NumericFormat,
        af: NumericFormat,
    ) -> Result<ExecutionPlan, LocaLutError> {
        let key = PlanKey {
            dims,
            wf,
            af,
            k_slices: None,
            measured: true,
        };
        self.plan_memo.get_or_plan(key, || {
            Planner::new(self.gemm.dpu.clone()).plan_measured(dims, wf, af)
        })
    }

    /// Opens a serving session over this engine.
    #[must_use]
    pub fn session(&self) -> Session<'_> {
        Session {
            engine: self,
            stats: Stats::default(),
            energy_pj: 0,
            requests: 0,
        }
    }

    /// Executes one GEMM request functionally on the bank-parallel
    /// runtime.
    ///
    /// # Errors
    ///
    /// Shape, format, budget, or planning errors ([`EngineError`]).
    pub fn submit(&self, request: &GemmRequest) -> Result<GemmResponse, EngineError> {
        let prepared = self.prepare(request)?;
        self.execute(request, &prepared, &self.pool)
    }

    /// Serves a batch of GEMM requests: the LUT cache is warmed in
    /// request order, then the requests fan out across the worker pool
    /// (each request's bank merge runs inside one worker). Responses are
    /// bitwise identical to submitting the requests one by one.
    ///
    /// # Errors
    ///
    /// The error of the lowest-index failing request.
    pub fn submit_batch(&self, batch: &BatchGemmRequest) -> Result<BatchGemmResponse, EngineError> {
        // Deterministic cache warm-up: kernels build serially in request
        // order, so recorded hit/miss outcomes do not depend on worker
        // scheduling.
        let prepared = batch
            .requests
            .iter()
            .map(|request| self.prepare(request))
            .collect::<Result<Vec<_>, _>>()?;
        let items: Vec<(&GemmRequest, &PreparedGemm)> =
            batch.requests.iter().zip(&prepared).collect();
        // Inside a worker, each request executes its shard merge serially
        // (1-thread executor): outputs are worker-count invariant by
        // construction, so this only chooses where host parallelism goes.
        let serial = ParallelExecutor::with_config(1, self.gemm.clone())
            .with_system(self.sim.dist.system.clone());
        let results = self.pool.map(&items, |(request, prepared)| {
            self.execute(request, prepared, &serial)
        });
        let mut responses = Vec::with_capacity(results.len());
        for result in results {
            responses.push(result?);
        }
        let mut stats = Stats::default();
        let mut energy_pj = 0u128;
        for response in &responses {
            stats.merge(&response.stats);
            energy_pj += response.energy_pj;
        }
        Ok(BatchGemmResponse {
            responses,
            stats,
            energy_pj,
        })
    }

    /// Times an inference serving request end-to-end on the worker pool.
    ///
    /// # Errors
    ///
    /// Kernel feasibility errors, reported for the lowest-index failing
    /// workload; [`EngineError::InvalidRequest`] for an empty request.
    pub fn infer(&self, request: &InferenceRequest) -> Result<InferenceResponse, EngineError> {
        if request.workloads.is_empty() {
            return Err(EngineError::InvalidRequest(
                "inference request with no workloads".to_owned(),
            ));
        }
        let method = request.method.unwrap_or(self.method);
        let bits = request.bits.unwrap_or(self.bits);
        let batch = self
            .sim
            .run_batch(&self.pool, method, bits, &request.workloads)?;
        let energy = self
            .energy
            .system_energy(self.sim.dist.system.config(), &batch.merged)
            .total_j();
        Ok(InferenceResponse {
            reports: batch.reports,
            merged: batch.merged,
            stats: batch.stats,
            energy_pj: picojoules(energy),
            method,
        })
    }

    /// Plans one GEMM with the engine's configured slice count (§V-A).
    ///
    /// # Errors
    ///
    /// [`EngineError::Gemm`] when no feasible configuration exists.
    pub fn plan(&self, dims: GemmDims, bits: BitConfig) -> Result<ExecutionPlan, EngineError> {
        self.plan_with_k(dims, bits, Some(self.gemm.k_slices))
    }

    /// Plans one GEMM with an explicit slice count (`None` searches
    /// `k ∈ {1, 2, 4, 8}`).
    ///
    /// # Errors
    ///
    /// [`EngineError::Gemm`] when no feasible configuration exists.
    pub fn plan_with_k(
        &self,
        dims: GemmDims,
        bits: BitConfig,
        k_slices: Option<u32>,
    ) -> Result<ExecutionPlan, EngineError> {
        Ok(self.memo_plan(
            dims,
            bits.weight_format(),
            bits.activation_format(),
            k_slices,
        )?)
    }

    /// Analytic system-level cost of `method` at `dims` on the paper's
    /// 2048-DPU server (host + PIM phases; no data touched).
    ///
    /// # Errors
    ///
    /// Kernel feasibility errors.
    pub fn system_cost(
        &self,
        method: Method,
        dims: GemmDims,
        bits: BitConfig,
    ) -> Result<SystemProfile, EngineError> {
        Ok(self
            .sim
            .dist
            .cost(method, dims, bits.weight_format(), bits.activation_format())?)
    }

    /// Analytic per-DPU cost of a **pinned** kernel at `dims` — the cost
    /// twin of a pinned [`GemmRequest`]. Purely analytic: no LUT image is
    /// built or cached, since cost depends on dimensions alone.
    ///
    /// # Errors
    ///
    /// Budget or format errors for the pinned configuration.
    pub fn pinned_kernel_cost(
        &self,
        pin: PlanPin,
        bits: BitConfig,
        dims: GemmDims,
    ) -> Result<Profile, EngineError> {
        let (wf, af) = (bits.weight_format(), bits.activation_format());
        Ok(match pin.placement {
            Placement::BufferResident => {
                RcKernel::with_p(self.gemm.dpu.clone(), wf, af, pin.p)?.cost(dims)
            }
            Placement::Streaming => {
                StreamingKernel::new(self.gemm.dpu.clone(), wf, af, pin.p, self.gemm.k_slices)?
                    .cost(dims)
            }
        })
    }

    /// One-time initialization cost of `method` at `bits` (§V-A LUT build
    /// + broadcast), amortized across a serving session.
    ///
    /// # Errors
    ///
    /// Kernel feasibility errors.
    pub fn init_cost(&self, method: Method, bits: BitConfig) -> Result<SystemProfile, EngineError> {
        Ok(self.sim.init_cost(method, bits)?)
    }

    /// The energy model responses are priced under.
    #[must_use]
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    fn prepare(&self, request: &GemmRequest) -> Result<PreparedGemm, EngineError> {
        let dims = GemmDims::of(&request.w, &request.a)?;
        // A request-level bank override always shards flat; otherwise the
        // engine topology decides (ranked engines build two-level plans).
        let plan = match request.banks {
            Some(0) => {
                return Err(EngineError::InvalidRequest(
                    "GEMM request with zero banks".to_owned(),
                ));
            }
            Some(banks) => ShardPlan::for_banks(dims, banks),
            None => match self.topology {
                Topology::Flat(banks) => ShardPlan::for_banks(dims, banks),
                Topology::Ranked {
                    ranks,
                    banks_per_rank,
                } => ShardPlan::for_ranks(dims, ranks, banks_per_rank),
            },
        };
        let wf = request.w.format();
        let af = request.a.format();
        let (bank, method, lut_cache) = if let Some(pin) = request.pin {
            // A pin chooses among the LUT kernels; combining it with an
            // explicitly LUT-free method is contradictory, not a default
            // to silently override.
            if let Some(method) = request.method {
                if !matches!(method, Method::OpLcRc | Method::LoCaLut) {
                    return Err(EngineError::InvalidRequest(format!(
                        "plan pin on LUT-free method {method}"
                    )));
                }
            }
            let (bank, outcome) = self.pinned_kernel(pin, wf, af)?;
            let method = match pin.placement {
                Placement::BufferResident => Method::OpLcRc,
                Placement::Streaming => Method::LoCaLut,
            };
            (bank, method, Some(outcome))
        } else {
            let method = request.method.unwrap_or(self.method);
            let (bank, outcome) = self.bank_kernel(method, wf, af, dims)?;
            (bank, method, outcome)
        };
        Ok(PreparedGemm {
            bank,
            plan,
            method,
            lut_cache,
        })
    }

    fn execute(
        &self,
        request: &GemmRequest,
        prepared: &PreparedGemm,
        executor: &ParallelExecutor,
    ) -> Result<GemmResponse, EngineError> {
        let par =
            executor.execute_plan_with(&prepared.plan, &prepared.bank, &request.w, &request.a)?;
        let energy_pj = picojoules(par.energy(&self.energy).total_j());
        let checksum = par.checksum();
        Ok(GemmResponse {
            values: par.values,
            dims: par.dims,
            method: prepared.method,
            stats: par.stats,
            profile: par.profile,
            per_bank: par.per_bank,
            energy_pj,
            checksum,
            lut_cache: prepared.lut_cache,
        })
    }

    /// Builds the kernel `method` would use, sourcing shared LUT images
    /// from the cache and §V-A plans from the memo —
    /// [`BankKernel::build_planned`] keeps the method dispatch identical
    /// to the serial path's [`BankKernel::build`]; only the LUT and plan
    /// sources differ, and both are deterministic.
    fn bank_kernel(
        &self,
        method: Method,
        wf: NumericFormat,
        af: NumericFormat,
        dims: GemmDims,
    ) -> Result<(BankKernel, Option<CacheOutcome>), EngineError> {
        let mut recorded = None;
        let bank = BankKernel::build_planned(
            &self.gemm,
            method,
            wf,
            af,
            dims,
            |wf, af, p, placement| {
                let (luts, outcome) = self.cache.get_or_build(LutKey {
                    wf,
                    af,
                    p,
                    placement,
                })?;
                recorded = Some(outcome);
                Ok(luts)
            },
            |dims, wf, af, k_slices| self.memo_plan(dims, wf, af, k_slices),
        )?;
        Ok((bank, recorded))
    }

    fn pinned_kernel(
        &self,
        pin: PlanPin,
        wf: NumericFormat,
        af: NumericFormat,
    ) -> Result<(BankKernel, CacheOutcome), EngineError> {
        let (luts, outcome) = self.cache.get_or_build(LutKey {
            wf,
            af,
            p: pin.p,
            placement: pin.placement,
        })?;
        let bank = match pin.placement {
            Placement::BufferResident => BankKernel::with_shared_luts(
                RcKernel::with_p(self.gemm.dpu.clone(), wf, af, pin.p)?,
                luts,
            ),
            Placement::Streaming => BankKernel::with_shared_luts(
                StreamingKernel::new(self.gemm.dpu.clone(), wf, af, pin.p, self.gemm.k_slices)?,
                luts,
            ),
        };
        Ok((bank, outcome))
    }
}

/// A serving session: accumulates merged statistics, energy, and request
/// counts across the typed calls it forwards to its [`Engine`].
///
/// # Examples
///
/// ```
/// use engine::{Engine, GemmRequest};
/// use quant::{NumericFormat, QMatrix};
///
/// let engine = Engine::builder().threads(2).banks(2).build();
/// let mut session = engine.session();
/// for seed in 0..3 {
///     let w = QMatrix::pseudo_random(8, 12, NumericFormat::Int(2), seed);
///     let a = QMatrix::pseudo_random(12, 4, NumericFormat::Int(3), seed + 100);
///     session.submit(&GemmRequest::new(w, a))?;
/// }
/// assert_eq!(session.requests(), 3);
/// assert!(session.energy_pj() > 0);
/// # Ok::<(), engine::EngineError>(())
/// ```
#[derive(Debug)]
pub struct Session<'e> {
    engine: &'e Engine,
    stats: Stats,
    energy_pj: u128,
    requests: usize,
}

impl Session<'_> {
    /// Executes one GEMM request and folds it into the session aggregate.
    ///
    /// # Errors
    ///
    /// See [`Engine::submit`]. Failed requests leave the aggregate
    /// untouched.
    pub fn submit(&mut self, request: &GemmRequest) -> Result<GemmResponse, EngineError> {
        let response = self.engine.submit(request)?;
        self.stats.merge(&response.stats);
        self.energy_pj += response.energy_pj;
        self.requests += 1;
        Ok(response)
    }

    /// Serves a GEMM batch and folds it into the session aggregate.
    ///
    /// # Errors
    ///
    /// See [`Engine::submit_batch`]. Failed batches leave the aggregate
    /// untouched.
    pub fn submit_batch(
        &mut self,
        batch: &BatchGemmRequest,
    ) -> Result<BatchGemmResponse, EngineError> {
        let response = self.engine.submit_batch(batch)?;
        self.stats.merge(&response.stats);
        self.energy_pj += response.energy_pj;
        self.requests += response.requests();
        Ok(response)
    }

    /// Serves an inference request and folds it into the session
    /// aggregate.
    ///
    /// # Errors
    ///
    /// See [`Engine::infer`]. Failed requests leave the aggregate
    /// untouched.
    pub fn infer(&mut self, request: &InferenceRequest) -> Result<InferenceResponse, EngineError> {
        let response = self.engine.infer(request)?;
        self.stats.merge(&response.stats);
        self.energy_pj += response.energy_pj;
        self.requests += response.requests();
        Ok(response)
    }

    /// The engine this session serves on.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// Merged statistics over every successful request.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Total modeled energy over every successful request, picojoules.
    #[must_use]
    pub fn energy_pj(&self) -> u128 {
        self.energy_pj
    }

    /// Number of requests served (batch members count individually).
    #[must_use]
    pub fn requests(&self) -> usize {
        self.requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant::QMatrix;

    fn operands(seed: u64) -> (QMatrix, QMatrix) {
        (
            QMatrix::pseudo_random(10, 18, NumericFormat::Int(2), seed),
            QMatrix::pseudo_random(18, 6, NumericFormat::Int(3), seed + 7),
        )
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let engine = Engine::builder()
            .threads(0) // clamped
            .banks(0) // clamped
            .method(Method::Op)
            .k_slices(4)
            .build();
        assert_eq!(engine.threads(), 1);
        assert_eq!(engine.default_method(), Method::Op);
        assert_eq!(engine.gemm_config().k_slices, 4);
        // The inference simulator inherits the kernel configuration.
        assert_eq!(engine.sim().dist.gemm.k_slices, 4);
    }

    #[test]
    fn lut_free_methods_record_no_cache_outcome() {
        let engine = Engine::builder().threads(1).banks(2).build();
        let (w, a) = operands(3);
        let response = engine
            .submit(&GemmRequest::new(w, a).with_method(Method::NaivePim))
            .unwrap();
        assert_eq!(response.lut_cache, None);
        assert_eq!(engine.lut_cache_stats().lookups(), 0);
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let engine = Engine::builder().threads(2).banks(4).build();
        let (w, a) = operands(5);
        let first = engine
            .submit(&GemmRequest::new(w.clone(), a.clone()))
            .unwrap();
        let second = engine.submit(&GemmRequest::new(w, a)).unwrap();
        assert_eq!(first.lut_cache, Some(CacheOutcome::Miss));
        assert_eq!(second.lut_cache, Some(CacheOutcome::Hit));
        let (f, s) = (first, second);
        // Bitwise identical response, modulo the recorded cache outcome.
        assert_eq!(f.values, s.values);
        assert_eq!(f.stats, s.stats);
        assert_eq!(f.profile, s.profile);
        assert_eq!(f.energy_pj, s.energy_pj);
        assert_eq!(f.checksum, s.checksum);
        let stats = engine.lut_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.resident_bytes > 0, "cached LUTs occupy bytes");
    }

    #[test]
    fn pin_on_lut_free_method_is_rejected() {
        use localut::plan::Placement;
        let engine = Engine::upmem();
        let (w, a) = operands(13);
        let pin = PlanPin {
            placement: Placement::BufferResident,
            p: 3,
        };
        let err = engine
            .submit(
                &GemmRequest::new(w.clone(), a.clone())
                    .with_method(Method::NaivePim)
                    .with_pin(pin),
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidRequest(_)));
        // The LUT methods compose with a pin.
        assert!(engine
            .submit(
                &GemmRequest::new(w, a)
                    .with_method(Method::OpLcRc)
                    .with_pin(pin)
            )
            .is_ok());
    }

    #[test]
    fn pinned_cost_is_analytic_and_touches_no_cache() {
        use localut::plan::Placement;
        let engine = Engine::upmem();
        let profile = engine
            .pinned_kernel_cost(
                PlanPin {
                    placement: Placement::BufferResident,
                    p: 3,
                },
                BitConfig { bw: 2, ba: 3 },
                GemmDims { m: 8, k: 12, n: 4 },
            )
            .unwrap();
        assert!(profile.total_seconds() > 0.0);
        assert_eq!(engine.lut_cache_stats().lookups(), 0);
    }

    #[test]
    fn ranked_engines_shard_hierarchically_and_charge_the_link() {
        let flat = Engine::builder().threads(2).banks(12).build();
        let ranked = Engine::builder().threads(2).ranks(3, 4).build();
        assert_eq!(ranked.default_banks(), 12);
        assert_eq!(
            ranked.topology(),
            Topology::Ranked {
                ranks: 3,
                banks_per_rank: 4
            }
        );
        let (w, a) = operands(21);
        let f = flat
            .submit(&GemmRequest::new(w.clone(), a.clone()))
            .unwrap();
        let r = ranked
            .submit(&GemmRequest::new(w.clone(), a.clone()))
            .unwrap();
        // Same math, same shards: values and checksum are bit-identical.
        assert_eq!(f.values, r.values);
        assert_eq!(f.checksum, r.checksum);
        assert_eq!(f.per_bank.len(), r.per_bank.len());
        // The ranked engine additionally charges the rank-bus phase, so
        // its merged statistics strictly dominate the flat fold.
        assert_eq!(f.stats.banks(), r.stats.banks());
        assert!(r.stats.total_seconds() > f.stats.total_seconds());
        // A per-request bank override shards flat even on a ranked
        // engine: the response matches the flat engine's bitwise.
        let overridden = ranked
            .submit(&GemmRequest::new(w, a).with_banks(12))
            .unwrap();
        assert_eq!(overridden.stats, f.stats);
        assert_eq!(overridden.values, f.values);
    }

    #[test]
    fn topology_arguments_are_clamped() {
        let engine = Engine::builder().ranks(0, 0).build();
        assert_eq!(
            engine.topology(),
            Topology::Ranked {
                ranks: 1,
                banks_per_rank: 1
            }
        );
        let direct = Engine::builder().topology(Topology::Flat(0)).build();
        assert_eq!(direct.topology(), Topology::Flat(1));
        assert_eq!(direct.default_banks(), 1);
    }

    #[test]
    fn zero_bank_override_is_rejected() {
        let engine = Engine::upmem();
        let (w, a) = operands(9);
        let err = engine
            .submit(&GemmRequest::new(w, a).with_banks(0))
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidRequest(_)));
    }

    #[test]
    fn empty_inference_request_is_rejected() {
        let engine = Engine::upmem();
        let err = engine
            .infer(&InferenceRequest::serving(vec![]))
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidRequest(_)));
    }

    #[test]
    fn infeasible_formats_error_through_engine_error() {
        let engine = Engine::upmem();
        let w = QMatrix::pseudo_random(4, 4, NumericFormat::Int(16), 1);
        let a = QMatrix::pseudo_random(4, 2, NumericFormat::Int(16), 2);
        let err = engine.submit(&GemmRequest::new(w, a)).unwrap_err();
        assert!(matches!(err, EngineError::Gemm(_)));
    }

    #[test]
    fn session_accumulates_across_request_kinds() {
        let engine = Engine::builder().threads(2).banks(2).build();
        let mut session = engine.session();
        let (w, a) = operands(11);
        let solo = session
            .submit(&GemmRequest::new(w.clone(), a.clone()))
            .unwrap();
        let batch = session
            .submit_batch(&BatchGemmRequest::new(vec![
                GemmRequest::new(w.clone(), a.clone()),
                GemmRequest::new(w, a),
            ]))
            .unwrap();
        assert_eq!(session.requests(), 3);
        let mut expect = solo.stats.clone();
        expect.merge(&batch.stats);
        assert_eq!(session.stats(), &expect);
        assert_eq!(session.energy_pj(), solo.energy_pj + batch.energy_pj);
    }
}
