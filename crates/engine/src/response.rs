//! Typed responses: values, merged statistics, energy, and checksums.
//!
//! Everything in a response is **deterministic**: integer-femtosecond
//! statistics, picojoule energy (rounded once from the f64 model at
//! ingest), and an FNV-1a fingerprint of functional output — two runs of
//! one request, at any worker count, return identical responses.

use crate::cache::CacheOutcome;
use dnn::InferenceReport;
use localut::{GemmDims, Method};
use pim_sim::{Profile, Stats, SystemProfile};
use runtime::BankResult;

/// Converts modeled Joules to integer picojoules (round-to-nearest) — the
/// single f64→integer crossing of engine responses and perf reports,
/// applied once at ingest so serialized metrics stay exact from then on.
#[must_use]
pub fn picojoules(joules: f64) -> u128 {
    debug_assert!(joules >= 0.0 && joules.is_finite(), "bad energy {joules}");
    (joules * 1e12).round() as u128
}

/// The result of one [`crate::request::GemmRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct GemmResponse {
    /// Row-major `M×N` integer outputs (bit-identical to the serial path).
    pub values: Vec<i32>,
    /// Full GEMM dimensions.
    pub dims: GemmDims,
    /// The method that executed (after applying engine defaults; pinned
    /// requests report the method class of the pinned kernel).
    pub method: Method,
    /// Associative merge of the per-bank statistics — identical for every
    /// merge order and worker count.
    pub stats: Stats,
    /// Deterministic fold of the per-bank profiles in shard order.
    pub profile: Profile,
    /// Per-bank shard results in shard order.
    pub per_bank: Vec<BankResult>,
    /// Modeled energy of the bank fleet, in picojoules.
    pub energy_pj: u128,
    /// FNV-1a fingerprint of `values` ([`runtime::values_checksum`]).
    pub checksum: u64,
    /// Whether the shared LUT images came from the engine cache (`None`
    /// for LUT-free methods, which have no shared image).
    pub lut_cache: Option<CacheOutcome>,
}

/// The result of one [`crate::request::BatchGemmRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchGemmResponse {
    /// Per-request responses, in request order.
    pub responses: Vec<GemmResponse>,
    /// Associative merge of every response's statistics.
    pub stats: Stats,
    /// Sum of per-response energies, in picojoules.
    pub energy_pj: u128,
}

impl BatchGemmResponse {
    /// Number of requests served.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.responses.len()
    }

    /// FNV-1a fold of the per-response checksums, in request order — one
    /// fingerprint for the whole batch ([`runtime::fnv1a_64`]).
    #[must_use]
    pub fn checksum(&self) -> u64 {
        runtime::fnv1a_64(self.responses.iter().flat_map(|r| r.checksum.to_le_bytes()))
    }
}

/// The result of one [`crate::request::InferenceRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResponse {
    /// Per-workload end-to-end reports, in request order.
    pub reports: Vec<InferenceReport>,
    /// Deterministic request-order fold of the per-request profiles.
    pub merged: SystemProfile,
    /// Associative merge of per-request statistics (one ingest per
    /// request, so `stats.banks()` counts requests).
    pub stats: Stats,
    /// Modeled system energy over the merged profile, in picojoules.
    pub energy_pj: u128,
    /// The method that executed (after applying engine defaults).
    pub method: Method,
}

impl InferenceResponse {
    /// Total serving-session seconds (requests serialize on the UPMEM
    /// host, so the session time is the sum).
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.reports
            .iter()
            .map(InferenceReport::total_seconds)
            .sum()
    }

    /// Number of workloads served.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.reports.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picojoules_rounds_once() {
        assert_eq!(picojoules(0.0), 0);
        assert_eq!(picojoules(1.0), 1_000_000_000_000);
        assert_eq!(picojoules(1.4e-12), 1);
        assert_eq!(picojoules(0.4e-12), 0);
    }
}
