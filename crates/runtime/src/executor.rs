//! The bank-parallel executor: a scoped-thread worker pool over a
//! [`ShardPlan`].
//!
//! Each worker owns a *bank-local* simulator context — the per-shard
//! [`BankKernel::run`] constructs its own `pim_sim` DPU ledger, so no
//! simulated state is shared between banks — while the expensive canonical
//! and reordering LUT images are shared read-only through the
//! [`BankKernel`]'s internal `Arc`s (one build, N readers, as the §V-A
//! broadcast works on hardware). All kernel dispatch goes through the
//! `localut::kernels::LutKernel` trait object the `BankKernel` wraps; the
//! executor never matches on a method. Before fanning out, it resolves one
//! `localut::codes::ActivationPanel` per activation column band through
//! the trait's `resolve_panel` hook, so row-sharded banks of a band share
//! the activation-side group resolution instead of each redoing it
//! (bitwise-identical results, DESIGN.md §12).
//!
//! Scheduling is work stealing: each worker owns a deque seeded with a
//! contiguous block of shard ids, drains it from the front, and — once
//! empty — steals the back half of a sibling's deque in one chunk of
//! whole bank-shards, so ragged tile grids (2048-shard plans have edge
//! tiles) cannot serialize the tail behind one worker.
//!
//! Determinism: results are keyed by shard id wherever they are produced,
//! and both the value scatter and every ledger fold run in ascending
//! shard id order after the pool joins — for ranked plans as a per-rank
//! merge tree whose exact associativity makes it equal to the flat fold.
//! Thread scheduling and steal timing therefore cannot change any output
//! bit, and the 1-thread execution of the same plan is bitwise identical
//! to the N-thread one.

use crate::shard::{Shard, ShardPlan};
use localut::gemm::{GemmConfig, GemmDims};
use localut::kernels::BankKernel;
use localut::{LocaLutError, Method};
use pim_sim::{CycleLedger, EnergyBreakdown, EnergyModel, PimSystem, Profile, Stats};
use quant::QMatrix;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks one of the executor's internal scheduling mutexes. No user code
/// ever runs under these locks (they guard index deques manipulated with
/// plain `VecDeque` operations), so a poisoned lock still holds a valid
/// queue — recover it rather than compounding one worker's panic.
fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One bank's contribution to a parallel GEMM.
#[derive(Debug, Clone, PartialEq)]
pub struct BankResult {
    /// The shard this bank executed.
    pub shard: Shard,
    /// The bank's simulated time/event profile for its tile.
    pub profile: Profile,
}

/// The merged output of a bank-parallel GEMM execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelGemm {
    /// Row-major `M×N` integer outputs (bit-identical to the serial path).
    pub values: Vec<i32>,
    /// Full GEMM dimensions.
    pub dims: GemmDims,
    /// Per-bank profiles in shard order.
    pub per_bank: Vec<BankResult>,
    /// Deterministic fold of the per-bank profiles in shard order (the
    /// aggregate simulated bank time; on real hardware banks overlap, so
    /// this is total bank *work*, and the critical path is the max).
    pub profile: Profile,
    /// Associative merge of the per-bank statistics — identical for every
    /// merge order and thread count by construction. For ranked plans
    /// this is the **rank merge tree** (banks fold into per-rank ledgers,
    /// ranks fold into one — exactly equal to the flat fold, pinned by
    /// tests) plus the [`ParallelGemm::link_phase`] contention term,
    /// merged as a phase (it does not count toward [`Stats::banks`]).
    pub stats: Stats,
    /// Per-rank statistics in rank order, one entry per populated rank of
    /// the plan's [`crate::RankPlan`] — the intermediate level of the
    /// merge tree. Empty for flat plans.
    pub rank_stats: Vec<Stats>,
    /// The rank-bus contention phase ([`PimSystem::rank_link_profile`]
    /// over each rank's transfer counters): the busiest rank's host-link
    /// occupancy. Already merged into [`ParallelGemm::stats`]; `None` for
    /// flat plans.
    pub link_phase: Option<Profile>,
}

/// FNV-1a over a byte stream — the **one** checksum primitive of the
/// workspace. Every deterministic fingerprint (functional GEMM outputs
/// here, batch fingerprints in the `engine` crate, the perf reports'
/// `values_checksum` column) routes through this function so the hash
/// constants exist exactly once.
///
/// # Examples
///
/// ```
/// use runtime::fnv1a_64;
///
/// // The FNV-1a offset basis hashes the empty stream.
/// assert_eq!(fnv1a_64([]), 0xcbf2_9ce4_8422_2325);
/// assert_ne!(fnv1a_64([1u8, 2]), fnv1a_64([2u8, 1])); // order-sensitive
/// ```
#[must_use]
pub fn fnv1a_64<I: IntoIterator<Item = u8>>(bytes: I) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// [`fnv1a_64`] over the little-endian bytes of a value vector: a compact,
/// deterministic fingerprint of a functional output. Perf reports record
/// it so a kernel "optimization" that silently changes results is caught
/// by the regression gate, not just by the (slower) e2e test suite.
///
/// # Examples
///
/// ```
/// use runtime::values_checksum;
///
/// let a = values_checksum(&[1, 2, 3]);
/// assert_eq!(a, values_checksum(&[1, 2, 3])); // deterministic
/// assert_ne!(a, values_checksum(&[1, 2, 4])); // value-sensitive
/// assert_ne!(a, values_checksum(&[3, 2, 1])); // order-sensitive
/// ```
#[must_use]
pub fn values_checksum(values: &[i32]) -> u64 {
    fnv1a_64(values.iter().flat_map(|v| v.to_le_bytes()))
}

impl ParallelGemm {
    /// [`values_checksum`] of this GEMM's merged output values.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        values_checksum(&self.values)
    }

    /// The simulated critical path across banks: the slowest bank's time
    /// (banks run concurrently on hardware; the host phases the system
    /// model adds are outside this kernel-level view).
    #[must_use]
    pub fn critical_path_seconds(&self) -> f64 {
        self.per_bank
            .iter()
            .map(|b| b.profile.total_seconds())
            .fold(0.0, f64::max)
    }

    /// Total simulated bank work (sum over banks).
    #[must_use]
    pub fn total_bank_seconds(&self) -> f64 {
        self.profile.total_seconds()
    }

    /// Energy of the bank fleet under `model`: dynamic energy from the
    /// merged event counters (per-event energies are additive across
    /// banks) plus static energy for the banks drawing power over the
    /// concurrent execution's critical path.
    #[must_use]
    pub fn energy(&self, model: &EnergyModel) -> EnergyBreakdown {
        EnergyBreakdown {
            pim_static_j: self.per_bank.len() as f64
                * model.dpu_static_w
                * self.critical_path_seconds(),
            pim_dynamic_j: model.dpu_dynamic_j(&self.profile),
            host_static_j: 0.0,
            host_dynamic_j: 0.0,
        }
    }
}

/// A bank-parallel GEMM executor: `threads` workers over shard plans.
///
/// # Examples
///
/// Bit-exactness against the serial path, and — for a fixed shard plan —
/// bitwise invariance of every output under the worker count:
///
/// ```
/// use localut::{GemmConfig, GemmDims, Method};
/// use quant::{NumericFormat, Quantizer};
/// use runtime::{ParallelExecutor, ShardPlan};
///
/// let wq = Quantizer::symmetric(NumericFormat::Int(2));
/// let aq = Quantizer::symmetric(NumericFormat::Int(3));
/// let w = wq.quantize_matrix(&[1.0, -1.0, 0.5, -0.5, 1.0, 0.0], 2, 3)?;
/// let a = aq.quantize_matrix(&[3.0, -3.0, 1.0, 0.0, -2.0, 2.0], 3, 2)?;
///
/// let serial = GemmConfig::upmem().run(Method::OpLcRc, &w, &a)?;
/// let plan = ShardPlan::for_banks(GemmDims::of(&w, &a)?, 4);
/// let one = ParallelExecutor::new(1).execute_plan(&plan, Method::OpLcRc, &w, &a)?;
/// let four = ParallelExecutor::new(4).execute_plan(&plan, Method::OpLcRc, &w, &a)?;
/// assert_eq!(one.values, serial.values);
/// assert_eq!(four.values, serial.values);
/// assert_eq!(four.profile, one.profile); // bitwise, any worker count
/// assert_eq!(four.stats, one.stats);
/// # Ok::<(), localut::LocaLutError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParallelExecutor {
    threads: usize,
    gemm: GemmConfig,
    system: PimSystem,
}

impl ParallelExecutor {
    /// An executor with `threads` workers (clamped to at least 1) and the
    /// default UPMEM kernel configuration.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self::with_config(threads, GemmConfig::upmem())
    }

    /// An executor with an explicit kernel configuration and the default
    /// UPMEM system topology (used only by ranked plans, for the
    /// rank-bus contention term).
    #[must_use]
    pub fn with_config(threads: usize, gemm: GemmConfig) -> Self {
        ParallelExecutor {
            threads: threads.max(1),
            gemm,
            system: PimSystem::upmem_server(),
        }
    }

    /// Replaces the system model ranked plans charge their rank-bus
    /// contention under. Flat plans never consult it.
    #[must_use]
    pub fn with_system(mut self, system: PimSystem) -> Self {
        self.system = system;
        self
    }

    /// The worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The kernel configuration workers run.
    #[must_use]
    pub fn gemm_config(&self) -> &GemmConfig {
        &self.gemm
    }

    /// The system model ranked plans price host-link contention under.
    #[must_use]
    pub fn system(&self) -> &PimSystem {
        &self.system
    }

    /// Executes `method` on one shard per worker (a `threads`-bank plan).
    ///
    /// # Errors
    ///
    /// Shape, format, budget, or planning errors.
    pub fn execute(
        &self,
        method: Method,
        w: &QMatrix,
        a: &QMatrix,
    ) -> Result<ParallelGemm, LocaLutError> {
        let dims = GemmDims::of(w, a)?;
        let plan = ShardPlan::for_banks(dims, u32::try_from(self.threads).unwrap_or(u32::MAX));
        self.execute_plan(&plan, method, w, a)
    }

    /// Executes `method` over an explicit shard plan; shards are dealt to
    /// the workers round-robin, so a plan may model many more banks than
    /// there are host threads.
    ///
    /// # Errors
    ///
    /// Shape, format, budget, or planning errors;
    /// [`LocaLutError::ShardPlanMismatch`] when the plan was built for
    /// different dimensions than the operands; shard errors are reported
    /// for the lowest-id failing shard.
    pub fn execute_plan(
        &self,
        plan: &ShardPlan,
        method: Method,
        w: &QMatrix,
        a: &QMatrix,
    ) -> Result<ParallelGemm, LocaLutError> {
        let dims = GemmDims::of(w, a)?;
        let bank = BankKernel::build(&self.gemm, method, w.format(), a.format(), dims)?;
        self.execute_plan_with(plan, &bank, w, a)
    }

    /// Executes a **prebuilt** bank kernel over an explicit shard plan —
    /// the injection point the `engine` crate's LUT cache uses: callers
    /// that already hold a [`BankKernel`] (e.g. one whose shared LUT
    /// images came from a cache rather than a fresh build) skip the
    /// per-call plan-and-build that [`ParallelExecutor::execute_plan`]
    /// performs, while the sharding, scatter, and merge stay identical.
    ///
    /// # Errors
    ///
    /// Shape or format errors;
    /// [`LocaLutError::ShardPlanMismatch`] when the plan was built for
    /// different dimensions than the operands; shard errors are reported
    /// for the lowest-id failing shard.
    pub fn execute_plan_with(
        &self,
        plan: &ShardPlan,
        bank: &BankKernel,
        w: &QMatrix,
        a: &QMatrix,
    ) -> Result<ParallelGemm, LocaLutError> {
        let dims = GemmDims::of(w, a)?;
        if plan.dims() != dims {
            return Err(LocaLutError::ShardPlanMismatch {
                plan: plan.dims(),
                operands: dims,
            });
        }

        // Hoist one weight tile per distinct row band and one activation
        // tile per distinct column band: every shard in a band runs
        // against the same full-K operand slice, so the copies are shared
        // instead of re-sliced per shard.
        let mut row_bands: Vec<(Range<usize>, QMatrix)> = Vec::new();
        let mut col_bands: Vec<(Range<usize>, QMatrix)> = Vec::new();
        let shards: Vec<(&Shard, usize, usize)> = plan
            .shards()
            .iter()
            .map(|shard| {
                let row = row_bands
                    .iter()
                    .position(|(r, _)| *r == shard.rows)
                    .unwrap_or_else(|| {
                        row_bands.push((
                            shard.rows.clone(),
                            w.submatrix(shard.rows.clone(), 0..dims.k),
                        ));
                        row_bands.len() - 1
                    });
                let col = col_bands
                    .iter()
                    .position(|(c, _)| *c == shard.cols)
                    .unwrap_or_else(|| {
                        col_bands.push((
                            shard.cols.clone(),
                            a.submatrix(0..dims.k, shard.cols.clone()),
                        ));
                        col_bands.len() - 1
                    });
                (shard, row, col)
            })
            .collect();

        // Resolve one activation panel per column band: every row shard in
        // a band consumes the same activation columns, so the per-group
        // canonicalization (unpack → sort → rank) runs once per band here
        // instead of once per bank inside the kernel. Kernels without a
        // panel form return `None` and run unchanged; results are bitwise
        // identical either way.
        let panels = col_bands
            .iter()
            .map(|(_, a_tile)| bank.resolve_panel(a_tile))
            .collect::<Result<Vec<_>, _>>()?;

        let results = self.map(&shards, |&(_, row, col)| {
            bank.run_panel(&row_bands[row].1, &col_bands[col].1, panels[col].as_ref())
        });

        // Deterministic merge, ascending shard id. The profile fold
        // accumulates one mutable ledger by reference — at 2048 shards,
        // the previous `Profile::merged` fold cloned the accumulator once
        // per bank.
        let mut values = vec![0i32; dims.m * dims.n];
        let mut per_bank = Vec::with_capacity(plan.len());
        let mut work = CycleLedger::new();
        for (shard, result) in plan.shards().iter().zip(results) {
            let tile = result?;
            let tile_n = shard.cols.len();
            for (i, r) in shard.rows.clone().enumerate() {
                let dst = r * dims.n + shard.cols.start;
                values[dst..dst + tile_n]
                    .copy_from_slice(&tile.values[i * tile_n..(i + 1) * tile_n]);
            }
            work.merge(tile.profile.ledger());
            per_bank.push(BankResult {
                shard: shard.clone(),
                profile: tile.profile,
            });
        }
        let profile = Profile::from_ledger(work);

        // Statistics: a flat plan folds every bank into one aggregate; a
        // ranked plan folds hierarchically — banks into their rank's
        // ledger, ranks into the total (bitwise identical by the merge's
        // exact associativity) — and then charges the rank-bus contention
        // phase from the per-rank transfer counters.
        let mut stats = Stats::default();
        let mut rank_stats = Vec::new();
        let mut link_phase = None;
        match plan.rank_plan() {
            None => {
                for bank in &per_bank {
                    stats.merge(&Stats::from_profile(&bank.profile));
                }
            }
            Some(ranks) => {
                rank_stats.reserve(ranks.populated());
                for owned in ranks.assignments() {
                    let mut rank = Stats::default();
                    for bank in &per_bank[owned.clone()] {
                        rank.merge(&Stats::from_profile(&bank.profile));
                    }
                    stats.merge(&rank);
                    rank_stats.push(rank);
                }
                // Every byte entering or leaving a bank's DRAM was staged
                // over its rank's shared host link; the busiest rank's
                // occupancy bounds the epoch.
                let per_rank_bytes: Vec<u64> = rank_stats
                    .iter()
                    .map(|rank| {
                        u64::try_from(rank.dram_read_bytes + rank.dram_write_bytes)
                            .unwrap_or(u64::MAX)
                    })
                    .collect();
                let link = self.system.rank_link_profile(&per_rank_bytes);
                stats.merge(&Stats::from_phase_ledger(link.ledger()));
                link_phase = Some(link);
            }
        }

        Ok(ParallelGemm {
            values,
            dims,
            per_bank,
            profile,
            stats,
            rank_stats,
            link_phase,
        })
    }

    /// Ordered parallel map: applies `f` to every item on the worker pool
    /// and returns the results in item order, regardless of scheduling —
    /// the building block batched multi-request serving uses.
    ///
    /// Scheduling is **work stealing**: every worker owns a deque seeded
    /// with a contiguous block of item indices; it drains its own deque
    /// from the front and, when empty, steals the back half of a sibling's
    /// deque (whole items — at full-machine scale, whole bank-shards — in
    /// one chunk, so a steal amortizes its synchronization). Ragged work
    /// therefore cannot serialize the tail behind one unlucky worker.
    /// Results are keyed by item index and assembled ascending after the
    /// pool joins, so *who* executed an item can never change any output
    /// bit.
    ///
    /// # Panics
    ///
    /// Panics if `f` panics on a worker thread.
    ///
    /// # Examples
    ///
    /// ```
    /// use runtime::ParallelExecutor;
    ///
    /// let pool = ParallelExecutor::new(3);
    /// let squares = pool.map(&[1, 2, 3, 4, 5], |&x| x * x);
    /// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
    /// ```
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        // With more workers than items, the surplus workers would have
        // nothing to own or steal — don't spawn threads for them.
        let workers = self.threads.min(items.len().max(1));
        // Seed each worker's deque with a contiguous index block (the
        // first `rem` workers take one extra so blocks differ by ≤ 1).
        let base = items.len() / workers;
        let rem = items.len() % workers;
        let mut start = 0;
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                let len = base + usize::from(w < rem);
                let block = (start..start + len).collect();
                start += len;
                Mutex::new(block)
            })
            .collect();

        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(items.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|wid| {
                    let (deques, f) = (&deques, &f);
                    scope.spawn(move || {
                        let mut produced: Vec<(usize, R)> = Vec::new();
                        'work: loop {
                            // Drain the owned deque front-to-back.
                            while let Some(idx) = lock_clean(&deques[wid]).pop_front() {
                                produced.push((idx, f(&items[idx])));
                            }
                            // Empty: scan siblings (nearest first) and
                            // steal the back half of the first non-empty
                            // deque found, as one chunk.
                            for step in 1..workers {
                                let victim = (wid + step) % workers;
                                let mut stolen = {
                                    let mut queue = lock_clean(&deques[victim]);
                                    let keep = queue.len() - queue.len() / 2;
                                    queue.split_off(keep)
                                };
                                if !stolen.is_empty() {
                                    lock_clean(&deques[wid]).append(&mut stolen);
                                    continue 'work;
                                }
                            }
                            // Every deque is empty; in-flight items are
                            // owned by the workers running them.
                            break produced;
                        }
                    })
                })
                .collect();
            for handle in handles {
                for (idx, result) in handle.join().expect("map worker panicked") {
                    slots[idx] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every item was mapped"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant::NumericFormat;

    fn operands(m: usize, k: usize, n: usize, seed: u64) -> (QMatrix, QMatrix) {
        (
            QMatrix::pseudo_random(m, k, NumericFormat::Int(2), seed),
            QMatrix::pseudo_random(k, n, NumericFormat::Int(3), seed.wrapping_add(1)),
        )
    }

    #[test]
    fn execute_matches_serial_for_all_methods() {
        let (w, a) = operands(8, 12, 6, 42);
        let cfg = GemmConfig::upmem();
        for method in Method::ALL {
            let serial = cfg.run(method, &w, &a).unwrap();
            let par = ParallelExecutor::new(4).execute(method, &w, &a).unwrap();
            assert_eq!(par.values, serial.values, "{method}");
            assert!(par.per_bank.len() <= 4);
            assert!(par.stats.banks() as usize == par.per_bank.len());
        }
    }

    #[test]
    fn thread_count_does_not_change_any_output() {
        let (w, a) = operands(9, 15, 7, 7);
        let dims = GemmDims::of(&w, &a).unwrap();
        let plan = ShardPlan::for_banks(dims, 8);
        let baseline = ParallelExecutor::new(1)
            .execute_plan(&plan, Method::LoCaLut, &w, &a)
            .unwrap();
        for threads in [2usize, 3, 5, 8, 16] {
            let par = ParallelExecutor::new(threads)
                .execute_plan(&plan, Method::LoCaLut, &w, &a)
                .unwrap();
            assert_eq!(par, baseline, "threads = {threads}");
        }
    }

    #[test]
    fn critical_path_bounded_by_total_work() {
        let (w, a) = operands(16, 8, 8, 3);
        let par = ParallelExecutor::new(4)
            .execute(Method::OpLcRc, &w, &a)
            .unwrap();
        let cp = par.critical_path_seconds();
        assert!(cp > 0.0);
        assert!(cp <= par.total_bank_seconds());
        // With >1 bank, the critical path is strictly below total work.
        if par.per_bank.len() > 1 {
            assert!(cp < par.total_bank_seconds());
        }
    }

    #[test]
    fn merged_stats_equal_profile_fold() {
        let (w, a) = operands(6, 10, 4, 11);
        let par = ParallelExecutor::new(2)
            .execute(Method::LoCaLut, &w, &a)
            .unwrap();
        let mut expect = Stats::default();
        for bank in &par.per_bank {
            expect.merge(&Stats::from_profile(&bank.profile));
        }
        assert_eq!(par.stats, expect);
        assert!((par.stats.total_seconds() - par.profile.total_seconds()).abs() < 1e-9);
    }

    #[test]
    fn energy_of_merged_work_is_positive() {
        let (w, a) = operands(6, 10, 4, 11);
        let par = ParallelExecutor::new(2)
            .execute(Method::LoCaLut, &w, &a)
            .unwrap();
        assert!(par.energy(&EnergyModel::upmem()).total_j() > 0.0);
    }

    #[test]
    fn checksum_is_invariant_to_worker_count_and_sensitive_to_values() {
        let (w, a) = operands(6, 10, 4, 5);
        let one = ParallelExecutor::new(1)
            .execute(Method::OpLcRc, &w, &a)
            .unwrap();
        let four = ParallelExecutor::new(4)
            .execute(Method::OpLcRc, &w, &a)
            .unwrap();
        assert_eq!(one.checksum(), values_checksum(&one.values));
        assert_eq!(one.checksum(), four.checksum());
        let mut tweaked = one.values.clone();
        tweaked[0] ^= 1;
        assert_ne!(values_checksum(&tweaked), one.checksum());
    }

    #[test]
    fn ranked_plan_builds_the_merge_tree_and_charges_the_link() {
        use pim_sim::Category;
        let (w, a) = operands(12, 10, 8, 21);
        let dims = GemmDims::of(&w, &a).unwrap();
        let plan = ShardPlan::for_ranks(dims, 4, 8);
        let pool = ParallelExecutor::new(3);
        let par = pool.execute_plan(&plan, Method::LoCaLut, &w, &a).unwrap();
        let ranks = plan.rank_plan().unwrap();
        assert_eq!(par.rank_stats.len(), ranks.populated());

        // The rank level partitions the banks: per-rank folds re-merge to
        // the flat fold exactly, and the total equals tree + link phase.
        let mut flat = Stats::default();
        for bank in &par.per_bank {
            flat.merge(&Stats::from_profile(&bank.profile));
        }
        let mut tree = Stats::default();
        for rank in &par.rank_stats {
            tree.merge(rank);
        }
        assert_eq!(tree, flat);
        let link = par.link_phase.as_ref().unwrap();
        assert_eq!(
            par.stats,
            flat.merged(&Stats::from_phase_ledger(link.ledger()))
        );
        // The link phase is real time but not a bank profile.
        assert!(link.seconds(Category::HostTransfer) > 0.0);
        assert_eq!(par.stats.banks() as usize, par.per_bank.len());

        // The busiest rank's transfer counters price the occupancy.
        let busiest = par
            .rank_stats
            .iter()
            .map(|r| (r.dram_read_bytes + r.dram_write_bytes) as u64)
            .max()
            .unwrap();
        let expect = pool.system().rank_link_seconds(busiest);
        assert!((link.seconds(Category::HostTransfer) - expect).abs() < 1e-18);
    }

    #[test]
    fn flat_plan_has_no_rank_level_outputs() {
        let (w, a) = operands(8, 12, 6, 42);
        let par = ParallelExecutor::new(2)
            .execute(Method::OpLcRc, &w, &a)
            .unwrap();
        assert!(par.rank_stats.is_empty());
        assert!(par.link_phase.is_none());
    }

    #[test]
    fn ranked_outputs_are_worker_count_invariant() {
        let (w, a) = operands(9, 15, 7, 7);
        let dims = GemmDims::of(&w, &a).unwrap();
        let plan = ShardPlan::for_ranks(dims, 8, 4);
        let baseline = ParallelExecutor::new(1)
            .execute_plan(&plan, Method::LoCaLut, &w, &a)
            .unwrap();
        for threads in [2usize, 5, 16] {
            let par = ParallelExecutor::new(threads)
                .execute_plan(&plan, Method::LoCaLut, &w, &a)
                .unwrap();
            assert_eq!(par, baseline, "threads = {threads}");
        }
    }

    #[test]
    fn map_steals_ragged_work_without_reordering() {
        // Item 0 is a straggler: the worker owning it sleeps while the
        // others go idle and steal the rest of its block. Results must
        // still come back in item order, every run.
        let items: Vec<u64> = (0..64).collect();
        let baseline: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        for _ in 0..5 {
            let out = ParallelExecutor::new(4).map(&items, |&x| {
                if x == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                x * 3
            });
            assert_eq!(out, baseline);
        }
    }

    #[test]
    fn map_preserves_order_under_any_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        for threads in [1usize, 2, 5, 64] {
            let out = ParallelExecutor::new(threads).map(&items, |&x| x + 1);
            assert_eq!(out, (1..38).collect::<Vec<_>>(), "threads = {threads}");
        }
    }

    #[test]
    fn injected_kernel_matches_internal_build() {
        let (w, a) = operands(9, 15, 7, 7);
        let dims = GemmDims::of(&w, &a).unwrap();
        let plan = ShardPlan::for_banks(dims, 4);
        let pool = ParallelExecutor::new(2);
        let internal = pool.execute_plan(&plan, Method::LoCaLut, &w, &a).unwrap();
        let bank = BankKernel::build(
            pool.gemm_config(),
            Method::LoCaLut,
            w.format(),
            a.format(),
            dims,
        )
        .unwrap();
        // One build, many executions: repeated injected runs are bitwise
        // identical to the internal plan-and-build path.
        for _ in 0..2 {
            let injected = pool.execute_plan_with(&plan, &bank, &w, &a).unwrap();
            assert_eq!(injected, internal);
        }
    }

    #[test]
    fn mismatched_plan_is_rejected() {
        let (w, a) = operands(8, 12, 6, 42);
        let stale_plan = ShardPlan::for_banks(GemmDims { m: 4, k: 12, n: 4 }, 4);
        let err = ParallelExecutor::new(2)
            .execute_plan(&stale_plan, Method::NaivePim, &w, &a)
            .unwrap_err();
        assert!(matches!(err, LocaLutError::ShardPlanMismatch { .. }));
    }

    #[test]
    fn infeasible_method_errors_cleanly() {
        let w = QMatrix::pseudo_random(4, 4, NumericFormat::Int(16), 1);
        let a = QMatrix::pseudo_random(4, 2, NumericFormat::Int(16), 2);
        let err = ParallelExecutor::new(2).execute(Method::LoCaLut, &w, &a);
        assert!(err.is_err());
    }
}
