//! Shard plans: how one GEMM's output is partitioned into bank-owned tiles.
//!
//! A [`ShardPlan`] is the concrete work list a [`crate::ParallelExecutor`]
//! run executes: an ordered set of [`Shard`]s, each a rectangle of the
//! `M×N` output (all of `K` deep, so shards are independent — no partial
//! sums cross shard boundaries and the value merge is a pure scatter).
//! The shapes come from [`TileGrid`], the same §V-B data/context-parallel
//! tiling the analytic system model uses, so the runtime executes exactly
//! the distribution the cost model prices.
//!
//! At full-machine scale the flat shard list grows a second level: a
//! [`RankPlan`] groups consecutive bank-shards under ranks (the paper's
//! machine is 32 ranks × 64 DPUs = 2048 banks), which is what makes the
//! per-rank statistics merge tree and the rank-bus contention model of
//! the executor possible. [`ShardPlan::for_banks`] keeps producing flat
//! (rank-less) plans; [`ShardPlan::for_ranks`] produces ranked ones.

use localut::tiling::TileGrid;
use localut::GemmDims;
use std::ops::Range;

/// One bank's slice of a GEMM: output rows `rows` × output columns `cols`,
/// the full `K` reduction deep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Position of this shard in the plan (also its merge order).
    pub id: usize,
    /// Weight-row (output-row) range in the full matrix.
    pub rows: Range<usize>,
    /// Activation-column (output-column) range in the full matrix.
    pub cols: Range<usize>,
}

impl Shard {
    /// The shard's tile dimensions given the shared inner dimension `k`.
    #[must_use]
    pub fn dims(&self, k: usize) -> GemmDims {
        GemmDims {
            m: self.rows.len(),
            k,
            n: self.cols.len(),
        }
    }
}

/// The rank level of a two-level shard hierarchy: which consecutive run
/// of bank-shards each rank owns.
///
/// Shard ids are dense and ordered, so rank membership is a contiguous
/// range: shard `s` belongs to rank `s / banks_per_rank`. Small plans
/// populate only a prefix of the machine's ranks; every shard belongs to
/// exactly one rank and no rank holds more than `banks_per_rank` shards.
///
/// # Examples
///
/// ```
/// use runtime::RankPlan;
///
/// // 10 shards on a 4-rank × 3-banks-per-rank machine: ranks 0..3 get
/// // 3 + 3 + 3 + 1 shards, rank 3 stays within its bank budget.
/// let rp = RankPlan::new(10, 4, 3);
/// assert_eq!(rp.populated(), 4);
/// assert_eq!(rp.assignments(), &[0..3, 3..6, 6..9, 9..10]);
/// assert_eq!(rp.rank_of(7), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankPlan {
    ranks: u32,
    banks_per_rank: u32,
    assignments: Vec<Range<usize>>,
}

impl RankPlan {
    /// Groups `n_shards` dense shard ids under `ranks` ranks of
    /// `banks_per_rank` banks each (both clamped to at least 1). Callers
    /// are expected to size the shard list to the machine
    /// (`n_shards ≤ ranks × banks_per_rank`, as [`ShardPlan::for_ranks`]
    /// guarantees); excess shards would spill past the last rank.
    #[must_use]
    pub fn new(n_shards: usize, ranks: u32, banks_per_rank: u32) -> Self {
        let ranks = ranks.max(1);
        let banks_per_rank = banks_per_rank.max(1);
        let bpr = banks_per_rank as usize;
        let assignments = (0..n_shards.div_ceil(bpr))
            .map(|r| r * bpr..n_shards.min((r + 1) * bpr))
            .collect();
        RankPlan {
            ranks,
            banks_per_rank,
            assignments,
        }
    }

    /// The machine's rank count (populated or not).
    #[must_use]
    pub fn ranks(&self) -> u32 {
        self.ranks
    }

    /// Banks (DPUs) per rank.
    #[must_use]
    pub fn banks_per_rank(&self) -> u32 {
        self.banks_per_rank
    }

    /// Number of ranks that actually own at least one shard.
    #[must_use]
    pub fn populated(&self) -> usize {
        self.assignments.len()
    }

    /// The shard-id range each populated rank owns, in rank order. The
    /// ranges are consecutive, disjoint, and cover `0..n_shards` exactly.
    #[must_use]
    pub fn assignments(&self) -> &[Range<usize>] {
        &self.assignments
    }

    /// The rank owning shard `shard_id`.
    #[must_use]
    pub fn rank_of(&self, shard_id: usize) -> usize {
        shard_id / self.banks_per_rank as usize
    }
}

/// An ordered partition of a GEMM's output into bank-owned shards.
///
/// # Examples
///
/// ```
/// use localut::GemmDims;
/// use runtime::ShardPlan;
///
/// let dims = GemmDims { m: 8, k: 16, n: 6 };
/// let plan = ShardPlan::for_banks(dims, 4);
/// assert!(plan.len() <= 4 && !plan.is_empty());
/// // The shards exactly partition the 8×6 output.
/// let cells: usize = plan.shards().iter()
///     .map(|s| s.rows.len() * s.cols.len())
///     .sum();
/// assert_eq!(cells, 8 * 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    dims: GemmDims,
    grid: TileGrid,
    shards: Vec<Shard>,
    ranks: Option<RankPlan>,
}

impl ShardPlan {
    /// Plans `dims` across `n_banks` banks using the §V-B tiling policy
    /// (activation columns split first — pure data parallelism — then
    /// weight rows). Produces at most `n_banks` shards; small matrices
    /// yield fewer. The plan is **flat** (no rank level).
    #[must_use]
    pub fn for_banks(dims: GemmDims, n_banks: u32) -> Self {
        Self::from_grid(dims, TileGrid::choose(dims, n_banks.max(1)))
    }

    /// Plans `dims` across a two-level `ranks × banks_per_rank` machine
    /// (the paper's server: 32 × 64 = 2048): the tile grid targets the
    /// full bank fleet, and consecutive shards are grouped under ranks by
    /// a [`RankPlan`]. Executors use the rank level for the hierarchical
    /// statistics merge and the per-rank host-link contention term.
    ///
    /// # Examples
    ///
    /// ```
    /// use localut::GemmDims;
    /// use runtime::ShardPlan;
    ///
    /// let dims = GemmDims { m: 768, k: 768, n: 128 };
    /// let plan = ShardPlan::for_ranks(dims, 32, 64);
    /// assert_eq!(plan.len(), 2048);
    /// let rp = plan.rank_plan().expect("ranked plan");
    /// assert_eq!((rp.ranks(), rp.banks_per_rank()), (32, 64));
    /// assert_eq!(rp.populated(), 32);
    /// ```
    #[must_use]
    pub fn for_ranks(dims: GemmDims, ranks: u32, banks_per_rank: u32) -> Self {
        let ranks = ranks.max(1);
        let banks_per_rank = banks_per_rank.max(1);
        let mut plan = Self::from_grid(
            dims,
            TileGrid::choose(dims, ranks.saturating_mul(banks_per_rank)),
        );
        plan.ranks = Some(RankPlan::new(plan.shards.len(), ranks, banks_per_rank));
        plan
    }

    /// Plans `dims` over an explicit tile grid (flat: no rank level).
    #[must_use]
    pub fn from_grid(dims: GemmDims, grid: TileGrid) -> Self {
        let shards = grid
            .cell_ranges(dims)
            .into_iter()
            .enumerate()
            .map(|(id, (rows, cols))| Shard { id, rows, cols })
            .collect();
        ShardPlan {
            dims,
            grid,
            shards,
            ranks: None,
        }
    }

    /// The rank level, when the plan was built for a two-level machine
    /// ([`ShardPlan::for_ranks`]); `None` for flat plans.
    #[must_use]
    pub fn rank_plan(&self) -> Option<&RankPlan> {
        self.ranks.as_ref()
    }

    /// The full GEMM dimensions the plan covers.
    #[must_use]
    pub fn dims(&self) -> GemmDims {
        self.dims
    }

    /// The tile grid the shards were derived from.
    #[must_use]
    pub fn grid(&self) -> TileGrid {
        self.grid
    }

    /// The shards in merge order.
    #[must_use]
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of shards (banks used).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the plan is empty (only for degenerate zero-size GEMMs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_partition_the_output() {
        let dims = GemmDims { m: 7, k: 5, n: 5 };
        let plan = ShardPlan::for_banks(dims, 6);
        let mut covered = vec![false; dims.m * dims.n];
        for shard in plan.shards() {
            for r in shard.rows.clone() {
                for c in shard.cols.clone() {
                    assert!(!covered[r * dims.n + c], "overlap at ({r},{c})");
                    covered[r * dims.n + c] = true;
                }
            }
        }
        assert!(covered.iter().all(|&v| v), "hole in the shard cover");
    }

    #[test]
    fn shard_ids_are_dense_and_ordered() {
        let plan = ShardPlan::for_banks(GemmDims { m: 16, k: 4, n: 16 }, 8);
        for (i, shard) in plan.shards().iter().enumerate() {
            assert_eq!(shard.id, i);
        }
        assert!(plan.len() <= 8);
        assert!(!plan.is_empty());
    }

    #[test]
    fn small_matrices_use_fewer_banks() {
        let plan = ShardPlan::for_banks(GemmDims { m: 1, k: 9, n: 2 }, 64);
        assert_eq!(plan.len(), 2); // only two output columns to split
        assert_eq!(plan.shards()[0].dims(9), GemmDims { m: 1, k: 9, n: 1 });
    }

    #[test]
    fn rank_plan_partitions_shard_ids_exactly() {
        let dims = GemmDims {
            m: 768,
            k: 768,
            n: 128,
        };
        let plan = ShardPlan::for_ranks(dims, 32, 64);
        let rp = plan.rank_plan().unwrap();
        assert_eq!(rp.populated(), 32);
        let mut next = 0usize;
        for (rank, range) in rp.assignments().iter().enumerate() {
            assert_eq!(range.start, next, "gap before rank {rank}");
            assert!(range.len() <= rp.banks_per_rank() as usize);
            assert!(!range.is_empty());
            for id in range.clone() {
                assert_eq!(rp.rank_of(id), rank);
            }
            next = range.end;
        }
        assert_eq!(next, plan.len());
    }

    #[test]
    fn small_ranked_plans_populate_a_rank_prefix() {
        // 1×9×2 only yields 2 shards: one rank, partially filled.
        let plan = ShardPlan::for_ranks(GemmDims { m: 1, k: 9, n: 2 }, 32, 64);
        assert_eq!(plan.len(), 2);
        let rp = plan.rank_plan().unwrap();
        assert_eq!(rp.populated(), 1);
        assert_eq!(rp.assignments().len(), 1);
        assert_eq!(rp.assignments()[0], 0..2);
    }

    #[test]
    fn flat_plans_have_no_rank_level() {
        let plan = ShardPlan::for_banks(GemmDims { m: 8, k: 4, n: 8 }, 16);
        assert!(plan.rank_plan().is_none());
        // A ranked plan over the same total bank count shards identically.
        let ranked = ShardPlan::for_ranks(GemmDims { m: 8, k: 4, n: 8 }, 4, 4);
        assert_eq!(ranked.shards(), plan.shards());
        assert_eq!(ranked.grid(), plan.grid());
    }

    #[test]
    fn degenerate_rank_arguments_are_clamped() {
        let rp = RankPlan::new(3, 0, 0);
        assert_eq!((rp.ranks(), rp.banks_per_rank()), (1, 1));
        assert_eq!(rp.assignments(), &[0..1, 1..2, 2..3]);
    }

    #[test]
    fn grid_matches_tiling_policy() {
        let dims = GemmDims {
            m: 768,
            k: 768,
            n: 128,
        };
        let plan = ShardPlan::for_banks(dims, 2048);
        assert_eq!(plan.grid(), TileGrid::choose(dims, 2048));
        assert_eq!(plan.len(), 2048);
    }
}
