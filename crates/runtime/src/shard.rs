//! Shard plans: how one GEMM's output is partitioned into bank-owned tiles.
//!
//! A [`ShardPlan`] is the concrete work list a [`crate::ParallelExecutor`]
//! run executes: an ordered set of [`Shard`]s, each a rectangle of the
//! `M×N` output (all of `K` deep, so shards are independent — no partial
//! sums cross shard boundaries and the value merge is a pure scatter).
//! The shapes come from [`TileGrid`], the same §V-B data/context-parallel
//! tiling the analytic system model uses, so the runtime executes exactly
//! the distribution the cost model prices.

use localut::tiling::TileGrid;
use localut::GemmDims;
use std::ops::Range;

/// One bank's slice of a GEMM: output rows `rows` × output columns `cols`,
/// the full `K` reduction deep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Position of this shard in the plan (also its merge order).
    pub id: usize,
    /// Weight-row (output-row) range in the full matrix.
    pub rows: Range<usize>,
    /// Activation-column (output-column) range in the full matrix.
    pub cols: Range<usize>,
}

impl Shard {
    /// The shard's tile dimensions given the shared inner dimension `k`.
    #[must_use]
    pub fn dims(&self, k: usize) -> GemmDims {
        GemmDims {
            m: self.rows.len(),
            k,
            n: self.cols.len(),
        }
    }
}

/// An ordered partition of a GEMM's output into bank-owned shards.
///
/// # Examples
///
/// ```
/// use localut::GemmDims;
/// use runtime::ShardPlan;
///
/// let dims = GemmDims { m: 8, k: 16, n: 6 };
/// let plan = ShardPlan::for_banks(dims, 4);
/// assert!(plan.len() <= 4 && !plan.is_empty());
/// // The shards exactly partition the 8×6 output.
/// let cells: usize = plan.shards().iter()
///     .map(|s| s.rows.len() * s.cols.len())
///     .sum();
/// assert_eq!(cells, 8 * 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    dims: GemmDims,
    grid: TileGrid,
    shards: Vec<Shard>,
}

impl ShardPlan {
    /// Plans `dims` across `n_banks` banks using the §V-B tiling policy
    /// (activation columns split first — pure data parallelism — then
    /// weight rows). Produces at most `n_banks` shards; small matrices
    /// yield fewer.
    #[must_use]
    pub fn for_banks(dims: GemmDims, n_banks: u32) -> Self {
        Self::from_grid(dims, TileGrid::choose(dims, n_banks.max(1)))
    }

    /// Plans `dims` over an explicit tile grid.
    #[must_use]
    pub fn from_grid(dims: GemmDims, grid: TileGrid) -> Self {
        let shards = grid
            .cell_ranges(dims)
            .into_iter()
            .enumerate()
            .map(|(id, (rows, cols))| Shard { id, rows, cols })
            .collect();
        ShardPlan { dims, grid, shards }
    }

    /// The full GEMM dimensions the plan covers.
    #[must_use]
    pub fn dims(&self) -> GemmDims {
        self.dims
    }

    /// The tile grid the shards were derived from.
    #[must_use]
    pub fn grid(&self) -> TileGrid {
        self.grid
    }

    /// The shards in merge order.
    #[must_use]
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of shards (banks used).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the plan is empty (only for degenerate zero-size GEMMs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_partition_the_output() {
        let dims = GemmDims { m: 7, k: 5, n: 5 };
        let plan = ShardPlan::for_banks(dims, 6);
        let mut covered = vec![false; dims.m * dims.n];
        for shard in plan.shards() {
            for r in shard.rows.clone() {
                for c in shard.cols.clone() {
                    assert!(!covered[r * dims.n + c], "overlap at ({r},{c})");
                    covered[r * dims.n + c] = true;
                }
            }
        }
        assert!(covered.iter().all(|&v| v), "hole in the shard cover");
    }

    #[test]
    fn shard_ids_are_dense_and_ordered() {
        let plan = ShardPlan::for_banks(GemmDims { m: 16, k: 4, n: 16 }, 8);
        for (i, shard) in plan.shards().iter().enumerate() {
            assert_eq!(shard.id, i);
        }
        assert!(plan.len() <= 8);
        assert!(!plan.is_empty());
    }

    #[test]
    fn small_matrices_use_fewer_banks() {
        let plan = ShardPlan::for_banks(GemmDims { m: 1, k: 9, n: 2 }, 64);
        assert_eq!(plan.len(), 2); // only two output columns to split
        assert_eq!(plan.shards()[0].dims(9), GemmDims { m: 1, k: 9, n: 1 });
    }

    #[test]
    fn grid_matches_tiling_policy() {
        let dims = GemmDims {
            m: 768,
            k: 768,
            n: 128,
        };
        let plan = ShardPlan::for_banks(dims, 2048);
        assert_eq!(plan.grid(), TileGrid::choose(dims, 2048));
        assert_eq!(plan.len(), 2048);
    }
}
