//! # runtime — bank-parallel execution for the LoCaLUT reproduction
//!
//! The paper's end-to-end numbers come from 2048 DPUs working
//! simultaneously (§V-B); this crate makes the reproduction actually run
//! that way instead of simulating every bank on one thread:
//!
//! * [`ShardPlan`] — partitions a GEMM's output into bank-owned tiles
//!   using the same §V-B tiling policy the analytic system model prices
//!   (`localut::tiling::TileGrid`), each tile independent because shards
//!   span the full `K` reduction. At full-machine scale the plan is
//!   two-level: [`ShardPlan::for_ranks`] groups consecutive bank-shards
//!   under ranks via a [`RankPlan`] (the paper's server: 32 × 64 = 2048).
//! * [`ParallelExecutor`] — a work-stealing worker pool on
//!   `std::thread::scope` (no new dependencies): per-worker deques of
//!   shard ids with chunked steals, so ragged 2048-shard plans don't
//!   serialize their tail. Workers run shards through a shared, read-only
//!   [`localut::kernels::BankKernel`] — one canonical + reordering LUT
//!   build behind `Arc`, mirroring the one-time §V-A broadcast — while
//!   each shard charges its own bank-local `pim-sim` ledger.
//! * [`ParallelGemm`] — the merged output: bit-identical values, per-bank
//!   profiles, a deterministic shard-order profile fold, and an
//!   associatively merged [`pim_sim::Stats`] aggregate that is invariant
//!   to merge order and thread count. Ranked plans additionally carry
//!   per-rank aggregates (the merge-tree's middle level, exactly equal to
//!   the flat fold) and the rank-bus contention phase
//!   ([`pim_sim::PimSystem::rank_link_profile`]).
//!
//! Determinism is a design invariant, not an accident: results are keyed
//! by shard id no matter which worker produced them (steals included),
//! and every merge runs in ascending id order, so for a fixed plan the
//! executor's output is bitwise identical for **any** worker count — the
//! property the end-to-end and property tests pin down.
//!
//! ## Quickstart
//!
//! ```
//! use localut::{GemmConfig, Method};
//! use quant::{NumericFormat, Quantizer};
//! use runtime::ParallelExecutor;
//!
//! let wq = Quantizer::symmetric(NumericFormat::Bipolar);
//! let aq = Quantizer::symmetric(NumericFormat::Int(3));
//! let w = wq.quantize_matrix(&[0.5, -0.5, 1.0, -1.0, 0.3, -0.3], 2, 3)?;
//! let a = aq.quantize_matrix(&[1.0, 2.0, -3.0, 0.5, 4.0, -1.0], 3, 2)?;
//!
//! // Serial reference...
//! let serial = GemmConfig::upmem().run(Method::LoCaLut, &w, &a)?;
//! // ...and the same GEMM sharded across 4 bank workers.
//! let parallel = ParallelExecutor::new(4).execute(Method::LoCaLut, &w, &a)?;
//! assert_eq!(parallel.values, serial.values); // bit-exact
//! assert!(parallel.critical_path_seconds() <= parallel.total_bank_seconds());
//! # Ok::<(), localut::LocaLutError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod executor;
mod shard;

pub use executor::{fnv1a_64, values_checksum, BankResult, ParallelExecutor, ParallelGemm};
pub use shard::{RankPlan, Shard, ShardPlan};
