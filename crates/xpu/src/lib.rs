//! # xpu — CPU/GPU roofline cost and energy models (Fig. 17)
//!
//! The paper compares LoCaLUT against an Intel Xeon Gold 5215 and an
//! NVIDIA RTX 2080 Ti on standalone GEMMs across bitwidths. We model both
//! as rooflines: `time = max(compute, memory)` with the *effective*
//! compute throughput depending on how the device can execute the
//! requested precision:
//!
//! * Neither device has sub-8-bit datapaths. W4A4 runs near the native
//!   int8/tensor path; narrower formats pay a bit-unpacking penalty
//!   (calibrated to reproduce the paper's crossover: LoCaLUT ≫ CPU
//!   always, beats the GPU at low bits, loses at W4A4 — §VI-H).
//! * Energy = TDP × time × utilization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A roofline device model.
#[derive(Debug, Clone, PartialEq)]
pub struct XpuModel {
    /// Device name.
    pub name: &'static str,
    /// Peak int8 throughput, MAC/s.
    pub peak_int8_macs_per_sec: f64,
    /// Memory bandwidth, bytes/s.
    pub mem_bytes_per_sec: f64,
    /// Board/package power at load, W.
    pub power_w: f64,
    /// Achievable fraction of peak on dense GEMM at a native precision.
    pub native_efficiency: f64,
    /// Achievable fraction of peak when operands need sub-byte unpacking
    /// (bit-extraction dominates the inner loop on both devices).
    pub subbyte_efficiency: f64,
}

impl XpuModel {
    /// Intel Xeon Gold 5215 (10 cores, AVX-512 VNNI, 6-channel DDR4).
    #[must_use]
    pub fn xeon_gold_5215() -> Self {
        XpuModel {
            name: "CPU (Xeon Gold 5215)",
            // 10 cores x 2.5 GHz x 128 int8 MACs/cycle (VNNI).
            peak_int8_macs_per_sec: 3.2e12,
            mem_bytes_per_sec: 107.0e9,
            power_w: 85.0,
            // The CPU low-bit GEMM path of the paper's comparison is a
            // software quantized kernel, far from VNNI peak even at 4 bits.
            native_efficiency: 0.03,
            subbyte_efficiency: 0.015,
        }
    }

    /// NVIDIA RTX 2080 Ti (dp4a int8, GDDR6).
    #[must_use]
    pub fn rtx_2080ti() -> Self {
        XpuModel {
            name: "GPU (RTX 2080 Ti)",
            // 4352 cores x 1.545 GHz x 4 int8 MACs (dp4a) ≈ 26.9 TMAC/s.
            peak_int8_macs_per_sec: 26.9e12,
            mem_bytes_per_sec: 616.0e9,
            power_w: 250.0,
            native_efficiency: 0.55,
            // Sub-byte operands force a bit-unpack inner loop with no
            // tensor-path support (calibrated to the paper's crossover).
            subbyte_efficiency: 0.0035,
        }
    }

    /// Effective MAC throughput for a `WxAy` precision pair: native int8
    /// path when both operands are at least byte-aligned-representable
    /// without unpacking (the devices store 4-bit operands byte-padded, so
    /// W4A4 runs the native path), sub-byte penalty otherwise.
    #[must_use]
    pub fn effective_macs_per_sec(&self, bw: u8, ba: u8) -> f64 {
        let eff = if bw >= 4 && ba >= 4 {
            self.native_efficiency
        } else {
            self.subbyte_efficiency
        };
        self.peak_int8_macs_per_sec * eff
    }

    /// Roofline GEMM time for `M×K×N` at the given precisions, in seconds.
    /// Operands move at one byte per element (sub-byte formats are stored
    /// padded on these devices); outputs at 4 bytes.
    #[must_use]
    pub fn gemm_seconds(&self, m: u64, k: u64, n: u64, bw: u8, ba: u8) -> f64 {
        let macs = (m * k * n) as f64;
        let compute = macs / self.effective_macs_per_sec(bw, ba);
        let bytes = (m * k + k * n + 4 * m * n) as f64;
        let memory = bytes / self.mem_bytes_per_sec;
        compute.max(memory)
    }

    /// Energy of a GEMM, Joules.
    #[must_use]
    pub fn gemm_energy_j(&self, m: u64, k: u64, n: u64, bw: u8, ba: u8) -> f64 {
        self.gemm_seconds(m, k, n, bw, ba) * self.power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_is_faster_than_cpu() {
        let cpu = XpuModel::xeon_gold_5215();
        let gpu = XpuModel::rtx_2080ti();
        for (bw, ba) in [(1u8, 3u8), (4, 4)] {
            assert!(
                gpu.gemm_seconds(12288, 192, 65536, bw, ba)
                    < cpu.gemm_seconds(12288, 192, 65536, bw, ba)
            );
        }
    }

    #[test]
    fn subbyte_pays_a_penalty() {
        let gpu = XpuModel::rtx_2080ti();
        let native = gpu.gemm_seconds(4096, 4096, 4096, 4, 4);
        let narrow = gpu.gemm_seconds(4096, 4096, 4096, 1, 3);
        assert!(narrow > 5.0 * native, "sub-byte must be much slower");
    }

    #[test]
    fn roofline_respects_memory_bound() {
        // A skinny GEMM is bandwidth-bound: time >= bytes / bw.
        let gpu = XpuModel::rtx_2080ti();
        let (m, k, n) = (8u64, 8, 1 << 22);
        let bytes = (m * k + k * n + 4 * m * n) as f64;
        let t = gpu.gemm_seconds(m, k, n, 4, 4);
        assert!(t >= bytes / gpu.mem_bytes_per_sec - 1e-12);
    }

    #[test]
    fn energy_scales_with_time_and_power() {
        let cpu = XpuModel::xeon_gold_5215();
        let t = cpu.gemm_seconds(1024, 1024, 1024, 4, 4);
        assert!((cpu.gemm_energy_j(1024, 1024, 1024, 4, 4) - t * 85.0).abs() < 1e-9);
    }

    #[test]
    fn fig17_shape_gpu_wins_only_at_w4a4() {
        // §VI-H: LoCaLUT keeps its advantage at low bitwidths; the GPU wins
        // at W4A4. LoCaLUT's time for the Fig. 17 GEMM is ~0.1-0.4 s
        // (2048 DPUs); check the GPU lands on the right side of that band
        // in both regimes.
        let gpu = XpuModel::rtx_2080ti();
        let (m, k, n) = (12288u64, 192, 65536);
        let w4a4 = gpu.gemm_seconds(m, k, n, 4, 4);
        let w1a3 = gpu.gemm_seconds(m, k, n, 1, 3);
        assert!(w4a4 < 0.1, "native GPU path should be fast: {w4a4}");
        assert!(w1a3 > 0.15, "sub-byte GPU path should be slow: {w1a3}");
    }
}
