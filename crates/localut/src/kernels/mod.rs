//! The six GEMM kernels of the paper's evaluation (§VI-A).
//!
//! Every kernel is **functional + timed**: `run` computes the exact output
//! through the kernel's actual data structures (LUTs, bit-serial tables, or
//! plain MACs) while an analytic `cost` twin charges the identical event
//! counts for given dimensions. The two stay consistent by construction —
//! both call one private `charge` routine whose event counts depend only on
//! dimensions (the dataflows are data-independent) — and tests assert
//! `run(...).profile == cost(dims)`.
//!
//! | Kernel | Design point | Paper |
//! |---|---|---|
//! | [`NaiveKernel`]     | int MACs on the DPU            | "Naive PIM" |
//! | [`LtcKernel`]       | bit-serial runtime LUTs        | "LTC (PIM)" |
//! | [`OpKernel`]        | buffer-resident packed LUT     | "OP" (§III) |
//! | [`LcKernel`]        | + canonicalization, sw reorder | "OP+LC" (§IV-A) |
//! | [`RcKernel`]        | + reordering LUT               | "OP+LC+RC" (§IV-B) |
//! | [`StreamingKernel`] | + LUT slice streaming          | "LoCaLUT" (§IV-C) |
//!
//! All six arms implement one object-safe [`LutKernel`] trait — the single
//! dispatch surface every layer above uses. [`BankKernel`] is the
//! method-erased construct-once handle (an `Arc<dyn LutKernel>` plus the
//! optional [`SharedLuts`] images) that bank-parallel workers clone;
//! [`par_run`] is the multi-threaded entry point (sharded across host
//! threads; see the `runtime` crate for the full executor with per-bank
//! profiles). Method-to-kernel construction lives in one place
//! ([`BankKernel::build`] and friends, in the `build` submodule) — there is
//! deliberately no per-method `match` anywhere else in this module.

mod build;
mod lc;
mod ltc;
mod naive;
mod op;
mod rc;
mod streaming;

pub use lc::LcKernel;
pub use ltc::LtcKernel;
pub use naive::NaiveKernel;
pub use op::OpKernel;
pub use rc::RcKernel;
pub use streaming::StreamingKernel;

use crate::canonical::CanonicalLut;
use crate::codes::ActivationPanel;
use crate::gemm::{GemmConfig, GemmDims, GemmResult, Method};
use crate::reorder::ReorderLut;
use crate::LocaLutError;
use pim_sim::{Category, Dpu, Profile};
use quant::{NumericFormat, QMatrix};
use std::sync::Arc;

/// Guard against accidentally materializing astronomically large LUTs in
/// host memory during functional runs. All UPMEM-budget-feasible LUTs fit
/// comfortably (the largest, W1A3 at `p = 8`, is ~12 M entries).
pub(crate) const MAX_MATERIALIZED_ENTRIES: u64 = 1 << 26;

/// Width of the N-tile the blocked buffer-resident loops process per slice
/// resolution batch: 16 consecutive output columns share the same 64-byte
/// `i32` output cache line per row, and 16 resolved LUT column pairs stay
/// far below the WRAM-budget-sized slices' footprint.
pub const N_TILE: usize = 16;

/// Ensures both operand formats decode to exact integers.
pub(crate) fn require_integer(wf: NumericFormat, af: NumericFormat) -> Result<(), LocaLutError> {
    if !wf.is_integer() || !af.is_integer() {
        return Err(LocaLutError::UnsupportedFormat(
            "integer kernels require integer weight/activation formats",
        ));
    }
    Ok(())
}

/// The activation code that decodes to integer zero, used to pad `K` up to
/// a multiple of `p` (`None` for formats without a zero, e.g. bipolar).
pub(crate) fn zero_code(af: NumericFormat) -> Option<u16> {
    af.encode_int(0).ok().map(|c| c as u16)
}

/// Resolves the zero pad code or errors when `K % p != 0` and none exists.
pub(crate) fn pad_code_for(af: NumericFormat, k: usize, p: usize) -> Result<u16, LocaLutError> {
    let remainder = k % p;
    match zero_code(af) {
        Some(c) => Ok(c),
        None if remainder == 0 => Ok(0), // never used
        None => Err(LocaLutError::UnpaddableRemainder { remainder }),
    }
}

/// Charges the common operand input streams (weights + activations,
/// bank → WRAM) to [`Category::DataTransfer`].
pub(crate) fn charge_operand_input(dpu: &mut Dpu, dims: GemmDims, bw: u8, ba: u8) {
    dpu.charge_dram_stream(
        dims.weight_bytes(bw) + dims.activation_bytes(ba),
        Category::DataTransfer,
    );
}

/// Charges the output writeback (WRAM → bank).
pub(crate) fn charge_output(dpu: &mut Dpu, dims: GemmDims) {
    dpu.charge_dram_writeback(dims.output_bytes(), Category::OutputWriteback);
}

/// Validates that an [`ActivationPanel`]'s packed shape matches the
/// operands a `run_with_panel` call is about to consume it with.
pub(crate) fn check_panel(
    panel: &ActivationPanel,
    abits: u8,
    p: usize,
    kblocks: usize,
    n: usize,
) -> Result<(), LocaLutError> {
    let packed = panel.packed();
    if packed.bits() != abits
        || packed.p() != p
        || packed.groups() != kblocks
        || packed.lanes() != n
    {
        return Err(LocaLutError::UnsupportedFormat(
            "activation panel shape does not match the operands",
        ));
    }
    Ok(())
}

/// The unified kernel interface every arm of the evaluation implements.
///
/// One GEMM kernel is four capabilities: identify itself
/// ([`method`](LutKernel::method), [`p`](LutKernel::p)), price a shape
/// ([`cost`](LutKernel::cost)), vet operands
/// ([`validate`](LutKernel::validate)), and execute
/// ([`run`](LutKernel::run) /
/// [`run_with_luts`](LutKernel::run_with_luts)). The trait is object-safe:
/// [`BankKernel`], `kernels::par_run`, the `runtime` executor, and the
/// engine all dispatch through `dyn LutKernel`, so a new design point
/// plugs in by implementing this trait — no dispatch site changes.
///
/// The functional/timed contract holds for every implementor:
/// `run(w, a)?.profile == cost(GemmDims::of(w, a)?)` exactly, and
/// `run_with_luts` is bit-identical to `run` in both values and profile.
pub trait LutKernel: std::fmt::Debug + Send + Sync {
    /// The evaluation method this kernel realizes.
    fn method(&self) -> Method;

    /// The packing degree (`1` for the LUT-free baselines, which consume
    /// operands one code at a time).
    fn p(&self) -> u32;

    /// Analytic cost for the given dimensions — the profile
    /// [`LutKernel::run`] charges for operands of the same shape.
    fn cost(&self, dims: GemmDims) -> Profile;

    /// Cheap operand checks (shape, formats, padding feasibility) shared
    /// by `run` and `run_with_luts`, returning the dimensions on success.
    ///
    /// # Errors
    ///
    /// Shape, format, or padding errors.
    fn validate(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmDims, LocaLutError>;

    /// Runs the GEMM, building any LUT images locally.
    ///
    /// # Errors
    ///
    /// Shape, format, padding, or budget errors.
    fn run(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmResult, LocaLutError>;

    /// Runs the GEMM against prebuilt shared LUT images. Arms without
    /// shared images (the baselines and the locally-built LUT arms)
    /// ignore `luts` and run as [`LutKernel::run`].
    ///
    /// # Errors
    ///
    /// Shape, format, or padding errors, or
    /// [`LocaLutError::UnsupportedFormat`] when `luts` was built for a
    /// different `(wf, af, p)` than the kernel needs.
    fn run_with_luts(
        &self,
        w: &QMatrix,
        a: &QMatrix,
        luts: &SharedLuts,
    ) -> Result<GemmResult, LocaLutError> {
        let _ = luts;
        self.run(w, a)
    }

    /// Resolves the shard-invariant activation panel this kernel can share
    /// across row-sharded banks, or `None` for arms without one (the
    /// LUT-free baselines and the software-reorder arms). Panels decouple
    /// the activation-side group resolution from the per-bank M-pass: a
    /// bank-parallel executor resolves each activation column band once
    /// and passes the panel to [`LutKernel::run_with_panel`] on every bank
    /// in the band.
    ///
    /// # Errors
    ///
    /// Shape, format, or padding errors.
    fn resolve_panel(
        &self,
        a: &QMatrix,
        luts: &SharedLuts,
    ) -> Result<Option<ActivationPanel>, LocaLutError> {
        let _ = (a, luts);
        Ok(None)
    }

    /// Runs against an activation panel previously resolved **from the
    /// same activation operand** by [`LutKernel::resolve_panel`] — the
    /// panel is trusted as `a`'s resolution (shapes are validated; values
    /// are the caller's contract). Bitwise identical to
    /// [`LutKernel::run_with_luts`] in values and profile. The default
    /// ignores the panel and runs `run_with_luts`.
    ///
    /// # Errors
    ///
    /// As [`LutKernel::run_with_luts`], plus
    /// [`LocaLutError::UnsupportedFormat`] when the panel's shape does not
    /// match the operands.
    fn run_with_panel(
        &self,
        w: &QMatrix,
        a: &QMatrix,
        luts: &SharedLuts,
        panel: &ActivationPanel,
    ) -> Result<GemmResult, LocaLutError> {
        let _ = panel;
        self.run_with_luts(w, a, luts)
    }
}

/// A read-only canonical + reordering LUT pair shared across workers.
///
/// Building the canonical LUT is the expensive host-side step of a kernel
/// launch (up to ~12 M entries at W1A3, `p = 8`). In the hardware model the
/// image is built once and broadcast to every bank (§V-A); this type is the
/// software twin: one build behind [`Arc`], cloned by reference into every
/// worker of a bank-parallel run.
///
/// # Examples
///
/// ```
/// use localut::kernels::SharedLuts;
/// use quant::NumericFormat;
///
/// let luts = SharedLuts::build(NumericFormat::Uint(1), NumericFormat::Int(3), 3)?;
/// assert_eq!(luts.p(), 3);
/// // Clones share the same LUT storage (cheap Arc bumps).
/// let worker_copy = luts.clone();
/// assert_eq!(worker_copy.canonical().cols(), luts.canonical().cols());
/// # Ok::<(), localut::LocaLutError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SharedLuts {
    canonical: Arc<CanonicalLut<i32>>,
    reorder: Arc<ReorderLut>,
    wf: NumericFormat,
    af: NumericFormat,
    p: u32,
}

impl SharedLuts {
    /// Builds the canonical + reordering LUT images for `(wf, af, p)`.
    ///
    /// # Errors
    ///
    /// LUT build errors ([`LocaLutError::BudgetExceeded`] when the
    /// materialization guard trips, format/degree errors).
    pub fn build(wf: NumericFormat, af: NumericFormat, p: u32) -> Result<Self, LocaLutError> {
        let canonical = CanonicalLut::<i32>::build(wf, af, p, MAX_MATERIALIZED_ENTRIES)?;
        let reorder = ReorderLut::build(wf.bits(), p, MAX_MATERIALIZED_ENTRIES)?;
        Ok(SharedLuts {
            canonical: Arc::new(canonical),
            reorder: Arc::new(reorder),
            wf,
            af,
            p,
        })
    }

    /// Reassembles a shared pair from already-materialized images (a
    /// persisted cache, a broadcast copy), validating that the two were
    /// built for one `(wf, af, p)` configuration.
    ///
    /// # Errors
    ///
    /// [`LocaLutError::UnsupportedFormat`] when the reordering LUT's
    /// `(bits, p)` does not match the canonical LUT's weight format and
    /// packing degree.
    pub fn from_parts(
        canonical: CanonicalLut<i32>,
        reorder: ReorderLut,
    ) -> Result<Self, LocaLutError> {
        if reorder.bits() != canonical.weight_format().bits() || reorder.p() != canonical.p() {
            return Err(LocaLutError::UnsupportedFormat(
                "reordering LUT shape does not match the canonical LUT's (wf, p)",
            ));
        }
        let (wf, af, p) = (
            canonical.weight_format(),
            canonical.activation_format(),
            canonical.p(),
        );
        Ok(SharedLuts {
            canonical: Arc::new(canonical),
            reorder: Arc::new(reorder),
            wf,
            af,
            p,
        })
    }

    /// Host bytes the materialized images occupy (canonical `i32` entries
    /// plus reordering `u64` entries) — the unit a byte-budgeted cache
    /// accounts residency in. A pure function of the image dimensions, so
    /// identical for a fresh build and a disk restore of the same key.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.canonical.entry_count() * std::mem::size_of::<i32>() as u64
            + self.reorder.entry_count() * std::mem::size_of::<u64>() as u64
    }

    /// The shared canonical LUT.
    #[must_use]
    pub fn canonical(&self) -> &CanonicalLut<i32> {
        &self.canonical
    }

    /// The shared reordering LUT.
    #[must_use]
    pub fn reorder(&self) -> &ReorderLut {
        &self.reorder
    }

    /// The packing degree the LUTs were built for.
    #[must_use]
    pub fn p(&self) -> u32 {
        self.p
    }

    /// The weight format the LUTs were built for.
    #[must_use]
    pub fn weight_format(&self) -> NumericFormat {
        self.wf
    }

    /// The activation format the LUTs were built for.
    #[must_use]
    pub fn activation_format(&self) -> NumericFormat {
        self.af
    }

    /// Validates that the LUTs match a kernel's `(wf, af, p)` configuration.
    pub(crate) fn check(
        &self,
        wf: NumericFormat,
        af: NumericFormat,
        p: u32,
    ) -> Result<(), LocaLutError> {
        if self.wf != wf || self.af != af || self.p != p {
            return Err(LocaLutError::UnsupportedFormat(
                "shared LUTs were built for a different (format, format, p) configuration",
            ));
        }
        Ok(())
    }
}

/// A method-erased, construct-once bank kernel.
///
/// `GemmConfig::run` re-plans and rebuilds LUTs on every call; a parallel
/// runtime instead builds one `BankKernel` for the *full* GEMM dimensions
/// and hands a clone to every worker, so all banks execute the identical
/// plan against one [`SharedLuts`] image (clones only bump `Arc` counts).
///
/// The handle is a `dyn` [`LutKernel`] plus the optional shared images the
/// kernel runs against — [`BankKernel::run`] routes through
/// [`LutKernel::run_with_luts`] when images are attached and
/// [`LutKernel::run`] otherwise, and everything else delegates to the
/// trait. Construction from a [`Method`] lives in [`BankKernel::build`] /
/// [`BankKernel::build_with`] / [`BankKernel::build_planned`].
///
/// # Examples
///
/// ```
/// use localut::kernels::BankKernel;
/// use localut::{GemmConfig, GemmDims, Method};
/// use quant::NumericFormat;
///
/// let dims = GemmDims { m: 64, k: 36, n: 8 };
/// let bank = BankKernel::build(
///     &GemmConfig::upmem(), Method::LoCaLut,
///     NumericFormat::Int(2), NumericFormat::Int(3), dims)?;
/// assert_eq!(bank.method(), Method::LoCaLut);
/// assert!(bank.cost(dims).total_seconds() > 0.0);
/// # Ok::<(), localut::LocaLutError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BankKernel {
    kernel: Arc<dyn LutKernel>,
    luts: Option<SharedLuts>,
}

impl BankKernel {
    /// Wraps a kernel with no shared LUT images attached; it builds
    /// whatever images it needs locally on each run.
    pub fn new(kernel: impl LutKernel + 'static) -> Self {
        BankKernel {
            kernel: Arc::new(kernel),
            luts: None,
        }
    }

    /// Wraps a kernel together with prebuilt shared LUT images; every run
    /// routes through [`LutKernel::run_with_luts`] against them.
    pub fn with_shared_luts(kernel: impl LutKernel + 'static, luts: SharedLuts) -> Self {
        BankKernel {
            kernel: Arc::new(kernel),
            luts: Some(luts),
        }
    }

    /// The wrapped kernel, as the trait object every dispatch layer sees.
    #[must_use]
    pub fn kernel(&self) -> &dyn LutKernel {
        self.kernel.as_ref()
    }

    /// The attached shared LUT images, if any.
    #[must_use]
    pub fn shared_luts(&self) -> Option<&SharedLuts> {
        self.luts.as_ref()
    }

    /// The method this kernel realizes.
    #[must_use]
    pub fn method(&self) -> Method {
        self.kernel.method()
    }

    /// The kernel's packing degree.
    #[must_use]
    pub fn p(&self) -> u32 {
        self.kernel.p()
    }

    /// Runs the kernel on one operand tile, reusing the shared LUT images
    /// where the method has them.
    ///
    /// # Errors
    ///
    /// Shape, format, or padding errors.
    pub fn run(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmResult, LocaLutError> {
        match &self.luts {
            Some(luts) => self.kernel.run_with_luts(w, a, luts),
            None => self.kernel.run(w, a),
        }
    }

    /// The analytic cost twin for a tile of `dims` (equals the profile
    /// [`BankKernel::run`] charges for operands of the same shape).
    #[must_use]
    pub fn cost(&self, dims: GemmDims) -> Profile {
        self.kernel.cost(dims)
    }

    /// Resolves the activation panel the wrapped kernel shares across
    /// row-sharded banks — `None` when no shared images are attached or
    /// the kernel has no panel form.
    ///
    /// # Errors
    ///
    /// Shape, format, or padding errors.
    pub fn resolve_panel(&self, a: &QMatrix) -> Result<Option<ActivationPanel>, LocaLutError> {
        match &self.luts {
            Some(luts) => self.kernel.resolve_panel(a, luts),
            None => Ok(None),
        }
    }

    /// Runs one tile against a panel resolved from the same activation
    /// tile by [`BankKernel::resolve_panel`]; falls back to
    /// [`BankKernel::run`] when `panel` is `None`. Bitwise identical to
    /// `run` in values and profile.
    ///
    /// # Errors
    ///
    /// Shape, format, or padding errors.
    pub fn run_panel(
        &self,
        w: &QMatrix,
        a: &QMatrix,
        panel: Option<&ActivationPanel>,
    ) -> Result<GemmResult, LocaLutError> {
        match (&self.luts, panel) {
            (Some(luts), Some(panel)) => self.kernel.run_with_panel(w, a, luts, panel),
            _ => self.run(w, a),
        }
    }
}

/// Multi-threaded functional GEMM: the parallel twin of [`GemmConfig::run`].
///
/// The activation matrix is split into `threads` contiguous column chunks;
/// scoped worker threads each run one chunk through a shared [`BankKernel`]
/// (one LUT build, zero copies of the LUT images) and the outputs are
/// scattered back into place. Because every kernel is bit-exact and its
/// profile is data-independent (`run().profile == cost(dims)`), the result
/// is **bit-identical** to the serial path in both values and profile, for
/// any thread count.
///
/// This parallelizes the *wall-clock* execution of the functional
/// simulation on the host; for the simulated bank-parallel timing model
/// (per-bank profiles, associative stats merging) use the `runtime` crate's
/// `ParallelExecutor`, which builds on the same [`BankKernel`].
///
/// # Errors
///
/// Shape, format, budget, or planning errors (see [`LocaLutError`]).
///
/// # Panics
///
/// Panics if a worker thread panics (kernel internals do not panic on
/// validated inputs).
///
/// # Examples
///
/// ```
/// use localut::gemm::{GemmConfig, Method};
/// use localut::kernels::par_run;
/// use quant::{NumericFormat, Quantizer};
///
/// let wq = Quantizer::symmetric(NumericFormat::Int(2));
/// let aq = Quantizer::symmetric(NumericFormat::Int(3));
/// let w = wq.quantize_matrix(&[1.0, -1.0, 0.5, -0.5, 1.0, 0.0], 2, 3)?;
/// let a = aq.quantize_matrix(&[3.0, -3.0, 1.0, 0.0, -2.0, 2.0], 3, 2)?;
///
/// let cfg = GemmConfig::upmem();
/// let serial = cfg.run(Method::LoCaLut, &w, &a)?;
/// let parallel = par_run(&cfg, Method::LoCaLut, &w, &a, 2)?;
/// assert_eq!(parallel.values, serial.values);
/// assert_eq!(parallel.profile, serial.profile);
/// # Ok::<(), localut::LocaLutError>(())
/// ```
pub fn par_run(
    cfg: &GemmConfig,
    method: Method,
    w: &QMatrix,
    a: &QMatrix,
    threads: usize,
) -> Result<GemmResult, LocaLutError> {
    let dims = GemmDims::of(w, a)?;
    let bank = BankKernel::build(cfg, method, w.format(), a.format(), dims)?;
    let threads = threads.clamp(1, dims.n.max(1));
    if threads == 1 {
        return bank.run(w, a);
    }
    let chunk = dims.n.div_ceil(threads);
    let tiles: Vec<(usize, GemmResult)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| (t * chunk, dims.n.min((t + 1) * chunk)))
            .filter(|(n0, n1)| n0 < n1)
            .map(|(n0, n1)| {
                let bank = &bank;
                scope.spawn(move || {
                    let tile = a.submatrix(0..dims.k, n0..n1);
                    bank.run(w, &tile).map(|r| (n0, r))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_run worker panicked"))
            .collect::<Result<_, _>>()
    })?;
    let mut values = vec![0i32; dims.m * dims.n];
    for (n0, tile) in &tiles {
        for m in 0..dims.m {
            let src = &tile.values[m * tile.dims.n..(m + 1) * tile.dims.n];
            values[m * dims.n + n0..m * dims.n + n0 + tile.dims.n].copy_from_slice(src);
        }
    }
    Ok(GemmResult {
        values,
        dims,
        // Data-independent profiles make the serial cost twin exact.
        profile: bank.cost(dims),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant::Quantizer;

    #[test]
    fn zero_code_per_format() {
        assert_eq!(zero_code(NumericFormat::Int(3)), Some(0));
        assert_eq!(zero_code(NumericFormat::Uint(2)), Some(0));
        assert_eq!(zero_code(NumericFormat::Bipolar), None);
    }

    #[test]
    fn pad_code_requires_zero_only_for_remainders() {
        assert!(pad_code_for(NumericFormat::Bipolar, 6, 3).is_ok());
        assert!(matches!(
            pad_code_for(NumericFormat::Bipolar, 7, 3),
            Err(LocaLutError::UnpaddableRemainder { remainder: 1 })
        ));
        assert_eq!(pad_code_for(NumericFormat::Int(3), 7, 3).unwrap(), 0);
    }

    #[test]
    fn require_integer_rejects_floats() {
        assert!(require_integer(NumericFormat::Int(2), NumericFormat::Int(3)).is_ok());
        assert!(require_integer(NumericFormat::Fp4, NumericFormat::Int(3)).is_err());
        assert!(require_integer(NumericFormat::Bipolar, NumericFormat::Fp8).is_err());
    }

    fn operands(m: usize, k: usize, n: usize) -> (QMatrix, QMatrix) {
        let wdata: Vec<f32> = (0..m * k)
            .map(|i| ((i * 13 + 5) % 7) as f32 - 3.0)
            .collect();
        let adata: Vec<f32> = (0..k * n)
            .map(|i| ((i * 3 + 2) % 11) as f32 - 5.0)
            .collect();
        (
            Quantizer::symmetric(NumericFormat::Int(2))
                .quantize_matrix(&wdata, m, k)
                .unwrap(),
            Quantizer::symmetric(NumericFormat::Int(3))
                .quantize_matrix(&adata, k, n)
                .unwrap(),
        )
    }

    #[test]
    fn shared_luts_reject_mismatched_kernels() {
        let luts = SharedLuts::build(NumericFormat::Int(2), NumericFormat::Int(3), 2).unwrap();
        let kernel = RcKernel::with_p(
            pim_sim::DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(3),
            3, // p differs from the LUT build
        )
        .unwrap();
        let (w, a) = operands(2, 6, 2);
        assert!(matches!(
            kernel.run_with_luts(&w, &a, &luts),
            Err(LocaLutError::UnsupportedFormat(_))
        ));
    }

    #[test]
    fn run_with_luts_matches_run() {
        let (w, a) = operands(4, 9, 3);
        let kernel = RcKernel::with_p(
            pim_sim::DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(3),
            3,
        )
        .unwrap();
        let luts = SharedLuts::build(NumericFormat::Int(2), NumericFormat::Int(3), 3).unwrap();
        let shared = kernel.run_with_luts(&w, &a, &luts).unwrap();
        let local = LutKernel::run(&kernel, &w, &a).unwrap();
        assert_eq!(shared, local);
    }

    #[test]
    fn bank_kernel_reports_method_and_p_for_every_arm() {
        let (w, a) = operands(4, 12, 3);
        let dims = GemmDims::of(&w, &a).unwrap();
        let cfg = GemmConfig::upmem();
        for method in Method::ALL {
            let bank = BankKernel::build(&cfg, method, w.format(), a.format(), dims).unwrap();
            // A LoCaLut plan that lands buffer-resident is realized by the
            // RC arm and reports itself as such (same contract as before
            // the trait unification).
            if method == Method::LoCaLut {
                assert!(matches!(bank.method(), Method::LoCaLut | Method::OpLcRc));
            } else {
                assert_eq!(bank.method(), method);
            }
            assert!(bank.p() >= 1, "{method}");
            // LUT images are attached exactly where the method shares them.
            assert_eq!(
                bank.shared_luts().is_some(),
                matches!(method, Method::OpLcRc | Method::LoCaLut),
                "{method}"
            );
            let out = bank.run(&w, &a).unwrap();
            assert_eq!(out.profile, bank.cost(dims), "{method}");
        }
    }

    #[test]
    fn trait_dispatch_matches_inherent_calls() {
        let (w, a) = operands(5, 10, 2);
        let kernel = RcKernel::with_p(
            pim_sim::DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(3),
            2,
        )
        .unwrap();
        let erased: &dyn LutKernel = &kernel;
        assert_eq!(erased.method(), Method::OpLcRc);
        assert_eq!(erased.p(), 2);
        let dims = erased.validate(&w, &a).unwrap();
        let out = erased.run(&w, &a).unwrap();
        assert_eq!(out.profile, erased.cost(dims));
    }

    #[test]
    fn par_run_is_bit_identical_to_serial_for_all_methods() {
        let (w, a) = operands(6, 12, 5);
        let cfg = GemmConfig::upmem();
        for method in Method::ALL {
            let serial = cfg.run(method, &w, &a).unwrap();
            for threads in [1usize, 2, 3, 8] {
                let par = par_run(&cfg, method, &w, &a, threads).unwrap();
                assert_eq!(par.values, serial.values, "{method} values @{threads}");
                assert_eq!(par.profile, serial.profile, "{method} profile @{threads}");
            }
        }
    }

    #[test]
    fn par_run_handles_more_threads_than_columns() {
        let (w, a) = operands(3, 8, 2);
        let cfg = GemmConfig::upmem();
        let serial = cfg.run(Method::OpLcRc, &w, &a).unwrap();
        let par = par_run(&cfg, Method::OpLcRc, &w, &a, 64).unwrap();
        assert_eq!(par.values, serial.values);
        assert_eq!(par.profile, serial.profile);
    }
}
