//! The six GEMM kernels of the paper's evaluation (§VI-A).
//!
//! Every kernel is **functional + timed**: `run` computes the exact output
//! through the kernel's actual data structures (LUTs, bit-serial tables, or
//! plain MACs) while an analytic `cost` twin charges the identical event
//! counts for given dimensions. The two stay consistent by construction —
//! both call one private `charge` routine whose event counts depend only on
//! dimensions (the dataflows are data-independent) — and tests assert
//! `run(...).profile == cost(dims)`.
//!
//! | Kernel | Design point | Paper |
//! |---|---|---|
//! | [`NaiveKernel`]     | int MACs on the DPU            | "Naive PIM" |
//! | [`LtcKernel`]       | bit-serial runtime LUTs        | "LTC (PIM)" |
//! | [`OpKernel`]        | buffer-resident packed LUT     | "OP" (§III) |
//! | [`LcKernel`]        | + canonicalization, sw reorder | "OP+LC" (§IV-A) |
//! | [`RcKernel`]        | + reordering LUT               | "OP+LC+RC" (§IV-B) |
//! | [`StreamingKernel`] | + LUT slice streaming          | "LoCaLUT" (§IV-C) |

mod lc;
mod ltc;
mod naive;
mod op;
mod rc;
mod streaming;

pub use lc::LcKernel;
pub use ltc::LtcKernel;
pub use naive::NaiveKernel;
pub use op::OpKernel;
pub use rc::RcKernel;
pub use streaming::StreamingKernel;

use crate::gemm::GemmDims;
use crate::LocaLutError;
use pim_sim::{Category, Dpu};
use quant::{NumericFormat, QMatrix};

/// Guard against accidentally materializing astronomically large LUTs in
/// host memory during functional runs. All UPMEM-budget-feasible LUTs fit
/// comfortably (the largest, W1A3 at `p = 8`, is ~12 M entries).
pub(crate) const MAX_MATERIALIZED_ENTRIES: u64 = 1 << 26;

/// Ensures both operand formats decode to exact integers.
pub(crate) fn require_integer(wf: NumericFormat, af: NumericFormat) -> Result<(), LocaLutError> {
    if !wf.is_integer() || !af.is_integer() {
        return Err(LocaLutError::UnsupportedFormat(
            "integer kernels require integer weight/activation formats",
        ));
    }
    Ok(())
}

/// The activation code that decodes to integer zero, used to pad `K` up to
/// a multiple of `p` (`None` for formats without a zero, e.g. bipolar).
pub(crate) fn zero_code(af: NumericFormat) -> Option<u16> {
    af.encode_int(0).ok().map(|c| c as u16)
}

/// Extracts the `p` activation codes of group (`kb`, `n`), padding past `K`
/// with `pad`.
pub(crate) fn group_codes(a: &QMatrix, kb: usize, n: usize, p: usize, pad: u16) -> Vec<u16> {
    (0..p)
        .map(|i| {
            let k = kb * p + i;
            if k < a.rows() {
                a.code_at(k, n)
            } else {
                pad
            }
        })
        .collect()
}

/// Extracts the `p` weight codes of row `m` for K-block `kb`, padding past
/// `K` with code 0 (the activation pad is zero-valued, so any weight code
/// contributes nothing).
pub(crate) fn weight_group_codes(w: &QMatrix, m: usize, kb: usize, p: usize) -> Vec<u16> {
    (0..p)
        .map(|i| {
            let k = kb * p + i;
            if k < w.cols() {
                w.code_at(m, k)
            } else {
                0
            }
        })
        .collect()
}

/// Resolves the zero pad code or errors when `K % p != 0` and none exists.
pub(crate) fn pad_code_for(af: NumericFormat, k: usize, p: usize) -> Result<u16, LocaLutError> {
    let remainder = k % p;
    match zero_code(af) {
        Some(c) => Ok(c),
        None if remainder == 0 => Ok(0), // never used
        None => Err(LocaLutError::UnpaddableRemainder { remainder }),
    }
}

/// Charges the common operand input streams (weights + activations,
/// bank → WRAM) to [`Category::DataTransfer`].
pub(crate) fn charge_operand_input(dpu: &mut Dpu, dims: GemmDims, bw: u8, ba: u8) {
    dpu.charge_dram_stream(
        dims.weight_bytes(bw) + dims.activation_bytes(ba),
        Category::DataTransfer,
    );
}

/// Charges the output writeback (WRAM → bank).
pub(crate) fn charge_output(dpu: &mut Dpu, dims: GemmDims) {
    dpu.charge_dram_writeback(dims.output_bytes(), Category::OutputWriteback);
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant::Quantizer;

    #[test]
    fn zero_code_per_format() {
        assert_eq!(zero_code(NumericFormat::Int(3)), Some(0));
        assert_eq!(zero_code(NumericFormat::Uint(2)), Some(0));
        assert_eq!(zero_code(NumericFormat::Bipolar), None);
    }

    #[test]
    fn pad_code_requires_zero_only_for_remainders() {
        assert!(pad_code_for(NumericFormat::Bipolar, 6, 3).is_ok());
        assert!(matches!(
            pad_code_for(NumericFormat::Bipolar, 7, 3),
            Err(LocaLutError::UnpaddableRemainder { remainder: 1 })
        ));
        assert_eq!(pad_code_for(NumericFormat::Int(3), 7, 3).unwrap(), 0);
    }

    #[test]
    fn group_codes_pads_past_k() {
        let a = Quantizer::symmetric(NumericFormat::Int(3))
            .quantize_matrix(&[1.0, 2.0, 3.0, -1.0, -2.0, -3.0], 3, 2)
            .unwrap();
        let g = group_codes(&a, 1, 0, 2, 9);
        assert_eq!(g[0], a.code_at(2, 0));
        assert_eq!(g[1], 9); // padded
    }

    #[test]
    fn require_integer_rejects_floats() {
        assert!(require_integer(NumericFormat::Int(2), NumericFormat::Int(3)).is_ok());
        assert!(require_integer(NumericFormat::Fp4, NumericFormat::Int(3)).is_err());
        assert!(require_integer(NumericFormat::Bipolar, NumericFormat::Fp8).is_err());
    }
}
