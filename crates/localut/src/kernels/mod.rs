//! The six GEMM kernels of the paper's evaluation (§VI-A).
//!
//! Every kernel is **functional + timed**: `run` computes the exact output
//! through the kernel's actual data structures (LUTs, bit-serial tables, or
//! plain MACs) while an analytic `cost` twin charges the identical event
//! counts for given dimensions. The two stay consistent by construction —
//! both call one private `charge` routine whose event counts depend only on
//! dimensions (the dataflows are data-independent) — and tests assert
//! `run(...).profile == cost(dims)`.
//!
//! | Kernel | Design point | Paper |
//! |---|---|---|
//! | [`NaiveKernel`]     | int MACs on the DPU            | "Naive PIM" |
//! | [`LtcKernel`]       | bit-serial runtime LUTs        | "LTC (PIM)" |
//! | [`OpKernel`]        | buffer-resident packed LUT     | "OP" (§III) |
//! | [`LcKernel`]        | + canonicalization, sw reorder | "OP+LC" (§IV-A) |
//! | [`RcKernel`]        | + reordering LUT               | "OP+LC+RC" (§IV-B) |
//! | [`StreamingKernel`] | + LUT slice streaming          | "LoCaLUT" (§IV-C) |
//!
//! For bank-parallel execution, [`SharedLuts`] holds the canonical +
//! reordering LUT images behind `Arc` so N workers share one read-only
//! build, [`BankKernel`] is the method-erased construct-once kernel those
//! workers clone, and [`par_run`] is the multi-threaded entry point
//! (sharded across host threads; see the `runtime` crate for the full
//! executor with per-bank profiles).

mod lc;
mod ltc;
mod naive;
mod op;
mod rc;
mod streaming;

pub use lc::LcKernel;
pub use ltc::LtcKernel;
pub use naive::NaiveKernel;
pub use op::OpKernel;
pub use rc::RcKernel;
pub use streaming::StreamingKernel;

use crate::canonical::CanonicalLut;
use crate::gemm::{GemmConfig, GemmDims, GemmResult, Method};
use crate::plan::{ExecutionPlan, Placement, Planner};
use crate::reorder::ReorderLut;
use crate::LocaLutError;
use pim_sim::{Category, Dpu, Profile};
use quant::{NumericFormat, QMatrix};
use std::sync::Arc;

/// Guard against accidentally materializing astronomically large LUTs in
/// host memory during functional runs. All UPMEM-budget-feasible LUTs fit
/// comfortably (the largest, W1A3 at `p = 8`, is ~12 M entries).
pub(crate) const MAX_MATERIALIZED_ENTRIES: u64 = 1 << 26;

/// Ensures both operand formats decode to exact integers.
pub(crate) fn require_integer(wf: NumericFormat, af: NumericFormat) -> Result<(), LocaLutError> {
    if !wf.is_integer() || !af.is_integer() {
        return Err(LocaLutError::UnsupportedFormat(
            "integer kernels require integer weight/activation formats",
        ));
    }
    Ok(())
}

/// The activation code that decodes to integer zero, used to pad `K` up to
/// a multiple of `p` (`None` for formats without a zero, e.g. bipolar).
pub(crate) fn zero_code(af: NumericFormat) -> Option<u16> {
    af.encode_int(0).ok().map(|c| c as u16)
}

/// Extracts the `p` activation codes of group (`kb`, `n`), padding past `K`
/// with `pad`.
pub(crate) fn group_codes(a: &QMatrix, kb: usize, n: usize, p: usize, pad: u16) -> Vec<u16> {
    (0..p)
        .map(|i| {
            let k = kb * p + i;
            if k < a.rows() {
                a.code_at(k, n)
            } else {
                pad
            }
        })
        .collect()
}

/// Extracts the `p` weight codes of row `m` for K-block `kb`, padding past
/// `K` with code 0 (the activation pad is zero-valued, so any weight code
/// contributes nothing).
pub(crate) fn weight_group_codes(w: &QMatrix, m: usize, kb: usize, p: usize) -> Vec<u16> {
    (0..p)
        .map(|i| {
            let k = kb * p + i;
            if k < w.cols() {
                w.code_at(m, k)
            } else {
                0
            }
        })
        .collect()
}

/// Precomputes the packed weight row index of **every** `(m, kb)` group in
/// one pass: `out[m * kblocks + kb]` equals
/// `pack_index(&weight_group_codes(w, m, kb, p), bits)`.
///
/// This is the LUT kernels' hot-path hoist: the packed weight row depends
/// only on `(m, kb)`, yet the naive triple loop re-extracts and re-packs it
/// for every activation column — `M · ⌈K/p⌉ · N` heap-allocated code groups
/// where `M · ⌈K/p⌉` suffice. Packing here walks each weight row's code
/// slice directly (no per-group `Vec`), and the zero weight pad past `K`
/// falls out of the zero initialization.
pub(crate) fn packed_weight_rows(w: &QMatrix, p: usize, bits: u8) -> Vec<u64> {
    let kblocks = w.cols().div_ceil(p);
    let mut packed = vec![0u64; w.rows() * kblocks];
    for m in 0..w.rows() {
        let row = &mut packed[m * kblocks..(m + 1) * kblocks];
        for (k, &code) in w.row(m).iter().enumerate() {
            row[k / p] |= u64::from(code) << (usize::from(bits) * (k % p));
        }
    }
    packed
}

/// Resolves the zero pad code or errors when `K % p != 0` and none exists.
pub(crate) fn pad_code_for(af: NumericFormat, k: usize, p: usize) -> Result<u16, LocaLutError> {
    let remainder = k % p;
    match zero_code(af) {
        Some(c) => Ok(c),
        None if remainder == 0 => Ok(0), // never used
        None => Err(LocaLutError::UnpaddableRemainder { remainder }),
    }
}

/// Charges the common operand input streams (weights + activations,
/// bank → WRAM) to [`Category::DataTransfer`].
pub(crate) fn charge_operand_input(dpu: &mut Dpu, dims: GemmDims, bw: u8, ba: u8) {
    dpu.charge_dram_stream(
        dims.weight_bytes(bw) + dims.activation_bytes(ba),
        Category::DataTransfer,
    );
}

/// Charges the output writeback (WRAM → bank).
pub(crate) fn charge_output(dpu: &mut Dpu, dims: GemmDims) {
    dpu.charge_dram_writeback(dims.output_bytes(), Category::OutputWriteback);
}

/// A read-only canonical + reordering LUT pair shared across workers.
///
/// Building the canonical LUT is the expensive host-side step of a kernel
/// launch (up to ~12 M entries at W1A3, `p = 8`). In the hardware model the
/// image is built once and broadcast to every bank (§V-A); this type is the
/// software twin: one build behind [`Arc`], cloned by reference into every
/// worker of a bank-parallel run.
///
/// # Examples
///
/// ```
/// use localut::kernels::SharedLuts;
/// use quant::NumericFormat;
///
/// let luts = SharedLuts::build(NumericFormat::Uint(1), NumericFormat::Int(3), 3)?;
/// assert_eq!(luts.p(), 3);
/// // Clones share the same LUT storage (cheap Arc bumps).
/// let worker_copy = luts.clone();
/// assert_eq!(worker_copy.canonical().cols(), luts.canonical().cols());
/// # Ok::<(), localut::LocaLutError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SharedLuts {
    canonical: Arc<CanonicalLut<i32>>,
    reorder: Arc<ReorderLut>,
    wf: NumericFormat,
    af: NumericFormat,
    p: u32,
}

impl SharedLuts {
    /// Builds the canonical + reordering LUT images for `(wf, af, p)`.
    ///
    /// # Errors
    ///
    /// LUT build errors ([`LocaLutError::BudgetExceeded`] when the
    /// materialization guard trips, format/degree errors).
    pub fn build(wf: NumericFormat, af: NumericFormat, p: u32) -> Result<Self, LocaLutError> {
        let canonical = CanonicalLut::<i32>::build(wf, af, p, MAX_MATERIALIZED_ENTRIES)?;
        let reorder = ReorderLut::build(wf.bits(), p, MAX_MATERIALIZED_ENTRIES)?;
        Ok(SharedLuts {
            canonical: Arc::new(canonical),
            reorder: Arc::new(reorder),
            wf,
            af,
            p,
        })
    }

    /// Reassembles a shared pair from already-materialized images (a
    /// persisted cache, a broadcast copy), validating that the two were
    /// built for one `(wf, af, p)` configuration.
    ///
    /// # Errors
    ///
    /// [`LocaLutError::UnsupportedFormat`] when the reordering LUT's
    /// `(bits, p)` does not match the canonical LUT's weight format and
    /// packing degree.
    pub fn from_parts(
        canonical: CanonicalLut<i32>,
        reorder: ReorderLut,
    ) -> Result<Self, LocaLutError> {
        if reorder.bits() != canonical.weight_format().bits() || reorder.p() != canonical.p() {
            return Err(LocaLutError::UnsupportedFormat(
                "reordering LUT shape does not match the canonical LUT's (wf, p)",
            ));
        }
        let (wf, af, p) = (
            canonical.weight_format(),
            canonical.activation_format(),
            canonical.p(),
        );
        Ok(SharedLuts {
            canonical: Arc::new(canonical),
            reorder: Arc::new(reorder),
            wf,
            af,
            p,
        })
    }

    /// Host bytes the materialized images occupy (canonical `i32` entries
    /// plus reordering `u64` entries) — the unit a byte-budgeted cache
    /// accounts residency in. A pure function of the image dimensions, so
    /// identical for a fresh build and a disk restore of the same key.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.canonical.entry_count() * std::mem::size_of::<i32>() as u64
            + self.reorder.entry_count() * std::mem::size_of::<u64>() as u64
    }

    /// The shared canonical LUT.
    #[must_use]
    pub fn canonical(&self) -> &CanonicalLut<i32> {
        &self.canonical
    }

    /// The shared reordering LUT.
    #[must_use]
    pub fn reorder(&self) -> &ReorderLut {
        &self.reorder
    }

    /// The packing degree the LUTs were built for.
    #[must_use]
    pub fn p(&self) -> u32 {
        self.p
    }

    /// The weight format the LUTs were built for.
    #[must_use]
    pub fn weight_format(&self) -> NumericFormat {
        self.wf
    }

    /// The activation format the LUTs were built for.
    #[must_use]
    pub fn activation_format(&self) -> NumericFormat {
        self.af
    }

    /// Validates that the LUTs match a kernel's `(wf, af, p)` configuration.
    pub(crate) fn check(
        &self,
        wf: NumericFormat,
        af: NumericFormat,
        p: u32,
    ) -> Result<(), LocaLutError> {
        if self.wf != wf || self.af != af || self.p != p {
            return Err(LocaLutError::UnsupportedFormat(
                "shared LUTs were built for a different (format, format, p) configuration",
            ));
        }
        Ok(())
    }
}

/// A method-erased, construct-once bank kernel.
///
/// `GemmConfig::run` re-plans and rebuilds LUTs on every call; a parallel
/// runtime instead builds one `BankKernel` for the *full* GEMM dimensions
/// and hands a clone to every worker, so all banks execute the identical
/// plan against one [`SharedLuts`] image (clones only bump `Arc` counts).
///
/// # Examples
///
/// ```
/// use localut::kernels::BankKernel;
/// use localut::{GemmConfig, GemmDims, Method};
/// use quant::NumericFormat;
///
/// let dims = GemmDims { m: 64, k: 36, n: 8 };
/// let bank = BankKernel::build(
///     &GemmConfig::upmem(), Method::LoCaLut,
///     NumericFormat::Int(2), NumericFormat::Int(3), dims)?;
/// assert_eq!(bank.method(), Method::LoCaLut);
/// assert!(bank.cost(dims).total_seconds() > 0.0);
/// # Ok::<(), localut::LocaLutError>(())
/// ```
#[derive(Debug, Clone)]
pub enum BankKernel {
    /// Conventional int-MAC PIM kernel (plus the operand formats its
    /// analytic cost twin charges for).
    Naive(NaiveKernel, NumericFormat, NumericFormat),
    /// Bit-serial runtime-LUT kernel (plus the operand formats its
    /// analytic cost twin charges for).
    Ltc(LtcKernel, NumericFormat, NumericFormat),
    /// Buffer-resident operation-packed LUT kernel.
    Op(OpKernel),
    /// Canonicalized LUT kernel with software reordering.
    Lc(LcKernel),
    /// Canonical + reordering LUT kernel with shared LUT images.
    Rc(RcKernel, SharedLuts),
    /// Slice-streaming LoCaLUT kernel with shared LUT images.
    Streaming(StreamingKernel, SharedLuts),
}

impl BankKernel {
    /// Constructs the kernel `method` would use for a GEMM of `dims`,
    /// building shared LUT images once where the method uses them.
    ///
    /// For [`Method::LoCaLut`] the §V-A planner runs on the **full**
    /// dimensions, so every bank of a sharded run executes the same
    /// placement and packing degree the serial path would.
    ///
    /// # Errors
    ///
    /// Format, budget, or planning errors (see [`LocaLutError`]).
    pub fn build(
        cfg: &GemmConfig,
        method: Method,
        wf: NumericFormat,
        af: NumericFormat,
        dims: GemmDims,
    ) -> Result<Self, LocaLutError> {
        Self::build_with(cfg, method, wf, af, dims, |wf, af, p, _| {
            SharedLuts::build(wf, af, p)
        })
    }

    /// [`BankKernel::build`] with an injected LUT source: wherever the
    /// method needs shared images, `luts_for(wf, af, p, placement)` is
    /// asked for them instead of [`SharedLuts::build`]. This keeps the
    /// method dispatch and planning in exactly one place while letting a
    /// serving layer substitute a cache — the returned kernel is
    /// otherwise identical to `build`'s.
    ///
    /// # Errors
    ///
    /// Format, budget, or planning errors, plus whatever `luts_for`
    /// reports.
    pub fn build_with(
        cfg: &GemmConfig,
        method: Method,
        wf: NumericFormat,
        af: NumericFormat,
        dims: GemmDims,
        luts_for: impl FnMut(
            NumericFormat,
            NumericFormat,
            u32,
            Placement,
        ) -> Result<SharedLuts, LocaLutError>,
    ) -> Result<Self, LocaLutError> {
        Self::build_planned(cfg, method, wf, af, dims, luts_for, |dims, wf, af, k| {
            Planner::new(cfg.dpu.clone()).plan(dims, wf, af, k)
        })
    }

    /// [`BankKernel::build_with`] with the §V-A planning step injected as
    /// well: where [`Method::LoCaLut`] needs an [`ExecutionPlan`],
    /// `plan_for(dims, wf, af, k_slices)` is asked for it instead of
    /// running [`Planner::plan`] directly. A serving layer substitutes a
    /// memoized planner here; because planning is deterministic, a cached
    /// plan must equal a recomputed one and the returned kernel is
    /// identical to `build`'s.
    ///
    /// # Errors
    ///
    /// Format, budget, or planning errors, plus whatever `luts_for` or
    /// `plan_for` report.
    pub fn build_planned(
        cfg: &GemmConfig,
        method: Method,
        wf: NumericFormat,
        af: NumericFormat,
        dims: GemmDims,
        mut luts_for: impl FnMut(
            NumericFormat,
            NumericFormat,
            u32,
            Placement,
        ) -> Result<SharedLuts, LocaLutError>,
        plan_for: impl FnOnce(
            GemmDims,
            NumericFormat,
            NumericFormat,
            Option<u32>,
        ) -> Result<ExecutionPlan, LocaLutError>,
    ) -> Result<Self, LocaLutError> {
        match method {
            Method::NaivePim => Ok(BankKernel::Naive(NaiveKernel::new(cfg.dpu.clone()), wf, af)),
            Method::Ltc => Ok(BankKernel::Ltc(LtcKernel::new(cfg.dpu.clone()), wf, af)),
            Method::Op => Ok(BankKernel::Op(OpKernel::auto(cfg.dpu.clone(), wf, af)?)),
            Method::OpLc => Ok(BankKernel::Lc(LcKernel::auto(cfg.dpu.clone(), wf, af)?)),
            Method::OpLcRc => {
                let kernel = RcKernel::auto(cfg.dpu.clone(), wf, af)?;
                let luts = luts_for(wf, af, kernel.p(), Placement::BufferResident)?;
                Ok(BankKernel::Rc(kernel, luts))
            }
            Method::LoCaLut => {
                let plan = plan_for(dims, wf, af, Some(cfg.k_slices))?;
                let luts = luts_for(wf, af, plan.p, plan.placement)?;
                match plan.kernel(&cfg.dpu)? {
                    crate::plan::PlannedKernel::Buffer(k) => Ok(BankKernel::Rc(k, luts)),
                    crate::plan::PlannedKernel::Streaming(k) => Ok(BankKernel::Streaming(k, luts)),
                }
            }
        }
    }

    /// The method this kernel realizes.
    #[must_use]
    pub fn method(&self) -> Method {
        match self {
            BankKernel::Naive(..) => Method::NaivePim,
            BankKernel::Ltc(..) => Method::Ltc,
            BankKernel::Op(_) => Method::Op,
            BankKernel::Lc(_) => Method::OpLc,
            BankKernel::Rc(..) => Method::OpLcRc,
            BankKernel::Streaming(..) => Method::LoCaLut,
        }
    }

    /// Runs the kernel on one operand tile, reusing the shared LUT images
    /// where the method has them.
    ///
    /// # Errors
    ///
    /// Shape, format, or padding errors.
    pub fn run(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmResult, LocaLutError> {
        match self {
            BankKernel::Naive(k, _, _) => k.run(w, a),
            BankKernel::Ltc(k, _, _) => k.run(w, a),
            BankKernel::Op(k) => k.run(w, a),
            BankKernel::Lc(k) => k.run(w, a),
            BankKernel::Rc(k, luts) => k.run_with_luts(w, a, luts),
            BankKernel::Streaming(k, luts) => k.run_with_luts(w, a, luts),
        }
    }

    /// The analytic cost twin for a tile of `dims` (equals the profile
    /// [`BankKernel::run`] charges for operands of the same shape).
    #[must_use]
    pub fn cost(&self, dims: GemmDims) -> Profile {
        match self {
            BankKernel::Naive(k, wf, af) => k.cost(dims, *wf, *af),
            BankKernel::Ltc(k, wf, af) => k.cost(dims, *wf, *af),
            BankKernel::Op(k) => k.cost(dims),
            BankKernel::Lc(k) => k.cost(dims),
            BankKernel::Rc(k, _) => k.cost(dims),
            BankKernel::Streaming(k, _) => k.cost(dims),
        }
    }
}

/// Multi-threaded functional GEMM: the parallel twin of [`GemmConfig::run`].
///
/// The activation matrix is split into `threads` contiguous column chunks;
/// scoped worker threads each run one chunk through a shared [`BankKernel`]
/// (one LUT build, zero copies of the LUT images) and the outputs are
/// scattered back into place. Because every kernel is bit-exact and its
/// profile is data-independent (`run().profile == cost(dims)`), the result
/// is **bit-identical** to the serial path in both values and profile, for
/// any thread count.
///
/// This parallelizes the *wall-clock* execution of the functional
/// simulation on the host; for the simulated bank-parallel timing model
/// (per-bank profiles, associative stats merging) use the `runtime` crate's
/// `ParallelExecutor`, which builds on the same [`BankKernel`].
///
/// # Errors
///
/// Shape, format, budget, or planning errors (see [`LocaLutError`]).
///
/// # Panics
///
/// Panics if a worker thread panics (kernel internals do not panic on
/// validated inputs).
///
/// # Examples
///
/// ```
/// use localut::gemm::{GemmConfig, Method};
/// use localut::kernels::par_run;
/// use quant::{NumericFormat, Quantizer};
///
/// let wq = Quantizer::symmetric(NumericFormat::Int(2));
/// let aq = Quantizer::symmetric(NumericFormat::Int(3));
/// let w = wq.quantize_matrix(&[1.0, -1.0, 0.5, -0.5, 1.0, 0.0], 2, 3)?;
/// let a = aq.quantize_matrix(&[3.0, -3.0, 1.0, 0.0, -2.0, 2.0], 3, 2)?;
///
/// let cfg = GemmConfig::upmem();
/// let serial = cfg.run(Method::LoCaLut, &w, &a)?;
/// let parallel = par_run(&cfg, Method::LoCaLut, &w, &a, 2)?;
/// assert_eq!(parallel.values, serial.values);
/// assert_eq!(parallel.profile, serial.profile);
/// # Ok::<(), localut::LocaLutError>(())
/// ```
pub fn par_run(
    cfg: &GemmConfig,
    method: Method,
    w: &QMatrix,
    a: &QMatrix,
    threads: usize,
) -> Result<GemmResult, LocaLutError> {
    let dims = GemmDims::of(w, a)?;
    let bank = BankKernel::build(cfg, method, w.format(), a.format(), dims)?;
    let threads = threads.clamp(1, dims.n.max(1));
    if threads == 1 {
        return bank.run(w, a);
    }
    let chunk = dims.n.div_ceil(threads);
    let tiles: Vec<(usize, GemmResult)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| (t * chunk, dims.n.min((t + 1) * chunk)))
            .filter(|(n0, n1)| n0 < n1)
            .map(|(n0, n1)| {
                let bank = &bank;
                scope.spawn(move || {
                    let tile = a.submatrix(0..dims.k, n0..n1);
                    bank.run(w, &tile).map(|r| (n0, r))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_run worker panicked"))
            .collect::<Result<_, _>>()
    })?;
    let mut values = vec![0i32; dims.m * dims.n];
    for (n0, tile) in &tiles {
        for m in 0..dims.m {
            let src = &tile.values[m * tile.dims.n..(m + 1) * tile.dims.n];
            values[m * dims.n + n0..m * dims.n + n0 + tile.dims.n].copy_from_slice(src);
        }
    }
    Ok(GemmResult {
        values,
        dims,
        // Data-independent profiles make the serial cost twin exact.
        profile: bank.cost(dims),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant::Quantizer;

    #[test]
    fn zero_code_per_format() {
        assert_eq!(zero_code(NumericFormat::Int(3)), Some(0));
        assert_eq!(zero_code(NumericFormat::Uint(2)), Some(0));
        assert_eq!(zero_code(NumericFormat::Bipolar), None);
    }

    #[test]
    fn pad_code_requires_zero_only_for_remainders() {
        assert!(pad_code_for(NumericFormat::Bipolar, 6, 3).is_ok());
        assert!(matches!(
            pad_code_for(NumericFormat::Bipolar, 7, 3),
            Err(LocaLutError::UnpaddableRemainder { remainder: 1 })
        ));
        assert_eq!(pad_code_for(NumericFormat::Int(3), 7, 3).unwrap(), 0);
    }

    #[test]
    fn group_codes_pads_past_k() {
        let a = Quantizer::symmetric(NumericFormat::Int(3))
            .quantize_matrix(&[1.0, 2.0, 3.0, -1.0, -2.0, -3.0], 3, 2)
            .unwrap();
        let g = group_codes(&a, 1, 0, 2, 9);
        assert_eq!(g[0], a.code_at(2, 0));
        assert_eq!(g[1], 9); // padded
    }

    #[test]
    fn packed_weight_rows_match_per_group_packing() {
        use crate::packed::pack_index;
        for (m, k, p, bits) in [(4usize, 11usize, 3usize, 2u8), (3, 12, 4, 1), (1, 5, 5, 3)] {
            let w = QMatrix::pseudo_random(m, k, NumericFormat::Int(bits), 99);
            let kblocks = k.div_ceil(p);
            let packed = packed_weight_rows(&w, p, bits);
            assert_eq!(packed.len(), m * kblocks);
            for mm in 0..m {
                for kb in 0..kblocks {
                    let expect = pack_index(&weight_group_codes(&w, mm, kb, p), bits);
                    assert_eq!(packed[mm * kblocks + kb], expect, "({mm}, {kb})");
                }
            }
        }
    }

    #[test]
    fn require_integer_rejects_floats() {
        assert!(require_integer(NumericFormat::Int(2), NumericFormat::Int(3)).is_ok());
        assert!(require_integer(NumericFormat::Fp4, NumericFormat::Int(3)).is_err());
        assert!(require_integer(NumericFormat::Bipolar, NumericFormat::Fp8).is_err());
    }

    fn operands(m: usize, k: usize, n: usize) -> (QMatrix, QMatrix) {
        let wdata: Vec<f32> = (0..m * k)
            .map(|i| ((i * 13 + 5) % 7) as f32 - 3.0)
            .collect();
        let adata: Vec<f32> = (0..k * n)
            .map(|i| ((i * 3 + 2) % 11) as f32 - 5.0)
            .collect();
        (
            Quantizer::symmetric(NumericFormat::Int(2))
                .quantize_matrix(&wdata, m, k)
                .unwrap(),
            Quantizer::symmetric(NumericFormat::Int(3))
                .quantize_matrix(&adata, k, n)
                .unwrap(),
        )
    }

    #[test]
    fn shared_luts_reject_mismatched_kernels() {
        let luts = SharedLuts::build(NumericFormat::Int(2), NumericFormat::Int(3), 2).unwrap();
        let kernel = RcKernel::with_p(
            pim_sim::DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(3),
            3, // p differs from the LUT build
        )
        .unwrap();
        let (w, a) = operands(2, 6, 2);
        assert!(matches!(
            kernel.run_with_luts(&w, &a, &luts),
            Err(LocaLutError::UnsupportedFormat(_))
        ));
    }

    #[test]
    fn run_with_luts_matches_run() {
        let (w, a) = operands(4, 9, 3);
        let kernel = RcKernel::with_p(
            pim_sim::DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(3),
            3,
        )
        .unwrap();
        let luts = SharedLuts::build(NumericFormat::Int(2), NumericFormat::Int(3), 3).unwrap();
        let shared = kernel.run_with_luts(&w, &a, &luts).unwrap();
        let local = kernel.run(&w, &a).unwrap();
        assert_eq!(shared, local);
    }

    #[test]
    fn par_run_is_bit_identical_to_serial_for_all_methods() {
        let (w, a) = operands(6, 12, 5);
        let cfg = GemmConfig::upmem();
        for method in Method::ALL {
            let serial = cfg.run(method, &w, &a).unwrap();
            for threads in [1usize, 2, 3, 8] {
                let par = par_run(&cfg, method, &w, &a, threads).unwrap();
                assert_eq!(par.values, serial.values, "{method} values @{threads}");
                assert_eq!(par.profile, serial.profile, "{method} profile @{threads}");
            }
        }
    }

    #[test]
    fn par_run_handles_more_threads_than_columns() {
        let (w, a) = operands(3, 8, 2);
        let cfg = GemmConfig::upmem();
        let serial = cfg.run(Method::OpLcRc, &w, &a).unwrap();
        let par = par_run(&cfg, Method::OpLcRc, &w, &a, 64).unwrap();
        assert_eq!(par.values, serial.values);
        assert_eq!(par.profile, serial.profile);
    }
}
