//! The "OP+LC" design point (§IV-A): canonical LUT in the buffer with
//! weight reordering done **in software** on the DPU.
//!
//! Canonicalization shrinks the LUT enough to raise `p` (3 → 5 at W1A3),
//! but each lookup must now reorder the packed weight vector by the
//! activation's sorting permutation — an unpack/permute/repack sequence the
//! in-order DPU core executes painfully slowly. Fig. 9 shows this design
//! *losing* to plain OP despite the higher `p`; the reordering LUT (§IV-B)
//! exists to fix exactly this.

use crate::canonical::CanonicalLut;
use crate::capacity::{canonical_lut_bytes, max_p_canonical_only};
use crate::codes::{GroupScratch, PackedCodes};
use crate::gemm::{GemmDims, GemmResult, Method};
use crate::kernels::{
    charge_operand_input, charge_output, pad_code_for, require_integer, LutKernel,
    MAX_MATERIALIZED_ENTRIES, N_TILE,
};
use crate::packed::pack_index;
use crate::perm::apply_into;
use crate::LocaLutError;
use pim_sim::{Category, Dpu, DpuConfig, Profile};
use quant::{NumericFormat, QMatrix};

/// The canonicalization-with-software-reordering kernel.
#[derive(Debug, Clone)]
pub struct LcKernel {
    cfg: DpuConfig,
    wf: NumericFormat,
    af: NumericFormat,
    p: u32,
}

impl LcKernel {
    /// Creates the kernel with the largest `p` whose canonical LUT alone
    /// fits the WRAM LUT budget.
    ///
    /// # Errors
    ///
    /// [`LocaLutError::BudgetExceeded`] when not even `p = 1` fits, or
    /// format errors.
    pub fn auto(
        cfg: DpuConfig,
        wf: NumericFormat,
        af: NumericFormat,
    ) -> Result<Self, LocaLutError> {
        require_integer(wf, af)?;
        let budget = cfg.wram_lut_budget();
        let p = max_p_canonical_only(wf, af, budget);
        if p == 0 {
            return Err(LocaLutError::BudgetExceeded {
                required: canonical_lut_bytes(wf, af, 1).unwrap_or(u128::MAX),
                budget,
            });
        }
        Ok(LcKernel { cfg, wf, af, p })
    }

    /// Creates the kernel with an explicit packing degree.
    ///
    /// # Errors
    ///
    /// Format or degree errors.
    pub fn with_p(
        cfg: DpuConfig,
        wf: NumericFormat,
        af: NumericFormat,
        p: u32,
    ) -> Result<Self, LocaLutError> {
        require_integer(wf, af)?;
        if p == 0 {
            return Err(LocaLutError::InvalidPackingDegree(0));
        }
        Ok(LcKernel { cfg, wf, af, p })
    }

    /// The chosen packing degree.
    #[must_use]
    pub fn p(&self) -> u32 {
        self.p
    }

    fn lookups(&self, dims: GemmDims) -> u64 {
        dims.m as u64 * (dims.k as u64).div_ceil(u64::from(self.p)) * dims.n as u64
    }

    fn groups(&self, dims: GemmDims) -> u64 {
        (dims.k as u64).div_ceil(u64::from(self.p)) * dims.n as u64
    }

    /// One-time initialization cost: loading the canonical LUT image into
    /// WRAM (once at model load, §V-A — not per GEMM).
    #[must_use]
    pub fn setup_cost(&self) -> Profile {
        let mut dpu = Dpu::new(self.cfg.clone());
        let lut_bytes = canonical_lut_bytes(self.wf, self.af, self.p).unwrap_or(u128::MAX) as u64;
        dpu.charge_dram_stream(lut_bytes, Category::LutLoad);
        dpu.profile()
    }

    fn charge(&self, dims: GemmDims, dpu: &mut Dpu) {
        charge_operand_input(dpu, dims, self.wf.bits(), self.af.bits());
        // The host ships each group's sorting permutation (p packed 3-bit
        // indices ≈ 2 bytes per group).
        dpu.charge_dram_stream(2 * self.groups(dims), Category::DataTransfer);
        let n = self.lookups(dims);
        let costs = &self.cfg.processor.costs;
        // Software weight reorder per lookup: unpack/permute/repack.
        dpu.charge_instrs(n * u64::from(costs.reorder_sw(self.p)), Category::IndexCalc);
        // Then the usual address calc + canonical load + accumulate.
        dpu.charge_instrs(2 * n, Category::IndexCalc);
        dpu.charge_wram_accesses(n, Category::CanonicalLookup);
        dpu.charge_instrs(2 * n, Category::Accumulate);
        charge_output(dpu, dims);
    }

    /// Analytic cost for the given dimensions.
    #[must_use]
    pub fn cost(&self, dims: GemmDims) -> Profile {
        let mut dpu = Dpu::new(self.cfg.clone());
        self.charge(dims, &mut dpu);
        dpu.profile()
    }

    /// Cheap operand checks shared by `run` and the trait dispatch.
    fn validate_operands(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmDims, LocaLutError> {
        let dims = GemmDims::of(w, a)?;
        if w.format() != self.wf || a.format() != self.af {
            return Err(LocaLutError::UnsupportedFormat(
                "operand formats differ from the kernel's configured formats",
            ));
        }
        pad_code_for(self.af, dims.k, self.p as usize)?;
        Ok(dims)
    }

    /// Runs the GEMM through the canonical LUT with software reordering.
    ///
    /// Blocked like the other arms: operands are bit-packed once, each
    /// K-block resolves [`N_TILE`] activation columns (permutations into a
    /// flat reused buffer, canonical column slices hoisted), and the M-pass
    /// unpacks each weight group once and replays the per-column software
    /// reorder — unpack/permute/repack, the exact sequence the cost model
    /// charges — against the hoisted slices, allocation-free.
    ///
    /// # Errors
    ///
    /// Shape, padding, or budget errors.
    pub fn run(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmResult, LocaLutError> {
        let dims = self.validate_operands(w, a)?;
        let p = self.p as usize;
        let pad = pad_code_for(self.af, dims.k, p)?;
        let lut = CanonicalLut::<i32>::build(self.wf, self.af, self.p, MAX_MATERIALIZED_ENTRIES)?;
        let kblocks = dims.k.div_ceil(p);

        let wpacked = PackedCodes::pack_weight_rows(w, p);
        let apacked = PackedCodes::pack_activation_columns(a, p, pad);

        let mut values = vec![0i32; dims.m * dims.n];
        let mut scratch = GroupScratch::new();
        let mut perms: Vec<u8> = Vec::with_capacity(N_TILE * p);
        let mut cols: Vec<&[i32]> = Vec::with_capacity(N_TILE);
        let mut wcodes: Vec<u16> = Vec::new();
        let mut reordered: Vec<u16> = Vec::new();
        for kb in 0..kblocks {
            for n0 in (0..dims.n).step_by(N_TILE) {
                let n1 = dims.n.min(n0 + N_TILE);
                // Host side, once per tile: sort each activation group,
                // keep the permutation and the canonical column slice.
                perms.clear();
                cols.clear();
                for n in n0..n1 {
                    let group = scratch.resolve(&apacked, kb, n);
                    perms.extend_from_slice(group.perm);
                    cols.push(lut.column_slice(lut.column_of(group.sorted)?));
                }
                for m in 0..dims.m {
                    // DPU side: unpack the weight group once, then software
                    // reorder per tile column.
                    wpacked.unpack_into(kb, m, &mut wcodes);
                    let out = &mut values[m * dims.n + n0..m * dims.n + n1];
                    for (dn, (acc, &col)) in out.iter_mut().zip(&cols).enumerate() {
                        apply_into(&perms[dn * p..(dn + 1) * p], &wcodes, &mut reordered);
                        *acc += col[pack_index(&reordered, self.wf.bits()) as usize];
                    }
                }
            }
        }

        let mut dpu = Dpu::new(self.cfg.clone());
        self.charge(dims, &mut dpu);
        Ok(GemmResult {
            values,
            dims,
            profile: dpu.profile(),
        })
    }
}

impl LutKernel for LcKernel {
    fn method(&self) -> Method {
        Method::OpLc
    }

    fn p(&self) -> u32 {
        self.p
    }

    fn cost(&self, dims: GemmDims) -> Profile {
        LcKernel::cost(self, dims)
    }

    fn validate(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmDims, LocaLutError> {
        self.validate_operands(w, a)
    }

    fn run(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmResult, LocaLutError> {
        LcKernel::run(self, w, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::reference_gemm;
    use quant::Quantizer;

    fn operands(
        m: usize,
        k: usize,
        n: usize,
        wf: NumericFormat,
        af: NumericFormat,
    ) -> (QMatrix, QMatrix) {
        let wdata: Vec<f32> = (0..m * k)
            .map(|i| ((i * 11 + 4) % 5) as f32 - 2.0)
            .collect();
        let adata: Vec<f32> = (0..k * n).map(|i| ((i * 7 + 3) % 9) as f32 - 4.0).collect();
        (
            Quantizer::symmetric(wf)
                .quantize_matrix(&wdata, m, k)
                .unwrap(),
            Quantizer::symmetric(af)
                .quantize_matrix(&adata, k, n)
                .unwrap(),
        )
    }

    #[test]
    fn auto_picks_paper_p_for_w1a3() {
        // §V-A: canonicalization raises p_local to 5 (canonical-only fit).
        let k = LcKernel::auto(
            DpuConfig::upmem(),
            NumericFormat::Bipolar,
            NumericFormat::Int(3),
        )
        .unwrap();
        assert_eq!(k.p(), 5);
    }

    #[test]
    fn run_matches_reference() {
        let (w, a) = operands(5, 10, 3, NumericFormat::Bipolar, NumericFormat::Int(3));
        let kernel = LcKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Bipolar,
            NumericFormat::Int(3),
            5,
        )
        .unwrap();
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(out.values, reference_gemm::<i32>(&w, &a).unwrap());
    }

    #[test]
    fn ragged_k_matches_reference() {
        let (w, a) = operands(3, 8, 2, NumericFormat::Int(2), NumericFormat::Int(2));
        let kernel = LcKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(2),
            3,
        )
        .unwrap();
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(out.values, reference_gemm::<i32>(&w, &a).unwrap());
    }

    #[test]
    fn wide_n_crosses_tile_boundaries() {
        // N beyond one N_TILE, with a ragged last tile, stays bit-exact.
        let (w, a) = operands(
            4,
            9,
            N_TILE * 2 + 1,
            NumericFormat::Int(2),
            NumericFormat::Int(2),
        );
        let kernel = LcKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(2),
            4,
        )
        .unwrap();
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(out.values, reference_gemm::<i32>(&w, &a).unwrap());
    }

    #[test]
    fn run_profile_equals_cost() {
        let (w, a) = operands(4, 6, 2, NumericFormat::Int(2), NumericFormat::Int(3));
        let kernel = LcKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(3),
            3,
        )
        .unwrap();
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(out.profile, kernel.cost(out.dims));
    }

    #[test]
    fn software_reordering_dominates_index_calc() {
        // §VI-B: OP+LC "performance drops significantly from the added
        // ordering overhead".
        let kernel = LcKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Bipolar,
            NumericFormat::Int(3),
            5,
        )
        .unwrap();
        let cost = kernel.cost(GemmDims {
            m: 256,
            k: 255,
            n: 32,
        });
        assert!(cost.fraction(Category::IndexCalc) > 0.5);
    }
}
