//! The full LoCaLUT kernel (§IV-C): DRAM-resident canonical + reordering
//! LUTs with **LUT slice streaming**.
//!
//! The LUTs are sized for the 64 MB bank (`p` up to `p_DRAM = 8` at W1A3);
//! for each activation group, only the group's canonical column and the
//! group's permutation column — one *slice pair* of `2^(bw·p)` entries —
//! stream into WRAM, where they are reused across all `M` weight rows
//! (input-stationary on the LUT slice). `k` slice pairs co-reside so the
//! weight matrix streams once per `k` groups instead of once per group.

use crate::capacity::{localut_bytes, slice_pair_bytes};
use crate::codes::{ActivationPanel, PackedCodes};
use crate::gemm::{GemmDims, GemmResult, Method};
use crate::kernels::{
    charge_output, check_panel, pad_code_for, require_integer, LutKernel, SharedLuts,
};
use crate::LocaLutError;
use pim_sim::{Category, Dpu, DpuConfig, Profile};
use quant::{NumericFormat, QMatrix};

/// The slice-streaming LoCaLUT kernel.
#[derive(Debug, Clone)]
pub struct StreamingKernel {
    cfg: DpuConfig,
    wf: NumericFormat,
    af: NumericFormat,
    p: u32,
    k_slices: u32,
}

impl StreamingKernel {
    /// Creates the kernel at an explicit packing degree and slice count,
    /// validating the bank and WRAM budgets.
    ///
    /// # Errors
    ///
    /// * [`LocaLutError::BudgetExceeded`] when the full LUTs exceed the
    ///   bank LUT budget, or `k` slice pairs exceed the WRAM LUT budget.
    /// * Format or degree errors.
    pub fn new(
        cfg: DpuConfig,
        wf: NumericFormat,
        af: NumericFormat,
        p: u32,
        k_slices: u32,
    ) -> Result<Self, LocaLutError> {
        require_integer(wf, af)?;
        if p == 0 || k_slices == 0 {
            return Err(LocaLutError::InvalidPackingDegree(p.min(k_slices)));
        }
        let full = localut_bytes(wf, af, p).ok_or(LocaLutError::InvalidPackingDegree(p))?;
        let bank_budget = cfg.bank_lut_budget();
        if full > u128::from(bank_budget) {
            return Err(LocaLutError::BudgetExceeded {
                required: full,
                budget: bank_budget,
            });
        }
        let slice = slice_pair_bytes(wf, af, p).ok_or(LocaLutError::InvalidPackingDegree(p))?;
        let wram_budget = cfg.wram_lut_budget();
        let resident = u128::from(slice) * u128::from(k_slices);
        if resident > u128::from(wram_budget) {
            return Err(LocaLutError::BudgetExceeded {
                required: resident,
                budget: wram_budget,
            });
        }
        Ok(StreamingKernel {
            cfg,
            wf,
            af,
            p,
            k_slices,
        })
    }

    /// The packing degree.
    #[must_use]
    pub fn p(&self) -> u32 {
        self.p
    }

    /// The number of co-resident slice pairs (`k` of §IV-C).
    #[must_use]
    pub fn k_slices(&self) -> u32 {
        self.k_slices
    }

    fn groups(&self, dims: GemmDims) -> u64 {
        (dims.k as u64).div_ceil(u64::from(self.p)) * dims.n as u64
    }

    fn charge(&self, dims: GemmDims, dpu: &mut Dpu) {
        let groups = self.groups(dims);
        let slice_entries = 1u64 << (u32::from(self.wf.bits()) * self.p);
        let slice_bytes = slice_pair_bytes(self.wf, self.af, self.p).unwrap_or(u64::MAX);
        // Eq. 2 term 1: each group streams its slice pair once (L_D per
        // entry pair).
        dpu.charge_lut_pair_stream(groups * slice_entries, groups * slice_bytes);
        // Activations (+ 2-byte permutation ids per group) stream once; the
        // weight matrix streams once per k-batch of same-K-block groups.
        let weight_passes = (dims.n as u64).div_ceil(u64::from(self.k_slices));
        dpu.charge_dram_stream(
            dims.weight_bytes(self.wf.bits()) * weight_passes,
            Category::DataTransfer,
        );
        dpu.charge_dram_stream(
            dims.activation_bytes(self.af.bits()) + 2 * groups,
            Category::DataTransfer,
        );
        // Eq. 2 term 2: the L_local composite per (weight row, group).
        dpu.charge_lookup_accum(dims.m as u64 * groups);
        charge_output(dpu, dims);
    }

    /// Analytic cost for the given dimensions.
    #[must_use]
    pub fn cost(&self, dims: GemmDims) -> Profile {
        let mut dpu = Dpu::new(self.cfg.clone());
        self.charge(dims, &mut dpu);
        dpu.profile()
    }

    /// Runs the GEMM through DRAM-resident LUTs with slice streaming,
    /// building the LUT images locally.
    ///
    /// # Errors
    ///
    /// Shape, padding, or budget errors.
    pub fn run(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmResult, LocaLutError> {
        // Validate operands before paying for the LUT build.
        self.validate_operands(w, a)?;
        let luts = SharedLuts::build(self.wf, self.af, self.p)?;
        self.run_with_luts(w, a, &luts)
    }

    /// Cheap operand checks shared by `run` and `run_with_luts`.
    fn validate_operands(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmDims, LocaLutError> {
        let dims = GemmDims::of(w, a)?;
        if w.format() != self.wf || a.format() != self.af {
            return Err(LocaLutError::UnsupportedFormat(
                "operand formats differ from the kernel's configured formats",
            ));
        }
        pad_code_for(self.af, dims.k, self.p as usize)?;
        Ok(dims)
    }

    /// Runs the GEMM against prebuilt shared LUT images (see
    /// [`SharedLuts`]) — the entry point bank-parallel workers use so N
    /// banks share one read-only LUT build.
    ///
    /// The inner loops are blocked with the §IV-C co-residency width:
    /// both operands are bit-packed into group-major [`PackedCodes`] once,
    /// each K-block resolves `k` activation columns' slice pairs at a time
    /// (reused scratch, no per-group allocation), and one linear M-pass
    /// gathers the whole batch — contiguous packed-weight reads and
    /// contiguous output writes.
    ///
    /// # Errors
    ///
    /// Shape or padding errors, or [`LocaLutError::UnsupportedFormat`] when
    /// `luts` was built for a different `(wf, af, p)`.
    pub fn run_with_luts(
        &self,
        w: &QMatrix,
        a: &QMatrix,
        luts: &SharedLuts,
    ) -> Result<GemmResult, LocaLutError> {
        luts.check(self.wf, self.af, self.p)?;
        let dims = self.validate_operands(w, a)?;
        let pad = pad_code_for(self.af, dims.k, self.p as usize)?;
        let panel = ActivationPanel::resolve(a, self.p as usize, pad, luts.canonical())?;
        self.run_with_panel(w, a, luts, &panel)
    }

    /// Runs against a pre-resolved [`ActivationPanel`] (see
    /// [`LutKernel::run_with_panel`]) — the path row-sharded banks take so
    /// the activation-side group resolution happens once per column band
    /// instead of once per bank.
    ///
    /// # Errors
    ///
    /// As [`StreamingKernel::run_with_luts`], plus
    /// [`LocaLutError::UnsupportedFormat`] when the panel's shape does not
    /// match the operands.
    pub fn run_with_panel(
        &self,
        w: &QMatrix,
        a: &QMatrix,
        luts: &SharedLuts,
        panel: &ActivationPanel,
    ) -> Result<GemmResult, LocaLutError> {
        luts.check(self.wf, self.af, self.p)?;
        let dims = self.validate_operands(w, a)?;
        let p = self.p as usize;
        let pad = pad_code_for(self.af, dims.k, p)?;
        let canonical = luts.canonical();
        let reorder = luts.reorder();
        let kblocks = dims.k.div_ceil(p);
        let kk = self.k_slices as usize;
        check_panel(panel, self.af.bits(), p, kblocks, dims.n)?;
        debug_assert_eq!(
            panel.packed(),
            &PackedCodes::pack_activation_columns(a, p, pad),
            "activation panel resolved from a different operand"
        );

        // Pack the weight rows once up front — the naive loop re-extracted
        // and re-packed a heap-allocated code group per (group, column)
        // visit.
        let wpacked = PackedCodes::pack_weight_rows(w, p);

        let mut values = vec![0i32; dims.m * dims.n];
        let mut slices: Vec<(&[i32], &[u64])> = Vec::with_capacity(kk);
        for kb in 0..kblocks {
            // Contiguous in m — the M-pass below is a linear scan.
            let wcol = wpacked.group(kb);
            // Process the N columns of this K-block in batches of k groups:
            // their slice pairs co-reside in WRAM while the weight block
            // streams once per batch.
            for n0 in (0..dims.n).step_by(kk) {
                let n1 = dims.n.min(n0 + kk);
                // "Stream" the slice pairs: hoist the column bases from the
                // panel's resolved pairs (functional model — the
                // canonical/reorder structures are bank data, so borrowing
                // is enough; the stream's cost is charged analytically).
                slices.clear();
                for n in n0..n1 {
                    let (col, perm_id) = panel.pair(kb, n);
                    slices.push((canonical.column_slice(col), reorder.column_slice(perm_id)));
                }
                // One pass over the weight rows, reusing all k slices.
                for m in 0..dims.m {
                    let row = wcol[m] as usize;
                    let out = &mut values[m * dims.n + n0..m * dims.n + n1];
                    for (acc, &(canon_slice, reord_slice)) in out.iter_mut().zip(&slices) {
                        *acc += canon_slice[reord_slice[row] as usize];
                    }
                }
            }
        }

        let mut dpu = Dpu::new(self.cfg.clone());
        self.charge(dims, &mut dpu);
        Ok(GemmResult {
            values,
            dims,
            profile: dpu.profile(),
        })
    }
}

impl LutKernel for StreamingKernel {
    fn method(&self) -> Method {
        Method::LoCaLut
    }

    fn p(&self) -> u32 {
        self.p
    }

    fn cost(&self, dims: GemmDims) -> Profile {
        StreamingKernel::cost(self, dims)
    }

    fn validate(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmDims, LocaLutError> {
        self.validate_operands(w, a)
    }

    fn run(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmResult, LocaLutError> {
        StreamingKernel::run(self, w, a)
    }

    fn run_with_luts(
        &self,
        w: &QMatrix,
        a: &QMatrix,
        luts: &SharedLuts,
    ) -> Result<GemmResult, LocaLutError> {
        StreamingKernel::run_with_luts(self, w, a, luts)
    }

    fn resolve_panel(
        &self,
        a: &QMatrix,
        luts: &SharedLuts,
    ) -> Result<Option<ActivationPanel>, LocaLutError> {
        luts.check(self.wf, self.af, self.p)?;
        let p = self.p as usize;
        let pad = pad_code_for(self.af, a.rows(), p)?;
        Ok(Some(ActivationPanel::resolve(a, p, pad, luts.canonical())?))
    }

    fn run_with_panel(
        &self,
        w: &QMatrix,
        a: &QMatrix,
        luts: &SharedLuts,
        panel: &ActivationPanel,
    ) -> Result<GemmResult, LocaLutError> {
        StreamingKernel::run_with_panel(self, w, a, luts, panel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::reference_gemm;
    use quant::Quantizer;

    fn operands(
        m: usize,
        k: usize,
        n: usize,
        wf: NumericFormat,
        af: NumericFormat,
    ) -> (QMatrix, QMatrix) {
        let wdata: Vec<f32> = (0..m * k)
            .map(|i| ((i * 17 + 2) % 9) as f32 - 4.0)
            .collect();
        let adata: Vec<f32> = (0..k * n)
            .map(|i| ((i * 19 + 7) % 13) as f32 - 6.0)
            .collect();
        (
            Quantizer::symmetric(wf)
                .quantize_matrix(&wdata, m, k)
                .unwrap(),
            Quantizer::symmetric(af)
                .quantize_matrix(&adata, k, n)
                .unwrap(),
        )
    }

    fn kernel(p: u32, k_slices: u32) -> StreamingKernel {
        StreamingKernel::new(
            DpuConfig::upmem(),
            NumericFormat::Bipolar,
            NumericFormat::Int(3),
            p,
            k_slices,
        )
        .unwrap()
    }

    #[test]
    fn run_matches_reference() {
        let (w, a) = operands(6, 12, 5, NumericFormat::Bipolar, NumericFormat::Int(3));
        let out = kernel(6, 2).run(&w, &a).unwrap();
        assert_eq!(out.values, reference_gemm::<i32>(&w, &a).unwrap());
    }

    #[test]
    fn ragged_k_and_odd_batches_match_reference() {
        let (w, a) = operands(4, 13, 7, NumericFormat::Int(2), NumericFormat::Int(3));
        let kern = StreamingKernel::new(
            DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(3),
            5,
            3,
        )
        .unwrap();
        let out = kern.run(&w, &a).unwrap();
        assert_eq!(out.values, reference_gemm::<i32>(&w, &a).unwrap());
    }

    #[test]
    fn run_profile_equals_cost() {
        let (w, a) = operands(5, 12, 4, NumericFormat::Bipolar, NumericFormat::Int(3));
        let kern = kernel(6, 2);
        let out = kern.run(&w, &a).unwrap();
        assert_eq!(out.profile, kern.cost(out.dims));
    }

    #[test]
    fn p8_w1a3_is_accepted_by_bank_budget() {
        // §V-A: p_DRAM = 8 at W1A3.
        assert!(StreamingKernel::new(
            DpuConfig::upmem(),
            NumericFormat::Bipolar,
            NumericFormat::Int(3),
            8,
            2
        )
        .is_ok());
        assert!(matches!(
            StreamingKernel::new(
                DpuConfig::upmem(),
                NumericFormat::Bipolar,
                NumericFormat::Int(3),
                9,
                2
            ),
            Err(LocaLutError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn wram_limits_k_times_slice() {
        // W4A4 p=3 slice pair = 16 KiB → k=2 fits the 32 KiB budget, k=3
        // does not.
        let f4 = NumericFormat::Int(4);
        assert!(StreamingKernel::new(DpuConfig::upmem(), f4, f4, 3, 2).is_ok());
        assert!(StreamingKernel::new(DpuConfig::upmem(), f4, f4, 3, 3).is_err());
    }

    #[test]
    fn larger_k_reduces_weight_restreaming() {
        let dims = GemmDims {
            m: 256,
            k: 256,
            n: 64,
        };
        let k1 = kernel(6, 1).cost(dims);
        let k8 = kernel(6, 8).cost(dims);
        assert!(k8.seconds(Category::DataTransfer) < k1.seconds(Category::DataTransfer));
        assert!(k8.total_seconds() < k1.total_seconds());
    }

    #[test]
    fn lut_load_matches_eq2_term() {
        let kern = kernel(6, 2);
        let dims = GemmDims { m: 16, k: 12, n: 8 };
        let cost = kern.cost(dims);
        // groups = 2 * 8 = 16, slice entries = 2^6 = 64, L_D each.
        let expect = 16.0 * 64.0 * 1.36e-9;
        assert!((cost.seconds(Category::LutLoad) - expect).abs() < 1e-12);
    }

    #[test]
    fn zero_p_or_k_rejected() {
        let f = NumericFormat::Int(2);
        assert!(StreamingKernel::new(DpuConfig::upmem(), f, f, 0, 2).is_err());
        assert!(StreamingKernel::new(DpuConfig::upmem(), f, f, 2, 0).is_err());
    }
}
