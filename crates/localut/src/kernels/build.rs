//! Method-to-kernel construction — the single place a [`Method`] is
//! matched to a concrete [`LutKernel`] implementor.
//!
//! Everything above this point (the engine, the runtime executor,
//! [`super::par_run`]) dispatches through the trait; only construction
//! needs to know which struct realizes which design point, and that match
//! lives here exactly once.

use super::{BankKernel, LcKernel, LtcKernel, NaiveKernel, OpKernel, RcKernel, SharedLuts};
use crate::gemm::{GemmConfig, GemmDims, Method};
use crate::plan::{ExecutionPlan, Placement, Planner};
use crate::LocaLutError;
use quant::NumericFormat;
use std::sync::Arc;

impl BankKernel {
    /// Constructs the kernel `method` would use for a GEMM of `dims`,
    /// building shared LUT images once where the method uses them.
    ///
    /// For [`Method::LoCaLut`] the §V-A planner runs on the **full**
    /// dimensions, so every bank of a sharded run executes the same
    /// placement and packing degree the serial path would.
    ///
    /// # Errors
    ///
    /// Format, budget, or planning errors (see [`LocaLutError`]).
    pub fn build(
        cfg: &GemmConfig,
        method: Method,
        wf: NumericFormat,
        af: NumericFormat,
        dims: GemmDims,
    ) -> Result<Self, LocaLutError> {
        Self::build_with(cfg, method, wf, af, dims, |wf, af, p, _| {
            SharedLuts::build(wf, af, p)
        })
    }

    /// [`BankKernel::build`] with an injected LUT source: wherever the
    /// method needs shared images, `luts_for(wf, af, p, placement)` is
    /// asked for them instead of [`SharedLuts::build`]. This keeps the
    /// method dispatch and planning in exactly one place while letting a
    /// serving layer substitute a cache — the returned kernel is
    /// otherwise identical to `build`'s.
    ///
    /// # Errors
    ///
    /// Format, budget, or planning errors, plus whatever `luts_for`
    /// reports.
    pub fn build_with(
        cfg: &GemmConfig,
        method: Method,
        wf: NumericFormat,
        af: NumericFormat,
        dims: GemmDims,
        luts_for: impl FnMut(
            NumericFormat,
            NumericFormat,
            u32,
            Placement,
        ) -> Result<SharedLuts, LocaLutError>,
    ) -> Result<Self, LocaLutError> {
        Self::build_planned(cfg, method, wf, af, dims, luts_for, |dims, wf, af, k| {
            Planner::new(cfg.dpu.clone()).plan(dims, wf, af, k)
        })
    }

    /// [`BankKernel::build_with`] with the §V-A planning step injected as
    /// well: where [`Method::LoCaLut`] needs an [`ExecutionPlan`],
    /// `plan_for(dims, wf, af, k_slices)` is asked for it instead of
    /// running [`Planner::plan`] directly. A serving layer substitutes a
    /// memoized planner here; because planning is deterministic, a cached
    /// plan must equal a recomputed one and the returned kernel is
    /// identical to `build`'s.
    ///
    /// # Errors
    ///
    /// Format, budget, or planning errors, plus whatever `luts_for` or
    /// `plan_for` report.
    pub fn build_planned(
        cfg: &GemmConfig,
        method: Method,
        wf: NumericFormat,
        af: NumericFormat,
        dims: GemmDims,
        mut luts_for: impl FnMut(
            NumericFormat,
            NumericFormat,
            u32,
            Placement,
        ) -> Result<SharedLuts, LocaLutError>,
        plan_for: impl FnOnce(
            GemmDims,
            NumericFormat,
            NumericFormat,
            Option<u32>,
        ) -> Result<ExecutionPlan, LocaLutError>,
    ) -> Result<Self, LocaLutError> {
        match method {
            Method::NaivePim => Ok(BankKernel::new(NaiveKernel::new(cfg.dpu.clone(), wf, af))),
            Method::Ltc => Ok(BankKernel::new(LtcKernel::new(cfg.dpu.clone(), wf, af))),
            Method::Op => Ok(BankKernel::new(OpKernel::auto(cfg.dpu.clone(), wf, af)?)),
            Method::OpLc => Ok(BankKernel::new(LcKernel::auto(cfg.dpu.clone(), wf, af)?)),
            Method::OpLcRc => {
                let kernel = RcKernel::auto(cfg.dpu.clone(), wf, af)?;
                let luts = luts_for(wf, af, kernel.p(), Placement::BufferResident)?;
                Ok(BankKernel::with_shared_luts(kernel, luts))
            }
            Method::LoCaLut => {
                let plan = plan_for(dims, wf, af, Some(cfg.k_slices))?;
                let luts = luts_for(wf, af, plan.p, plan.placement)?;
                Ok(BankKernel {
                    kernel: Arc::from(plan.kernel(&cfg.dpu)?),
                    luts: Some(luts),
                })
            }
        }
    }
}
