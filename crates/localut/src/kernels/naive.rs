//! The Naive PIM baseline: matrix multiplication on the DPU's arithmetic
//! units, without any LUTs (§VI-A).
//!
//! UPMEM DPUs multiply natively only at 8 bits; every MAC costs a fixed
//! instruction sequence regardless of how few bits the operands carry —
//! which is precisely the inefficiency LUT packing exploits.

use crate::gemm::{reference_gemm, GemmDims, GemmResult, Method};
use crate::kernels::{charge_operand_input, charge_output, require_integer, LutKernel};
use crate::LocaLutError;
use pim_sim::{Category, Dpu, DpuConfig, Profile};
use quant::{NumericFormat, QMatrix};

/// The MAC-based baseline kernel.
#[derive(Debug, Clone)]
pub struct NaiveKernel {
    cfg: DpuConfig,
    wf: NumericFormat,
    af: NumericFormat,
}

impl NaiveKernel {
    /// Creates the kernel for a DPU configuration and operand formats.
    #[must_use]
    pub fn new(cfg: DpuConfig, wf: NumericFormat, af: NumericFormat) -> Self {
        NaiveKernel { cfg, wf, af }
    }

    fn charge(&self, dims: GemmDims, dpu: &mut Dpu) {
        let bw = self.wf.bits();
        let ba = self.af.bits();
        charge_operand_input(dpu, dims, bw, ba);
        let per_mac = self
            .cfg
            .processor
            .costs
            .naive_mac(u32::from(bw), u32::from(ba));
        dpu.charge_instrs(dims.macs() * u64::from(per_mac), Category::Compute);
        charge_output(dpu, dims);
    }

    /// Analytic cost for the given dimensions.
    #[must_use]
    pub fn cost(&self, dims: GemmDims) -> Profile {
        let mut dpu = Dpu::new(self.cfg.clone());
        self.charge(dims, &mut dpu);
        dpu.profile()
    }

    /// Cheap operand checks shared by `run` and the trait dispatch.
    fn validate_operands(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmDims, LocaLutError> {
        require_integer(self.wf, self.af)?;
        let dims = GemmDims::of(w, a)?;
        if w.format() != self.wf || a.format() != self.af {
            return Err(LocaLutError::UnsupportedFormat(
                "operand formats differ from the kernel's configured formats",
            ));
        }
        Ok(dims)
    }

    /// Runs the GEMM (direct MACs) and returns exact outputs + profile.
    ///
    /// # Errors
    ///
    /// Shape or format errors.
    pub fn run(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmResult, LocaLutError> {
        let dims = self.validate_operands(w, a)?;
        let values: Vec<i32> = reference_gemm(w, a)?;
        let mut dpu = Dpu::new(self.cfg.clone());
        self.charge(dims, &mut dpu);
        Ok(GemmResult {
            values,
            dims,
            profile: dpu.profile(),
        })
    }
}

impl LutKernel for NaiveKernel {
    fn method(&self) -> Method {
        Method::NaivePim
    }

    fn p(&self) -> u32 {
        1
    }

    fn cost(&self, dims: GemmDims) -> Profile {
        NaiveKernel::cost(self, dims)
    }

    fn validate(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmDims, LocaLutError> {
        self.validate_operands(w, a)
    }

    fn run(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmResult, LocaLutError> {
        NaiveKernel::run(self, w, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant::Quantizer;

    fn operands() -> (QMatrix, QMatrix) {
        let w = Quantizer::symmetric(NumericFormat::Int(4))
            .quantize_matrix(&(0..12).map(|i| (i as f32) - 6.0).collect::<Vec<_>>(), 3, 4)
            .unwrap();
        let a = Quantizer::symmetric(NumericFormat::Int(4))
            .quantize_matrix(
                &(0..8).map(|i| 1.0 - (i as f32) * 0.3).collect::<Vec<_>>(),
                4,
                2,
            )
            .unwrap();
        (w, a)
    }

    fn kernel_for(wf: NumericFormat, af: NumericFormat) -> NaiveKernel {
        NaiveKernel::new(DpuConfig::upmem(), wf, af)
    }

    #[test]
    fn run_matches_reference() {
        let (w, a) = operands();
        let kernel = kernel_for(NumericFormat::Int(4), NumericFormat::Int(4));
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(out.values, reference_gemm::<i32>(&w, &a).unwrap());
    }

    #[test]
    fn run_profile_equals_cost() {
        let (w, a) = operands();
        let kernel = kernel_for(NumericFormat::Int(4), NumericFormat::Int(4));
        let out = kernel.run(&w, &a).unwrap();
        let cost = kernel.cost(out.dims);
        assert_eq!(out.profile, cost);
    }

    #[test]
    fn compute_dominates_large_gemm() {
        let dims = GemmDims {
            m: 256,
            k: 256,
            n: 64,
        };
        let p = kernel_for(NumericFormat::Bipolar, NumericFormat::Int(3)).cost(dims);
        assert!(p.fraction(Category::Compute) > 0.8);
    }

    #[test]
    fn wide_operands_cost_more() {
        let dims = GemmDims {
            m: 64,
            k: 64,
            n: 64,
        };
        let narrow = kernel_for(NumericFormat::Int(4), NumericFormat::Int(4)).cost(dims);
        let wide = kernel_for(NumericFormat::Int(4), NumericFormat::Int(16)).cost(dims);
        assert!(wide.total_seconds() > narrow.total_seconds());
    }

    #[test]
    fn rejects_float_formats() {
        let w = QMatrix::from_codes(vec![0, 1], 1, 2, NumericFormat::Fp4, 1.0).unwrap();
        let a = QMatrix::from_codes(vec![0, 1], 2, 1, NumericFormat::Fp4, 1.0).unwrap();
        let kernel = kernel_for(NumericFormat::Fp4, NumericFormat::Fp4);
        assert!(matches!(
            kernel.run(&w, &a),
            Err(LocaLutError::UnsupportedFormat(_))
        ));
    }
}
