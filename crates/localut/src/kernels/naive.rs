//! The Naive PIM baseline: matrix multiplication on the DPU's arithmetic
//! units, without any LUTs (§VI-A).
//!
//! UPMEM DPUs multiply natively only at 8 bits; every MAC costs a fixed
//! instruction sequence regardless of how few bits the operands carry —
//! which is precisely the inefficiency LUT packing exploits.

use crate::gemm::{reference_gemm, GemmDims, GemmResult};
use crate::kernels::{charge_operand_input, charge_output, require_integer};
use crate::LocaLutError;
use pim_sim::{Category, Dpu, DpuConfig, Profile};
use quant::{NumericFormat, QMatrix};

/// The MAC-based baseline kernel.
#[derive(Debug, Clone)]
pub struct NaiveKernel {
    cfg: DpuConfig,
}

impl NaiveKernel {
    /// Creates the kernel for a DPU configuration.
    #[must_use]
    pub fn new(cfg: DpuConfig) -> Self {
        NaiveKernel { cfg }
    }

    fn charge(&self, dims: GemmDims, wf: NumericFormat, af: NumericFormat, dpu: &mut Dpu) {
        let bw = wf.bits();
        let ba = af.bits();
        charge_operand_input(dpu, dims, bw, ba);
        let per_mac = self
            .cfg
            .processor
            .costs
            .naive_mac(u32::from(bw), u32::from(ba));
        dpu.charge_instrs(dims.macs() * u64::from(per_mac), Category::Compute);
        charge_output(dpu, dims);
    }

    /// Analytic cost for the given dimensions and formats.
    #[must_use]
    pub fn cost(&self, dims: GemmDims, wf: NumericFormat, af: NumericFormat) -> Profile {
        let mut dpu = Dpu::new(self.cfg.clone());
        self.charge(dims, wf, af, &mut dpu);
        dpu.profile()
    }

    /// Runs the GEMM (direct MACs) and returns exact outputs + profile.
    ///
    /// # Errors
    ///
    /// Shape or format errors.
    pub fn run(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmResult, LocaLutError> {
        require_integer(w.format(), a.format())?;
        let dims = GemmDims::of(w, a)?;
        let values: Vec<i32> = reference_gemm(w, a)?;
        let mut dpu = Dpu::new(self.cfg.clone());
        self.charge(dims, w.format(), a.format(), &mut dpu);
        Ok(GemmResult {
            values,
            dims,
            profile: dpu.profile(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant::Quantizer;

    fn operands() -> (QMatrix, QMatrix) {
        let w = Quantizer::symmetric(NumericFormat::Int(4))
            .quantize_matrix(&(0..12).map(|i| (i as f32) - 6.0).collect::<Vec<_>>(), 3, 4)
            .unwrap();
        let a = Quantizer::symmetric(NumericFormat::Int(4))
            .quantize_matrix(
                &(0..8).map(|i| 1.0 - (i as f32) * 0.3).collect::<Vec<_>>(),
                4,
                2,
            )
            .unwrap();
        (w, a)
    }

    #[test]
    fn run_matches_reference() {
        let (w, a) = operands();
        let kernel = NaiveKernel::new(DpuConfig::upmem());
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(out.values, reference_gemm::<i32>(&w, &a).unwrap());
    }

    #[test]
    fn run_profile_equals_cost() {
        let (w, a) = operands();
        let kernel = NaiveKernel::new(DpuConfig::upmem());
        let out = kernel.run(&w, &a).unwrap();
        let cost = kernel.cost(out.dims, w.format(), a.format());
        assert_eq!(out.profile, cost);
    }

    #[test]
    fn compute_dominates_large_gemm() {
        let kernel = NaiveKernel::new(DpuConfig::upmem());
        let dims = GemmDims {
            m: 256,
            k: 256,
            n: 64,
        };
        let p = kernel.cost(dims, NumericFormat::Bipolar, NumericFormat::Int(3));
        assert!(p.fraction(Category::Compute) > 0.8);
    }

    #[test]
    fn wide_operands_cost_more() {
        let kernel = NaiveKernel::new(DpuConfig::upmem());
        let dims = GemmDims {
            m: 64,
            k: 64,
            n: 64,
        };
        let narrow = kernel.cost(dims, NumericFormat::Int(4), NumericFormat::Int(4));
        let wide = kernel.cost(dims, NumericFormat::Int(4), NumericFormat::Int(16));
        assert!(wide.total_seconds() > narrow.total_seconds());
    }

    #[test]
    fn rejects_float_formats() {
        let w = QMatrix::from_codes(vec![0, 1], 1, 2, NumericFormat::Fp4, 1.0).unwrap();
        let a = QMatrix::from_codes(vec![0, 1], 2, 1, NumericFormat::Fp4, 1.0).unwrap();
        let kernel = NaiveKernel::new(DpuConfig::upmem());
        assert!(matches!(
            kernel.run(&w, &a),
            Err(LocaLutError::UnsupportedFormat(_))
        ));
    }
}
