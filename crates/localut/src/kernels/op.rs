//! The operation-packed LUT design point ("OP", §III): a buffer-resident
//! packed LUT at the largest `p` fitting the WRAM LUT budget.
//!
//! The host pre-packs activation vectors into column indices; the DPU packs
//! weight codes into row indices and performs one single-cycle WRAM lookup
//! per `p` MACs. Without canonicalization, `p_local` tops out at 3 for
//! W1A3 (§V-A).

use crate::capacity::{max_p_op, op_lut_bytes};
use crate::codes::PackedCodes;
use crate::gemm::{GemmDims, GemmResult, Method};
use crate::kernels::{
    charge_operand_input, charge_output, pad_code_for, require_integer, LutKernel,
    MAX_MATERIALIZED_ENTRIES, N_TILE,
};
use crate::packed::OpPackedLut;
use crate::LocaLutError;
use pim_sim::{Category, Dpu, DpuConfig, Profile};
use quant::{NumericFormat, QMatrix};

/// The buffer-resident operation-packed LUT kernel.
#[derive(Debug, Clone)]
pub struct OpKernel {
    cfg: DpuConfig,
    wf: NumericFormat,
    af: NumericFormat,
    p: u32,
}

impl OpKernel {
    /// Creates the kernel with the largest `p` whose packed LUT fits the
    /// WRAM LUT budget (§V-A's "without canonicalization" design point).
    ///
    /// # Errors
    ///
    /// [`LocaLutError::BudgetExceeded`] when not even `p = 1` fits, or
    /// [`LocaLutError::UnsupportedFormat`] on float formats.
    pub fn auto(
        cfg: DpuConfig,
        wf: NumericFormat,
        af: NumericFormat,
    ) -> Result<Self, LocaLutError> {
        require_integer(wf, af)?;
        let budget = cfg.wram_lut_budget();
        let p = max_p_op(wf, af, budget);
        if p == 0 {
            return Err(LocaLutError::BudgetExceeded {
                required: op_lut_bytes(wf, af, 1).unwrap_or(u128::MAX),
                budget,
            });
        }
        Ok(OpKernel { cfg, wf, af, p })
    }

    /// Creates the kernel with an explicit packing degree (tests/ablations).
    ///
    /// # Errors
    ///
    /// Format or degree errors.
    pub fn with_p(
        cfg: DpuConfig,
        wf: NumericFormat,
        af: NumericFormat,
        p: u32,
    ) -> Result<Self, LocaLutError> {
        require_integer(wf, af)?;
        if p == 0 {
            return Err(LocaLutError::InvalidPackingDegree(0));
        }
        Ok(OpKernel { cfg, wf, af, p })
    }

    /// The chosen packing degree.
    #[must_use]
    pub fn p(&self) -> u32 {
        self.p
    }

    fn lookups(&self, dims: GemmDims) -> u64 {
        dims.m as u64 * (dims.k as u64).div_ceil(u64::from(self.p)) * dims.n as u64
    }

    /// One-time initialization cost: loading the LUT image into WRAM.
    /// LUT contents depend only on the formats and `p`, so this happens
    /// once at model load (§V-A), not per GEMM.
    #[must_use]
    pub fn setup_cost(&self) -> Profile {
        let mut dpu = Dpu::new(self.cfg.clone());
        let lut_bytes = op_lut_bytes(self.wf, self.af, self.p).unwrap_or(u128::MAX) as u64;
        dpu.charge_dram_stream(lut_bytes, Category::LutLoad);
        dpu.profile()
    }

    fn charge(&self, dims: GemmDims, dpu: &mut Dpu) {
        charge_operand_input(dpu, dims, self.wf.bits(), self.af.bits());
        // Per lookup (op_lookup total): index/address arithmetic, one WRAM
        // entry load, and 3 accumulate/loop instructions.
        let n = self.lookups(dims);
        let total = u64::from(self.cfg.processor.costs.op_lookup);
        let accum = 3u64.min(total.saturating_sub(1));
        let index = total - 1 - accum;
        dpu.charge_instrs(index * n, Category::IndexCalc);
        dpu.charge_wram_accesses(n, Category::CanonicalLookup);
        dpu.charge_instrs(accum * n, Category::Accumulate);
        charge_output(dpu, dims);
    }

    /// Analytic cost for the given dimensions.
    #[must_use]
    pub fn cost(&self, dims: GemmDims) -> Profile {
        let mut dpu = Dpu::new(self.cfg.clone());
        self.charge(dims, &mut dpu);
        dpu.profile()
    }

    /// Cheap operand checks shared by `run` and the trait dispatch.
    fn validate_operands(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmDims, LocaLutError> {
        let dims = GemmDims::of(w, a)?;
        if w.format() != self.wf || a.format() != self.af {
            return Err(LocaLutError::UnsupportedFormat(
                "operand formats differ from the kernel's configured formats",
            ));
        }
        pad_code_for(self.af, dims.k, self.p as usize)?;
        Ok(dims)
    }

    /// Runs the GEMM through the materialized packed LUT.
    ///
    /// Both operands are bit-packed into group-major [`PackedCodes`] once —
    /// a packed word *is* an OP index — then each K-block walks `N`-tiles
    /// of [`N_TILE`] columns with the LUT column slices hoisted, so the
    /// M-pass is one contiguous packed-row scan with a single slice index
    /// per lookup.
    ///
    /// # Errors
    ///
    /// Shape, padding, or budget errors.
    pub fn run(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmResult, LocaLutError> {
        let dims = self.validate_operands(w, a)?;
        let p = self.p as usize;
        let pad = pad_code_for(self.af, dims.k, p)?;
        let lut = OpPackedLut::<i32>::build(self.wf, self.af, self.p, MAX_MATERIALIZED_ENTRIES)?;
        let kblocks = dims.k.div_ceil(p);

        let wpacked = PackedCodes::pack_weight_rows(w, p);
        let apacked = PackedCodes::pack_activation_columns(a, p, pad);

        let mut values = vec![0i32; dims.m * dims.n];
        let mut cols: Vec<&[i32]> = Vec::with_capacity(N_TILE);
        for kb in 0..kblocks {
            let wcol = wpacked.group(kb);
            for n0 in (0..dims.n).step_by(N_TILE) {
                let n1 = dims.n.min(n0 + N_TILE);
                cols.clear();
                for n in n0..n1 {
                    cols.push(lut.column_slice(apacked.word(kb, n)));
                }
                for m in 0..dims.m {
                    let row = wcol[m] as usize;
                    let out = &mut values[m * dims.n + n0..m * dims.n + n1];
                    for (acc, &col) in out.iter_mut().zip(&cols) {
                        *acc += col[row];
                    }
                }
            }
        }

        let mut dpu = Dpu::new(self.cfg.clone());
        self.charge(dims, &mut dpu);
        Ok(GemmResult {
            values,
            dims,
            profile: dpu.profile(),
        })
    }
}

impl LutKernel for OpKernel {
    fn method(&self) -> Method {
        Method::Op
    }

    fn p(&self) -> u32 {
        self.p
    }

    fn cost(&self, dims: GemmDims) -> Profile {
        OpKernel::cost(self, dims)
    }

    fn validate(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmDims, LocaLutError> {
        self.validate_operands(w, a)
    }

    fn run(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmResult, LocaLutError> {
        OpKernel::run(self, w, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::reference_gemm;
    use quant::Quantizer;

    fn operands(
        m: usize,
        k: usize,
        n: usize,
        wf: NumericFormat,
        af: NumericFormat,
    ) -> (QMatrix, QMatrix) {
        let wdata: Vec<f32> = (0..m * k).map(|i| ((i * 3 + 1) % 7) as f32 - 3.0).collect();
        let adata: Vec<f32> = (0..k * n).map(|i| ((i * 5 + 2) % 9) as f32 - 4.0).collect();
        (
            Quantizer::symmetric(wf)
                .quantize_matrix(&wdata, m, k)
                .unwrap(),
            Quantizer::symmetric(af)
                .quantize_matrix(&adata, k, n)
                .unwrap(),
        )
    }

    #[test]
    fn auto_picks_paper_p_for_w1a3() {
        let k = OpKernel::auto(
            DpuConfig::upmem(),
            NumericFormat::Bipolar,
            NumericFormat::Int(3),
        )
        .unwrap();
        assert_eq!(k.p(), 3); // §V-A: p_local = 3 without canonicalization.
    }

    #[test]
    fn run_matches_reference() {
        let (w, a) = operands(4, 9, 3, NumericFormat::Bipolar, NumericFormat::Int(3));
        let kernel = OpKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Bipolar,
            NumericFormat::Int(3),
            3,
        )
        .unwrap();
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(out.values, reference_gemm::<i32>(&w, &a).unwrap());
    }

    #[test]
    fn ragged_k_with_zero_pad() {
        let (w, a) = operands(3, 7, 2, NumericFormat::Int(2), NumericFormat::Int(3));
        let kernel = OpKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(3),
            3,
        )
        .unwrap();
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(out.values, reference_gemm::<i32>(&w, &a).unwrap());
    }

    #[test]
    fn wide_n_crosses_tile_boundaries() {
        // N beyond one N_TILE, with a ragged last tile, stays bit-exact.
        let (w, a) = operands(
            5,
            9,
            N_TILE * 2 + 5,
            NumericFormat::Int(2),
            NumericFormat::Int(2),
        );
        let kernel = OpKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(2),
            3,
        )
        .unwrap();
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(out.values, reference_gemm::<i32>(&w, &a).unwrap());
    }

    #[test]
    fn bipolar_ragged_k_errors() {
        let (w, a) = operands(2, 7, 2, NumericFormat::Int(2), NumericFormat::Bipolar);
        let kernel = OpKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Bipolar,
            3,
        )
        .unwrap();
        assert!(matches!(
            kernel.run(&w, &a),
            Err(LocaLutError::UnpaddableRemainder { .. })
        ));
    }

    #[test]
    fn run_profile_equals_cost() {
        let (w, a) = operands(4, 6, 2, NumericFormat::Int(2), NumericFormat::Int(2));
        let kernel = OpKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(2),
            2,
        )
        .unwrap();
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(out.profile, kernel.cost(out.dims));
    }

    #[test]
    fn higher_p_means_fewer_lookup_seconds() {
        let dims = GemmDims {
            m: 64,
            k: 64,
            n: 16,
        };
        let cfg = DpuConfig::upmem();
        let p2 = OpKernel::with_p(
            cfg.clone(),
            NumericFormat::Bipolar,
            NumericFormat::Int(3),
            2,
        )
        .unwrap()
        .cost(dims);
        let p3 = OpKernel::with_p(cfg, NumericFormat::Bipolar, NumericFormat::Int(3), 3)
            .unwrap()
            .cost(dims);
        assert!(p3.seconds(Category::CanonicalLookup) < p2.seconds(Category::CanonicalLookup));
    }

    #[test]
    fn mismatched_formats_rejected() {
        let (w, a) = operands(2, 4, 2, NumericFormat::Int(3), NumericFormat::Int(3));
        let kernel = OpKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(3),
            2,
        )
        .unwrap();
        assert!(kernel.run(&w, &a).is_err());
    }
}
