//! The LUT Tensor Core baseline adapted to PIM (§VI-A "LTC (PIM)").
//!
//! LTC/T-MAC-style bit-serial designs restrict weights to one bit per pass:
//! activations are grouped `g` at a time, a `2^g`-entry table of activation
//! subset sums is generated **at runtime** per activation group, and each
//! weight bit-plane indexes the table with its `g` bits; plane results are
//! shifted and accumulated. This keeps tables tiny (good for logic chips)
//! but costs one pass per weight bit and runtime table generation — the
//! "low LUT packing degrees" the paper blames for LTC's PIM performance.

use crate::gemm::{GemmDims, GemmResult};
use crate::kernels::{charge_operand_input, charge_output, require_integer};
use crate::LocaLutError;
use pim_sim::{Category, Dpu, DpuConfig, Profile};
use quant::{NumericFormat, QMatrix};

/// The bit-serial baseline kernel.
#[derive(Debug, Clone)]
pub struct LtcKernel {
    cfg: DpuConfig,
}

impl LtcKernel {
    /// Creates the kernel for a DPU configuration.
    #[must_use]
    pub fn new(cfg: DpuConfig) -> Self {
        LtcKernel { cfg }
    }

    /// Number of bit-serial weight planes for a format (bipolar weights
    /// need a single pass: `w = 2c − 1` is an affine function of one bit).
    fn planes(wf: NumericFormat) -> u32 {
        match wf {
            NumericFormat::Bipolar => 1,
            other => u32::from(other.bits()),
        }
    }

    fn charge(&self, dims: GemmDims, wf: NumericFormat, af: NumericFormat, dpu: &mut Dpu) {
        let costs = &self.cfg.processor.costs;
        let g = u64::from(costs.ltc_group);
        let groups = (dims.k as u64).div_ceil(g) * dims.n as u64;
        charge_operand_input(dpu, dims, wf.bits(), af.bits());
        // Runtime table generation: 2^g entries per activation group.
        let table_entries = groups * (1u64 << g);
        dpu.charge_instrs(
            table_entries * u64::from(costs.ltc_table_entry_build),
            Category::Compute,
        );
        // Bit-plane lookups: one per (weight row, group, plane).
        let lookups = dims.m as u64 * groups * u64::from(Self::planes(wf));
        dpu.charge_instrs(lookups * u64::from(costs.ltc_lookup), Category::Compute);
        charge_output(dpu, dims);
    }

    /// Analytic cost for the given dimensions and formats.
    #[must_use]
    pub fn cost(&self, dims: GemmDims, wf: NumericFormat, af: NumericFormat) -> Profile {
        let mut dpu = Dpu::new(self.cfg.clone());
        self.charge(dims, wf, af, &mut dpu);
        dpu.profile()
    }

    /// Runs the bit-serial GEMM and returns exact outputs + profile.
    ///
    /// # Errors
    ///
    /// Shape or format errors.
    pub fn run(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmResult, LocaLutError> {
        require_integer(w.format(), a.format())?;
        let dims = GemmDims::of(w, a)?;
        let (wf, af) = (w.format(), a.format());
        let g = self.cfg.processor.costs.ltc_group as usize;
        let kblocks = dims.k.div_ceil(g);
        let bw = u32::from(wf.bits());

        let mut values = vec![0i32; dims.m * dims.n];
        let mut table = vec![0i32; 1 << g];
        for n in 0..dims.n {
            for kb in 0..kblocks {
                let glen = g.min(dims.k - kb * g);
                // Runtime table: subset sums of the group's activations.
                let mut group_sum = 0i32;
                table[0] = 0;
                for idx in 1usize..(1 << glen) {
                    let lsb = idx.trailing_zeros() as usize;
                    let av = af
                        .decode_int(u32::from(a.code_at(kb * g + lsb, n)))
                        .expect("integer format");
                    table[idx] = table[idx ^ (1 << lsb)] + av;
                }
                for i in 0..glen {
                    group_sum += af
                        .decode_int(u32::from(a.code_at(kb * g + i, n)))
                        .expect("integer format");
                }
                for m in 0..dims.m {
                    let acc = &mut values[m * dims.n + n];
                    match wf {
                        NumericFormat::Bipolar => {
                            // w = 2c − 1: dot = 2·table[idx] − Σa.
                            let mut idx = 0usize;
                            for i in 0..glen {
                                idx |= usize::from(w.code_at(m, kb * g + i) & 1) << i;
                            }
                            *acc += 2 * table[idx] - group_sum;
                        }
                        _ => {
                            // Two's complement: Σ_{b<bw−1} 2^b·plane_b −
                            // 2^(bw−1)·plane_{bw−1}.
                            for b in 0..bw {
                                let mut idx = 0usize;
                                for i in 0..glen {
                                    let bit = (w.code_at(m, kb * g + i) >> b) & 1;
                                    idx |= usize::from(bit) << i;
                                }
                                let scale = if b + 1 == bw && matches!(wf, NumericFormat::Int(_)) {
                                    -(1i32 << b)
                                } else {
                                    1i32 << b
                                };
                                *acc += scale * table[idx];
                            }
                        }
                    }
                }
            }
        }

        let mut dpu = Dpu::new(self.cfg.clone());
        self.charge(dims, wf, af, &mut dpu);
        Ok(GemmResult {
            values,
            dims,
            profile: dpu.profile(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::reference_gemm;
    use quant::Quantizer;

    fn check_matches_reference(wf: NumericFormat, af: NumericFormat, m: usize, k: usize, n: usize) {
        let wdata: Vec<f32> = (0..m * k)
            .map(|i| ((i * 7 + 3) % 13) as f32 - 6.0)
            .collect();
        let adata: Vec<f32> = (0..k * n)
            .map(|i| ((i * 5 + 1) % 11) as f32 - 5.0)
            .collect();
        let w = Quantizer::symmetric(wf)
            .quantize_matrix(&wdata, m, k)
            .unwrap();
        let a = Quantizer::symmetric(af)
            .quantize_matrix(&adata, k, n)
            .unwrap();
        let kernel = LtcKernel::new(DpuConfig::upmem());
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(
            out.values,
            reference_gemm::<i32>(&w, &a).unwrap(),
            "{wf:?}x{af:?}"
        );
    }

    #[test]
    fn bipolar_weights_match_reference() {
        check_matches_reference(NumericFormat::Bipolar, NumericFormat::Int(3), 5, 9, 4);
    }

    #[test]
    fn int_weights_match_reference() {
        check_matches_reference(NumericFormat::Int(2), NumericFormat::Int(2), 4, 8, 3);
        check_matches_reference(NumericFormat::Int(4), NumericFormat::Int(4), 3, 10, 5);
    }

    #[test]
    fn ragged_k_not_multiple_of_group() {
        check_matches_reference(NumericFormat::Int(3), NumericFormat::Int(3), 4, 7, 2);
        check_matches_reference(NumericFormat::Bipolar, NumericFormat::Int(4), 2, 5, 2);
    }

    #[test]
    fn run_profile_equals_cost() {
        let w = Quantizer::symmetric(NumericFormat::Int(2))
            .quantize_matrix(&[0.5; 24], 4, 6)
            .unwrap();
        let a = Quantizer::symmetric(NumericFormat::Int(3))
            .quantize_matrix(&[0.25; 12], 6, 2)
            .unwrap();
        let kernel = LtcKernel::new(DpuConfig::upmem());
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(
            out.profile,
            kernel.cost(out.dims, NumericFormat::Int(2), NumericFormat::Int(3))
        );
    }

    #[test]
    fn cost_scales_with_weight_bits() {
        // Bit-serial: W4 needs ~4x the lookups of W1.
        let kernel = LtcKernel::new(DpuConfig::upmem());
        let dims = GemmDims {
            m: 128,
            k: 128,
            n: 32,
        };
        let w1 = kernel.cost(dims, NumericFormat::Bipolar, NumericFormat::Int(4));
        let w4 = kernel.cost(dims, NumericFormat::Int(4), NumericFormat::Int(4));
        let ratio = w4.seconds(Category::Compute) / w1.seconds(Category::Compute);
        assert!((3.0..4.5).contains(&ratio), "ratio {ratio}");
    }
}
