//! The LUT Tensor Core baseline adapted to PIM (§VI-A "LTC (PIM)").
//!
//! LTC/T-MAC-style bit-serial designs restrict weights to one bit per pass:
//! activations are grouped `g` at a time, a `2^g`-entry table of activation
//! subset sums is generated **at runtime** per activation group, and each
//! weight bit-plane indexes the table with its `g` bits; plane results are
//! shifted and accumulated. This keeps tables tiny (good for logic chips)
//! but costs one pass per weight bit and runtime table generation — the
//! "low LUT packing degrees" the paper blames for LTC's PIM performance.

use crate::codes::PackedCodes;
use crate::gemm::{GemmDims, GemmResult, Method};
use crate::kernels::{charge_operand_input, charge_output, require_integer, LutKernel, N_TILE};
use crate::LocaLutError;
use pim_sim::{Category, Dpu, DpuConfig, Profile};
use quant::{NumericFormat, QMatrix};

/// The bit-serial baseline kernel.
#[derive(Debug, Clone)]
pub struct LtcKernel {
    cfg: DpuConfig,
    wf: NumericFormat,
    af: NumericFormat,
}

impl LtcKernel {
    /// Creates the kernel for a DPU configuration and operand formats.
    #[must_use]
    pub fn new(cfg: DpuConfig, wf: NumericFormat, af: NumericFormat) -> Self {
        LtcKernel { cfg, wf, af }
    }

    /// Number of bit-serial weight planes for a format (bipolar weights
    /// need a single pass: `w = 2c − 1` is an affine function of one bit).
    fn planes(wf: NumericFormat) -> u32 {
        match wf {
            NumericFormat::Bipolar => 1,
            other => u32::from(other.bits()),
        }
    }

    fn charge(&self, dims: GemmDims, dpu: &mut Dpu) {
        let costs = &self.cfg.processor.costs;
        let g = u64::from(costs.ltc_group);
        let groups = (dims.k as u64).div_ceil(g) * dims.n as u64;
        charge_operand_input(dpu, dims, self.wf.bits(), self.af.bits());
        // Runtime table generation: 2^g entries per activation group.
        let table_entries = groups * (1u64 << g);
        dpu.charge_instrs(
            table_entries * u64::from(costs.ltc_table_entry_build),
            Category::Compute,
        );
        // Bit-plane lookups: one per (weight row, group, plane).
        let lookups = dims.m as u64 * groups * u64::from(Self::planes(self.wf));
        dpu.charge_instrs(lookups * u64::from(costs.ltc_lookup), Category::Compute);
        charge_output(dpu, dims);
    }

    /// Analytic cost for the given dimensions.
    #[must_use]
    pub fn cost(&self, dims: GemmDims) -> Profile {
        let mut dpu = Dpu::new(self.cfg.clone());
        self.charge(dims, &mut dpu);
        dpu.profile()
    }

    /// Cheap operand checks shared by `run` and the trait dispatch.
    fn validate_operands(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmDims, LocaLutError> {
        require_integer(self.wf, self.af)?;
        let dims = GemmDims::of(w, a)?;
        if w.format() != self.wf || a.format() != self.af {
            return Err(LocaLutError::UnsupportedFormat(
                "operand formats differ from the kernel's configured formats",
            ));
        }
        Ok(dims)
    }

    /// Runs the bit-serial GEMM and returns exact outputs + profile.
    ///
    /// Blocked like the LUT arms: weight rows are bit-packed once at group
    /// size `g` (one packed word per `(m, kb)` — the zero pad past `K`
    /// keeps every plane index in range), and each K-block builds the
    /// subset-sum tables for an [`N_TILE`]-wide column tile up front so one
    /// plane-index extraction per `(m, plane)` serves the whole tile.
    ///
    /// # Errors
    ///
    /// Shape or format errors, including a group size too wide to bit-pack
    /// (`g · weight bits > 64`).
    pub fn run(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmResult, LocaLutError> {
        let dims = self.validate_operands(w, a)?;
        let g = self.cfg.processor.costs.ltc_group as usize;
        let bits = usize::from(self.wf.bits());
        if bits * g > 64 {
            return Err(LocaLutError::UnsupportedFormat(
                "LTC group does not fit a packed 64-bit weight word",
            ));
        }
        let kblocks = dims.k.div_ceil(g);
        let bw = u32::from(self.wf.bits());
        let wpacked = PackedCodes::pack_weight_rows(w, g);

        let mut values = vec![0i32; dims.m * dims.n];
        let mut tables: Vec<i32> = Vec::new();
        let mut gsums: Vec<i32> = Vec::with_capacity(N_TILE);
        for kb in 0..kblocks {
            let glen = g.min(dims.k - kb * g);
            let tsize = 1usize << glen;
            let wcol = wpacked.group(kb);
            for n0 in (0..dims.n).step_by(N_TILE) {
                let n1 = dims.n.min(n0 + N_TILE);
                // Runtime tables: subset sums of each tile column's group.
                tables.clear();
                tables.resize((n1 - n0) * tsize, 0);
                gsums.clear();
                for (dn, n) in (n0..n1).enumerate() {
                    let table = &mut tables[dn * tsize..(dn + 1) * tsize];
                    for idx in 1usize..tsize {
                        let lsb = idx.trailing_zeros() as usize;
                        let av = self
                            .af
                            .decode_int(u32::from(a.code_at(kb * g + lsb, n)))
                            .expect("integer format");
                        table[idx] = table[idx ^ (1 << lsb)] + av;
                    }
                    let mut group_sum = 0i32;
                    for i in 0..glen {
                        group_sum += self
                            .af
                            .decode_int(u32::from(a.code_at(kb * g + i, n)))
                            .expect("integer format");
                    }
                    gsums.push(group_sum);
                }
                for m in 0..dims.m {
                    let word = wcol[m];
                    let out = &mut values[m * dims.n + n0..m * dims.n + n1];
                    match self.wf {
                        NumericFormat::Bipolar => {
                            // w = 2c − 1: dot = 2·table[idx] − Σa.
                            let idx = (word as usize) & (tsize - 1);
                            for (dn, acc) in out.iter_mut().enumerate() {
                                *acc += 2 * tables[dn * tsize + idx] - gsums[dn];
                            }
                        }
                        _ => {
                            // Two's complement: Σ_{b<bw−1} 2^b·plane_b −
                            // 2^(bw−1)·plane_{bw−1}.
                            for b in 0..bw {
                                let mut idx = 0usize;
                                for i in 0..glen {
                                    let bit = (word >> (bits * i + b as usize)) & 1;
                                    idx |= (bit as usize) << i;
                                }
                                let scale =
                                    if b + 1 == bw && matches!(self.wf, NumericFormat::Int(_)) {
                                        -(1i32 << b)
                                    } else {
                                        1i32 << b
                                    };
                                for (dn, acc) in out.iter_mut().enumerate() {
                                    *acc += scale * tables[dn * tsize + idx];
                                }
                            }
                        }
                    }
                }
            }
        }

        let mut dpu = Dpu::new(self.cfg.clone());
        self.charge(dims, &mut dpu);
        Ok(GemmResult {
            values,
            dims,
            profile: dpu.profile(),
        })
    }
}

impl LutKernel for LtcKernel {
    fn method(&self) -> Method {
        Method::Ltc
    }

    fn p(&self) -> u32 {
        1
    }

    fn cost(&self, dims: GemmDims) -> Profile {
        LtcKernel::cost(self, dims)
    }

    fn validate(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmDims, LocaLutError> {
        self.validate_operands(w, a)
    }

    fn run(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmResult, LocaLutError> {
        LtcKernel::run(self, w, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::reference_gemm;
    use quant::Quantizer;

    fn check_matches_reference(wf: NumericFormat, af: NumericFormat, m: usize, k: usize, n: usize) {
        let wdata: Vec<f32> = (0..m * k)
            .map(|i| ((i * 7 + 3) % 13) as f32 - 6.0)
            .collect();
        let adata: Vec<f32> = (0..k * n)
            .map(|i| ((i * 5 + 1) % 11) as f32 - 5.0)
            .collect();
        let w = Quantizer::symmetric(wf)
            .quantize_matrix(&wdata, m, k)
            .unwrap();
        let a = Quantizer::symmetric(af)
            .quantize_matrix(&adata, k, n)
            .unwrap();
        let kernel = LtcKernel::new(DpuConfig::upmem(), wf, af);
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(
            out.values,
            reference_gemm::<i32>(&w, &a).unwrap(),
            "{wf:?}x{af:?}"
        );
    }

    #[test]
    fn bipolar_weights_match_reference() {
        check_matches_reference(NumericFormat::Bipolar, NumericFormat::Int(3), 5, 9, 4);
    }

    #[test]
    fn int_weights_match_reference() {
        check_matches_reference(NumericFormat::Int(2), NumericFormat::Int(2), 4, 8, 3);
        check_matches_reference(NumericFormat::Int(4), NumericFormat::Int(4), 3, 10, 5);
    }

    #[test]
    fn ragged_k_not_multiple_of_group() {
        check_matches_reference(NumericFormat::Int(3), NumericFormat::Int(3), 4, 7, 2);
        check_matches_reference(NumericFormat::Bipolar, NumericFormat::Int(4), 2, 5, 2);
    }

    #[test]
    fn wide_n_crosses_tile_boundaries() {
        check_matches_reference(
            NumericFormat::Int(3),
            NumericFormat::Int(3),
            3,
            9,
            N_TILE * 2 + 7,
        );
    }

    #[test]
    fn run_profile_equals_cost() {
        let w = Quantizer::symmetric(NumericFormat::Int(2))
            .quantize_matrix(&[0.5; 24], 4, 6)
            .unwrap();
        let a = Quantizer::symmetric(NumericFormat::Int(3))
            .quantize_matrix(&[0.25; 12], 6, 2)
            .unwrap();
        let kernel = LtcKernel::new(
            DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(3),
        );
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(out.profile, kernel.cost(out.dims));
    }

    #[test]
    fn cost_scales_with_weight_bits() {
        // Bit-serial: W4 needs ~4x the lookups of W1.
        let dims = GemmDims {
            m: 128,
            k: 128,
            n: 32,
        };
        let w1 = LtcKernel::new(
            DpuConfig::upmem(),
            NumericFormat::Bipolar,
            NumericFormat::Int(4),
        )
        .cost(dims);
        let w4 = LtcKernel::new(
            DpuConfig::upmem(),
            NumericFormat::Int(4),
            NumericFormat::Int(4),
        )
        .cost(dims);
        let ratio = w4.seconds(Category::Compute) / w1.seconds(Category::Compute);
        assert!((3.0..4.5).contains(&ratio), "ratio {ratio}");
    }
}
