//! The "OP+LC+RC" design point (§IV-B): canonical LUT + reordering LUT,
//! both buffer-resident.
//!
//! The software reorder of OP+LC collapses into a single reordering-LUT
//! access; a full lookup is the profiled 12-instruction composite
//! (`L_local`): index calc, reordering access, canonical access,
//! accumulate. This is also the buffer-resident arm of the §IV-D placement
//! decision.

use crate::capacity::{localut_bytes, max_p_localut};
use crate::codes::{ActivationPanel, PackedCodes};
use crate::gemm::{GemmDims, GemmResult, Method};
use crate::kernels::{
    charge_operand_input, charge_output, check_panel, pad_code_for, require_integer, LutKernel,
    SharedLuts, N_TILE,
};
use crate::LocaLutError;
use pim_sim::{Category, Dpu, DpuConfig, Profile};
use quant::{NumericFormat, QMatrix};

/// The buffer-resident canonical + reordering LUT kernel.
#[derive(Debug, Clone)]
pub struct RcKernel {
    cfg: DpuConfig,
    wf: NumericFormat,
    af: NumericFormat,
    p: u32,
}

impl RcKernel {
    /// Creates the kernel with the largest `p` whose canonical + reordering
    /// LUTs both fit the WRAM LUT budget (§V-A: `p_local = 5` at W1A3).
    ///
    /// # Errors
    ///
    /// [`LocaLutError::BudgetExceeded`] when not even `p = 1` fits, or
    /// format errors.
    pub fn auto(
        cfg: DpuConfig,
        wf: NumericFormat,
        af: NumericFormat,
    ) -> Result<Self, LocaLutError> {
        require_integer(wf, af)?;
        let budget = cfg.wram_lut_budget();
        let p = max_p_localut(wf, af, budget);
        if p == 0 {
            return Err(LocaLutError::BudgetExceeded {
                required: localut_bytes(wf, af, 1).unwrap_or(u128::MAX),
                budget,
            });
        }
        Ok(RcKernel { cfg, wf, af, p })
    }

    /// Creates the kernel with an explicit packing degree.
    ///
    /// # Errors
    ///
    /// Format or degree errors.
    pub fn with_p(
        cfg: DpuConfig,
        wf: NumericFormat,
        af: NumericFormat,
        p: u32,
    ) -> Result<Self, LocaLutError> {
        require_integer(wf, af)?;
        if p == 0 {
            return Err(LocaLutError::InvalidPackingDegree(0));
        }
        Ok(RcKernel { cfg, wf, af, p })
    }

    /// The chosen packing degree.
    #[must_use]
    pub fn p(&self) -> u32 {
        self.p
    }

    fn lookups(&self, dims: GemmDims) -> u64 {
        dims.m as u64 * (dims.k as u64).div_ceil(u64::from(self.p)) * dims.n as u64
    }

    fn groups(&self, dims: GemmDims) -> u64 {
        (dims.k as u64).div_ceil(u64::from(self.p)) * dims.n as u64
    }

    /// One-time initialization cost: loading the canonical + reordering
    /// LUT images into WRAM (once at model load, §V-A — not per GEMM;
    /// Eq. 4 accordingly has no load term).
    #[must_use]
    pub fn setup_cost(&self) -> Profile {
        let mut dpu = Dpu::new(self.cfg.clone());
        let lut_bytes = localut_bytes(self.wf, self.af, self.p).unwrap_or(u128::MAX) as u64;
        dpu.charge_dram_stream(lut_bytes, Category::LutLoad);
        dpu.profile()
    }

    fn charge(&self, dims: GemmDims, dpu: &mut Dpu) {
        charge_operand_input(dpu, dims, self.wf.bits(), self.af.bits());
        // Permutation ids: one per group (p! ≤ 2^16 for p ≤ 8 → 2 bytes).
        dpu.charge_dram_stream(2 * self.groups(dims), Category::DataTransfer);
        // The profiled L_local composite per lookup.
        dpu.charge_lookup_accum(self.lookups(dims));
        charge_output(dpu, dims);
    }

    /// Analytic cost for the given dimensions.
    #[must_use]
    pub fn cost(&self, dims: GemmDims) -> Profile {
        let mut dpu = Dpu::new(self.cfg.clone());
        self.charge(dims, &mut dpu);
        dpu.profile()
    }

    /// Runs the GEMM through the canonical + reordering LUTs, building the
    /// LUT images locally.
    ///
    /// # Errors
    ///
    /// Shape, padding, or budget errors.
    pub fn run(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmResult, LocaLutError> {
        // Validate operands before paying for the LUT build.
        self.validate_operands(w, a)?;
        let luts = SharedLuts::build(self.wf, self.af, self.p)?;
        self.run_with_luts(w, a, &luts)
    }

    /// Cheap operand checks shared by `run` and `run_with_luts`.
    fn validate_operands(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmDims, LocaLutError> {
        let dims = GemmDims::of(w, a)?;
        if w.format() != self.wf || a.format() != self.af {
            return Err(LocaLutError::UnsupportedFormat(
                "operand formats differ from the kernel's configured formats",
            ));
        }
        pad_code_for(self.af, dims.k, self.p as usize)?;
        Ok(dims)
    }

    /// Runs the GEMM against prebuilt shared LUT images (see
    /// [`SharedLuts`]) — the entry point bank-parallel workers use so N
    /// banks share one read-only LUT build.
    ///
    /// The inner loops are blocked: both operands are bit-packed into
    /// group-major [`PackedCodes`] once, then each K-block resolves
    /// [`N_TILE`] activation columns to their canonical/reordering column
    /// slices (reused scratch, no per-group allocation) and one linear
    /// M-pass gathers the whole tile — contiguous packed-weight reads,
    /// contiguous output writes, and both LUT column slices hot in cache.
    ///
    /// # Errors
    ///
    /// Shape or padding errors, or [`LocaLutError::UnsupportedFormat`] when
    /// `luts` was built for a different `(wf, af, p)`.
    pub fn run_with_luts(
        &self,
        w: &QMatrix,
        a: &QMatrix,
        luts: &SharedLuts,
    ) -> Result<GemmResult, LocaLutError> {
        luts.check(self.wf, self.af, self.p)?;
        let dims = self.validate_operands(w, a)?;
        let pad = pad_code_for(self.af, dims.k, self.p as usize)?;
        let panel = ActivationPanel::resolve(a, self.p as usize, pad, luts.canonical())?;
        self.run_with_panel(w, a, luts, &panel)
    }

    /// Runs against a pre-resolved [`ActivationPanel`] (see
    /// [`LutKernel::run_with_panel`]) — the path row-sharded banks take so
    /// the activation-side group resolution happens once per column band
    /// instead of once per bank.
    ///
    /// # Errors
    ///
    /// As [`RcKernel::run_with_luts`], plus
    /// [`LocaLutError::UnsupportedFormat`] when the panel's shape does not
    /// match the operands.
    pub fn run_with_panel(
        &self,
        w: &QMatrix,
        a: &QMatrix,
        luts: &SharedLuts,
        panel: &ActivationPanel,
    ) -> Result<GemmResult, LocaLutError> {
        luts.check(self.wf, self.af, self.p)?;
        let dims = self.validate_operands(w, a)?;
        let p = self.p as usize;
        let pad = pad_code_for(self.af, dims.k, p)?;
        let canonical = luts.canonical();
        let reorder = luts.reorder();
        let kblocks = dims.k.div_ceil(p);
        check_panel(panel, self.af.bits(), p, kblocks, dims.n)?;
        debug_assert_eq!(
            panel.packed(),
            &PackedCodes::pack_activation_columns(a, p, pad),
            "activation panel resolved from a different operand"
        );

        // Pack the weight rows once: the packed row of group (m, kb) is
        // reused across every output column.
        let wpacked = PackedCodes::pack_weight_rows(w, p);

        let mut values = vec![0i32; dims.m * dims.n];
        let mut cols: Vec<(&[i32], &[u64])> = Vec::with_capacity(N_TILE);
        for kb in 0..kblocks {
            // Contiguous in m — the M-pass below is a linear scan.
            let wcol = wpacked.group(kb);
            for n0 in (0..dims.n).step_by(N_TILE) {
                let n1 = dims.n.min(n0 + N_TILE);
                // Hoist the tile's column pairs once per M-pass: one
                // bounds check per group (column base hoist) instead of
                // two checked 2D lookups per element.
                cols.clear();
                for n in n0..n1 {
                    let (col, perm_id) = panel.pair(kb, n);
                    cols.push((canonical.column_slice(col), reorder.column_slice(perm_id)));
                }
                for m in 0..dims.m {
                    // One packed-row load, then one reordering lookup and
                    // one canonical lookup per tile column.
                    let row = wcol[m] as usize;
                    let out = &mut values[m * dims.n + n0..m * dims.n + n1];
                    for (acc, &(canon_col, reord_col)) in out.iter_mut().zip(&cols) {
                        *acc += canon_col[reord_col[row] as usize];
                    }
                }
            }
        }

        let mut dpu = Dpu::new(self.cfg.clone());
        self.charge(dims, &mut dpu);
        Ok(GemmResult {
            values,
            dims,
            profile: dpu.profile(),
        })
    }
}

impl LutKernel for RcKernel {
    fn method(&self) -> Method {
        Method::OpLcRc
    }

    fn p(&self) -> u32 {
        self.p
    }

    fn cost(&self, dims: GemmDims) -> Profile {
        RcKernel::cost(self, dims)
    }

    fn validate(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmDims, LocaLutError> {
        self.validate_operands(w, a)
    }

    fn run(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmResult, LocaLutError> {
        RcKernel::run(self, w, a)
    }

    fn run_with_luts(
        &self,
        w: &QMatrix,
        a: &QMatrix,
        luts: &SharedLuts,
    ) -> Result<GemmResult, LocaLutError> {
        RcKernel::run_with_luts(self, w, a, luts)
    }

    fn resolve_panel(
        &self,
        a: &QMatrix,
        luts: &SharedLuts,
    ) -> Result<Option<ActivationPanel>, LocaLutError> {
        luts.check(self.wf, self.af, self.p)?;
        let p = self.p as usize;
        let pad = pad_code_for(self.af, a.rows(), p)?;
        Ok(Some(ActivationPanel::resolve(a, p, pad, luts.canonical())?))
    }

    fn run_with_panel(
        &self,
        w: &QMatrix,
        a: &QMatrix,
        luts: &SharedLuts,
        panel: &ActivationPanel,
    ) -> Result<GemmResult, LocaLutError> {
        RcKernel::run_with_panel(self, w, a, luts, panel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::reference_gemm;
    use crate::kernels::LcKernel;
    use quant::Quantizer;

    fn operands(
        m: usize,
        k: usize,
        n: usize,
        wf: NumericFormat,
        af: NumericFormat,
    ) -> (QMatrix, QMatrix) {
        let wdata: Vec<f32> = (0..m * k)
            .map(|i| ((i * 13 + 5) % 7) as f32 - 3.0)
            .collect();
        let adata: Vec<f32> = (0..k * n)
            .map(|i| ((i * 3 + 2) % 11) as f32 - 5.0)
            .collect();
        (
            Quantizer::symmetric(wf)
                .quantize_matrix(&wdata, m, k)
                .unwrap(),
            Quantizer::symmetric(af)
                .quantize_matrix(&adata, k, n)
                .unwrap(),
        )
    }

    #[test]
    fn auto_picks_paper_p_for_w1a3() {
        let k = RcKernel::auto(
            DpuConfig::upmem(),
            NumericFormat::Bipolar,
            NumericFormat::Int(3),
        )
        .unwrap();
        assert_eq!(k.p(), 5); // §V-A: p_local = 5 with LC (+RC).
    }

    #[test]
    fn run_matches_reference() {
        let (w, a) = operands(5, 10, 3, NumericFormat::Bipolar, NumericFormat::Int(3));
        let kernel = RcKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Bipolar,
            NumericFormat::Int(3),
            5,
        )
        .unwrap();
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(out.values, reference_gemm::<i32>(&w, &a).unwrap());
    }

    #[test]
    fn ragged_k_matches_reference() {
        let (w, a) = operands(4, 11, 2, NumericFormat::Int(2), NumericFormat::Int(3));
        let kernel = RcKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(3),
            4,
        )
        .unwrap();
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(out.values, reference_gemm::<i32>(&w, &a).unwrap());
    }

    #[test]
    fn wide_n_crosses_tile_boundaries() {
        // N beyond one N_TILE, with a ragged last tile, stays bit-exact.
        let (w, a) = operands(
            7,
            10,
            N_TILE * 2 + 3,
            NumericFormat::Int(2),
            NumericFormat::Int(3),
        );
        let kernel = RcKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(3),
            5,
        )
        .unwrap();
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(out.values, reference_gemm::<i32>(&w, &a).unwrap());
    }

    #[test]
    fn run_profile_equals_cost() {
        let (w, a) = operands(4, 6, 2, NumericFormat::Int(2), NumericFormat::Int(2));
        let kernel = RcKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(2),
            3,
        )
        .unwrap();
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(out.profile, kernel.cost(out.dims));
    }

    #[test]
    fn reordering_lut_beats_software_reordering() {
        // Fig. 9: OP+LC+RC recovers the overhead OP+LC added.
        let dims = GemmDims {
            m: 128,
            k: 125,
            n: 16,
        };
        let cfg = DpuConfig::upmem();
        let lc = LcKernel::with_p(
            cfg.clone(),
            NumericFormat::Bipolar,
            NumericFormat::Int(3),
            5,
        )
        .unwrap()
        .cost(dims);
        let rc = RcKernel::with_p(cfg, NumericFormat::Bipolar, NumericFormat::Int(3), 5)
            .unwrap()
            .cost(dims);
        assert!(rc.total_seconds() < lc.total_seconds());
    }

    #[test]
    fn reorder_access_fraction_is_small() {
        // §VI-G: the reordering LUT access is ~6.9% of the kernel.
        let kernel = RcKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Bipolar,
            NumericFormat::Int(3),
            5,
        )
        .unwrap();
        let cost = kernel.cost(GemmDims {
            m: 768,
            k: 765,
            n: 128,
        });
        let frac = cost.fraction(Category::ReorderLookup);
        assert!((0.02..0.2).contains(&frac), "reorder fraction {frac}");
    }
}
