//! The "OP+LC+RC" design point (§IV-B): canonical LUT + reordering LUT,
//! both buffer-resident.
//!
//! The software reorder of OP+LC collapses into a single reordering-LUT
//! access; a full lookup is the profiled 12-instruction composite
//! (`L_local`): index calc, reordering access, canonical access,
//! accumulate. This is also the buffer-resident arm of the §IV-D placement
//! decision.

use crate::capacity::{localut_bytes, max_p_localut};
use crate::gemm::{GemmDims, GemmResult};
use crate::kernels::{
    charge_operand_input, charge_output, group_codes, packed_weight_rows, pad_code_for,
    require_integer, SharedLuts,
};
use crate::perm::{lehmer_rank, sort_permutation};
use crate::LocaLutError;
use pim_sim::{Category, Dpu, DpuConfig, Profile};
use quant::{NumericFormat, QMatrix};

/// The buffer-resident canonical + reordering LUT kernel.
#[derive(Debug, Clone)]
pub struct RcKernel {
    cfg: DpuConfig,
    wf: NumericFormat,
    af: NumericFormat,
    p: u32,
}

impl RcKernel {
    /// Creates the kernel with the largest `p` whose canonical + reordering
    /// LUTs both fit the WRAM LUT budget (§V-A: `p_local = 5` at W1A3).
    ///
    /// # Errors
    ///
    /// [`LocaLutError::BudgetExceeded`] when not even `p = 1` fits, or
    /// format errors.
    pub fn auto(
        cfg: DpuConfig,
        wf: NumericFormat,
        af: NumericFormat,
    ) -> Result<Self, LocaLutError> {
        require_integer(wf, af)?;
        let budget = cfg.wram_lut_budget();
        let p = max_p_localut(wf, af, budget);
        if p == 0 {
            return Err(LocaLutError::BudgetExceeded {
                required: localut_bytes(wf, af, 1).unwrap_or(u128::MAX),
                budget,
            });
        }
        Ok(RcKernel { cfg, wf, af, p })
    }

    /// Creates the kernel with an explicit packing degree.
    ///
    /// # Errors
    ///
    /// Format or degree errors.
    pub fn with_p(
        cfg: DpuConfig,
        wf: NumericFormat,
        af: NumericFormat,
        p: u32,
    ) -> Result<Self, LocaLutError> {
        require_integer(wf, af)?;
        if p == 0 {
            return Err(LocaLutError::InvalidPackingDegree(0));
        }
        Ok(RcKernel { cfg, wf, af, p })
    }

    /// The chosen packing degree.
    #[must_use]
    pub fn p(&self) -> u32 {
        self.p
    }

    fn lookups(&self, dims: GemmDims) -> u64 {
        dims.m as u64 * (dims.k as u64).div_ceil(u64::from(self.p)) * dims.n as u64
    }

    fn groups(&self, dims: GemmDims) -> u64 {
        (dims.k as u64).div_ceil(u64::from(self.p)) * dims.n as u64
    }

    /// One-time initialization cost: loading the canonical + reordering
    /// LUT images into WRAM (once at model load, §V-A — not per GEMM;
    /// Eq. 4 accordingly has no load term).
    #[must_use]
    pub fn setup_cost(&self) -> Profile {
        let mut dpu = Dpu::new(self.cfg.clone());
        let lut_bytes = localut_bytes(self.wf, self.af, self.p).unwrap_or(u128::MAX) as u64;
        dpu.charge_dram_stream(lut_bytes, Category::LutLoad);
        dpu.profile()
    }

    fn charge(&self, dims: GemmDims, dpu: &mut Dpu) {
        charge_operand_input(dpu, dims, self.wf.bits(), self.af.bits());
        // Permutation ids: one per group (p! ≤ 2^16 for p ≤ 8 → 2 bytes).
        dpu.charge_dram_stream(2 * self.groups(dims), Category::DataTransfer);
        // The profiled L_local composite per lookup.
        dpu.charge_lookup_accum(self.lookups(dims));
        charge_output(dpu, dims);
    }

    /// Analytic cost for the given dimensions.
    #[must_use]
    pub fn cost(&self, dims: GemmDims) -> Profile {
        let mut dpu = Dpu::new(self.cfg.clone());
        self.charge(dims, &mut dpu);
        dpu.profile()
    }

    /// Runs the GEMM through the canonical + reordering LUTs, building the
    /// LUT images locally.
    ///
    /// # Errors
    ///
    /// Shape, padding, or budget errors.
    pub fn run(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmResult, LocaLutError> {
        // Validate operands before paying for the LUT build.
        self.validate(w, a)?;
        let luts = SharedLuts::build(self.wf, self.af, self.p)?;
        self.run_with_luts(w, a, &luts)
    }

    /// Cheap operand checks shared by `run` and `run_with_luts`.
    fn validate(&self, w: &QMatrix, a: &QMatrix) -> Result<GemmDims, LocaLutError> {
        let dims = GemmDims::of(w, a)?;
        if w.format() != self.wf || a.format() != self.af {
            return Err(LocaLutError::UnsupportedFormat(
                "operand formats differ from the kernel's configured formats",
            ));
        }
        pad_code_for(self.af, dims.k, self.p as usize)?;
        Ok(dims)
    }

    /// Runs the GEMM against prebuilt shared LUT images (see
    /// [`SharedLuts`]) — the entry point bank-parallel workers use so N
    /// banks share one read-only LUT build.
    ///
    /// # Errors
    ///
    /// Shape or padding errors, or [`LocaLutError::UnsupportedFormat`] when
    /// `luts` was built for a different `(wf, af, p)`.
    pub fn run_with_luts(
        &self,
        w: &QMatrix,
        a: &QMatrix,
        luts: &SharedLuts,
    ) -> Result<GemmResult, LocaLutError> {
        luts.check(self.wf, self.af, self.p)?;
        let dims = self.validate(w, a)?;
        let p = self.p as usize;
        let pad = pad_code_for(self.af, dims.k, p)?;
        let canonical = luts.canonical();
        let reorder = luts.reorder();
        let kblocks = dims.k.div_ceil(p);

        // Hot path: the packed weight row of group (m, kb) is independent
        // of the activation column, so pack all M × ⌈K/p⌉ rows once up
        // front instead of re-extracting them for every n.
        let packed = packed_weight_rows(w, p, self.wf.bits());

        let mut values = vec![0i32; dims.m * dims.n];
        for n in 0..dims.n {
            for kb in 0..kblocks {
                let acodes = group_codes(a, kb, n, p, pad);
                let perm = sort_permutation(&acodes);
                let sorted: Vec<u16> = perm.iter().map(|&i| acodes[usize::from(i)]).collect();
                let perm_id = lehmer_rank(&perm)?;
                let col = canonical.column_of(&sorted)?;
                // One bounds check per group (column base hoist) instead
                // of two checked 2D lookups per element.
                let canon_col = canonical.column_slice(col);
                let reord_col = reorder.column_slice(perm_id);
                for m in 0..dims.m {
                    // One reordering lookup, one canonical lookup.
                    let crow = reord_col[packed[m * kblocks + kb] as usize];
                    values[m * dims.n + n] += canon_col[crow as usize];
                }
            }
        }

        let mut dpu = Dpu::new(self.cfg.clone());
        self.charge(dims, &mut dpu);
        Ok(GemmResult {
            values,
            dims,
            profile: dpu.profile(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::reference_gemm;
    use crate::kernels::LcKernel;
    use quant::Quantizer;

    fn operands(
        m: usize,
        k: usize,
        n: usize,
        wf: NumericFormat,
        af: NumericFormat,
    ) -> (QMatrix, QMatrix) {
        let wdata: Vec<f32> = (0..m * k)
            .map(|i| ((i * 13 + 5) % 7) as f32 - 3.0)
            .collect();
        let adata: Vec<f32> = (0..k * n)
            .map(|i| ((i * 3 + 2) % 11) as f32 - 5.0)
            .collect();
        (
            Quantizer::symmetric(wf)
                .quantize_matrix(&wdata, m, k)
                .unwrap(),
            Quantizer::symmetric(af)
                .quantize_matrix(&adata, k, n)
                .unwrap(),
        )
    }

    #[test]
    fn auto_picks_paper_p_for_w1a3() {
        let k = RcKernel::auto(
            DpuConfig::upmem(),
            NumericFormat::Bipolar,
            NumericFormat::Int(3),
        )
        .unwrap();
        assert_eq!(k.p(), 5); // §V-A: p_local = 5 with LC (+RC).
    }

    #[test]
    fn run_matches_reference() {
        let (w, a) = operands(5, 10, 3, NumericFormat::Bipolar, NumericFormat::Int(3));
        let kernel = RcKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Bipolar,
            NumericFormat::Int(3),
            5,
        )
        .unwrap();
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(out.values, reference_gemm::<i32>(&w, &a).unwrap());
    }

    #[test]
    fn ragged_k_matches_reference() {
        let (w, a) = operands(4, 11, 2, NumericFormat::Int(2), NumericFormat::Int(3));
        let kernel = RcKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(3),
            4,
        )
        .unwrap();
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(out.values, reference_gemm::<i32>(&w, &a).unwrap());
    }

    #[test]
    fn run_profile_equals_cost() {
        let (w, a) = operands(4, 6, 2, NumericFormat::Int(2), NumericFormat::Int(2));
        let kernel = RcKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Int(2),
            NumericFormat::Int(2),
            3,
        )
        .unwrap();
        let out = kernel.run(&w, &a).unwrap();
        assert_eq!(out.profile, kernel.cost(out.dims));
    }

    #[test]
    fn reordering_lut_beats_software_reordering() {
        // Fig. 9: OP+LC+RC recovers the overhead OP+LC added.
        let dims = GemmDims {
            m: 128,
            k: 125,
            n: 16,
        };
        let cfg = DpuConfig::upmem();
        let lc = LcKernel::with_p(
            cfg.clone(),
            NumericFormat::Bipolar,
            NumericFormat::Int(3),
            5,
        )
        .unwrap()
        .cost(dims);
        let rc = RcKernel::with_p(cfg, NumericFormat::Bipolar, NumericFormat::Int(3), 5)
            .unwrap()
            .cost(dims);
        assert!(rc.total_seconds() < lc.total_seconds());
    }

    #[test]
    fn reorder_access_fraction_is_small() {
        // §VI-G: the reordering LUT access is ~6.9% of the kernel.
        let kernel = RcKernel::with_p(
            DpuConfig::upmem(),
            NumericFormat::Bipolar,
            NumericFormat::Int(3),
            5,
        )
        .unwrap();
        let cost = kernel.cost(GemmDims {
            m: 768,
            k: 765,
            n: 128,
        });
        let frac = cost.fraction(Category::ReorderLookup);
        assert!((0.02..0.2).contains(&frac), "reorder fraction {frac}");
    }
}
