//! Floating-point LUT GEMM (§VI-K): the same packed/canonical machinery
//! over FP4/FP8/FP16 codes.
//!
//! LUT entry *counts* depend only on bitwidth, so canonicalization carries
//! over unchanged; entry *values* become floats. One subtlety is unique to
//! floats: a canonical-LUT entry accumulates its `p` products in
//! sorted-activation order, while an operation-packed entry accumulates in
//! original order — so the reordering LUT changes the fp accumulation
//! order. Fig. 21(b) shows the accuracy impact is negligible; this module
//! provides both orders so that experiment (and any user worried about it)
//! can measure the difference directly.
//!
//! Entries are computed on demand instead of materializing tables: float
//! canonical LUTs are often too large to hold in host memory (fp4 weights
//! at `p = 4` already need 2.5×10⁸ entries), and on-demand evaluation is
//! numerically identical — asserted against a real
//! [`CanonicalLut<f32>`](crate::canonical::CanonicalLut) in the tests.

use crate::gemm::GemmDims;
use crate::perm::sort_permutation;
use crate::LocaLutError;
use quant::{NumericFormat, QMatrix};

/// The accumulation order of a packed inner product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccumOrder {
    /// Operation-packed LUT order: products summed as laid out.
    Original,
    /// Canonical-LUT order: products summed in sorted-activation order
    /// (what a canonicalized entry stores after weight reordering).
    Canonical,
}

/// A float LUT-GEMM evaluator at a fixed packing degree.
///
/// # Examples
///
/// ```
/// use localut::fgemm::{AccumOrder, FloatGemm};
/// use quant::{NumericFormat, Quantizer};
///
/// let q = Quantizer::symmetric(NumericFormat::Fp4);
/// let w = q.quantize_matrix(&[1.0, -0.5, 2.0, 0.25], 2, 2)?;
/// let a = q.quantize_matrix(&[3.0, 0.5, -1.0, 1.5], 2, 2)?;
/// let fg = FloatGemm::new(NumericFormat::Fp4, NumericFormat::Fp4, 2)?;
/// let canonical = fg.run(&w, &a, AccumOrder::Canonical)?;
/// let original = fg.run(&w, &a, AccumOrder::Original)?;
/// // Same products, possibly different fp rounding — Fig. 21(b).
/// assert_eq!(canonical.len(), 4);
/// assert!((canonical[0] - original[0]).abs() < 1e-4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloatGemm {
    wf: NumericFormat,
    af: NumericFormat,
    p: u32,
}

impl FloatGemm {
    /// Creates the evaluator.
    ///
    /// # Errors
    ///
    /// [`LocaLutError::InvalidPackingDegree`] when `p == 0`.
    pub fn new(wf: NumericFormat, af: NumericFormat, p: u32) -> Result<Self, LocaLutError> {
        if p == 0 {
            return Err(LocaLutError::InvalidPackingDegree(0));
        }
        Ok(FloatGemm { wf, af, p })
    }

    /// The packing degree.
    #[must_use]
    pub fn p(&self) -> u32 {
        self.p
    }

    /// Runs the GEMM in the chosen accumulation order; outputs are
    /// unscaled code-level products (multiply by `w.scale() * a.scale()`
    /// to dequantize).
    ///
    /// # Errors
    ///
    /// [`LocaLutError::DimensionMismatch`] on incompatible shapes or when
    /// the operand formats differ from the evaluator's.
    pub fn run(
        &self,
        w: &QMatrix,
        a: &QMatrix,
        order: AccumOrder,
    ) -> Result<Vec<f32>, LocaLutError> {
        if w.format() != self.wf || a.format() != self.af {
            return Err(LocaLutError::UnsupportedFormat(
                "operand formats differ from the evaluator's configured formats",
            ));
        }
        let dims = GemmDims::of(w, a)?;
        let p = self.p as usize;
        // Float formats all have a zero code (code 0 decodes to +0.0).
        let zero = self.af.encode_nearest_f32(0.0) as u16;
        let kblocks = dims.k.div_ceil(p);

        let mut out = vec![0.0f32; dims.m * dims.n];
        let mut acodes = vec![0u16; p];
        let mut wcodes = vec![0u16; p];
        for n in 0..dims.n {
            for kb in 0..kblocks {
                for (i, ac) in acodes.iter_mut().enumerate() {
                    let k = kb * p + i;
                    *ac = if k < dims.k { a.code_at(k, n) } else { zero };
                }
                let perm = sort_permutation(&acodes);
                for m in 0..dims.m {
                    for (i, wc) in wcodes.iter_mut().enumerate() {
                        let k = kb * p + i;
                        *wc = if k < dims.k { w.code_at(m, k) } else { 0 };
                    }
                    let partial = match order {
                        AccumOrder::Original => self.packed_entry(&wcodes, &acodes),
                        AccumOrder::Canonical => self.canonical_entry(&wcodes, &acodes, &perm),
                    };
                    out[m * dims.n + n] += partial;
                }
            }
        }
        Ok(out)
    }

    /// The value an operation-packed LUT entry would store.
    #[must_use]
    pub fn packed_entry(&self, wcodes: &[u16], acodes: &[u16]) -> f32 {
        let mut acc = 0.0f32;
        for (&wc, &ac) in wcodes.iter().zip(acodes) {
            acc += self.wf.decode_f32(u32::from(wc)) * self.af.decode_f32(u32::from(ac));
        }
        acc
    }

    /// The value a canonical-LUT entry would store (sorted-activation
    /// accumulation order).
    #[must_use]
    pub fn canonical_entry(&self, wcodes: &[u16], acodes: &[u16], perm: &[u8]) -> f32 {
        let mut acc = 0.0f32;
        for &i in perm {
            let i = usize::from(i);
            acc +=
                self.wf.decode_f32(u32::from(wcodes[i])) * self.af.decode_f32(u32::from(acodes[i]));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::CanonicalLut;
    use crate::gemm::reference_gemm;
    use crate::packed::pack_index;
    use crate::perm::apply;
    use crate::value::LutValue;
    use quant::Quantizer;

    fn operands(m: usize, k: usize, n: usize, f: NumericFormat) -> (QMatrix, QMatrix) {
        let q = Quantizer::symmetric(f);
        let wdata: Vec<f32> = (0..m * k)
            .map(|i| ((i * 7 + 1) % 11) as f32 * 0.3 - 1.5)
            .collect();
        let adata: Vec<f32> = (0..k * n)
            .map(|i| ((i * 5 + 2) % 13) as f32 * 0.25 - 1.5)
            .collect();
        (
            q.quantize_matrix(&wdata, m, k).unwrap(),
            q.quantize_matrix(&adata, k, n).unwrap(),
        )
    }

    #[test]
    fn both_orders_match_the_reference_approximately() {
        let (w, a) = operands(6, 14, 4, NumericFormat::Fp4);
        let reference: Vec<f32> = reference_gemm(&w, &a).unwrap();
        let fg = FloatGemm::new(NumericFormat::Fp4, NumericFormat::Fp4, 3).unwrap();
        for order in [AccumOrder::Original, AccumOrder::Canonical] {
            let out = fg.run(&w, &a, order).unwrap();
            for (x, y) in out.iter().zip(&reference) {
                assert!(x.approx_eq(*y), "{order:?}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn canonical_entry_matches_materialized_lut() {
        let f = NumericFormat::Fp4;
        let lut = CanonicalLut::<f32>::build(f, f, 2, 1 << 20).unwrap();
        let fg = FloatGemm::new(f, f, 2).unwrap();
        for wa in (0u16..16).step_by(3) {
            for wb in (0u16..16).step_by(5) {
                for aa in (0u16..16).step_by(2) {
                    for ab in (0u16..16).step_by(7) {
                        let (wc, ac) = ([wa, wb], [aa, ab]);
                        let perm = sort_permutation(&ac);
                        let sorted = apply(&perm, &ac);
                        let row = pack_index(&apply(&perm, &wc), 4);
                        let col = lut.column_of(&sorted).unwrap();
                        let expect = lut.lookup(row, col);
                        let got = fg.canonical_entry(&wc, &ac, &perm);
                        assert!(
                            (expect - got).abs() <= 1e-5 * expect.abs().max(1.0),
                            "w={wc:?} a={ac:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fp8_and_fp16_work() {
        for f in [NumericFormat::Fp8, NumericFormat::Fp16] {
            let (w, a) = operands(3, 8, 2, f);
            let reference: Vec<f32> = reference_gemm(&w, &a).unwrap();
            let fg = FloatGemm::new(f, f, 4).unwrap();
            let out = fg.run(&w, &a, AccumOrder::Canonical).unwrap();
            for (x, y) in out.iter().zip(&reference) {
                assert!(x.approx_eq(*y), "{f:?}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn order_difference_is_tiny_but_measurable_machinery_works() {
        let (w, a) = operands(4, 21, 3, NumericFormat::Fp16);
        let fg = FloatGemm::new(NumericFormat::Fp16, NumericFormat::Fp16, 3).unwrap();
        let orig = fg.run(&w, &a, AccumOrder::Original).unwrap();
        let canon = fg.run(&w, &a, AccumOrder::Canonical).unwrap();
        // Same math, possibly different rounding; always within fp tolerance.
        for (x, y) in orig.iter().zip(&canon) {
            assert!(x.approx_eq(*y), "{x} vs {y}");
        }
    }

    #[test]
    fn mismatched_formats_rejected() {
        let (w, a) = operands(2, 4, 2, NumericFormat::Fp4);
        let fg = FloatGemm::new(NumericFormat::Fp8, NumericFormat::Fp4, 2).unwrap();
        assert!(fg.run(&w, &a, AccumOrder::Original).is_err());
        assert!(FloatGemm::new(NumericFormat::Fp4, NumericFormat::Fp4, 0).is_err());
    }
}
