//! The canonical LUT (§IV-A): operation-packed entries with duplicate
//! activation permutations removed.
//!
//! The inner product is invariant under any joint permutation of the weight
//! and activation vectors, so the operation-packed LUT stores each multiset
//! of activations `p!`-ish times (Fig. 4a). The canonical LUT keeps only the
//! sorted representative: its columns are indexed by the *multiset rank* of
//! the sorted activation vector, shrinking the column count from `2^(ba·p)`
//! to `C(2^ba + p − 1, p)` (Eq. 1).
//!
//! Entries are column-major: `column_slice(col)` is exactly the contiguous
//! "slice" that LUT slice streaming (§IV-C) moves from the DRAM bank into
//! the local buffer.

use crate::multiset;
use crate::packed::check_index_width;
use crate::value::LutValue;
use crate::LocaLutError;
use quant::NumericFormat;

/// A fully materialized canonical LUT.
///
/// # Examples
///
/// ```
/// use localut::canonical::CanonicalLut;
/// use localut::packed::pack_index;
/// use localut::perm::{apply, sort_permutation};
/// use quant::NumericFormat;
///
/// // Fig. 4: W1A3 at p = 3 — 8 weight rows x 120 canonical columns.
/// let lut = CanonicalLut::<i32>::build(
///     NumericFormat::Uint(1), NumericFormat::Int(3), 3, 1 << 20)?;
/// assert_eq!((lut.rows(), lut.cols()), (8, 120));
///
/// // Look up w=[0,0,1] . a=[3,0,2] = 2 through canonicalization.
/// let perm = sort_permutation(&[3, 0, 2]);
/// let col = lut.column_of(&apply(&perm, &[3, 0, 2]))?;
/// let row = pack_index(&apply(&perm, &[0, 0, 1]), 1);
/// assert_eq!(lut.lookup(row, col), 2);
/// # Ok::<(), localut::LocaLutError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalLut<V> {
    wf: NumericFormat,
    af: NumericFormat,
    p: u32,
    rows: u64,
    cols: u64,
    /// Column-major entries: `entries[col * rows + row]`.
    entries: Vec<V>,
}

impl<V: LutValue> CanonicalLut<V> {
    /// Precomputes the canonical LUT.
    ///
    /// # Errors
    ///
    /// * [`LocaLutError::IndexSpaceTooWide`] when the packed weight index
    ///   exceeds 48 bits.
    /// * [`LocaLutError::BudgetExceeded`] when the entry count exceeds
    ///   `max_entries`.
    pub fn build(
        wf: NumericFormat,
        af: NumericFormat,
        p: u32,
        max_entries: u64,
    ) -> Result<Self, LocaLutError> {
        check_index_width(wf.bits(), p)?;
        check_index_width(af.bits(), p)?;
        let rows = 1u64 << (u32::from(wf.bits()) * p);
        let n_codes = u64::from(af.code_space());
        let cols_u128 =
            multiset::multiset_count(n_codes, p).ok_or(LocaLutError::InvalidPackingDegree(p))?;
        let total = u128::from(rows) * cols_u128;
        if total > u128::from(max_entries) {
            return Err(LocaLutError::BudgetExceeded {
                required: total,
                budget: max_entries,
            });
        }
        let cols = cols_u128 as u64;
        // Decode tables hoisted out of the per-entry loop: a weight field
        // has only `2^bw` codes and a column only `p` activation codes, so
        // each entry reduces to `p` table lookups accumulated in the same
        // order as [`dot_codes`] (bitwise-identical entries). Unpacking and
        // re-decoding per entry would allocate and decode millions of times.
        let wbits = wf.bits();
        let wmask = (1u64 << wbits) - 1;
        let wvals: Vec<V> = (0..(1u64 << wbits))
            .map(|c| V::decode(wf, c as u32))
            .collect();
        let mut entries = vec![V::default(); total as usize];
        let mut avals: Vec<V> = Vec::with_capacity(p as usize);
        for (col, column) in entries.chunks_exact_mut(rows as usize).enumerate() {
            let a_codes = multiset::unrank(col as u64, n_codes, p)?;
            avals.clear();
            avals.extend(a_codes.iter().map(|&a| V::decode(af, u32::from(a))));
            for (row, entry) in column.iter_mut().enumerate() {
                let row = row as u64;
                let mut acc = V::default();
                for (j, &av) in avals.iter().enumerate() {
                    let wc = ((row >> (u32::from(wbits) * j as u32)) & wmask) as usize;
                    acc += wvals[wc].mul(av);
                }
                *entry = acc;
            }
        }
        Ok(CanonicalLut {
            wf,
            af,
            p,
            rows,
            cols,
            entries,
        })
    }

    /// Reassembles a LUT from previously materialized column-major
    /// entries (a persisted image, a broadcast copy). The shape is
    /// re-derived from `(wf, af, p)` exactly as [`CanonicalLut::build`]
    /// derives it, so a reassembled LUT is structurally indistinguishable
    /// from a fresh build — callers remain responsible for the entry
    /// *values* (persistence layers checksum them).
    ///
    /// # Errors
    ///
    /// * [`LocaLutError::IndexSpaceTooWide`] /
    ///   [`LocaLutError::InvalidPackingDegree`] as in `build`.
    /// * [`LocaLutError::UnsupportedFormat`] when `entries.len()` does
    ///   not match the `2^(bw·p) · C(2^ba + p − 1, p)` shape.
    pub fn from_parts(
        wf: NumericFormat,
        af: NumericFormat,
        p: u32,
        entries: Vec<V>,
    ) -> Result<Self, LocaLutError> {
        check_index_width(wf.bits(), p)?;
        check_index_width(af.bits(), p)?;
        let rows = 1u64 << (u32::from(wf.bits()) * p);
        let n_codes = u64::from(af.code_space());
        let cols_u128 =
            multiset::multiset_count(n_codes, p).ok_or(LocaLutError::InvalidPackingDegree(p))?;
        if u128::from(rows) * cols_u128 != entries.len() as u128 {
            return Err(LocaLutError::UnsupportedFormat(
                "canonical LUT entry count does not match the (wf, af, p) shape",
            ));
        }
        Ok(CanonicalLut {
            wf,
            af,
            p,
            rows,
            cols: cols_u128 as u64,
            entries,
        })
    }

    /// The packing degree.
    #[must_use]
    pub fn p(&self) -> u32 {
        self.p
    }

    /// The raw column-major entry storage (`entries[col * rows + row]`),
    /// for persistence layers that serialize the image.
    #[must_use]
    pub fn entries(&self) -> &[V] {
        &self.entries
    }

    /// Number of weight rows, `2^(bw·p)`.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of canonical columns, `C(2^ba + p − 1, p)`.
    #[must_use]
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Total entry count.
    #[must_use]
    pub fn entry_count(&self) -> u64 {
        self.rows * self.cols
    }

    /// Weight format.
    #[must_use]
    pub fn weight_format(&self) -> NumericFormat {
        self.wf
    }

    /// Activation format.
    #[must_use]
    pub fn activation_format(&self) -> NumericFormat {
        self.af
    }

    /// Column index for a *sorted* activation code vector.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::multiset::rank`] errors on unsorted or
    /// out-of-range codes.
    pub fn column_of(&self, sorted_codes: &[u16]) -> Result<u64, LocaLutError> {
        multiset::rank(sorted_codes, u64::from(self.af.code_space()))
    }

    /// Looks up the inner product for a packed (canonically reordered)
    /// weight row and a canonical column.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    #[must_use]
    pub fn lookup(&self, row: u64, col: u64) -> V {
        assert!(row < self.rows && col < self.cols, "LUT index out of range");
        self.entries[(col * self.rows + row) as usize]
    }

    /// The contiguous column slice streamed by §IV-C (one entry per packed
    /// weight row).
    ///
    /// # Panics
    ///
    /// Panics when `col` is out of range.
    #[must_use]
    pub fn column_slice(&self, col: u64) -> &[V] {
        assert!(col < self.cols, "LUT column out of range");
        let start = (col * self.rows) as usize;
        &self.entries[start..start + self.rows as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::{pack_index, unpack_index, OpPackedLut};
    use crate::perm::{apply, sort_permutation};
    use crate::value::dot_codes;

    #[test]
    fn paper_fig4_example() {
        // p=3, 1-bit weights (figure uses {0,1} values → Uint(1)), 3-bit
        // activations. a=[3,0,2] sorts to [0,2,3]; weights [0,0,1] reorder
        // to [0,1,0]; the looked-up value must be 2.
        let lut =
            CanonicalLut::<i32>::build(NumericFormat::Uint(1), NumericFormat::Int(3), 3, 1 << 20)
                .unwrap();
        assert_eq!(lut.rows(), 8);
        assert_eq!(lut.cols(), 120); // C(10, 3)

        let a = [3u16, 0, 2];
        let w = [0u16, 0, 1];
        let perm = sort_permutation(&a);
        let sorted_a = apply(&perm, &a);
        let reordered_w = apply(&perm, &w);
        let col = lut.column_of(&sorted_a).unwrap();
        let row = pack_index(&reordered_w, 1);
        assert_eq!(lut.lookup(row, col), 2);
    }

    #[test]
    fn canonicalization_is_invariant_under_joint_permutation() {
        // The core §IV-A claim: for any permutation of (w, a) pairs, the
        // canonical lookup yields the same inner product.
        let wf = NumericFormat::Int(2);
        let af = NumericFormat::Int(3);
        let lut = CanonicalLut::<i32>::build(wf, af, 3, 1 << 22).unwrap();
        let w = [1u16, 3, 2]; // int2 decoded: 1, -1, -2
        let a = [3u16, 0, 6];
        let expect: i32 = dot_codes(wf, af, &w, &a);
        let perms: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for pi in perms {
            let wp: Vec<u16> = pi.iter().map(|&i| w[i]).collect();
            let ap: Vec<u16> = pi.iter().map(|&i| a[i]).collect();
            let sort = sort_permutation(&ap);
            let sorted_a = apply(&sort, &ap);
            let reordered_w = apply(&sort, &wp);
            let col = lut.column_of(&sorted_a).unwrap();
            let row = pack_index(&reordered_w, 2);
            assert_eq!(lut.lookup(row, col), expect, "perm {pi:?}");
        }
    }

    #[test]
    fn agrees_with_op_packed_lut_everywhere() {
        let wf = NumericFormat::Bipolar;
        let af = NumericFormat::Int(2);
        let p = 3;
        let op = OpPackedLut::<i32>::build(wf, af, p, 1 << 20).unwrap();
        let canon = CanonicalLut::<i32>::build(wf, af, p, 1 << 20).unwrap();
        // For every (row, col) of the op-packed LUT, sorting the activation
        // codes and reordering the weight codes identically must find the
        // same value in the canonical LUT.
        for col in 0..op.cols() {
            let a_codes = unpack_index(col, af.bits(), p);
            let sort = sort_permutation(&a_codes);
            let sorted_a = apply(&sort, &a_codes);
            let ccol = canon.column_of(&sorted_a).unwrap();
            for row in 0..op.rows() {
                let w_codes = unpack_index(row, wf.bits(), p);
                let reordered = apply(&sort, &w_codes);
                let crow = pack_index(&reordered, wf.bits());
                assert_eq!(op.lookup(row, col), canon.lookup(crow, ccol));
            }
        }
    }

    #[test]
    fn column_count_is_smaller_than_op_packed() {
        // Eq. 1: column reduction 2^(ba·p) → C(2^ba+p−1, p).
        let canon =
            CanonicalLut::<i32>::build(NumericFormat::Bipolar, NumericFormat::Int(3), 4, 1 << 22)
                .unwrap();
        assert_eq!(canon.cols(), 330); // C(11, 4)
        assert!(canon.cols() < (1u64 << 12));
        let reduction = (1u64 << 12) as f64 / canon.cols() as f64;
        assert!((reduction - 12.4).abs() < 0.05, "§IV-A: 12.4x at p=4");
    }

    #[test]
    fn column_slice_is_contiguous_row_indexed() {
        let lut =
            CanonicalLut::<i32>::build(NumericFormat::Uint(1), NumericFormat::Int(2), 2, 1 << 16)
                .unwrap();
        for col in 0..lut.cols() {
            let slice = lut.column_slice(col);
            assert_eq!(slice.len() as u64, lut.rows());
            for row in 0..lut.rows() {
                assert_eq!(slice[row as usize], lut.lookup(row, col));
            }
        }
    }

    #[test]
    fn budget_guard() {
        let err = CanonicalLut::<i32>::build(NumericFormat::Int(4), NumericFormat::Int(4), 4, 100)
            .unwrap_err();
        assert!(matches!(err, LocaLutError::BudgetExceeded { .. }));
    }
}
