//! Typed code-word packing shared by every LUT kernel arm.
//!
//! All LUT kernels consume operands group-by-group: `p` consecutive codes
//! along `K` form one packed index word (§III-A). [`PackedCodes`] is the
//! one materialization of that view — each `(group, lane)` cell carries the
//! group's codes bit-packed into a single `u64`, in the same little-endian
//! order [`crate::packed::pack_index`] produces, so an OP-kernel row/column
//! index *is* the stored word. The layout is **group-major**
//! (`words[group * lanes + lane]`): the blocked kernel loops walk all lanes
//! of one K-block as a contiguous slice ([`PackedCodes::group`]), which is
//! what makes the M-pass of a blocked tile a linear scan instead of a
//! `kblocks`-strided gather.
//!
//! [`GroupScratch`] is the companion for the canonicalized arms: resolving
//! an activation group means unpack → stable sort permutation → sorted
//! codes, three short vectors the naive loops re-allocated per group. The
//! scratch owns them once; `resolve` refills them in place so the hot path
//! never touches the allocator.

use crate::canonical::CanonicalLut;
use crate::perm::{apply_into, lehmer_rank, sort_permutation_into};
use crate::value::LutValue;
use crate::LocaLutError;
use quant::QMatrix;

/// Bit-packed per-group code words in group-major layout.
///
/// `words[group * lanes + lane]` holds the `p` codes of `lane`'s
/// `group`-th K-block, code `i` at bit offset `bits · i` — identical to
/// [`crate::packed::pack_index`] over the group's code slice. Lanes are
/// weight rows (`M`) or activation columns (`N`) depending on which
/// constructor built the table.
///
/// # Examples
///
/// ```
/// use localut::codes::PackedCodes;
/// use quant::{NumericFormat, QMatrix};
///
/// let w = QMatrix::pseudo_random(4, 10, NumericFormat::Int(2), 7);
/// let packed = PackedCodes::pack_weight_rows(&w, 3);
/// assert_eq!((packed.groups(), packed.lanes()), (4, 4));
/// // Group 1 of row 2 = codes (3, 4, 5) of that row, little-endian packed.
/// let expect = (0..3).fold(0u64, |acc, i| {
///     acc | u64::from(w.code_at(2, 3 + i)) << (2 * i as u32)
/// });
/// assert_eq!(packed.word(1, 2), expect);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedCodes {
    bits: u8,
    p: usize,
    groups: usize,
    lanes: usize,
    words: Vec<u64>,
}

impl PackedCodes {
    /// Packs every `(m, kb)` weight group of `w` in one pass: lane `m` of
    /// group `kb` equals `pack_index` over row `m`'s codes
    /// `[kb·p, kb·p + p)`, with positions past `K` contributing code 0
    /// (the activation pad is zero-valued, so any weight code there is
    /// inert — 0 keeps the index in range).
    ///
    /// # Panics
    ///
    /// Debug-asserts `bits · p ≤ 64`; every caller packs only after a LUT
    /// build whose materialization guard bounds the index width far below
    /// that.
    #[must_use]
    pub fn pack_weight_rows(w: &QMatrix, p: usize) -> Self {
        let bits = w.format().bits();
        debug_assert!(usize::from(bits) * p <= 64, "packed group exceeds u64");
        let lanes = w.rows();
        let groups = w.cols().div_ceil(p);
        let mut words = vec![0u64; groups * lanes];
        for m in 0..lanes {
            for (k, &code) in w.row(m).iter().enumerate() {
                words[(k / p) * lanes + m] |= u64::from(code) << (usize::from(bits) * (k % p));
            }
        }
        PackedCodes {
            bits,
            p,
            groups,
            lanes,
            words,
        }
    }

    /// Packs every `(kb, n)` activation group of `a` in one pass: lane `n`
    /// of group `kb` equals `pack_index` over column `n`'s codes
    /// `[kb·p, kb·p + p)`, with positions past `K` carrying `pad` (the
    /// format's zero code, resolved by the caller via
    /// `pad_code_for`).
    #[must_use]
    pub fn pack_activation_columns(a: &QMatrix, p: usize, pad: u16) -> Self {
        let bits = a.format().bits();
        debug_assert!(usize::from(bits) * p <= 64, "packed group exceeds u64");
        let lanes = a.cols();
        let groups = a.rows().div_ceil(p);
        let mut words = vec![0u64; groups * lanes];
        for k in 0..a.rows() {
            let shift = usize::from(bits) * (k % p);
            let row = &mut words[(k / p) * lanes..(k / p + 1) * lanes];
            for (word, &code) in row.iter_mut().zip(a.row(k)) {
                *word |= u64::from(code) << shift;
            }
        }
        let rem = a.rows() % p;
        if rem != 0 && pad != 0 {
            let tail = (rem..p).fold(0u64, |acc, i| {
                acc | u64::from(pad) << (usize::from(bits) * i)
            });
            for word in &mut words[(groups - 1) * lanes..] {
                *word |= tail;
            }
        }
        PackedCodes {
            bits,
            p,
            groups,
            lanes,
            words,
        }
    }

    /// Bits per code.
    #[must_use]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Codes per group (the packing degree `p`, or the LTC group size).
    #[must_use]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of K-blocks (`⌈K/p⌉`).
    #[must_use]
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Number of lanes (weight rows `M` or activation columns `N`).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// All lanes of one K-block as a contiguous slice — the blocked loops'
    /// linear M-pass.
    ///
    /// # Panics
    ///
    /// Panics when `group` is out of range.
    #[must_use]
    pub fn group(&self, group: usize) -> &[u64] {
        &self.words[group * self.lanes..(group + 1) * self.lanes]
    }

    /// One packed word.
    ///
    /// # Panics
    ///
    /// Panics when `group` or `lane` is out of range.
    #[must_use]
    pub fn word(&self, group: usize, lane: usize) -> u64 {
        assert!(lane < self.lanes, "lane out of range");
        self.words[group * self.lanes + lane]
    }

    /// Unpacks one group's codes into `out` (cleared first, capacity
    /// reused) — the inverse of the packing constructors.
    ///
    /// # Panics
    ///
    /// Panics when `group` or `lane` is out of range.
    pub fn unpack_into(&self, group: usize, lane: usize, out: &mut Vec<u16>) {
        let word = self.word(group, lane);
        let mask = (1u64 << self.bits) - 1;
        out.clear();
        out.extend((0..self.p).map(|i| ((word >> (usize::from(self.bits) * i)) & mask) as u16));
    }
}

/// Reused per-group resolution buffers for the canonicalized kernel arms.
///
/// One activation group resolves to `(codes, permutation, sorted codes)`;
/// the naive loops heap-allocated all three per group (`⌈K/p⌉ · N` times
/// per GEMM). A `GroupScratch` owns the three vectors once per kernel
/// invocation and [`GroupScratch::resolve`] refills them in place, so the
/// blocked inner loops are allocation-free (pinned by the
/// `alloc_smoke` integration test).
#[derive(Debug, Default)]
pub struct GroupScratch {
    acodes: Vec<u16>,
    perm: Vec<u8>,
    sorted: Vec<u16>,
}

impl GroupScratch {
    /// Fresh scratch with empty buffers (they size themselves on first
    /// resolve and are reused thereafter).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves activation group `(group, lane)` of `packed`: unpacks the
    /// codes, computes the stable sorting permutation, and applies it.
    /// Returns `(codes, perm, sorted)` borrowed from the scratch buffers.
    pub fn resolve(&mut self, packed: &PackedCodes, group: usize, lane: usize) -> GroupView<'_> {
        packed.unpack_into(group, lane, &mut self.acodes);
        sort_permutation_into(&self.acodes, &mut self.perm);
        apply_into(&self.perm, &self.acodes, &mut self.sorted);
        GroupView {
            codes: &self.acodes,
            perm: &self.perm,
            sorted: &self.sorted,
        }
    }
}

/// A shard-invariant resolution of one activation operand: its packed
/// groups plus each group's `(canonical column, permutation id)` pair.
///
/// Row-sharded banks of one GEMM all consume the same activation columns,
/// so the per-group unpack → sort → Lehmer-rank → multiset-rank work is
/// identical in every bank. The runtime executor resolves one panel per
/// activation column band and hands it to every bank in the band (via the
/// kernel trait's `resolve_panel` / `run_with_panel` hooks); the gathers a
/// bank then performs are bitwise identical to resolving locally.
#[derive(Debug, Clone)]
pub struct ActivationPanel {
    packed: PackedCodes,
    /// Group-major `(canonical column, permutation id)` per `(group, lane)`.
    pairs: Vec<(u64, u64)>,
}

impl ActivationPanel {
    /// Resolves every `(group, lane)` activation group of `a` against a
    /// canonical LUT: pack once, then per group compute the stable sorting
    /// permutation's Lehmer rank and the sorted codes' canonical column.
    ///
    /// # Errors
    ///
    /// Propagates Lehmer-rank or multiset-rank errors (unreachable for
    /// operands that already passed kernel validation).
    pub fn resolve<V: LutValue>(
        a: &QMatrix,
        p: usize,
        pad: u16,
        canonical: &CanonicalLut<V>,
    ) -> Result<Self, LocaLutError> {
        let packed = PackedCodes::pack_activation_columns(a, p, pad);
        let mut scratch = GroupScratch::new();
        let mut pairs = Vec::with_capacity(packed.groups() * packed.lanes());
        for group in 0..packed.groups() {
            for lane in 0..packed.lanes() {
                let view = scratch.resolve(&packed, group, lane);
                let perm_id = lehmer_rank(view.perm)?;
                let col = canonical.column_of(view.sorted)?;
                pairs.push((col, perm_id));
            }
        }
        Ok(ActivationPanel { packed, pairs })
    }

    /// The packed activation groups the pairs were resolved from.
    #[must_use]
    pub fn packed(&self) -> &PackedCodes {
        &self.packed
    }

    /// The `(canonical column, permutation id)` pair of one group.
    ///
    /// # Panics
    ///
    /// Panics when `group` or `lane` is out of range.
    #[must_use]
    pub fn pair(&self, group: usize, lane: usize) -> (u64, u64) {
        assert!(lane < self.packed.lanes(), "lane out of range");
        self.pairs[group * self.packed.lanes() + lane]
    }
}

/// A resolved activation group, borrowed from a [`GroupScratch`].
#[derive(Debug, Clone, Copy)]
pub struct GroupView<'a> {
    /// The group's codes in original order.
    pub codes: &'a [u16],
    /// The stable sorting permutation ([`crate::perm::sort_permutation`]).
    pub perm: &'a [u8],
    /// The codes in canonical (non-decreasing) order.
    pub sorted: &'a [u16],
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::pack_index;
    use crate::perm::{apply, sort_permutation};
    use quant::NumericFormat;

    /// Per-group extraction the packed tables must agree with.
    fn codes_of(codes: impl Iterator<Item = u16>, kb: usize, p: usize, pad: u16) -> Vec<u16> {
        let all: Vec<u16> = codes.collect();
        (0..p)
            .map(|i| all.get(kb * p + i).copied().unwrap_or(pad))
            .collect()
    }

    #[test]
    fn weight_rows_match_per_group_packing() {
        for (m, k, p, bits) in [(4usize, 11usize, 3usize, 2u8), (3, 12, 4, 1), (1, 5, 5, 3)] {
            let w = QMatrix::pseudo_random(m, k, NumericFormat::Int(bits), 99);
            let packed = PackedCodes::pack_weight_rows(&w, p);
            assert_eq!((packed.groups(), packed.lanes()), (k.div_ceil(p), m));
            for mm in 0..m {
                for kb in 0..packed.groups() {
                    let group = codes_of((0..k).map(|kk| w.code_at(mm, kk)), kb, p, 0);
                    assert_eq!(
                        packed.word(kb, mm),
                        pack_index(&group, bits),
                        "({mm}, {kb})"
                    );
                    assert_eq!(packed.group(kb)[mm], packed.word(kb, mm));
                }
            }
        }
    }

    #[test]
    fn activation_columns_match_per_group_packing_with_pad() {
        for (k, n, p, pad) in [(10usize, 3usize, 3usize, 5u16), (12, 2, 4, 0), (7, 4, 5, 2)] {
            let a = QMatrix::pseudo_random(k, n, NumericFormat::Int(3), 42);
            let packed = PackedCodes::pack_activation_columns(&a, p, pad);
            assert_eq!((packed.groups(), packed.lanes()), (k.div_ceil(p), n));
            for nn in 0..n {
                for kb in 0..packed.groups() {
                    let group = codes_of((0..k).map(|kk| a.code_at(kk, nn)), kb, p, pad);
                    assert_eq!(packed.word(kb, nn), pack_index(&group, 3), "({kb}, {nn})");
                }
            }
        }
    }

    #[test]
    fn unpack_roundtrips() {
        let a = QMatrix::pseudo_random(11, 3, NumericFormat::Int(2), 7);
        let packed = PackedCodes::pack_activation_columns(&a, 4, 1);
        let mut out = Vec::new();
        for kb in 0..packed.groups() {
            for nn in 0..packed.lanes() {
                packed.unpack_into(kb, nn, &mut out);
                let expect = codes_of((0..11).map(|kk| a.code_at(kk, nn)), kb, 4, 1);
                assert_eq!(out, expect);
            }
        }
    }

    #[test]
    fn activation_panel_matches_per_group_resolution() {
        use crate::canonical::CanonicalLut;
        use crate::perm::lehmer_rank;

        let wf = NumericFormat::Bipolar;
        let af = NumericFormat::Int(2);
        let p = 3;
        let canonical = CanonicalLut::<i32>::build(wf, af, p as u32, 1 << 20).unwrap();
        // K = 8 is ragged over p = 3: the last group carries one pad code.
        let a = QMatrix::pseudo_random(8, 4, af, 21);
        let pad = 1u16;
        let panel = ActivationPanel::resolve(&a, p, pad, &canonical).unwrap();
        assert_eq!(
            panel.packed(),
            &PackedCodes::pack_activation_columns(&a, p, pad)
        );
        let mut scratch = GroupScratch::new();
        for kb in 0..panel.packed().groups() {
            for nn in 0..panel.packed().lanes() {
                let view = scratch.resolve(panel.packed(), kb, nn);
                let expect = (
                    canonical.column_of(view.sorted).unwrap(),
                    lehmer_rank(view.perm).unwrap(),
                );
                assert_eq!(panel.pair(kb, nn), expect, "({kb}, {nn})");
            }
        }
    }

    #[test]
    fn scratch_resolution_matches_allocating_path() {
        let a = QMatrix::pseudo_random(13, 2, NumericFormat::Int(3), 3);
        let packed = PackedCodes::pack_activation_columns(&a, 5, 0);
        let mut scratch = GroupScratch::new();
        for kb in 0..packed.groups() {
            for nn in 0..packed.lanes() {
                let group = codes_of((0..13).map(|kk| a.code_at(kk, nn)), kb, 5, 0);
                let perm = sort_permutation(&group);
                let sorted = apply(&perm, &group);
                let view = scratch.resolve(&packed, kb, nn);
                assert_eq!(view.codes, &group[..]);
                assert_eq!(view.perm, &perm[..]);
                assert_eq!(view.sorted, &sorted[..]);
            }
        }
    }
}
