//! Sorting permutations and their dense ranking (Lehmer codes).
//!
//! Canonicalization sorts the activation vector; the weights must then be
//! reordered by the *same* permutation (§IV-A). The reordering LUT (§IV-B)
//! is indexed by a dense permutation id — the Lehmer (factorial number
//! system) rank implemented here — giving it exactly `p!` columns.

use crate::LocaLutError;

/// Factorial of `n` as `u64` (`None` on overflow; `20! < 2^63`).
#[must_use]
pub fn factorial(n: u32) -> Option<u64> {
    let mut acc: u64 = 1;
    for i in 2..=u64::from(n) {
        acc = acc.checked_mul(i)?;
    }
    Some(acc)
}

/// Computes the *stable* sorting permutation of `codes`: the returned
/// `perm` satisfies `codes[perm[i]] ≤ codes[perm[i+1]]`, with ties broken
/// by original position (stability makes the permutation id deterministic,
/// which the host and the reordering LUT must agree on).
///
/// Applying it as `sorted[i] = codes[perm[i]]` yields the canonical
/// (non-decreasing) activation vector.
#[must_use]
pub fn sort_permutation(codes: &[u16]) -> Vec<u8> {
    let mut perm = Vec::new();
    sort_permutation_into(codes, &mut perm);
    perm
}

/// Allocation-free variant of [`sort_permutation`]: writes the stable
/// sorting permutation into `perm` (cleared first, capacity reused). The
/// blocked kernel loops call this once per group with a scratch buffer, so
/// the hot path never allocates.
pub fn sort_permutation_into(codes: &[u16], perm: &mut Vec<u8>) {
    perm.clear();
    perm.extend(0..codes.len() as u8);
    perm.sort_by_key(|&i| (codes[usize::from(i)], i));
}

/// Applies a permutation: `out[i] = items[perm[i]]`.
///
/// # Panics
///
/// Panics when `perm` and `items` have different lengths or `perm` indexes
/// out of bounds.
#[must_use]
pub fn apply<T: Copy>(perm: &[u8], items: &[T]) -> Vec<T> {
    let mut out = Vec::new();
    apply_into(perm, items, &mut out);
    out
}

/// Allocation-free variant of [`apply`]: writes `items` permuted by `perm`
/// into `out` (cleared first, capacity reused).
///
/// # Panics
///
/// Panics when `perm` and `items` have different lengths or `perm` indexes
/// out of bounds.
pub fn apply_into<T: Copy>(perm: &[u8], items: &[T], out: &mut Vec<T>) {
    assert_eq!(perm.len(), items.len(), "permutation length mismatch");
    out.clear();
    out.extend(perm.iter().map(|&i| items[usize::from(i)]));
}

/// Lehmer rank of a permutation of `0..p`, a dense id in `0..p!`.
///
/// # Errors
///
/// [`LocaLutError::InvalidPackingDegree`] when `perm` is empty, longer than
/// 20, or not a permutation of `0..p`.
pub fn lehmer_rank(perm: &[u8]) -> Result<u64, LocaLutError> {
    let p = perm.len();
    if p == 0 || p > 20 {
        return Err(LocaLutError::InvalidPackingDegree(p as u32));
    }
    let mut seen = [false; 32];
    for &x in perm {
        if usize::from(x) >= p || seen[usize::from(x)] {
            return Err(LocaLutError::InvalidPackingDegree(p as u32));
        }
        seen[usize::from(x)] = true;
    }
    let mut rank: u64 = 0;
    for i in 0..p {
        let smaller = perm[i + 1..].iter().filter(|&&x| x < perm[i]).count() as u64;
        rank += smaller * factorial((p - 1 - i) as u32).expect("p <= 20");
    }
    Ok(rank)
}

/// Inverse of [`lehmer_rank`]: the permutation of `0..p` with the given id.
///
/// # Errors
///
/// [`LocaLutError::InvalidPackingDegree`] when `p` is 0, exceeds 20, or the
/// rank is out of range.
pub fn lehmer_unrank(mut rank: u64, p: u32) -> Result<Vec<u8>, LocaLutError> {
    if p == 0 || p > 20 {
        return Err(LocaLutError::InvalidPackingDegree(p));
    }
    let total = factorial(p).ok_or(LocaLutError::InvalidPackingDegree(p))?;
    if rank >= total {
        return Err(LocaLutError::InvalidPackingDegree(p));
    }
    let mut pool: Vec<u8> = (0..p as u8).collect();
    let mut out = Vec::with_capacity(p as usize);
    for i in (0..p).rev() {
        let f = factorial(i).expect("p <= 20");
        let idx = (rank / f) as usize;
        rank %= f;
        out.push(pool.remove(idx));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_values() {
        assert_eq!(factorial(0), Some(1));
        assert_eq!(factorial(1), Some(1));
        assert_eq!(factorial(5), Some(120));
        assert_eq!(factorial(8), Some(40320)); // reordering LUT columns at p=8
        assert_eq!(factorial(20), Some(2_432_902_008_176_640_000));
        assert_eq!(factorial(21), None);
    }

    #[test]
    fn sort_permutation_paper_example() {
        // Fig. 4: activations [3, 0, 2] sort to [0, 2, 3] via perm [1, 2, 0].
        let codes = [3u16, 0, 2];
        let perm = sort_permutation(&codes);
        assert_eq!(perm, vec![1, 2, 0]);
        let sorted = apply(&perm, &codes);
        assert_eq!(sorted, vec![0, 2, 3]);
        // Weights [0, 0, 1] reorder the same way to [0, 1, 0] (Fig. 4b).
        let weights = [0u16, 0, 1];
        assert_eq!(apply(&perm, &weights), vec![0, 1, 0]);
    }

    #[test]
    fn stable_sort_breaks_ties_by_position() {
        let codes = [5u16, 5, 1, 5];
        let perm = sort_permutation(&codes);
        assert_eq!(perm, vec![2, 0, 1, 3]);
    }

    #[test]
    fn lehmer_rank_unrank_exhaustive() {
        for p in 1..=5u32 {
            let total = factorial(p).unwrap();
            let mut seen = std::collections::HashSet::new();
            for r in 0..total {
                let perm = lehmer_unrank(r, p).unwrap();
                assert_eq!(lehmer_rank(&perm).unwrap(), r);
                assert!(seen.insert(perm));
            }
            assert_eq!(seen.len() as u64, total);
        }
    }

    #[test]
    fn identity_permutation_has_rank_zero() {
        let id: Vec<u8> = (0..6).collect();
        assert_eq!(lehmer_rank(&id).unwrap(), 0);
        assert_eq!(lehmer_unrank(0, 6).unwrap(), id);
    }

    #[test]
    fn reversed_permutation_has_max_rank() {
        let rev: Vec<u8> = (0..5).rev().collect();
        assert_eq!(lehmer_rank(&rev).unwrap(), factorial(5).unwrap() - 1);
    }

    #[test]
    fn lehmer_rejects_invalid() {
        assert!(lehmer_rank(&[]).is_err());
        assert!(lehmer_rank(&[0, 0]).is_err());
        assert!(lehmer_rank(&[0, 2]).is_err());
        assert!(lehmer_unrank(120, 5).is_err());
        assert!(lehmer_unrank(0, 0).is_err());
        assert!(lehmer_unrank(0, 21).is_err());
    }

    #[test]
    fn sorted_codes_have_identity_permutation() {
        let codes = [0u16, 1, 2, 3];
        assert_eq!(sort_permutation(&codes), vec![0, 1, 2, 3]);
        assert_eq!(lehmer_rank(&sort_permutation(&codes)).unwrap(), 0);
    }
}
