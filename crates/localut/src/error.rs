//! Error type for the LoCaLUT core crate.

use core::fmt;
use pim_sim::SimError;
use quant::QuantError;

/// Errors produced by LUT construction, planning, and kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub enum LocaLutError {
    /// A packing degree of zero (or otherwise unusable) was requested.
    InvalidPackingDegree(u32),
    /// The packed index space exceeds what the implementation addresses
    /// (`bits * p` must stay ≤ 48).
    IndexSpaceTooWide {
        /// Bits per element.
        bits: u8,
        /// Packing degree.
        p: u32,
    },
    /// A LUT would exceed the given capacity budget in bytes.
    BudgetExceeded {
        /// Bytes the LUT needs.
        required: u128,
        /// Bytes available.
        budget: u64,
    },
    /// The operands' shapes are incompatible (`W.cols != A.rows`).
    DimensionMismatch {
        /// `K` according to the weight matrix.
        w_k: usize,
        /// `K` according to the activation matrix.
        a_k: usize,
    },
    /// A shard plan was built for different GEMM dimensions than the
    /// operands it was executed with.
    ShardPlanMismatch {
        /// Dimensions the plan was built for.
        plan: crate::gemm::GemmDims,
        /// Dimensions of the operands.
        operands: crate::gemm::GemmDims,
    },
    /// `K` is not divisible by `p` and the activation format has no exact
    /// zero code to pad with.
    UnpaddableRemainder {
        /// The remainder `K % p`.
        remainder: usize,
    },
    /// A kernel was asked to run on a floating-point format it does not
    /// support.
    UnsupportedFormat(&'static str),
    /// An underlying simulator error (WRAM/bank exhaustion).
    Sim(SimError),
    /// An underlying quantization error.
    Quant(QuantError),
}

impl fmt::Display for LocaLutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocaLutError::InvalidPackingDegree(p) => write!(f, "invalid packing degree {p}"),
            LocaLutError::IndexSpaceTooWide { bits, p } => {
                write!(
                    f,
                    "packed index space too wide: {bits} bits x p={p} exceeds 48 bits"
                )
            }
            LocaLutError::BudgetExceeded { required, budget } => {
                write!(
                    f,
                    "lut of {required} bytes exceeds budget of {budget} bytes"
                )
            }
            LocaLutError::DimensionMismatch { w_k, a_k } => {
                write!(
                    f,
                    "dimension mismatch: weight K={w_k} vs activation K={a_k}"
                )
            }
            LocaLutError::ShardPlanMismatch { plan, operands } => {
                write!(
                    f,
                    "shard plan built for dims {plan} but executed with operands of dims {operands}"
                )
            }
            LocaLutError::UnpaddableRemainder { remainder } => {
                write!(
                    f,
                    "cannot pad K remainder of {remainder}: activation format has no zero code"
                )
            }
            LocaLutError::UnsupportedFormat(what) => {
                write!(f, "unsupported numeric format for this kernel: {what}")
            }
            LocaLutError::Sim(e) => write!(f, "simulator error: {e}"),
            LocaLutError::Quant(e) => write!(f, "quantization error: {e}"),
        }
    }
}

impl std::error::Error for LocaLutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LocaLutError::Sim(e) => Some(e),
            LocaLutError::Quant(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for LocaLutError {
    fn from(e: SimError) -> Self {
        LocaLutError::Sim(e)
    }
}

impl From<QuantError> for LocaLutError {
    fn from(e: QuantError) -> Self {
        LocaLutError::Quant(e)
    }
}
