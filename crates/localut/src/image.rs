//! LUT images: the byte-exact serialized form of a LUT as it would be
//! broadcast to the DPU banks at initialization (§V-A: "the LUT is
//! constructed according to the parameters and is broadcast to all banks").
//!
//! Images use the minimal entry widths the capacity model accounts
//! (`capacity::entry_bytes` for canonical entries,
//! `capacity::reorder_entry_bytes` for reordering entries), so
//! `image.len()` equals the closed-form footprint *exactly* — a strong
//! consistency check between the functional structures and the planner's
//! byte arithmetic, asserted in the tests. Integer entries outside the
//! symmetric range saturate, matching the hardware semantics documented in
//! [`crate::capacity::entry_bytes`].

use crate::canonical::CanonicalLut;
use crate::capacity::{entry_bytes, reorder_entry_bytes};
use crate::reorder::ReorderLut;

/// Serializes an `i32` entry into `width` bytes (1, 2 or 4), saturating.
fn push_int(out: &mut Vec<u8>, value: i32, width: u64) {
    match width {
        1 => out.push((value.clamp(-128, 127) as i8) as u8),
        2 => out.extend_from_slice(&(value.clamp(-32768, 32767) as i16).to_le_bytes()),
        _ => out.extend_from_slice(&value.to_le_bytes()),
    }
}

/// Serializes an unsigned packed row into `width` little-endian bytes.
fn push_uint(out: &mut Vec<u8>, value: u64, width: u64) {
    out.extend_from_slice(&value.to_le_bytes()[..width as usize]);
}

impl CanonicalLut<i32> {
    /// The bank image of this LUT: entries column-major at the minimal
    /// integer width, little-endian. `len()` equals
    /// [`crate::capacity::canonical_lut_bytes`] exactly.
    #[must_use]
    pub fn image_bytes(&self) -> Vec<u8> {
        let width = entry_bytes(self.weight_format(), self.activation_format(), self.p());
        let mut out = Vec::with_capacity((self.entry_count() * width) as usize);
        for col in 0..self.cols() {
            for &entry in self.column_slice(col) {
                push_int(&mut out, entry, width);
            }
        }
        out
    }
}

impl CanonicalLut<f32> {
    /// The bank image of a float LUT: entries column-major as IEEE half
    /// precision (2 bytes, the width the capacity model accounts for float
    /// entries), little-endian, round-to-nearest with saturation.
    #[must_use]
    pub fn image_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity((self.entry_count() * 2) as usize);
        for col in 0..self.cols() {
            for &entry in self.column_slice(col) {
                out.extend_from_slice(&f32_to_f16_bits(entry).to_le_bytes());
            }
        }
        out
    }
}

impl ReorderLut {
    /// The bank image of this LUT: packed reordered rows column-major at
    /// `ceil(bw·p/8)` bytes, little-endian. `len()` equals
    /// [`crate::capacity::reorder_lut_bytes`] exactly.
    #[must_use]
    pub fn image_bytes(&self) -> Vec<u8> {
        let width = reorder_entry_bytes(self.bits(), self.p());
        let mut out = Vec::with_capacity((self.entry_count() * width) as usize);
        for perm_id in 0..self.cols() {
            for &entry in self.column_slice(perm_id) {
                push_uint(&mut out, entry, width);
            }
        }
        out
    }
}

/// f32 → IEEE half bits, round-to-nearest-even, saturating to ±65504.
#[must_use]
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;
    if exp == 0xFF || x.abs() > 65504.0 {
        // NaN/inf/overflow saturate to max magnitude (LUT entries are
        // always finite).
        return sign | 0x7BFF;
    }
    let e16 = exp - 127 + 15;
    if e16 >= 31 {
        return sign | 0x7BFF;
    }
    if e16 <= 0 {
        // Subnormal or zero.
        if e16 < -10 {
            return sign;
        }
        let man_full = man | 0x0080_0000;
        let shift = (14 - e16) as u32;
        let sub = man_full >> shift;
        let round = (man_full >> (shift - 1)) & 1;
        return sign | ((sub + round) as u16);
    }
    let half_man = (man >> 13) as u16;
    let round = (man >> 12) & 1;
    sign | ((((e16 as u16) << 10) | half_man) + round as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::{canonical_lut_bytes, reorder_lut_bytes};
    use quant::NumericFormat;

    const W1: NumericFormat = NumericFormat::Bipolar;
    const A3: NumericFormat = NumericFormat::Int(3);

    #[test]
    fn canonical_image_length_matches_capacity_formula() {
        for p in [2u32, 3, 5] {
            let lut = CanonicalLut::<i32>::build(W1, A3, p, 1 << 24).unwrap();
            let image = lut.image_bytes();
            assert_eq!(
                image.len() as u128,
                canonical_lut_bytes(W1, A3, p).unwrap(),
                "p={p}"
            );
        }
        // A config needing 2-byte entries.
        let f4 = NumericFormat::Int(4);
        let lut = CanonicalLut::<i32>::build(f4, f4, 3, 1 << 24).unwrap();
        assert_eq!(
            lut.image_bytes().len() as u128,
            canonical_lut_bytes(f4, f4, 3).unwrap()
        );
    }

    #[test]
    fn reorder_image_length_matches_capacity_formula() {
        for (bits, p) in [(1u8, 5u32), (2, 4), (4, 3)] {
            let lut = ReorderLut::build(bits, p, 1 << 24).unwrap();
            assert_eq!(
                lut.image_bytes().len() as u128,
                reorder_lut_bytes(NumericFormat::default_int(bits), p).unwrap(),
                "bits={bits} p={p}"
            );
        }
    }

    #[test]
    fn canonical_image_decodes_back_to_entries() {
        let lut = CanonicalLut::<i32>::build(W1, A3, 3, 1 << 20).unwrap();
        let image = lut.image_bytes(); // 1-byte entries for W1A3 p=3
        let mut idx = 0usize;
        for col in 0..lut.cols() {
            for row in 0..lut.rows() {
                let decoded = i32::from(image[idx] as i8);
                assert_eq!(decoded, lut.lookup(row, col));
                idx += 1;
            }
        }
    }

    #[test]
    fn float_image_is_two_bytes_per_entry_and_roundtrips() {
        let f = NumericFormat::Fp4;
        let lut = CanonicalLut::<f32>::build(f, f, 2, 1 << 20).unwrap();
        let image = lut.image_bytes();
        assert_eq!(image.len() as u64, lut.entry_count() * 2);
        // FP4 products are exactly representable in half precision.
        let first = u16::from_le_bytes([image[0], image[1]]);
        assert_eq!(
            NumericFormat::Fp16.decode_f32(u32::from(first)),
            lut.lookup(0, 0)
        );
    }

    #[test]
    fn f16_conversion_known_values() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF);
        assert_eq!(f32_to_f16_bits(1e30), 0x7BFF); // saturates
        assert_eq!(f32_to_f16_bits(f32::NAN) & 0x7FFF, 0x7BFF);
        // Roundtrip across a spread of values within half range.
        for i in -40..40 {
            let x = i as f32 * 3.25;
            let back = NumericFormat::Fp16.decode_f32(u32::from(f32_to_f16_bits(x)));
            assert!((back - x).abs() <= 0.01 * x.abs().max(1.0), "{x} -> {back}");
        }
    }

    #[test]
    fn int_saturation_in_images() {
        let mut out = Vec::new();
        push_int(&mut out, 300, 1);
        push_int(&mut out, -300, 1);
        assert_eq!(out[0] as i8, 127);
        assert_eq!(out[1] as i8, -128);
    }
}
