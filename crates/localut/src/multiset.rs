//! Multiset ranking: the combinatorics behind LUT canonicalization (§IV-A).
//!
//! A canonical LUT column is identified by a *multiset* of `p` activation
//! codes (the sorted activation vector). There are `C(n + p − 1, p)` such
//! multisets over `n = 2^ba` codes (Eq. 1), and the canonical LUT needs a
//! bijection between sorted code vectors and dense column indices —
//! provided here by the combinatorial number system:
//!
//! A non-decreasing vector `a_0 ≤ a_1 ≤ … ≤ a_{p−1}` maps to the strictly
//! increasing vector `b_i = a_i + i`, which is a `p`-combination of
//! `{0, …, n+p−2}`. Its colexicographic rank `Σ_i C(b_i, i+1)` is the
//! column index.

use crate::LocaLutError;

/// Exact binomial coefficient `C(n, k)` as `u128`, `None` on overflow.
#[must_use]
pub fn binomial(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.checked_mul(u128::from(n - i))?;
        acc /= u128::from(i + 1);
    }
    Some(acc)
}

/// Number of multisets of size `p` over `n` symbols: `C(n + p − 1, p)`
/// (Eq. 1's count of canonical-LUT columns), `None` on overflow.
#[must_use]
pub fn multiset_count(n: u64, p: u32) -> Option<u128> {
    if n == 0 {
        return Some(u128::from(p == 0));
    }
    binomial(n + u64::from(p) - 1, u64::from(p))
}

/// Ranks a *sorted non-decreasing* vector of codes (each `< n`) to its
/// dense multiset index in `0..multiset_count(n, p)`.
///
/// # Examples
///
/// ```
/// use localut::multiset::{rank, unrank, multiset_count};
///
/// // The 120 canonical columns of a W?A3 LUT at p = 3 (Eq. 1):
/// assert_eq!(multiset_count(8, 3), Some(120));
/// let r = rank(&[0, 2, 3], 8)?; // the sorted form of Fig. 4's [3, 0, 2]
/// assert_eq!(unrank(r, 8, 3)?, vec![0, 2, 3]);
/// # Ok::<(), localut::LocaLutError>(())
/// ```
///
/// # Errors
///
/// [`LocaLutError::InvalidPackingDegree`] on an empty vector, and
/// [`LocaLutError::IndexSpaceTooWide`] if a code is `≥ n` or the vector is
/// not sorted (the canonical form is violated).
pub fn rank(sorted_codes: &[u16], n: u64) -> Result<u64, LocaLutError> {
    if sorted_codes.is_empty() {
        return Err(LocaLutError::InvalidPackingDegree(0));
    }
    let mut r: u128 = 0;
    let mut prev = 0u16;
    for (i, &code) in sorted_codes.iter().enumerate() {
        if u64::from(code) >= n || code < prev {
            return Err(LocaLutError::IndexSpaceTooWide {
                bits: 0,
                p: sorted_codes.len() as u32,
            });
        }
        prev = code;
        let b = u64::from(code) + i as u64;
        r += binomial(b, i as u64 + 1).unwrap_or(u128::MAX);
    }
    u64::try_from(r).map_err(|_| LocaLutError::IndexSpaceTooWide {
        bits: 0,
        p: sorted_codes.len() as u32,
    })
}

/// Inverse of [`rank`]: recovers the sorted code vector of length `p` over
/// `n` symbols from its dense index.
///
/// # Errors
///
/// [`LocaLutError::InvalidPackingDegree`] when `p == 0` or the rank is out
/// of range.
pub fn unrank(mut r: u64, n: u64, p: u32) -> Result<Vec<u16>, LocaLutError> {
    if p == 0 {
        return Err(LocaLutError::InvalidPackingDegree(0));
    }
    let total = multiset_count(n, p).ok_or(LocaLutError::InvalidPackingDegree(p))?;
    if u128::from(r) >= total {
        return Err(LocaLutError::InvalidPackingDegree(p));
    }
    let mut out = vec![0u16; p as usize];
    // Greedy colex unranking from the highest position down.
    for i in (0..p as usize).rev() {
        // Find the largest b with C(b, i+1) <= r.
        let mut b = i as u64; // smallest valid b gives C(b, i+1) = 1 when b == i... C(i, i+1)=0
        let mut best = b;
        // Upper bound for b is n + p - 2.
        let hi = n + u64::from(p) - 2;
        // Binary search over b in [i, hi].
        let mut lo = i as u64;
        let mut high = hi;
        while lo <= high {
            b = lo + (high - lo) / 2;
            let c = binomial(b, i as u64 + 1).unwrap_or(u128::MAX);
            if c <= u128::from(r) {
                best = b;
                lo = b + 1;
            } else {
                if b == 0 {
                    break;
                }
                high = b - 1;
            }
        }
        let c = binomial(best, i as u64 + 1).unwrap_or(u128::MAX);
        r -= u64::try_from(c).unwrap_or(u64::MAX);
        out[i] = u16::try_from(best - i as u64)
            .map_err(|_| LocaLutError::IndexSpaceTooWide { bits: 0, p })?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(5, 2), Some(10));
        assert_eq!(binomial(0, 0), Some(1));
        assert_eq!(binomial(3, 5), Some(0));
        assert_eq!(binomial(15, 8), Some(6435));
        assert_eq!(binomial(52, 5), Some(2_598_960));
    }

    #[test]
    fn multiset_count_matches_paper_eq1() {
        // W1A3, p=3: canonical columns = C(8+3-1, 3) = C(10,3) = 120
        // (Fig. 4 example: 2^9 = 512 columns collapse to 2^3 H 3).
        assert_eq!(multiset_count(8, 3), Some(120));
        // p=8: C(15,8) = 6435 (the p_DRAM=8 design point).
        assert_eq!(multiset_count(8, 8), Some(6435));
        // ba=3 reduction rates from §IV-A: 2^(3p) / count.
        let red4 = 2f64.powi(12) / multiset_count(8, 4).unwrap() as f64;
        assert!((red4 - 12.4).abs() < 0.05, "p=4 reduction {red4}");
        let red7 = 2f64.powi(21) / multiset_count(8, 7).unwrap() as f64;
        assert!((red7 - 611.1).abs() < 0.5, "p=7 reduction {red7}");
    }

    #[test]
    fn rank_unrank_exhaustive_small() {
        for (n, p) in [(2u64, 3u32), (4, 2), (8, 3), (3, 4)] {
            let total = multiset_count(n, p).unwrap() as u64;
            let mut seen = std::collections::HashSet::new();
            for r in 0..total {
                let codes = unrank(r, n, p).unwrap();
                assert_eq!(codes.len(), p as usize);
                assert!(
                    codes.windows(2).all(|w| w[0] <= w[1]),
                    "not sorted: {codes:?}"
                );
                assert!(codes.iter().all(|&c| u64::from(c) < n));
                assert_eq!(
                    rank(&codes, n).unwrap(),
                    r,
                    "roundtrip failed for {codes:?}"
                );
                assert!(seen.insert(codes), "duplicate multiset at rank {r}");
            }
            assert_eq!(seen.len() as u64, total);
        }
    }

    #[test]
    fn rank_rejects_unsorted_and_out_of_range() {
        assert!(rank(&[2, 1], 8).is_err());
        assert!(rank(&[0, 8], 8).is_err());
        assert!(rank(&[], 8).is_err());
        assert!(rank(&[0, 0, 7], 8).is_ok());
    }

    #[test]
    fn unrank_rejects_out_of_range() {
        let total = multiset_count(8, 3).unwrap() as u64;
        assert!(unrank(total, 8, 3).is_err());
        assert!(unrank(0, 8, 0).is_err());
        assert!(unrank(total - 1, 8, 3).is_ok());
    }

    #[test]
    fn rank_zero_is_all_zero_vector() {
        assert_eq!(unrank(0, 8, 5).unwrap(), vec![0, 0, 0, 0, 0]);
        assert_eq!(rank(&[0, 0, 0, 0, 0], 8).unwrap(), 0);
    }

    #[test]
    fn rank_max_is_all_max_vector() {
        let total = multiset_count(8, 4).unwrap() as u64;
        assert_eq!(unrank(total - 1, 8, 4).unwrap(), vec![7, 7, 7, 7]);
    }

    #[test]
    fn large_spaces_do_not_overflow() {
        // fp16 activations, p=4: astronomically many multisets, still exact.
        let c = multiset_count(1 << 16, 4).unwrap();
        assert!(c > 1u128 << 56);
        let codes = vec![0u16, 100, 30000, 65535];
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        let r = rank(&sorted, 1 << 16).unwrap();
        assert_eq!(unrank(r, 1 << 16, 4).unwrap(), sorted);
    }
}
