//! GEMM dimensions, the reference implementation, the method taxonomy of
//! the evaluation (§VI-A), and the top-level dispatcher.

use crate::kernels::{BankKernel, LcKernel, LtcKernel, NaiveKernel, OpKernel, RcKernel};
use crate::plan::Planner;
use crate::value::LutValue;
use crate::LocaLutError;
use pim_sim::{DpuConfig, Profile};
use quant::{NumericFormat, QMatrix};

/// Dimensions of `W (M×K) × A (K×N) = O (M×N)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmDims {
    /// Weight rows (output rows).
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Activation columns (output columns).
    pub n: usize,
}

impl GemmDims {
    /// Derives dimensions from operand matrices.
    ///
    /// # Errors
    ///
    /// [`LocaLutError::DimensionMismatch`] when `W.cols != A.rows`.
    pub fn of(w: &QMatrix, a: &QMatrix) -> Result<Self, LocaLutError> {
        if w.cols() != a.rows() {
            return Err(LocaLutError::DimensionMismatch {
                w_k: w.cols(),
                a_k: a.rows(),
            });
        }
        Ok(GemmDims {
            m: w.rows(),
            k: w.cols(),
            n: a.cols(),
        })
    }

    /// Total multiply-accumulates, `M·K·N`.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }

    /// Bytes of the bit-packed weight matrix.
    #[must_use]
    pub fn weight_bytes(&self, bw: u8) -> u64 {
        (self.m as u64 * self.k as u64 * u64::from(bw)).div_ceil(8)
    }

    /// Bytes of the bit-packed activation matrix.
    #[must_use]
    pub fn activation_bytes(&self, ba: u8) -> u64 {
        (self.k as u64 * self.n as u64 * u64::from(ba)).div_ceil(8)
    }

    /// Bytes of the (i32) output matrix.
    #[must_use]
    pub fn output_bytes(&self) -> u64 {
        self.m as u64 * self.n as u64 * 4
    }
}

impl core::fmt::Display for GemmDims {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({}, {}, {})", self.m, self.k, self.n)
    }
}

/// Reference GEMM over decoded codes — the ground truth every kernel must
/// reproduce exactly (integer formats) or approximately (float formats).
///
/// # Errors
///
/// [`LocaLutError::DimensionMismatch`] on incompatible shapes.
pub fn reference_gemm<V: LutValue>(w: &QMatrix, a: &QMatrix) -> Result<Vec<V>, LocaLutError> {
    let dims = GemmDims::of(w, a)?;
    let (wf, af) = (w.format(), a.format());
    let mut out = vec![V::default(); dims.m * dims.n];
    for m in 0..dims.m {
        for n in 0..dims.n {
            let mut acc = V::default();
            for k in 0..dims.k {
                let wv = V::decode(wf, u32::from(w.code_at(m, k)));
                let av = V::decode(af, u32::from(a.code_at(k, n)));
                acc += wv.mul(av);
            }
            out[m * dims.n + n] = acc;
        }
    }
    Ok(out)
}

/// The six execution methods of the paper's evaluation (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Conventional PIM: int8 MAC units on the DPU (no LUTs).
    NaivePim,
    /// LUT Tensor Core adapted to PIM: bit-serial activation-group LUTs
    /// generated at runtime.
    Ltc,
    /// Buffer-resident operation-packed LUT (the "OP" design point).
    Op,
    /// OP + LUT canonicalization, with software weight reordering ("OP+LC").
    OpLc,
    /// OP + LC + reordering LUT, buffer-resident ("OP+LC+RC").
    OpLcRc,
    /// The full design: OP + LC + RC + LUT slice streaming with automatic
    /// placement ("LoCaLUT").
    LoCaLut,
}

impl Method {
    /// All methods in the paper's presentation order.
    pub const ALL: [Method; 6] = [
        Method::NaivePim,
        Method::Ltc,
        Method::Op,
        Method::OpLc,
        Method::OpLcRc,
        Method::LoCaLut,
    ];

    /// The figure label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Method::NaivePim => "Naive PIM",
            Method::Ltc => "LTC (PIM)",
            Method::Op => "OP",
            Method::OpLc => "OP+LC",
            Method::OpLcRc => "OP+LC+RC",
            Method::LoCaLut => "LoCaLUT",
        }
    }

    /// The canonical machine-readable token (`naive`, `ltc`, `op`,
    /// `oplc`, `oplcrc`, `localut`) — what CLI flags and wire encodings
    /// carry; the inverse of [`Method::from_str`](core::str::FromStr).
    #[must_use]
    pub fn flag_name(self) -> &'static str {
        match self {
            Method::NaivePim => "naive",
            Method::Ltc => "ltc",
            Method::Op => "op",
            Method::OpLc => "oplc",
            Method::OpLcRc => "oplcrc",
            Method::LoCaLut => "localut",
        }
    }
}

impl core::str::FromStr for Method {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Method::ALL
            .into_iter()
            .find(|m| m.flag_name() == s)
            .ok_or_else(|| format!("unknown method '{s}' (naive|ltc|op|oplc|oplcrc|localut)"))
    }
}

impl core::fmt::Display for Method {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Output of a kernel execution: exact values plus the simulated profile.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmResult {
    /// Row-major `M×N` integer outputs.
    pub values: Vec<i32>,
    /// Dimensions.
    pub dims: GemmDims,
    /// Per-DPU simulated time/event profile.
    pub profile: Profile,
}

/// Top-level configuration binding methods to a DPU and a slice count.
#[derive(Debug, Clone)]
pub struct GemmConfig {
    /// The DPU the kernel runs on.
    pub dpu: DpuConfig,
    /// Number of LUT slices co-resident in WRAM (`k` of §IV-C / Fig. 13).
    pub k_slices: u32,
}

impl GemmConfig {
    /// UPMEM configuration with the paper's default of `k = 2` slices.
    #[must_use]
    pub fn upmem() -> Self {
        GemmConfig {
            dpu: DpuConfig::upmem(),
            k_slices: 2,
        }
    }

    /// Runs `method` functionally on quantized operands, returning exact
    /// outputs and the simulated profile.
    ///
    /// Construction and dispatch both go through [`BankKernel`]: the
    /// method-to-kernel match lives in [`BankKernel::build`] and the
    /// execution is one [`crate::kernels::LutKernel`] trait call.
    ///
    /// # Errors
    ///
    /// Shape/format/budget errors from the kernel (see [`LocaLutError`]).
    pub fn run(
        &self,
        method: Method,
        w: &QMatrix,
        a: &QMatrix,
    ) -> Result<GemmResult, LocaLutError> {
        let dims = GemmDims::of(w, a)?;
        BankKernel::build(self, method, w.format(), a.format(), dims)?.run(w, a)
    }

    /// Analytic cost twin of [`GemmConfig::run`]: the profile for `dims`
    /// without touching data (used by the end-to-end model sweeps).
    ///
    /// # Errors
    ///
    /// Budget errors when no feasible LUT configuration exists.
    pub fn cost(
        &self,
        method: Method,
        dims: GemmDims,
        wf: NumericFormat,
        af: NumericFormat,
    ) -> Result<Profile, LocaLutError> {
        match method {
            Method::NaivePim => Ok(NaiveKernel::new(self.dpu.clone(), wf, af).cost(dims)),
            Method::Ltc => Ok(LtcKernel::new(self.dpu.clone(), wf, af).cost(dims)),
            Method::Op => Ok(OpKernel::auto(self.dpu.clone(), wf, af)?.cost(dims)),
            Method::OpLc => Ok(LcKernel::auto(self.dpu.clone(), wf, af)?.cost(dims)),
            Method::OpLcRc => Ok(RcKernel::auto(self.dpu.clone(), wf, af)?.cost(dims)),
            Method::LoCaLut => {
                let planner = Planner::new(self.dpu.clone());
                let plan = planner.plan(dims, wf, af, Some(self.k_slices))?;
                Ok(plan.cost(&self.dpu, dims))
            }
        }
    }

    /// Like [`GemmConfig::cost`], but LoCaLUT plans by **measured** kernel
    /// cost ([`Planner::plan_measured`]) instead of the fixed-`k` closed
    /// form — the per-phase planning path decode-skinny GEMMs use, where
    /// the closed form's `n`-cancellation no longer holds. Every other
    /// method is planner-free and costs identically to [`GemmConfig::cost`].
    ///
    /// # Errors
    ///
    /// Budget errors when no feasible LUT configuration exists.
    pub fn cost_measured(
        &self,
        method: Method,
        dims: GemmDims,
        wf: NumericFormat,
        af: NumericFormat,
    ) -> Result<Profile, LocaLutError> {
        match method {
            Method::LoCaLut => {
                let planner = Planner::new(self.dpu.clone());
                let plan = planner.plan_measured(dims, wf, af)?;
                Ok(plan.cost(&self.dpu, dims))
            }
            other => self.cost(other, dims, wf, af),
        }
    }
}

impl Default for GemmConfig {
    fn default() -> Self {
        Self::upmem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quant::Quantizer;

    fn tiny_operands() -> (QMatrix, QMatrix) {
        let wq = Quantizer::symmetric(NumericFormat::Int(2));
        let aq = Quantizer::symmetric(NumericFormat::Int(3));
        let w = wq
            .quantize_matrix(&[1.0, -1.0, 0.5, -0.5, 1.0, 0.0], 2, 3)
            .unwrap();
        let a = aq
            .quantize_matrix(&[3.0, -3.0, 1.0, 0.0, -2.0, 2.0], 3, 2)
            .unwrap();
        (w, a)
    }

    #[test]
    fn method_flag_names_roundtrip() {
        for method in Method::ALL {
            assert_eq!(method.flag_name().parse::<Method>().unwrap(), method);
        }
        assert!("turbo".parse::<Method>().is_err());
    }

    #[test]
    fn dims_of_validates() {
        let (w, a) = tiny_operands();
        let d = GemmDims::of(&w, &a).unwrap();
        assert_eq!((d.m, d.k, d.n), (2, 3, 2));
        let err = GemmDims::of(&a, &a).unwrap_err();
        assert!(matches!(err, LocaLutError::DimensionMismatch { .. }));
    }

    #[test]
    fn byte_accounting() {
        let d = GemmDims { m: 4, k: 6, n: 2 };
        assert_eq!(d.macs(), 48);
        assert_eq!(d.weight_bytes(1), 3); // 24 bits
        assert_eq!(d.activation_bytes(3), 5); // 36 bits
        assert_eq!(d.output_bytes(), 32);
    }

    #[test]
    fn reference_gemm_known_values() {
        let (w, a) = tiny_operands();
        let out: Vec<i32> = reference_gemm(&w, &a).unwrap();
        // Verify one element by hand.
        let mut expect = 0i32;
        for k in 0..3 {
            expect += w.value_at(0, k).unwrap() * a.value_at(k, 0).unwrap();
        }
        assert_eq!(out[0], expect);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn method_labels_cover_all() {
        assert_eq!(Method::ALL.len(), 6);
        for m in Method::ALL {
            assert!(!m.label().is_empty());
        }
        assert_eq!(Method::LoCaLut.to_string(), "LoCaLUT");
    }

    #[test]
    fn all_methods_match_reference_on_tiny_input() {
        let (w, a) = tiny_operands();
        let reference: Vec<i32> = reference_gemm(&w, &a).unwrap();
        let cfg = GemmConfig::upmem();
        for method in Method::ALL {
            let result = cfg.run(method, &w, &a).unwrap();
            assert_eq!(result.values, reference, "{method} diverged");
            assert!(result.profile.total_seconds() > 0.0, "{method} free?");
        }
    }
}
