//! Capacity accounting (§III-A sizing, Fig. 6, and the §V-A budget fits).
//!
//! These are the closed-form byte footprints of the three LUT families; the
//! planner uses them to find the largest packing degree fitting a budget
//! without materializing anything:
//!
//! * operation-packed LUT: `bo · 2^((bw+ba)·p)` bytes,
//! * canonical LUT: `bo · 2^(bw·p) · C(2^ba + p − 1, p)` bytes,
//! * reordering LUT: `ceil(bw·p/8) · 2^(bw·p) · p!` bytes,
//!
//! with `bo` the smallest integer width that can hold any packed inner
//! product (1, 2 or 4 bytes for integer formats; 2 bytes — fp16 storage —
//! for floating-point entries).
//!
//! §V-A's calibration points are unit-tested here: at W1A3 with half the
//! 64 KB WRAM / 64 MB bank budgeted for LUTs, `p_local = 5` and
//! `p_DRAM = 8` with canonicalization, degrading to 3 and 6 without.

use crate::multiset::multiset_count;
use crate::perm::factorial;
use quant::NumericFormat;

/// Smallest entry width in bytes able to hold any inner product of `p`
/// pairs within the *symmetric quantization range* (`±(2^(b−1)−1)` for
/// `Int(b)` — the quantizer never emits the asymmetric minimum code, and
/// entries for it saturate in hardware). Float entries store fp16, 2 bytes.
#[must_use]
pub fn entry_bytes(wf: NumericFormat, af: NumericFormat, p: u32) -> u64 {
    if wf.is_integer() && af.is_integer() {
        let max_dot = f64::from(p) * f64::from(wf.quant_max()) * f64::from(af.quant_max());
        if max_dot <= 127.0 {
            1
        } else if max_dot <= 32767.0 {
            2
        } else {
            4
        }
    } else {
        2
    }
}

/// Bytes per reordering-LUT entry: the packed weight row, `ceil(bw·p/8)`.
#[must_use]
pub fn reorder_entry_bytes(bw: u8, p: u32) -> u64 {
    u64::from(u32::from(bw) * p).div_ceil(8)
}

/// Footprint of the operation-packed LUT in bytes (`None` on overflow —
/// i.e. "does not fit anywhere").
#[must_use]
pub fn op_lut_bytes(wf: NumericFormat, af: NumericFormat, p: u32) -> Option<u128> {
    let shift = (u32::from(wf.bits()) + u32::from(af.bits())).checked_mul(p)?;
    if shift >= 120 {
        return None;
    }
    Some(u128::from(entry_bytes(wf, af, p)) << shift)
}

/// Footprint of the canonical LUT in bytes.
#[must_use]
pub fn canonical_lut_bytes(wf: NumericFormat, af: NumericFormat, p: u32) -> Option<u128> {
    let wshift = u32::from(wf.bits()).checked_mul(p)?;
    if wshift >= 100 {
        return None;
    }
    let rows = 1u128 << wshift;
    let cols = multiset_count(u64::from(af.code_space()), p)?;
    rows.checked_mul(cols)?
        .checked_mul(u128::from(entry_bytes(wf, af, p)))
}

/// Footprint of the reordering LUT in bytes.
#[must_use]
pub fn reorder_lut_bytes(wf: NumericFormat, p: u32) -> Option<u128> {
    let wshift = u32::from(wf.bits()).checked_mul(p)?;
    if wshift >= 100 {
        return None;
    }
    let rows = 1u128 << wshift;
    let cols = u128::from(factorial(p)?);
    rows.checked_mul(cols)?
        .checked_mul(u128::from(reorder_entry_bytes(wf.bits(), p)))
}

/// Combined canonical + reordering footprint (the full LoCaLUT image).
#[must_use]
pub fn localut_bytes(wf: NumericFormat, af: NumericFormat, p: u32) -> Option<u128> {
    canonical_lut_bytes(wf, af, p)?.checked_add(reorder_lut_bytes(wf, p)?)
}

/// Bytes of one streamed slice pair at degree `p`: one canonical column
/// (`2^(bw·p)` entries) plus one reordering column.
#[must_use]
pub fn slice_pair_bytes(wf: NumericFormat, af: NumericFormat, p: u32) -> Option<u64> {
    let wshift = u32::from(wf.bits()).checked_mul(p)?;
    if wshift >= 48 {
        return None;
    }
    let rows = 1u64 << wshift;
    Some(rows * (entry_bytes(wf, af, p) + reorder_entry_bytes(wf.bits(), p)))
}

/// Largest `p ≥ 1` whose canonical + reordering LUTs fit `budget` bytes
/// (0 when even `p = 1` does not fit).
///
/// # Examples
///
/// ```
/// use localut::capacity::max_p_localut;
/// use pim_sim::DpuConfig;
/// use quant::NumericFormat;
///
/// // §V-A: at W1A3 the WRAM budget admits p = 5, the bank budget p = 8.
/// let dpu = DpuConfig::upmem();
/// let (w1, a3) = (NumericFormat::Bipolar, NumericFormat::Int(3));
/// assert_eq!(max_p_localut(w1, a3, dpu.wram_lut_budget()), 5);
/// assert_eq!(max_p_localut(w1, a3, dpu.bank_lut_budget()), 8);
/// ```
#[must_use]
pub fn max_p_localut(wf: NumericFormat, af: NumericFormat, budget: u64) -> u32 {
    max_p_by(|p| localut_bytes(wf, af, p), budget)
}

/// Largest `p ≥ 1` whose canonical LUT alone fits `budget` bytes (the
/// OP+LC design point, which reorders weights in software).
#[must_use]
pub fn max_p_canonical_only(wf: NumericFormat, af: NumericFormat, budget: u64) -> u32 {
    max_p_by(|p| canonical_lut_bytes(wf, af, p), budget)
}

/// Largest `p ≥ 1` whose operation-packed LUT fits `budget` bytes.
#[must_use]
pub fn max_p_op(wf: NumericFormat, af: NumericFormat, budget: u64) -> u32 {
    max_p_by(|p| op_lut_bytes(wf, af, p), budget)
}

fn max_p_by(bytes_of: impl Fn(u32) -> Option<u128>, budget: u64) -> u32 {
    let mut best = 0;
    for p in 1..=24 {
        match bytes_of(p) {
            Some(b) if b <= u128::from(budget) => best = p,
            // Footprints are monotone in p; stop at the first miss.
            _ => break,
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;
    const W1: NumericFormat = NumericFormat::Bipolar;
    const A3: NumericFormat = NumericFormat::Int(3);

    #[test]
    fn entry_bytes_minimal_widths() {
        // W1A3, p=8: |dot| <= 8*1*4 = 32 → 1 byte.
        assert_eq!(entry_bytes(W1, A3, 8), 1);
        // W4A4, p=2: |dot| <= 2*7*7 = 98 → 1 byte; p=3: 147 → 2 bytes.
        assert_eq!(
            entry_bytes(NumericFormat::Int(4), NumericFormat::Int(4), 2),
            1
        );
        assert_eq!(
            entry_bytes(NumericFormat::Int(4), NumericFormat::Int(4), 3),
            2
        );
        // Wide ints overflow to 4 bytes (4*127*127 = 64516).
        assert_eq!(
            entry_bytes(NumericFormat::Int(8), NumericFormat::Int(8), 4),
            4
        );
        // Floats store fp16 entries.
        assert_eq!(entry_bytes(NumericFormat::Fp4, NumericFormat::Fp4, 4), 2);
    }

    #[test]
    fn reorder_entry_width() {
        assert_eq!(reorder_entry_bytes(1, 8), 1);
        assert_eq!(reorder_entry_bytes(1, 9), 2);
        assert_eq!(reorder_entry_bytes(2, 4), 1);
        assert_eq!(reorder_entry_bytes(4, 3), 2);
    }

    #[test]
    fn section_v_a_packing_degrees() {
        // §V-A at W1A3 with half-capacity budgets:
        // with canonicalization p_local ≈ 5 and p_DRAM ≈ 8;
        // without, 3 and 6.
        let wram = 32 * KB;
        let dram = 32 * MB;
        assert_eq!(max_p_localut(W1, A3, wram), 5, "p_local with LC");
        assert_eq!(max_p_localut(W1, A3, dram), 8, "p_DRAM with LC");
        assert_eq!(max_p_op(W1, A3, wram), 3, "p_local without LC");
        assert_eq!(max_p_op(W1, A3, dram), 6, "p_DRAM without LC");
    }

    #[test]
    fn fig6_total_reduction_band() {
        // Fig. 6 red line: total reduction (op-packed vs canonical +
        // reordering) spans 1.68x at p=2 to ~358x at p=8 for W1A3.
        let red = |p: u32| {
            op_lut_bytes(W1, A3, p).unwrap() as f64 / localut_bytes(W1, A3, p).unwrap() as f64
        };
        assert!((red(2) - 1.68).abs() < 0.02, "p=2 reduction {}", red(2));
        let r8 = red(8);
        assert!((340.0..380.0).contains(&r8), "p=8 reduction {r8}");
        // Monotone increasing over the plotted range.
        for p in 2..8 {
            assert!(red(p + 1) > red(p));
        }
    }

    #[test]
    fn canonical_always_beats_op_in_columns() {
        for p in 1..=8 {
            let c = canonical_lut_bytes(W1, A3, p).unwrap();
            let o = op_lut_bytes(W1, A3, p).unwrap();
            assert!(c <= o, "canonical must never exceed op-packed (p={p})");
        }
    }

    #[test]
    fn slice_pair_bytes_matches_manual() {
        // W1A3 p=5: 32 rows x (1 entry byte + 1 reorder byte) = 64.
        assert_eq!(slice_pair_bytes(W1, A3, 5), Some(64));
        // W4A4 p=3: 4096 rows x (2 + 2) = 16 KiB.
        assert_eq!(
            slice_pair_bytes(NumericFormat::Int(4), NumericFormat::Int(4), 3),
            Some(4096 * 4)
        );
    }

    #[test]
    fn max_p_zero_when_nothing_fits() {
        assert_eq!(
            max_p_op(NumericFormat::Int(8), NumericFormat::Int(8), 16),
            0
        );
    }

    #[test]
    fn footprints_overflow_to_none() {
        assert!(op_lut_bytes(NumericFormat::Fp16, NumericFormat::Fp16, 8).is_none());
        assert!(canonical_lut_bytes(NumericFormat::Fp16, NumericFormat::Fp16, 16).is_none());
    }

    #[test]
    fn w4a4_buffer_degrees_match_fig18() {
        // Fig. 18(a): for W4A4 "a maximum packing degree of two fits in the
        // local buffer" (the 34 KB canonical LUT needs the 0.55 budget
        // fraction); p=3 requires slice streaming.
        let wram = pim_sim::DpuConfig::upmem().wram_lut_budget();
        let f4 = NumericFormat::Int(4);
        assert_eq!(max_p_localut(f4, f4, wram), 2);
        // Fig. 18(b): W2A2 optimum around 4-5; buffer fit must allow >= 4.
        let f2 = NumericFormat::Int(2);
        assert!(max_p_localut(f2, f2, wram) >= 4);
    }
}
