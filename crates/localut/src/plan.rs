//! The automatic planner of §V-A: given matrix dimensions and bitwidths,
//! compute the performance model on the host side to determine `p*` and
//! whether to use LUT slice streaming — then construct the kernel.

use crate::capacity::{localut_bytes, max_p_localut, slice_pair_bytes};
use crate::gemm::GemmDims;
use crate::kernels::{LutKernel, RcKernel, StreamingKernel};
use crate::model::PerfModel;
use crate::LocaLutError;
use pim_sim::{DpuConfig, Profile};
use quant::NumericFormat;

/// Where the planner placed the LUTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Canonical + reordering LUTs fully resident in WRAM (Eq. 4).
    BufferResident,
    /// LUTs in the DRAM bank, slices streamed into WRAM (Eq. 2).
    Streaming,
}

impl core::fmt::Display for Placement {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Placement::BufferResident => "buffer-resident",
            Placement::Streaming => "slice-streaming",
        })
    }
}

/// A complete execution decision for one GEMM.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionPlan {
    /// LUT placement.
    pub placement: Placement,
    /// Packing degree `p*`.
    pub p: u32,
    /// Co-resident slice pairs (`k`; meaningful for streaming only).
    pub k_slices: u32,
    /// The model-predicted seconds (Eq. 2 or Eq. 4).
    pub predicted_seconds: f64,
    /// Weight format.
    pub wf: NumericFormat,
    /// Activation format.
    pub af: NumericFormat,
}

impl ExecutionPlan {
    /// Builds the kernel this plan describes, as a trait object: a
    /// buffer-resident plan yields an [`RcKernel`], a streaming plan a
    /// [`StreamingKernel`], and every caller dispatches through
    /// [`LutKernel`] without matching on the placement again.
    ///
    /// # Errors
    ///
    /// Budget errors (should not occur for plans produced by [`Planner`]).
    pub fn kernel(&self, cfg: &DpuConfig) -> Result<Box<dyn LutKernel>, LocaLutError> {
        match self.placement {
            Placement::BufferResident => Ok(Box::new(RcKernel::with_p(
                cfg.clone(),
                self.wf,
                self.af,
                self.p,
            )?)),
            Placement::Streaming => Ok(Box::new(StreamingKernel::new(
                cfg.clone(),
                self.wf,
                self.af,
                self.p,
                self.k_slices,
            )?)),
        }
    }

    /// The plan's analytic cost for given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the plan is infeasible for `cfg` (plans from [`Planner`]
    /// are always feasible).
    #[must_use]
    pub fn cost(&self, cfg: &DpuConfig, dims: GemmDims) -> Profile {
        self.kernel(cfg)
            .expect("planner-produced plans are feasible")
            .cost(dims)
    }
}

/// The §IV-D/§V-A planner.
///
/// # Examples
///
/// ```
/// use localut::plan::{Placement, Planner};
/// use localut::GemmDims;
/// use pim_sim::DpuConfig;
/// use quant::NumericFormat;
///
/// let planner = Planner::new(DpuConfig::upmem());
/// // A large-M GEMM streams slices at a high packing degree...
/// let plan = planner.plan(
///     GemmDims { m: 3072, k: 768, n: 128 },
///     NumericFormat::Bipolar, NumericFormat::Int(3), Some(2))?;
/// assert_eq!(plan.placement, Placement::Streaming);
/// assert!(plan.p > 5);
/// # Ok::<(), localut::LocaLutError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Planner {
    cfg: DpuConfig,
    model: PerfModel,
}

impl Planner {
    /// Creates a planner for a DPU configuration, using the profiled
    /// UPMEM model constants.
    #[must_use]
    pub fn new(cfg: DpuConfig) -> Self {
        Planner {
            cfg,
            model: PerfModel::upmem(),
        }
    }

    /// The largest streaming `p` feasible for `k` co-resident slice pairs:
    /// the full LUTs must fit the bank LUT budget and `k` slice pairs must
    /// fit the WRAM LUT budget.
    #[must_use]
    pub fn max_streaming_p(&self, wf: NumericFormat, af: NumericFormat, k: u32) -> u32 {
        let bank = u128::from(self.cfg.bank_lut_budget());
        let wram = self.cfg.wram_lut_budget();
        let mut best = 0;
        for p in 1..=24 {
            let fits_bank = localut_bytes(wf, af, p).is_some_and(|b| b <= bank);
            let fits_wram = slice_pair_bytes(wf, af, p)
                .is_some_and(|s| s.checked_mul(u64::from(k)).is_some_and(|r| r <= wram));
            if fits_bank && fits_wram {
                best = p;
            } else {
                break;
            }
        }
        best
    }

    /// Plans one GEMM: evaluates Eq. 2 for every feasible streaming `p`
    /// (and every `k` in {1, 2, 4, 8} unless one is given) against the
    /// buffer-resident Eq. 4, and returns the fastest plan.
    ///
    /// # Errors
    ///
    /// [`LocaLutError::BudgetExceeded`] when no feasible configuration
    /// exists at all.
    pub fn plan(
        &self,
        dims: GemmDims,
        wf: NumericFormat,
        af: NumericFormat,
        k_slices: Option<u32>,
    ) -> Result<ExecutionPlan, LocaLutError> {
        let bw = wf.bits();
        let p_local = max_p_localut(wf, af, self.cfg.wram_lut_budget());
        let k_candidates: Vec<u32> = match k_slices {
            Some(k) => vec![k],
            None => vec![1, 2, 4, 8],
        };

        let mut best: Option<ExecutionPlan> = None;
        let mut consider = |plan: ExecutionPlan| {
            if best
                .as_ref()
                .is_none_or(|b| plan.predicted_seconds < b.predicted_seconds)
            {
                best = Some(plan);
            }
        };

        if p_local > 0 {
            consider(ExecutionPlan {
                placement: Placement::BufferResident,
                p: p_local,
                k_slices: 1,
                predicted_seconds: self.model.buffer_seconds(dims, p_local),
                wf,
                af,
            });
        }
        for &k in &k_candidates {
            let p_max = self.max_streaming_p(wf, af, k);
            if let Some(choice) = self.model.optimal_streaming_p(dims, bw, p_max) {
                consider(ExecutionPlan {
                    placement: Placement::Streaming,
                    p: choice.p,
                    k_slices: k,
                    predicted_seconds: choice.seconds,
                    wf,
                    af,
                });
            }
        }

        best.ok_or(LocaLutError::BudgetExceeded {
            required: localut_bytes(wf, af, 1).unwrap_or(u128::MAX),
            budget: self.cfg.bank_lut_budget(),
        })
    }

    /// Plans one GEMM by **measured** kernel cost instead of the closed
    /// forms: every feasible `(placement, p, k)` candidate is ranked by the
    /// seconds the constructed kernel actually charges at `dims`.
    ///
    /// The closed-form [`Planner::plan`] cancels `n` out of its argmin
    /// (both Eq. 2 and Eq. 4 scale linearly in the activation columns), so
    /// it picks the same configuration for a 128-column prefill GEMM and a
    /// 1-column decode GEMM. The kernels themselves are not `n`-invariant:
    /// a streaming kernel re-streams its weight slices `ceil(n / k)` times,
    /// so at decode-scale `n` the amortization argument behind a large `k`
    /// breaks down. This search charges the real kernel cost and therefore
    /// separates the phases (cf. Fig. 13 / Fig. 19): decode-skinny GEMMs
    /// may pick a different `p*`, a different `k`, or flip placement
    /// entirely.
    ///
    /// The search is deterministic: candidates are enumerated in a fixed
    /// order (buffer-resident first, then streaming by ascending `k`, then
    /// ascending `p`) and a strictly faster candidate is required to
    /// displace the incumbent, so ties resolve to the earliest candidate.
    ///
    /// # Errors
    ///
    /// [`LocaLutError::BudgetExceeded`] when no feasible configuration
    /// exists at all.
    pub fn plan_measured(
        &self,
        dims: GemmDims,
        wf: NumericFormat,
        af: NumericFormat,
    ) -> Result<ExecutionPlan, LocaLutError> {
        let mut best: Option<ExecutionPlan> = None;
        let mut consider = |plan: ExecutionPlan| {
            if best
                .as_ref()
                .is_none_or(|b| plan.predicted_seconds < b.predicted_seconds)
            {
                best = Some(plan);
            }
        };

        let p_local = max_p_localut(wf, af, self.cfg.wram_lut_budget());
        if p_local > 0 {
            if let Ok(kernel) = RcKernel::with_p(self.cfg.clone(), wf, af, p_local) {
                consider(ExecutionPlan {
                    placement: Placement::BufferResident,
                    p: p_local,
                    k_slices: 1,
                    predicted_seconds: kernel.cost(dims).total_seconds(),
                    wf,
                    af,
                });
            }
        }
        for k in [1, 2, 4, 8] {
            for p in 1..=self.max_streaming_p(wf, af, k) {
                if let Ok(kernel) = StreamingKernel::new(self.cfg.clone(), wf, af, p, k) {
                    consider(ExecutionPlan {
                        placement: Placement::Streaming,
                        p,
                        k_slices: k,
                        predicted_seconds: kernel.cost(dims).total_seconds(),
                        wf,
                        af,
                    });
                }
            }
        }

        best.ok_or(LocaLutError::BudgetExceeded {
            required: localut_bytes(wf, af, 1).unwrap_or(u128::MAX),
            budget: self.cfg.bank_lut_budget(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W1: NumericFormat = NumericFormat::Bipolar;
    const A3: NumericFormat = NumericFormat::Int(3);

    fn planner() -> Planner {
        Planner::new(DpuConfig::upmem())
    }

    #[test]
    fn max_streaming_p_tracks_budgets() {
        let p = planner();
        // Bank limits W1A3 to p=8 (§V-A); k=2 slice pairs are tiny.
        assert_eq!(p.max_streaming_p(W1, A3, 2), 8);
        // W4A4: slice pair at p=3 is 16 KiB; k=2 fits, k=4 forces p<=2.
        let f4 = NumericFormat::Int(4);
        assert_eq!(p.max_streaming_p(f4, f4, 2), 3);
        assert!(p.max_streaming_p(f4, f4, 4) <= 2);
    }

    #[test]
    fn large_m_plans_streaming_with_high_p() {
        let plan = planner()
            .plan(
                GemmDims {
                    m: 3072,
                    k: 768,
                    n: 128,
                },
                W1,
                A3,
                Some(2),
            )
            .unwrap();
        assert_eq!(plan.placement, Placement::Streaming);
        assert!(plan.p > 5, "expected p beyond p_local, got {}", plan.p);
    }

    #[test]
    fn tiny_m_plans_buffer_resident() {
        // Eq. 6: small M cannot amortize slice loads.
        let plan = planner()
            .plan(
                GemmDims { m: 2, k: 768, n: 8 },
                NumericFormat::Int(4),
                NumericFormat::Int(4),
                Some(2),
            )
            .unwrap();
        assert_eq!(plan.placement, Placement::BufferResident);
    }

    #[test]
    fn plan_is_optimal_over_alternatives() {
        let p = planner();
        let dims = GemmDims {
            m: 768,
            k: 768,
            n: 128,
        };
        let plan = p.plan(dims, W1, A3, None).unwrap();
        // No single-k plan may beat the k-searched plan.
        for k in [1, 2, 4, 8] {
            let alt = p.plan(dims, W1, A3, Some(k)).unwrap();
            assert!(alt.predicted_seconds >= plan.predicted_seconds - 1e-15);
        }
    }

    #[test]
    fn planned_kernel_is_constructible_and_consistent() {
        let p = planner();
        let dims = GemmDims { m: 64, k: 36, n: 8 };
        let plan = p
            .plan(dims, NumericFormat::Int(2), NumericFormat::Int(2), Some(2))
            .unwrap();
        let kernel = plan.kernel(&DpuConfig::upmem()).unwrap();
        let cost = kernel.cost(dims);
        assert!(cost.total_seconds() > 0.0);
        assert_eq!(kernel.p(), plan.p);
        let expected = match plan.placement {
            Placement::BufferResident => crate::gemm::Method::OpLcRc,
            Placement::Streaming => crate::gemm::Method::LoCaLut,
        };
        assert_eq!(kernel.method(), expected, "placement/kernel mismatch");
    }

    #[test]
    fn measured_plan_is_optimal_and_deterministic() {
        let p = planner();
        let dims = GemmDims {
            m: 768,
            k: 768,
            n: 1,
        };
        let plan = p.plan_measured(dims, W1, A3).unwrap();
        // The winner's measured cost really is minimal over the search
        // space it claims to have covered.
        for k in [1u32, 2, 4, 8] {
            for cand_p in 1..=p.max_streaming_p(W1, A3, k) {
                let kernel = StreamingKernel::new(DpuConfig::upmem(), W1, A3, cand_p, k).unwrap();
                assert!(
                    kernel.cost(dims).total_seconds() >= plan.predicted_seconds - 1e-18,
                    "streaming p={cand_p} k={k} beats the measured plan"
                );
            }
        }
        assert_eq!(p.plan_measured(dims, W1, A3).unwrap(), plan);
    }

    #[test]
    fn measured_plan_separates_decode_from_prefill() {
        // At prefill-scale n the weight stream amortizes and the measured
        // search agrees with the closed form's streaming choice; at
        // decode-scale n (one column) the plan must still be feasible and
        // its measured cost can only be <= the closed-form pick's cost.
        let p = planner();
        let prefill = GemmDims {
            m: 3072,
            k: 768,
            n: 128,
        };
        let decode = GemmDims {
            m: 3072,
            k: 768,
            n: 1,
        };
        let measured_prefill = p.plan_measured(prefill, W1, A3).unwrap();
        assert_eq!(measured_prefill.placement, Placement::Streaming);
        let closed = p.plan(decode, W1, A3, Some(2)).unwrap();
        let measured = p.plan_measured(decode, W1, A3).unwrap();
        let closed_cost = closed.cost(&DpuConfig::upmem(), decode).total_seconds();
        assert!(measured.predicted_seconds <= closed_cost + 1e-18);
    }

    #[test]
    fn infeasible_formats_error() {
        // 16-bit ints: no LUT fits anywhere.
        let err = planner()
            .plan(
                GemmDims { m: 8, k: 8, n: 8 },
                NumericFormat::Int(16),
                NumericFormat::Int(16),
                Some(2),
            )
            .unwrap_err();
        assert!(matches!(err, LocaLutError::BudgetExceeded { .. }));
    }
}
