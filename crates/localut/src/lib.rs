//! # localut — the LoCaLUT core
//!
//! Reproduction of the paper's primary contribution: operation-packed
//! LUT-based GEMM for DRAM-PIM with **LUT canonicalization**, the
//! **reordering LUT**, and **LUT slice streaming**, plus the first-order
//! performance model that selects the packing degree and placement.
//!
//! * [`packed::OpPackedLut`] — `p` MACs per lookup (§III-A).
//! * [`canonical::CanonicalLut`] — duplicate-free columns via multiset
//!   ranking (§IV-A).
//! * [`reorder::ReorderLut`] — weight reordering as one lookup (§IV-B).
//! * [`capacity`] — closed-form footprints and budget fitting (Fig. 6, §V-A).
//! * [`model`] — Eq. 2–6: `p*` selection and stream-vs-buffer choice (§IV-D).
//! * [`kernels`] — the six GEMM kernels of the evaluation (Naive PIM, LTC,
//!   OP, OP+LC, OP+LC+RC, full LoCaLUT), functional *and* timed on
//!   [`pim_sim`], unified behind the [`kernels::LutKernel`] trait.
//! * [`codes`] — group-major bit-packed operand code words and the reused
//!   per-group scratch the blocked kernel loops run on.
//! * [`plan`] — the automatic planner of §V-A.
//! * [`tiling`] — bank-level data/context parallelism and host transfers.
//!
//! ## Quickstart
//!
//! ```
//! use localut::gemm::{GemmConfig, Method};
//! use quant::{NumericFormat, Quantizer};
//!
//! // Quantize a tiny weight and activation matrix (W1A3).
//! let wq = Quantizer::symmetric(NumericFormat::Bipolar);
//! let aq = Quantizer::symmetric(NumericFormat::Int(3));
//! let w = wq.quantize_matrix(&[0.5, -0.5, 1.0, -1.0, 0.3, -0.3], 2, 3)?;
//! let a = aq.quantize_matrix(&[1.0, 2.0, -3.0, 0.5, 4.0, -1.0], 3, 2)?;
//!
//! // Run the full LoCaLUT kernel and compare with the naive PIM kernel.
//! let cfg = GemmConfig::upmem();
//! let fast = cfg.run(Method::LoCaLut, &w, &a)?;
//! let slow = cfg.run(Method::NaivePim, &w, &a)?;
//! assert_eq!(fast.values, slow.values); // bit-exact
//! # Ok::<(), localut::LocaLutError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod canonical;
pub mod capacity;
pub mod codes;
pub mod elementwise;
pub mod error;
pub mod fgemm;
pub mod gemm;
pub mod image;
pub mod kernels;
pub mod model;
pub mod multiset;
pub mod packed;
pub mod perm;
pub mod plan;
pub mod reorder;
pub mod tiling;
pub mod value;

pub use error::LocaLutError;
pub use gemm::{GemmConfig, GemmDims, GemmResult, Method};
pub use plan::{ExecutionPlan, Placement, Planner};
pub use value::LutValue;
